//! Drive the cycle-approximate core simulator on a GEMM at every MPE
//! precision and compare cycles against the analytical model (the E9
//! calibration, our analog of the paper's "within 1% of measurement").
//!
//! Run with: `cargo run --release --example simulate_gemm`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::arch::precision::Precision;
use rapid::compiler::mapping::map_layer;
use rapid::numerics::gemm::matmul_f32;
use rapid::numerics::Tensor;
use rapid::sim::gemm::{CoreSim, GemmJob};
use rapid::workloads::graph::Op;

fn main() {
    let core = CoreSim::rapid();
    let (m, k, n) = (32usize, 256usize, 128usize);
    let a = Tensor::random_uniform(vec![m, k], -1.0, 1.0, 7);
    let b = Tensor::random_uniform(vec![k, n], -1.0, 1.0, 8);
    let reference = matmul_f32(&a, &b);

    println!("C[{m},{n}] = A[{m},{k}] × B[{k},{n}] on one RaPiD core (2 corelets)\n");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "prec", "sim cyc", "model cyc", "error", "max rel err", "gated"
    );
    for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4] {
        let job = GemmJob { a: a.clone(), b: b.clone(), precision: p };
        let r = core.run_gemm(&job);
        let op = Op::Gemm { m: m as u64, k: k as u64, n: n as u64, weighted: true };
        let predicted = map_layer(&op, p, 1, &rapid::arch::geometry::CoreletConfig::default(), 2)
            .total_cycles();
        let err = (predicted - r.cycles as f64).abs() / r.cycles as f64;
        let gated: u64 = r.corelets.iter().map(|c| c.zero_gated).sum();
        println!(
            "{:<6} {:>10} {:>10.0} {:>9.2}% {:>11.4} {:>10}",
            p.to_string(),
            r.cycles,
            predicted,
            err * 100.0,
            r.c.max_rel_diff(&reference),
            gated
        );
    }
    println!("\nsimulated values are bit-exact vs the emulated numerics pipelines;");
    println!("'max rel err' is the quantization error vs exact FP32, as expected per format");
}
