//! Multicast on the bidirectional ring (paper §III-E, Fig 8): request
//! aggregation at the producer, one flit stream serving overlapping
//! consumer groups, out-of-order memory returns.
//!
//! Run with: `cargo run --release --example ring_multicast`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::ring::sim::{memory_read, multicast, unicast, RingSim};

fn main() {
    let bytes = 64 * 1024u32;

    // Unicast baseline: 0 → 2.
    let mut uni = RingSim::new(4, 20);
    unicast(&mut uni, 1, 0, 2, bytes);
    let t_uni = uni.run_until_idle(1_000_000).expect("drains");
    println!("unicast  0→2      : {:>6} cycles, {:?} link hops", t_uni, uni.link_hops());

    // The same payload as three unicasts vs one multicast.
    let mut three = RingSim::new(4, 20);
    for (tag, c) in [(1u16, 1usize), (2, 2), (3, 3)] {
        unicast(&mut three, tag, 0, c, bytes);
    }
    let t_three = three.run_until_idle(1_000_000).expect("drains");
    let mut mc = RingSim::new(4, 20);
    multicast(&mut mc, 9, 0, &[1, 2, 3], bytes);
    let t_mc = mc.run_until_idle(1_000_000).expect("drains");
    let (tc, tcc) = three.link_hops();
    let (mcw, mccw) = mc.link_hops();
    println!("3×unicast 0→{{1,2,3}}: {:>6} cycles, {} link hops", t_three, tc + tcc);
    println!("multicast 0→{{1,2,3}}: {:>6} cycles, {} link hops", t_mc, mcw + mccw);
    println!(
        "multicast saves {:.0}% of link traffic and {:.0}% of time\n",
        100.0 * (1.0 - (mcw + mccw) as f64 / (tc + tcc) as f64),
        100.0 * (1.0 - t_mc as f64 / t_three as f64)
    );

    // Shared-weight fetch: all four cores read the same region from
    // memory; the memory interface aggregates the group.
    let mut shared = RingSim::new(4, 20);
    memory_read(&mut shared, 7, &[0, 1, 2, 3], bytes);
    let t_shared = shared.run_until_idle(1_000_000).expect("drains");
    println!(
        "memory multicast to all 4 cores: {:>6} cycles ({} bytes delivered per core)",
        t_shared,
        shared.received_bytes(0)
    );
}
