//! Per-layer cost analysis: dump the compiler/model's layer-resolution
//! view of one benchmark as CSV (pipe to a file for spreadsheet analysis)
//! and print the worst offenders.
//!
//! Run with: `cargo run --release --example layer_analysis [benchmark]`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::arch::geometry::ChipConfig;
use rapid::arch::precision::Precision;
use rapid::compiler::passes::{compile, CompileOptions};
use rapid::model::cost::ModelConfig;
use rapid::model::report::{csv_header, layer_reports};
use rapid::workloads::suite::benchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "inception3".to_string());
    let net = benchmark(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}; try resnet50, inception3, bert, ...");
        std::process::exit(1);
    });
    let chip = ChipConfig::rapid_4core();
    let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
    let reports = layer_reports(&net, &plan, &chip, 1, &ModelConfig::default());

    println!("{}", csv_header());
    for r in &reports {
        println!("{}", r.csv_row());
    }

    let mut by_cost: Vec<_> = reports.iter().collect();
    by_cost.sort_by(|a, b| b.total_cycles().partial_cmp(&a.total_cycles()).expect("finite"));
    eprintln!("\n{name}: top-5 most expensive layers (INT4, batch 1):");
    for r in by_cost.iter().take(5) {
        eprintln!(
            "  {:<24} {:>9.0} cycles  util {:>5.1}%  {}{}",
            r.name,
            r.total_cycles(),
            r.utilization * 100.0,
            r.precision,
            if r.memory_bound { "  [memory-bound]" } else { "" }
        );
    }
    let low_util: usize =
        reports.iter().filter(|r| r.macs > 0 && r.utilization < 0.3).count();
    eprintln!("layers below 30% MPE utilization: {low_util}");
}
