//! End-to-end numerics demonstration (experiment E10): train a classifier
//! with the exact arithmetic RaPiD implements and compare against FP32 —
//! then post-training-quantize it to INT4/INT2 with PACT + SaWB.
//!
//! Run with: `cargo run --release --example hfp8_training`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::numerics::int::IntFormat;
use rapid::refnet::backend::{Backend, Fp16Backend, Fp32Backend, Hfp8Backend};
use rapid::refnet::data::gaussian_blobs;
use rapid::refnet::mlp::{train, Mlp, TrainConfig};
use rapid::refnet::quantized::QuantizedMlp;

fn main() {
    let data = gaussian_blobs(1024, 4, 16, 0.35, 42);
    let cfg = TrainConfig { lr: 0.1, epochs: 40, batch: 32 };
    println!(
        "Training a [16, 32, 4] MLP on {} samples / {} classes (synthetic blobs)\n",
        data.len(),
        data.classes
    );

    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(Fp32Backend),
        Box::new(Fp16Backend::default()),
        Box::new(Hfp8Backend::default()),
    ];
    let mut fp32_model = None;
    for be in &backends {
        let mut model = Mlp::new(&[16, 32, 4], 1);
        let acc = train(&mut model, be.as_ref(), &data, &cfg);
        println!("{:<6} training accuracy: {:.1}%", be.name(), acc * 100.0);
        if be.name() == "fp32" {
            fp32_model = Some(model);
        }
    }
    println!("(paper §II-B: HFP8 training matches FP32 across applications)\n");

    let model = fp32_model.expect("fp32 ran first");
    let fp_acc = model.accuracy(&Fp32Backend, &data);
    for fmt in [IntFormat::Int4, IntFormat::Int2] {
        let q = QuantizedMlp::quantize(&model, fmt, &data);
        let acc = q.accuracy(&data);
        println!(
            "{fmt} PTQ (SaWB weights + calibrated activations): {:.1}% ({:+.1} pts vs FP32)",
            acc * 100.0,
            (acc - fp_acc) * 100.0
        );
    }
    println!("(paper §II-C: INT4 negligible loss; INT2 ≈2% loss)");
}
