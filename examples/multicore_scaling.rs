//! Core- and chip-count scaling (paper Fig 18): INT4 inference as cores
//! scale 1→32 with fixed DDR bandwidth, and HFP8 training as chips scale
//! 1→32 at a fixed global minibatch.
//!
//! Run with: `cargo run --release --example multicore_scaling`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::model::cost::ModelConfig;
use rapid::model::scaling::{inference_core_scaling, training_chip_scaling};
use rapid::workloads::suite::benchmark;

fn main() {
    let cfg = ModelConfig::default();
    let counts = [1u32, 2, 4, 8, 16, 32];

    println!("Fig 18(a): INT4 batch-1 inference speedup vs cores (DDR fixed at 200 GB/s)");
    print!("{:<12}", "benchmark");
    for c in counts {
        print!(" {:>7}", format!("{c}c"));
    }
    println!();
    for name in ["vgg16", "resnet50", "yolov3", "mobilenetv1", "lstm"] {
        let net = benchmark(name).expect("known benchmark");
        let pts = inference_core_scaling(&net, &counts, &cfg);
        print!("{name:<12}");
        for p in &pts {
            print!(" {:>6.2}x", p.speedup);
        }
        println!();
    }

    println!("\nFig 18(b): HFP8 training speedup vs chips (minibatch 512, links 128 GB/s)");
    print!("{:<12}", "benchmark");
    for c in counts {
        print!(" {:>7}", format!("{c}ch"));
    }
    println!();
    for name in ["vgg16", "resnet50", "bert", "lstm"] {
        let net = benchmark(name).expect("known benchmark");
        let pts = training_chip_scaling(&net, &counts, 512, &cfg);
        print!("{name:<12}");
        for p in &pts {
            print!(" {:>6.2}x", p.speedup);
        }
        println!();
    }
    println!("\n(compute-heavy nets keep scaling; aux/memory/communication-bound nets saturate)");
}
