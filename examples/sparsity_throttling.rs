//! Sparsity-aware frequency throttling (paper §III-C / Fig 16): derive the
//! throttle-rate curve from the power characterization, then apply the
//! compiler-guided schedule to the pruned benchmark suite.
//!
//! Run with: `cargo run --release --example sparsity_throttling`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::arch::geometry::ChipConfig;
use rapid::arch::power::ThrottleModel;
use rapid::model::cost::ModelConfig;
use rapid::model::throttle::throttling_study;
use rapid::workloads::suite::{apply_pruning_profile, pruned_study_suite};

fn main() {
    let t = ThrottleModel::rapid_default();
    println!("Fig 16(a): throttle rate vs weight sparsity (power budget {:.0}% of dense f_max)", t.budget_fraction * 100.0);
    println!("{:>10} {:>14} {:>12}", "sparsity", "throttle rate", "f_eff GHz");
    for s in [0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        println!(
            "{:>9.0}% {:>13.1}% {:>12.2}",
            s * 100.0,
            t.throttle_rate(s) * 100.0,
            t.effective_frequency_ghz(s)
        );
    }

    println!("\nFig 16(b): pruned-model speedup from sparsity-aware throttling");
    println!("{:>12} {:>12} {:>10}", "benchmark", "sparsity", "speedup");
    let chip = ChipConfig::rapid_4core();
    let cfg = ModelConfig::default();
    let mut speedups = Vec::new();
    for mut net in pruned_study_suite() {
        apply_pruning_profile(&mut net);
        let study = throttling_study(&net, &chip, &t, &cfg);
        speedups.push(study.speedup());
        println!(
            "{:>12} {:>11.0}% {:>9.2}x",
            study.network,
            study.avg_sparsity * 100.0,
            study.speedup()
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("\naverage speedup {avg:.2}x (paper: 1.1x–1.7x, average 1.3x)");
}
