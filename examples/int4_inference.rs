//! Batch-1 inference across the full 11-benchmark suite at FP16, FP8 and
//! INT4 — the study behind Figs 13 and 14.
//!
//! Run with: `cargo run --release --example int4_inference`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::arch::geometry::ChipConfig;
use rapid::arch::precision::Precision;
use rapid::compiler::passes::{compile, CompileOptions};
use rapid::model::cost::ModelConfig;
use rapid::model::inference::{evaluate_inference, InferenceResult};
use rapid::workloads::suite::benchmark_suite;

fn run(net_name: &str, p: Precision, chip: &ChipConfig, cfg: &ModelConfig) -> InferenceResult {
    let net = benchmark_suite().into_iter().find(|n| n.name == net_name).expect("known benchmark");
    let plan = compile(&net, chip, &CompileOptions::for_precision(p));
    evaluate_inference(&net, &plan, chip, 1, cfg)
}

fn main() {
    let chip = ChipConfig::rapid_4core();
    let cfg = ModelConfig::default();
    println!("4-core RaPiD chip, batch size 1 (paper §V-B)\n");
    println!(
        "{:<12} {:>11} {:>9} {:>9} | {:>8} {:>8} | {:>8} {:>8}",
        "benchmark", "fp16 µs", "fp8 µs", "int4 µs", "fp8 spd", "int4 spd", "fp8 T/W", "int4 T/W"
    );
    let mut fp8_speedups = Vec::new();
    let mut int4_speedups = Vec::new();
    for net in benchmark_suite() {
        let fp16 = run(&net.name, Precision::Fp16, &chip, &cfg);
        let fp8 = run(&net.name, Precision::Hfp8, &chip, &cfg);
        let int4 = run(&net.name, Precision::Int4, &chip, &cfg);
        let s8 = fp16.latency_s / fp8.latency_s;
        let s4 = fp16.latency_s / int4.latency_s;
        fp8_speedups.push(s8);
        int4_speedups.push(s4);
        println!(
            "{:<12} {:>11.0} {:>9.0} {:>9.0} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
            net.name,
            fp16.latency_s * 1e6,
            fp8.latency_s * 1e6,
            int4.latency_s * 1e6,
            s8,
            s4,
            fp8.tops_per_w,
            int4.tops_per_w
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nFP8 speedup avg {:.2} (paper: 1.2–1.9, avg 1.55); INT4 speedup avg {:.2} (paper: 1.4–4.2, avg 2.8)",
        avg(&fp8_speedups),
        avg(&int4_speedups)
    );
}
