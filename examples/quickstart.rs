//! Quickstart: compile ResNet50 for INT4 inference on the 4-core RaPiD
//! chip and print the end-to-end estimate alongside the FP16 baseline.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail loudly by design

use rapid::arch::geometry::ChipConfig;
use rapid::arch::precision::Precision;
use rapid::compiler::passes::{compile, CompileOptions};
use rapid::model::cost::ModelConfig;
use rapid::model::inference::evaluate_inference;
use rapid::workloads::suite::benchmark;

fn main() {
    let net = benchmark("resnet50").expect("resnet50 is in the suite");
    let chip = ChipConfig::rapid_4core();
    let cfg = ModelConfig::default();

    println!("RaPiD 4-core chip @ {:.1} GHz, DDR {:.0} GB/s", chip.freq_ghz, chip.mem_bw_gbps);
    println!(
        "{}: {:.1} GMACs/inference, {:.1} M parameters\n",
        net.name,
        net.total_macs() as f64 / 1e9,
        net.total_weights() as f64 / 1e6
    );

    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "precision", "latency", "inf/s", "TOPS", "TOPS/W"
    );
    let mut fp16_latency = None;
    for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4] {
        let plan = compile(&net, &chip, &CompileOptions::for_precision(p));
        let r = evaluate_inference(&net, &plan, &chip, 1, &cfg);
        let base = *fp16_latency.get_or_insert(r.latency_s);
        println!(
            "{:<10} {:>9.0} µs {:>12.0} {:>10.1} {:>10.2}   ({:.2}x vs fp16)",
            p.to_string(),
            r.latency_s * 1e6,
            r.throughput_per_s,
            r.sustained_tops,
            r.tops_per_w,
            base / r.latency_s
        );
    }

    let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
    let r = evaluate_inference(&net, &plan, &chip, 1, &cfg);
    let f = r.breakdown.fractions();
    println!(
        "\nINT4 compute-cycle breakdown (Fig 17 categories):\n  conv/gemm {:.0}%  overheads {:.0}%  quantization {:.0}%  auxiliary {:.0}%",
        f[0] * 100.0,
        f[1] * 100.0,
        f[2] * 100.0,
        f[3] * 100.0
    );
}
