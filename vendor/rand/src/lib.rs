//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, dependency-free implementation of the exact API surface it uses:
//! `StdRng::seed_from_u64` and `Rng::gen_range` over primitive ranges. The
//! generator is SplitMix64 — statistically solid for test-data generation and
//! fully deterministic, which is all the workspace requires (every caller
//! seeds explicitly; reproducibility matters, distribution pedigree does not).
//!
//! It is **not** the real `rand` crate: streams differ from upstream `StdRng`
//! and no cryptographic guarantees are made.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 bits of resolution.
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let (lo, hi) = (f64::from(self.start), f64::from(self.end));
                let v = (lo + unit_f64(rng) * (hi - lo)) as $t;
                // Floating rounding can land exactly on the excluded upper
                // bound; fold that measure-zero case back to the start.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (f64::from(*self.start()), f64::from(*self.end()));
                assert!(lo <= hi, "cannot sample empty range");
                (lo + unit_f64(rng) * (hi - lo)) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let off = if span == 0 {
                    // Full-width inclusive range: every word is in range.
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.next_u64()) % span
                } as i128;
                (lo + off) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — public-domain constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f32..1.0).to_bits(), b.gen_range(0.0f32..1.0).to_bits());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let i = rng.gen_range(-7i8..=7);
            assert!((-7..=7).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0f64..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0f64..1.0)).collect();
        assert_ne!(va, vb);
    }
}
