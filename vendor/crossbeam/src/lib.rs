//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::scope` + `Scope::spawn`; since Rust
//! 1.63 the standard library's `std::thread::scope` provides the same
//! borrow-from-the-stack capability, so this stub is a thin adapter that
//! preserves crossbeam's signatures: `scope` returns a `thread::Result`
//! (child or closure panics surface as `Err`), and spawned closures receive
//! a `&Scope` for nested spawns.

pub use thread::scope;

/// Scoped-thread API, mirroring `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope in which borrowed-data threads can be spawned.
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result
        /// (`Err` if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env`; the closure receives this scope
        /// so it can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope are
    /// joined before `scope` returns. Panics from `f` or any child thread
    /// are captured and returned as `Err`, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    total.fetch_add(chunk.iter().sum(), std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child failure"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .unwrap();
        assert!(flag.into_inner());
    }
}
