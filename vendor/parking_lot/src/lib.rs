//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API (`lock()`
//! returns the guard directly). A poisoned std mutex — a thread panicked
//! while holding it — is treated the way parking_lot treats it: the lock is
//! simply taken, matching parking_lot's no-poisoning semantics.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-safe API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
