//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function`, `Throughput::Elements`/`Bytes`, `black_box`, the
//! `criterion_group!`/`criterion_main!` macros — with a simple adaptive
//! wall-clock loop instead of criterion's statistics engine: each benchmark
//! warms up once, then runs enough iterations to fill a sampling budget
//! (`CRITERION_SAMPLE_MS`, default 600 ms) and reports mean time per
//! iteration plus derived throughput. Good enough to compare kernels by
//! orders of magnitude, which is what the repo's acceptance criteria need;
//! swap in real criterion for publication-grade confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Work-per-iteration declaration used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display identifier, optionally `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Timing context passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`: one warm-up call sizes an iteration batch that fills the
    /// sampling budget, and the mean wall-clock per call is recorded.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let budget = sample_budget();
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed();
        if first >= budget {
            self.ns_per_iter = first.as_nanos() as f64;
            return;
        }
        let per_call = first.as_secs_f64().max(1e-9);
        let iters = ((budget.as_secs_f64() / per_call) as u64).clamp(3, 10_000_000);
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(600);
    Duration::from_millis(ms)
}

fn report(label: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let thrpt = throughput.map(|t| {
        let per_sec = match t {
            Throughput::Elements(n) => (n as f64) / (ns_per_iter * 1e-9),
            Throughput::Bytes(n) => (n as f64) / (ns_per_iter * 1e-9),
        };
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        format!("  thrpt: [{}]", fmt_scaled(per_sec, unit))
    });
    println!("{label:<44} time: [{}]{}", fmt_time(ns_per_iter), thrpt.unwrap_or_default());
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_scaled(v: f64, unit: &str) -> String {
    if v < 1e3 {
        format!("{v:.1} {unit}")
    } else if v < 1e6 {
        format!("{:.2} K{unit}", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2} M{unit}", v / 1e6)
    } else {
        format!("{:.2} G{unit}", v / 1e9)
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup { _criterion: self, name, throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.label, b.ns_per_iter, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), b.ns_per_iter, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); this
            // harness runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut b = Bencher::default();
        b.iter(|| black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(fmt_time(12.0), "12.00 ns");
        assert_eq!(fmt_time(1.2e7), "12.00 ms");
        assert_eq!(fmt_scaled(2.5e6, "elem/s"), "2.50 Melem/s");
    }
}
