//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates config/report structs with
//! `#[derive(Serialize, Deserialize)]` but never actually invokes a
//! serializer (there is no serde_json in the dependency graph). These no-op
//! derives keep the annotations compiling without crates.io access; if real
//! serialization is ever needed, replace the `vendor/serde*` stubs with the
//! upstream crates.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the item, emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the item, emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
