//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{IntoSizeRange, Strategy, VecStrategy};

/// Strategy producing `Vec`s of `element` values whose length is drawn from
/// `size` (a fixed `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy { element, min_len, max_len }
}
