//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the `proptest!`
//! test macro, `prop_assert!`/`prop_assert_eq!`, range/tuple strategies and
//! `proptest::collection::vec`. Each test runs `PROPTEST_CASES` random cases
//! (default 64) from a seed derived from the test's name, so failures are
//! reproducible run-to-run. Unlike real proptest there is **no shrinking**:
//! a failing case reports its case index and panics with the original
//! assertion message.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-imported API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `name(pattern in strategy, ...) { body }` form. The body is
/// run once per generated case; panics (including `prop_assert!` failures)
/// fail the test after reporting the case index.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::case_count();
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..cases {
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }));
                if let ::std::result::Result::Err(payload) = outcome {
                    eprintln!(
                        "proptest stub: test '{}' failed on case {}/{} (deterministic seed; rerun reproduces it)",
                        stringify!($name),
                        case + 1,
                        cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` under proptest's name (the stub panics instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        /// The macro generates in-range values and runs many cases.
        #[test]
        fn ranges_and_vecs(
            x in -2.0f32..2.0,
            n in 1usize..5,
            codes in crate::collection::vec(-7i8..=7, 0..16),
            tup in (0usize..4, 0usize..4, 1u32..4096),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(codes.len() < 16);
            prop_assert!(codes.iter().all(|c| (-7..=7).contains(c)));
            let (a, b, c) = tup;
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(c.clamp(1, 4095), c);
        }

        /// Fixed-size vec form used by the workspace.
        #[test]
        fn fixed_len_vec(v in crate::collection::vec(-1.0f32..1.0, 128)) {
            prop_assert_eq!(v.len(), 128);
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        let mut a = crate::test_runner::rng_for("some_test");
        let mut b = crate::test_runner::rng_for("some_test");
        use rand::Rng;
        assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
    }
}
