//! Case-count and RNG plumbing for the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Number of random cases per property, from `PROPTEST_CASES` (default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Deterministic per-test RNG: the seed is an FNV-1a hash of the test name,
/// so each property sees a distinct but run-to-run stable stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}
