//! Value-generation strategies (no shrinking in this stub).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values for `proptest!` arguments.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Conversion of the size argument of [`crate::collection::vec`] into
/// inclusive `(min, max)` length bounds.
pub trait IntoSizeRange {
    /// Inclusive length bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<T>` with a length drawn from inclusive bounds.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min_len: usize,
    pub(crate) max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
