//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derives from the vendored `serde_derive`, which is all the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations need to
//! compile without network access. No serializer exists; swap in the real
//! crates if one is ever added.

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of `serde::Serialize` (no serializer exists in this build).
pub trait Serialize {}

/// Marker form of `serde::Deserialize` (no deserializer exists in this
/// build).
pub trait Deserialize<'de>: Sized {}
