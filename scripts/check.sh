#!/usr/bin/env bash
# Full local gate: release build, tests, lints. Run from the repo root.
#
#   scripts/check.sh              full gate (build, tests, clippy, smokes)
#   scripts/check.sh --recovery   recovery gate only: clippy on the recover
#                                 crate (unwrap/expect denied) + a timed
#                                 recovery_sweep smoke
#   scripts/check.sh --telemetry  telemetry gate only: clippy on the
#                                 telemetry crate (unwrap/expect denied),
#                                 a timed bench smoke with --json +
#                                 RAPID_TRACE, and schema validation of
#                                 the emitted record via telemetry_report
#   scripts/check.sh --protection protection gate only: clippy on the
#                                 protection-touched crates, a timed
#                                 protection_sweep smoke with --json, and
#                                 schema validation of its record
#   scripts/check.sh --simd       SIMD gate only: clippy on the kernel
#                                 crates, the bit-exactness proptests under
#                                 RAPID_SIMD=force and RAPID_SIMD=off, and
#                                 a timed kernel_speed smoke (which asserts
#                                 bit-exactness inline)
#   scripts/check.sh --serve      serving gate only: clippy on the serve
#                                 crate (unwrap/expect denied), the serving
#                                 integration tests, a timed serving_sweep
#                                 smoke (chaos sweep included) with --json,
#                                 and schema validation of its record
#   scripts/check.sh --elastic    elastic gate only: clippy on the crates
#                                 the elastic layer touches, the elastic
#                                 integration tests, a timed elastic_sweep
#                                 smoke (hard-asserts crash healing, zero
#                                 hangs, and ≤2-point accuracy loss) with
#                                 --json, and schema validation of its
#                                 record
#   scripts/check.sh --obs        observability gate only: clippy on the
#                                 telemetry/serve/bench crates, the
#                                 observability proptests (bit-invisible
#                                 telemetry, well-nested spans, OpenMetrics
#                                 round-trip), a timed obs_sweep smoke with
#                                 --json + RAPID_TRACE + RAPID_METRICS,
#                                 schema validation of its record, and
#                                 strict OpenMetrics validation of the
#                                 dumped snapshot
#   scripts/check.sh --health     health gate only: clippy on the health
#                                 crate (unwrap/expect denied), the
#                                 core-health proptests (no flapping,
#                                 bit-identical when disabled, same-seed
#                                 same-trace), a timed health_sweep smoke
#                                 with --json, schema validation of its
#                                 record, and the zero-silent-wrong grep
#                                 contract
#   scripts/check.sh --all        every named gate (recovery, telemetry,
#                                 protection, simd, serve, elastic, obs,
#                                 health) without the full build/test/
#                                 clippy preamble. Gates keep running
#                                 after a failure; a per-gate PASS/FAIL
#                                 table prints at the end and the exit
#                                 code is nonzero iff any gate failed
set -euo pipefail
cd "$(dirname "$0")/.."

recovery_gate() {
    echo "== cargo clippy -p rapid-recover (deny warnings; the crate denies unwrap/expect) =="
    cargo clippy -p rapid-recover --all-targets -- -D warnings
    echo "== recovery_sweep --smoke (hard 120s timeout) =="
    cargo build --release -p rapid-bench --bin recovery_sweep
    timeout 120 ./target/release/recovery_sweep --smoke
}

telemetry_gate() {
    echo "== cargo clippy -p rapid-telemetry (deny warnings; the crate denies unwrap/expect) =="
    cargo clippy -p rapid-telemetry --all-targets -- -D warnings
    echo "== calibration --json + RAPID_TRACE smoke (hard 120s timeout) =="
    cargo build --release -p rapid-bench --bin calibration --bin telemetry_report
    local out="target/telemetry-gate"
    rm -rf "$out" && mkdir -p "$out"
    timeout 120 env RAPID_TRACE="$out/trace.json" \
        ./target/release/calibration --json "$out/calibration.json"
    test -s "$out/trace.json" || { echo "missing trace output"; exit 1; }
    grep -q '"traceEvents"' "$out/trace.json" || { echo "trace is not Chrome-trace JSON"; exit 1; }
    echo "== telemetry_report --validate on the emitted record =="
    # Wrap the single bench record as a one-element aggregate and validate
    # both layers of the schema with the repo's own validator.
    printf '{"schema":"rapid-bench-aggregate-v1","records":[%s]}' \
        "$(cat "$out/calibration.json")" > "$out/aggregate.json"
    ./target/release/telemetry_report "$out/aggregate.json" --validate
}

protection_gate() {
    echo "== cargo clippy on the protection-touched crates (deny warnings) =="
    cargo clippy -p rapid-numerics -p rapid-sim -p rapid-ring -p rapid-recover \
        -p rapid-arch -p rapid-model -p rapid-fault --all-targets -- -D warnings
    echo "== protection_sweep --smoke --json (hard 120s timeout) =="
    cargo build --release -p rapid-bench --bin protection_sweep --bin telemetry_report
    local out="target/protection-gate"
    rm -rf "$out" && mkdir -p "$out"
    timeout 120 ./target/release/protection_sweep --smoke --json "$out/protection_sweep.json"
    echo "== telemetry_report --validate on the emitted record =="
    # Wrap the single bench record as a one-element aggregate and validate
    # both layers of the schema with the repo's own validator.
    printf '{"schema":"rapid-bench-aggregate-v1","records":[%s]}' \
        "$(cat "$out/protection_sweep.json")" > "$out/aggregate.json"
    ./target/release/telemetry_report "$out/aggregate.json" --validate
    # The zero-silent-delivery and counter contracts, straight off the record.
    grep -q '"ring.silent":0' "$out/protection_sweep.json" \
        || { echo "record is missing ring.silent == 0"; exit 1; }
    grep -q '"spad.silent":0' "$out/protection_sweep.json" \
        || { echo "record is missing spad.silent == 0"; exit 1; }
    grep -q '"recover.abft.corrections"' "$out/protection_sweep.json" \
        || { echo "record is missing the ABFT correction counter"; exit 1; }
}

simd_gate() {
    echo "== cargo clippy on the kernel crates (deny warnings) =="
    cargo clippy -p rapid-numerics -p rapid-bench --all-targets -- -D warnings
    echo "== fastpath_bitexact proptests under RAPID_SIMD=force and =off =="
    cargo build --release -p rapid-bench --bin kernel_speed
    RAPID_SIMD=force cargo test --release -p rapid-numerics --test fastpath_bitexact -q
    RAPID_SIMD=off cargo test --release -p rapid-numerics --test fastpath_bitexact -q
    echo "== kernel_speed --smoke (hard 120s timeout; asserts bit-exactness inline) =="
    timeout 120 ./target/release/kernel_speed --smoke
}

if [[ "${1:-}" == "--recovery" ]]; then
    recovery_gate
    echo "Recovery checks passed."
    exit 0
fi

if [[ "${1:-}" == "--telemetry" ]]; then
    telemetry_gate
    echo "Telemetry checks passed."
    exit 0
fi

if [[ "${1:-}" == "--protection" ]]; then
    protection_gate
    echo "Protection checks passed."
    exit 0
fi

serve_gate() {
    echo "== cargo clippy -p rapid-serve (deny warnings; the crate denies unwrap/expect) =="
    cargo clippy -p rapid-serve --all-targets -- -D warnings
    echo "== serving integration tests (conservation, determinism, breaker, chaos) =="
    cargo test --release -p rapid --test serving -q
    echo "== serving_sweep --smoke --json (hard 120s timeout; includes the chaos cell) =="
    cargo build --release -p rapid-bench --bin serving_sweep --bin telemetry_report
    local out="target/serve-gate"
    rm -rf "$out" && mkdir -p "$out"
    timeout 120 ./target/release/serving_sweep --smoke --json "$out/serving_sweep.json"
    echo "== telemetry_report --validate on the emitted record =="
    # Wrap the single bench record as a one-element aggregate and validate
    # both layers of the schema with the repo's own validator.
    printf '{"schema":"rapid-bench-aggregate-v1","records":[%s]}' \
        "$(cat "$out/serving_sweep.json")" > "$out/aggregate.json"
    ./target/release/telemetry_report "$out/aggregate.json" --validate
    # The serving contracts, straight off the record: nothing lost, nothing
    # delivered late, anywhere in the sweep (chaos cells included).
    grep -q '"sweep.lost_total":0' "$out/serving_sweep.json" \
        || { echo "record is missing sweep.lost_total == 0"; exit 1; }
    grep -q '"sweep.deadline_violations_total":0' "$out/serving_sweep.json" \
        || { echo "record is missing sweep.deadline_violations_total == 0"; exit 1; }
}

elastic_gate() {
    echo "== cargo clippy on the elastic-touched crates (deny warnings) =="
    cargo clippy -p rapid-fault -p rapid-ring -p rapid-recover -p rapid-model \
        --all-targets -- -D warnings
    echo "== elastic integration tests (heal, catch-up bit-identity, never-hang) =="
    cargo test --release -p rapid --test elastic --test fault_tolerance -q
    echo "== elastic_sweep --smoke --json (hard 120s timeout; zero hangs asserted) =="
    cargo build --release -p rapid-bench --bin elastic_sweep --bin telemetry_report
    local out="target/elastic-gate"
    rm -rf "$out" && mkdir -p "$out"
    timeout 120 ./target/release/elastic_sweep --smoke --json "$out/elastic_sweep.json"
    echo "== telemetry_report --validate on the emitted record =="
    # Wrap the single bench record as a one-element aggregate and validate
    # both layers of the schema with the repo's own validator.
    printf '{"schema":"rapid-bench-aggregate-v1","records":[%s]}' \
        "$(cat "$out/elastic_sweep.json")" > "$out/aggregate.json"
    ./target/release/telemetry_report "$out/aggregate.json" --validate
    # The elastic contracts, straight off the record: the ring healed and
    # both layers' counters made it into the telemetry registry.
    grep -q '"ring.elastic.splices"' "$out/elastic_sweep.json" \
        || { echo "record is missing the ring.elastic.splices counter"; exit 1; }
    grep -q '"recover.elastic.crashes_survived"' "$out/elastic_sweep.json" \
        || { echo "record is missing recover.elastic.crashes_survived"; exit 1; }
}

obs_gate() {
    echo "== cargo clippy on the observability-touched crates (deny warnings) =="
    cargo clippy -p rapid-telemetry -p rapid-serve -p rapid-bench --all-targets -- -D warnings
    echo "== observability proptests (bit-invisibility, span forest, OM round-trip) =="
    cargo test --release -p rapid --test observability -q
    echo "== obs_sweep --smoke --json + RAPID_TRACE + RAPID_METRICS (hard 120s timeout) =="
    cargo build --release -p rapid-bench --bin obs_sweep --bin telemetry_report
    local out="target/obs-gate"
    rm -rf "$out" && mkdir -p "$out"
    timeout 120 env RAPID_TRACE="$out/trace.json" RAPID_METRICS="$out/metrics.om" \
        ./target/release/obs_sweep --smoke --json "$out/obs_sweep.json"
    test -s "$out/trace.json" || { echo "missing merged trace output"; exit 1; }
    grep -q '"traceEvents"' "$out/trace.json" || { echo "trace is not Chrome-trace JSON"; exit 1; }
    echo "== telemetry_report --validate on the emitted record =="
    # Wrap the single bench record as a one-element aggregate and validate
    # both layers of the schema with the repo's own validator.
    printf '{"schema":"rapid-bench-aggregate-v1","records":[%s]}' \
        "$(cat "$out/obs_sweep.json")" > "$out/aggregate.json"
    ./target/release/telemetry_report "$out/aggregate.json" --validate
    echo "== telemetry_report --validate-openmetrics on the dumped snapshot =="
    test -s "$out/metrics.om" || { echo "missing OpenMetrics snapshot"; exit 1; }
    ./target/release/telemetry_report --validate-openmetrics "$out/metrics.om"
    # The observability contracts, straight off the record: burn-rate
    # alerts fired under chaos and overload, never in the fault-free cell.
    grep -q '"clean.slo.deadline.alerts":0' "$out/obs_sweep.json" \
        || { echo "record is missing clean.slo.deadline.alerts == 0"; exit 1; }
    grep -q '"clean.slo.shed.alerts":0' "$out/obs_sweep.json" \
        || { echo "record is missing clean.slo.shed.alerts == 0"; exit 1; }
}

health_gate() {
    echo "== cargo clippy on the health-touched crates (deny warnings) =="
    cargo clippy -p rapid-health -p rapid-sim -p rapid-bench --all-targets -- -D warnings
    echo "== core-health proptests (no flapping, bit-invisible when off, same-seed same-trace) =="
    cargo test --release -p rapid --test health -q
    echo "== health_sweep --smoke --json (hard 120s timeout; detection, quarantine, replay) =="
    cargo build --release -p rapid-bench --bin health_sweep --bin telemetry_report
    local out="target/health-gate"
    rm -rf "$out" && mkdir -p "$out"
    timeout 120 ./target/release/health_sweep --smoke --json "$out/health_sweep.json" \
        | tee "$out/health_sweep.log"
    echo "== telemetry_report --validate on the emitted record =="
    # Wrap the single bench record as a one-element aggregate and validate
    # both layers of the schema with the repo's own validator.
    printf '{"schema":"rapid-bench-aggregate-v1","records":[%s]}' \
        "$(cat "$out/health_sweep.json")" > "$out/aggregate.json"
    ./target/release/telemetry_report "$out/aggregate.json" --validate
    # The health contracts, straight off the record and the transcript:
    # zero silent-wrong deliveries, and quarantine actually happened.
    grep -q '"serve.silent_wrong":0' "$out/health_sweep.json" \
        || { echo "record is missing serve.silent_wrong == 0"; exit 1; }
    grep -q 'silent_wrong=0' "$out/health_sweep.log" \
        || { echo "transcript is missing the silent_wrong=0 hard-assert line"; exit 1; }
    grep -q '"health.quarantines"' "$out/health_sweep.json" \
        || { echo "record is missing the health.quarantines counter"; exit 1; }
}

if [[ "${1:-}" == "--simd" ]]; then
    simd_gate
    echo "SIMD checks passed."
    exit 0
fi

if [[ "${1:-}" == "--serve" ]]; then
    serve_gate
    echo "Serving checks passed."
    exit 0
fi

if [[ "${1:-}" == "--elastic" ]]; then
    elastic_gate
    echo "Elastic checks passed."
    exit 0
fi

if [[ "${1:-}" == "--obs" ]]; then
    obs_gate
    echo "Observability checks passed."
    exit 0
fi

if [[ "${1:-}" == "--health" ]]; then
    health_gate
    echo "Health checks passed."
    exit 0
fi

if [[ "${1:-}" == "--all" ]]; then
    # Run every named gate in a child invocation so one failure cannot
    # stop the rest (this script sets -e); then print a PASS/FAIL table
    # and exit nonzero iff any gate failed.
    gates=(--recovery --telemetry --protection --simd --serve --elastic --obs --health)
    results=()
    failed=0
    for g in "${gates[@]}"; do
        echo ""
        echo "######## gate $g ########"
        if bash "$0" "$g"; then
            results+=("PASS")
        else
            results+=("FAIL")
            failed=1
        fi
    done
    echo ""
    echo "gate summary:"
    for i in "${!gates[@]}"; do
        printf '  %-14s %s\n' "${gates[$i]#--}" "${results[$i]}"
    done
    if [[ "$failed" -ne 0 ]]; then
        echo "One or more gates FAILED."
        exit 1
    fi
    echo "All named gates passed."
    exit 0
fi

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace (quiet) =="
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault_sweep --smoke (hard 120s timeout) =="
timeout 120 ./target/release/fault_sweep --smoke

recovery_gate
telemetry_gate
protection_gate
simd_gate
serve_gate
elastic_gate
obs_gate
health_gate

echo "All checks passed."
