#!/usr/bin/env bash
# Full local gate: release build, tests, lints. Run from the repo root.
#
#   scripts/check.sh              full gate (build, tests, clippy, smokes)
#   scripts/check.sh --recovery   recovery gate only: clippy on the recover
#                                 crate (unwrap/expect denied) + a timed
#                                 recovery_sweep smoke
set -euo pipefail
cd "$(dirname "$0")/.."

recovery_gate() {
    echo "== cargo clippy -p rapid-recover (deny warnings; the crate denies unwrap/expect) =="
    cargo clippy -p rapid-recover --all-targets -- -D warnings
    echo "== recovery_sweep --smoke (hard 120s timeout) =="
    cargo build --release -p rapid-bench --bin recovery_sweep
    timeout 120 ./target/release/recovery_sweep --smoke
}

if [[ "${1:-}" == "--recovery" ]]; then
    recovery_gate
    echo "Recovery checks passed."
    exit 0
fi

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace (quiet) =="
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault_sweep --smoke (hard 120s timeout) =="
timeout 120 ./target/release/fault_sweep --smoke

recovery_gate

echo "All checks passed."
