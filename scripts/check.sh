#!/usr/bin/env bash
# Full local gate: release build, tests, lints. Run from the repo root.
#
#   scripts/check.sh              full gate (build, tests, clippy, smokes)
#   scripts/check.sh --recovery   recovery gate only: clippy on the recover
#                                 crate (unwrap/expect denied) + a timed
#                                 recovery_sweep smoke
#   scripts/check.sh --telemetry  telemetry gate only: clippy on the
#                                 telemetry crate (unwrap/expect denied),
#                                 a timed bench smoke with --json +
#                                 RAPID_TRACE, and schema validation of
#                                 the emitted record via telemetry_report
set -euo pipefail
cd "$(dirname "$0")/.."

recovery_gate() {
    echo "== cargo clippy -p rapid-recover (deny warnings; the crate denies unwrap/expect) =="
    cargo clippy -p rapid-recover --all-targets -- -D warnings
    echo "== recovery_sweep --smoke (hard 120s timeout) =="
    cargo build --release -p rapid-bench --bin recovery_sweep
    timeout 120 ./target/release/recovery_sweep --smoke
}

telemetry_gate() {
    echo "== cargo clippy -p rapid-telemetry (deny warnings; the crate denies unwrap/expect) =="
    cargo clippy -p rapid-telemetry --all-targets -- -D warnings
    echo "== calibration --json + RAPID_TRACE smoke (hard 120s timeout) =="
    cargo build --release -p rapid-bench --bin calibration --bin telemetry_report
    local out="target/telemetry-gate"
    rm -rf "$out" && mkdir -p "$out"
    timeout 120 env RAPID_TRACE="$out/trace.json" \
        ./target/release/calibration --json "$out/calibration.json"
    test -s "$out/trace.json" || { echo "missing trace output"; exit 1; }
    grep -q '"traceEvents"' "$out/trace.json" || { echo "trace is not Chrome-trace JSON"; exit 1; }
    echo "== telemetry_report --validate on the emitted record =="
    # Wrap the single bench record as a one-element aggregate and validate
    # both layers of the schema with the repo's own validator.
    printf '{"schema":"rapid-bench-aggregate-v1","records":[%s]}' \
        "$(cat "$out/calibration.json")" > "$out/aggregate.json"
    ./target/release/telemetry_report "$out/aggregate.json" --validate
}

if [[ "${1:-}" == "--recovery" ]]; then
    recovery_gate
    echo "Recovery checks passed."
    exit 0
fi

if [[ "${1:-}" == "--telemetry" ]]; then
    telemetry_gate
    echo "Telemetry checks passed."
    exit 0
fi

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace (quiet) =="
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault_sweep --smoke (hard 120s timeout) =="
timeout 120 ./target/release/fault_sweep --smoke

recovery_gate
telemetry_gate

echo "All checks passed."
