#!/usr/bin/env bash
# Full local gate: release build, tests, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace (quiet) =="
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault_sweep --smoke (hard 120s timeout) =="
timeout 120 ./target/release/fault_sweep --smoke

echo "All checks passed."
