//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum guarding
//! checkpoint payloads. Table-driven, byte at a time — checkpoints are a
//! few hundred kilobytes at most, so simplicity beats throughput here.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (initial value all-ones, final XOR all-ones — the
/// conventional parameters shared by zlib, PNG and Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0x5Au8; 1024];
        let clean = crc32(&data);
        for (byte, bit) in [(0usize, 0u8), (511, 3), (1023, 7)] {
            data[byte] ^= 1 << bit;
            assert_ne!(crc32(&data), clean, "flip at byte {byte} bit {bit} undetected");
            data[byte] ^= 1 << bit;
        }
        assert_eq!(crc32(&data), clean);
    }
}
