//! Elastic multi-chip training: the data-parallel loop that survives
//! node loss.
//!
//! [`crate::train`] hardens a *single* chip's training against numeric
//! corruption; `rapid_ring::elastic` heals the *collective* when a node
//! crashes, hangs, or straggles. This module ties the two layers into a
//! training loop over a multi-chip data-parallel world:
//!
//! ```text
//!   step:    shard batch over members ─▶ per-node delta (backward SGD)
//!            ─▶ elastic all-reduce (heal / splice / deadline)
//!            ─▶ average over CONTRIBUTORS ─▶ apply to the global model
//!   epoch:   coordinated checkpoint barrier (one generation per epoch)
//!            ─▶ optional rejoin-with-catchup of spliced nodes
//! ```
//!
//! The key invariants:
//!
//! * **world rescaling** — the applied update is the contributor *mean*,
//!   so losing a node rescales gradient averaging to the surviving world
//!   instead of silently shrinking the step;
//! * **barrier checkpoints** — every epoch ends in one coordinated
//!   checkpoint generation; a rejoining node restores the latest
//!   generation, which *is* the live parameters at that barrier, so
//!   catch-up is bit-identical by construction;
//! * **resume** — a loop started over a non-empty store restores the
//!   newest generation and skips the epochs it covers: a node restored
//!   from generation N−1 replays epoch N exactly (same data order, same
//!   ring order) and lands on the uninterrupted run's generation-N
//!   weights bit for bit;
//! * **bounded everything** — detection, healing, and straggler waits are
//!   fixed cycle charges inside the elastic exchange; no path in this
//!   loop can hang.

use crate::checkpoint::{CheckpointError, CheckpointStore, LayerState, TrainState};
use rapid_fault::FaultPlan;
use rapid_refnet::backend::{Backend, Fp32Backend};
use rapid_refnet::data::Dataset;
use rapid_refnet::mlp::{softmax_cross_entropy, Mlp};
use rapid_ring::elastic::{
    elastic_allreduce_instrumented, ElasticConfig, ElasticError, ElasticEvent, Membership,
};
use rapid_telemetry::Telemetry;

/// Configuration of one elastic training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticTrainConfig {
    /// Epochs to run (each ends in a checkpoint barrier).
    pub epochs: usize,
    /// Global batch size, sharded over the current members.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// The elastic collective layer (heartbeats, healing, deadline).
    pub ring: ElasticConfig,
    /// Whether spliced nodes rejoin at the next barrier, catching up from
    /// the just-written checkpoint generation.
    pub rejoin_at_barrier: bool,
}

impl ElasticTrainConfig {
    /// Paper-shaped defaults for a `world`-chip HFP8 run.
    pub fn rapid_training(world: u32) -> Self {
        Self {
            epochs: 8,
            batch: 32,
            lr: 0.05,
            ring: ElasticConfig::rapid_training(world, true),
            rejoin_at_barrier: false,
        }
    }
}

/// What the elastic loop did, alongside the trained model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElasticReport {
    /// Optimization steps taken (one collective exchange each).
    pub steps_run: u64,
    /// Node crashes survived (spliced out, training continued).
    pub crashes_survived: u64,
    /// Node hangs survived.
    pub hangs_survived: u64,
    /// Straggler exchanges waited out within the deadline.
    pub stragglers_retained: u64,
    /// Straggler contributions dropped by the deadline (partial
    /// all-reduce steps).
    pub stragglers_dropped: u64,
    /// Membership splices (ring heals).
    pub splices: u64,
    /// Nodes re-admitted at a barrier with checkpoint catch-up.
    pub rejoins: u64,
    /// Checkpoint barriers taken (one per completed epoch).
    pub barriers: u64,
    /// Epochs skipped because the store already covered them (resume).
    pub epochs_resumed: u64,
    /// Members alive at the end of the run.
    pub final_world: usize,
    /// Membership epoch at the end of the run.
    pub final_epoch: u64,
    /// Modeled cycles of all collective exchanges, including detection,
    /// healing, and straggler waits.
    pub cycles: u64,
    /// Modeled cycles the same exchanges would take fault-free.
    pub ideal_cycles: u64,
    /// Every elastic event across the run, in order — the reproducible
    /// trace the same-seed contract is asserted on.
    pub events: Vec<ElasticEvent>,
}

impl ElasticReport {
    /// Goodput: the fraction of fault-free exchange throughput the run
    /// retained.
    pub fn goodput(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.ideal_cycles as f64 / self.cycles as f64
    }

    /// Accumulates this report into a metrics registry under
    /// `<prefix>.*` — the unified-telemetry form of this struct.
    pub fn record_into(&self, reg: &mut rapid_telemetry::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.steps_run"), self.steps_run);
        reg.add(&format!("{prefix}.crashes_survived"), self.crashes_survived);
        reg.add(&format!("{prefix}.hangs_survived"), self.hangs_survived);
        reg.add(&format!("{prefix}.stragglers_retained"), self.stragglers_retained);
        reg.add(&format!("{prefix}.stragglers_dropped"), self.stragglers_dropped);
        reg.add(&format!("{prefix}.splices"), self.splices);
        reg.add(&format!("{prefix}.rejoins"), self.rejoins);
        reg.add(&format!("{prefix}.barriers"), self.barriers);
        reg.add(&format!("{prefix}.epochs_resumed"), self.epochs_resumed);
        reg.counter_max(&format!("{prefix}.final_world"), self.final_world as u64);
        reg.counter_max(&format!("{prefix}.final_epoch"), self.final_epoch);
        reg.add(&format!("{prefix}.cycles"), self.cycles);
        reg.add(&format!("{prefix}.ideal_cycles"), self.ideal_cycles);
    }
}

/// Why an elastic training run could not finish.
#[derive(Debug)]
pub enum ElasticTrainError {
    /// The collective layer failed (world shrank below the minimum, or
    /// the survivor transport died).
    Ring(ElasticError),
    /// The checkpoint store failed.
    Checkpoint(CheckpointError),
    /// A training step's numerics tripped a guard (this loop does not
    /// absorb numeric faults — wrap the backend with
    /// [`crate::train::train_mlp_resilient`]'s machinery for that).
    Numerics(rapid_numerics::NumericsError),
    /// A construction parameter is out of the supported range.
    InvalidConfig(String),
}

impl std::fmt::Display for ElasticTrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Ring(e) => write!(f, "elastic collective failed: {e}"),
            Self::Checkpoint(e) => write!(f, "checkpoint store failure: {e}"),
            Self::Numerics(e) => write!(f, "training step numerics failure: {e}"),
            Self::InvalidConfig(why) => write!(f, "invalid elastic training config: {why}"),
        }
    }
}

impl std::error::Error for ElasticTrainError {}

impl From<ElasticError> for ElasticTrainError {
    fn from(e: ElasticError) -> Self {
        Self::Ring(e)
    }
}

impl From<CheckpointError> for ElasticTrainError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<rapid_numerics::NumericsError> for ElasticTrainError {
    fn from(e: rapid_numerics::NumericsError) -> Self {
        Self::Numerics(e)
    }
}

/// Flattens the model's parameters (layer weights, then biases, in layer
/// order) into one vector — the unit the collective reduces.
fn flatten(mlp: &Mlp) -> Vec<f32> {
    let mut out = Vec::new();
    for i in 0..mlp.depth() {
        out.extend_from_slice(mlp.weights(i).as_slice());
        out.extend_from_slice(mlp.biases(i));
    }
    out
}

/// Writes a flat parameter vector (the [`flatten`] layout) back into the
/// model.
fn unflatten(mlp: &mut Mlp, flat: &[f32]) {
    let mut at = 0usize;
    for i in 0..mlp.depth() {
        let shape = mlp.weights(i).shape().to_vec();
        let wlen = shape[0] * shape[1];
        let w = flat[at..at + wlen].to_vec();
        at += wlen;
        let blen = mlp.biases(i).len();
        let b = flat[at..at + blen].to_vec();
        at += blen;
        mlp.set_weights(i, rapid_numerics::Tensor::from_vec(shape, w));
        mlp.set_biases(i, b);
    }
}

/// Snapshot of the model as a checkpointable [`TrainState`].
fn state_of(mlp: &Mlp, step: u64) -> TrainState {
    let layers = (0..mlp.depth())
        .map(|i| {
            let w = mlp.weights(i);
            LayerState {
                rows: w.shape()[0] as u64,
                cols: w.shape()[1] as u64,
                w: w.as_slice().to_vec(),
                b: mlp.biases(i).to_vec(),
            }
        })
        .collect();
    TrainState { step, rng_state: 0, scale: 1.0, scaler_good_steps: 0, layers, alphas: Vec::new() }
}

/// Restores a checkpointed [`TrainState`] into the model.
fn restore_state(mlp: &mut Mlp, state: &TrainState) {
    for (i, layer) in state.layers.iter().enumerate() {
        let shape = vec![layer.rows as usize, layer.cols as usize];
        mlp.set_weights(i, rapid_numerics::Tensor::from_vec(shape, layer.w.clone()));
        mlp.set_biases(i, layer.b.clone());
    }
}

/// The contiguous sub-range of `[start, end)` assigned to member index
/// `idx` of `of` members (balanced split, earlier members get the
/// remainder).
fn shard_range(start: usize, end: usize, idx: usize, of: usize) -> (usize, usize) {
    let len = end - start;
    let base = len / of;
    let rem = len % of;
    let lo = start + idx * base + idx.min(rem);
    let hi = lo + base + usize::from(idx < rem);
    (lo, hi)
}

/// Trains `mlp` data-parallel over the `membership`'s world with the
/// elastic collective: each step shards the batch over the current
/// members, computes per-node SGD deltas, all-reduces them through
/// [`elastic_allreduce_instrumented`] (healing crashes and hangs,
/// deadline-bounding stragglers), and applies the contributor mean —
/// gradient averaging rescaled to the surviving world.
///
/// Each epoch ends in a coordinated checkpoint barrier when a store is
/// attached; with [`ElasticTrainConfig::rejoin_at_barrier`] spliced nodes
/// rejoin there, catching up from the just-written generation. A loop
/// started over a non-empty store resumes after the epochs its newest
/// generation covers.
///
/// Returns the final training accuracy — evaluated on the clean FP32
/// path — and the [`ElasticReport`].
///
/// # Errors
///
/// [`ElasticTrainError::Ring`] when the world shrinks below the
/// configured minimum or the survivor transport fails;
/// [`ElasticTrainError::Checkpoint`] on store I/O failure;
/// [`ElasticTrainError::Numerics`] if a step's numerics trip.
#[allow(clippy::too_many_arguments)] // mirrors run_resilient: the hooks are the API
pub fn train_elastic(
    mlp: &mut Mlp,
    backend: &dyn Backend,
    data: &Dataset,
    cfg: &ElasticTrainConfig,
    membership: &mut Membership,
    mut faults: Option<&mut FaultPlan>,
    mut store: Option<&mut CheckpointStore>,
    mut tele: Option<&mut Telemetry>,
) -> Result<(f64, ElasticReport), ElasticTrainError> {
    if cfg.batch == 0 || data.is_empty() {
        return Err(ElasticTrainError::InvalidConfig(
            "batch size and dataset must be non-empty".to_string(),
        ));
    }
    let world = membership.world() as usize;
    let mut report = ElasticReport::default();
    let mut gstep = 0u64;
    let mut start_epoch = 0usize;

    // Resume: a non-empty store means earlier epochs already ran to their
    // barriers. Generation g is the barrier at the end of epoch
    // (epochs_before_store + g) — with a fresh loop per store, epoch g.
    if let Some(st) = store.as_deref_mut() {
        if let Some((gen, state)) = st.load_latest()? {
            restore_state(mlp, &state);
            gstep = state.step;
            start_epoch = (gen + 1) as usize;
            report.epochs_resumed = gen + 1;
        }
    }

    for _epoch in start_epoch..cfg.epochs {
        let mut at = 0usize;
        while at < data.len() {
            let end = (at + cfg.batch).min(data.len());
            let members = membership.members().to_vec();
            if members.is_empty() {
                return Err(ElasticTrainError::Ring(ElasticError::WorldTooSmall {
                    survivors: 0,
                    min: cfg.ring.min_world.max(1),
                }));
            }
            let snapshot = flatten(mlp);
            // Per-node deltas: each member trains its shard of the batch
            // from the shared snapshot. delta = post-step − snapshot =
            // −lr·grad(shard), so averaging deltas over contributors is
            // SGD on the contributor-averaged gradient.
            let mut deltas: Vec<Vec<f32>> = vec![Vec::new(); world];
            for (idx, &node) in members.iter().enumerate() {
                let (lo, hi) = shard_range(at, end, idx, members.len());
                if lo < hi {
                    let (bx, by) = data.batch(lo, hi);
                    let logits = mlp.try_forward(backend, &bx)?;
                    let (_, grad) = softmax_cross_entropy(&logits, by);
                    mlp.try_backward_sgd(backend, &grad, cfg.lr)?;
                }
                let new = flatten(mlp);
                deltas[node as usize] =
                    new.iter().zip(&snapshot).map(|(n, s)| n - s).collect();
                unflatten(mlp, &snapshot);
            }
            // Elastic exchange: heals crashes/hangs, bounds stragglers.
            let out = elastic_allreduce_instrumented(
                &deltas,
                membership,
                &cfg.ring,
                faults.as_deref_mut(),
                tele.as_deref_mut(),
            )?;
            report.steps_run += 1;
            gstep += 1;
            report.crashes_survived += out.health.crashes_detected;
            report.hangs_survived += out.health.hangs_detected;
            report.stragglers_retained += out.health.stragglers_retained;
            report.stragglers_dropped += out.health.stragglers_dropped;
            report.splices += out.health.splices;
            report.cycles += out.health.cycles;
            report.ideal_cycles += out.health.ideal_cycles;
            report.events.extend_from_slice(&out.events);
            // Contributor mean: the world-rescaled update.
            let k = out.contributors.len() as f32;
            let applied: Vec<f32> = snapshot
                .iter()
                .zip(&out.reduced)
                .map(|(s, r)| s + r / k)
                .collect();
            unflatten(mlp, &applied);
            at = end;
        }
        // Coordinated barrier: one checkpoint generation per epoch.
        if let Some(st) = store.as_deref_mut() {
            st.save(&state_of(mlp, gstep))?;
            report.barriers += 1;
        }
        // Rejoin-with-catchup: spliced nodes come back at the barrier,
        // restoring the generation just written — which IS the live
        // parameters, so catch-up is bit-identical by construction.
        if cfg.rejoin_at_barrier {
            for node in 0..membership.world() {
                if !membership.is_member(node) {
                    membership.rejoin(node);
                    report.rejoins += 1;
                }
            }
        }
    }

    report.final_world = membership.members().len();
    report.final_epoch = membership.epoch();
    if let Some(t) = tele {
        report.record_into(&mut t.registry, "recover.elastic");
    }
    Ok((mlp.accuracy(&Fp32Backend, data), report))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_fault::FaultConfig;
    use rapid_refnet::backend::Hfp8Backend;
    use rapid_refnet::data::gaussian_blobs;

    fn world_cfg(world: u32, epochs: usize) -> ElasticTrainConfig {
        ElasticTrainConfig { epochs, ..ElasticTrainConfig::rapid_training(world) }
    }

    fn crash_plan(seed: u64, rate: f64, budget: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            node_crash_rate: rate,
            node_fault_budget: budget,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn fault_free_elastic_training_converges() {
        let data = gaussian_blobs(256, 4, 16, 0.35, 42);
        let mut mlp = Mlp::new(&[16, 32, 4], 1);
        let mut mem = Membership::new(4).unwrap();
        let (acc, report) = train_elastic(
            &mut mlp,
            &Fp32Backend,
            &data,
            &world_cfg(4, 10),
            &mut mem,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(acc > 0.8, "elastic data-parallel training must converge: {acc}");
        assert_eq!(report.crashes_survived, 0);
        assert_eq!(report.final_world, 4);
        assert_eq!(report.final_epoch, 0);
        assert!(report.events.is_empty());
        assert!((report.goodput() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn crash_mid_run_heals_and_training_finishes_on_survivors() {
        let data = gaussian_blobs(256, 4, 16, 0.35, 42);
        let mut clean = Mlp::new(&[16, 32, 4], 1);
        let mut mem = Membership::new(4).unwrap();
        let (acc_clean, _) = train_elastic(
            &mut clean,
            &Hfp8Backend::default(),
            &data,
            &world_cfg(4, 10),
            &mut mem,
            None,
            None,
            None,
        )
        .unwrap();
        let mut mlp = Mlp::new(&[16, 32, 4], 1);
        let mut mem = Membership::new(4).unwrap();
        let mut plan = crash_plan(7, 0.02, 1);
        let (acc, report) = train_elastic(
            &mut mlp,
            &Hfp8Backend::default(),
            &data,
            &world_cfg(4, 10),
            &mut mem,
            Some(&mut plan),
            None,
            None,
        )
        .unwrap();
        assert_eq!(report.crashes_survived, 1, "{report:?}");
        assert_eq!(report.final_world, 3);
        assert_eq!(report.final_epoch, 1);
        assert!(report.goodput() < 1.0, "healing must cost cycles");
        assert!(
            acc >= acc_clean - 0.02,
            "one crash must cost ≤ 2% accuracy: {acc} vs fault-free {acc_clean}"
        );
    }

    #[test]
    fn same_seed_reproduces_identical_weights_and_events() {
        let data = gaussian_blobs(128, 4, 16, 0.35, 43);
        let run = || {
            let mut mlp = Mlp::new(&[16, 24, 4], 2);
            let mut mem = Membership::new(4).unwrap();
            let mut plan = FaultPlan::new(FaultConfig {
                seed: 99,
                node_crash_rate: 0.01,
                node_slow_rate: 0.05,
                node_slow_factor: 1.5,
                ..FaultConfig::default()
            });
            let (acc, report) = train_elastic(
                &mut mlp,
                &Hfp8Backend::default(),
                &data,
                &world_cfg(4, 6),
                &mut mem,
                Some(&mut plan),
                None,
                None,
            )
            .unwrap();
            (flatten(&mlp), acc, report)
        };
        let (w1, a1, r1) = run();
        let (w2, a2, r2) = run();
        assert_eq!(w1, w2, "same seed, bit-identical weights");
        assert!((a1 - a2).abs() < f64::EPSILON);
        assert_eq!(r1.events, r2.events, "same seed, identical event trace");
    }

    #[test]
    fn barrier_checkpoints_resume_bit_identical() {
        let dir = std::env::temp_dir()
            .join(format!("rapid-elastic-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let data = gaussian_blobs(128, 4, 16, 0.35, 44);
        let cfg = world_cfg(4, 5);
        // Uninterrupted run, checkpointing each barrier.
        let mut full = Mlp::new(&[16, 24, 4], 3);
        let mut mem = Membership::new(4).unwrap();
        let mut store = CheckpointStore::open(dir.join("full"), "el", 8).unwrap();
        train_elastic(
            &mut full,
            &Fp32Backend,
            &data,
            &cfg,
            &mut mem,
            None,
            Some(&mut store),
            None,
        )
        .unwrap();
        // Interrupted run: same schedule but only the first 4 epochs —
        // the store now holds generation N-1.
        let mut part = Mlp::new(&[16, 24, 4], 3);
        let mut mem = Membership::new(4).unwrap();
        let mut store2 = CheckpointStore::open(dir.join("part"), "el", 8).unwrap();
        train_elastic(
            &mut part,
            &Fp32Backend,
            &data,
            &ElasticTrainConfig { epochs: 4, ..cfg },
            &mut mem,
            None,
            Some(&mut store2),
            None,
        )
        .unwrap();
        // Catch-up: a fresh node over the interrupted store resumes from
        // generation N-1 and replays the final epoch.
        let mut rejoined = Mlp::new(&[16, 24, 4], 3);
        let mut mem = Membership::new(4).unwrap();
        let mut store3 = CheckpointStore::open(dir.join("part"), "el", 8).unwrap();
        let (_, report) = train_elastic(
            &mut rejoined,
            &Fp32Backend,
            &data,
            &cfg,
            &mut mem,
            None,
            Some(&mut store3),
            None,
        )
        .unwrap();
        assert_eq!(report.epochs_resumed, 4, "{report:?}");
        assert_eq!(
            flatten(&rejoined),
            flatten(&full),
            "catch-up from generation N-1 must be bit-identical at the next barrier"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejoined_nodes_return_at_the_barrier() {
        let data = gaussian_blobs(128, 4, 16, 0.35, 45);
        let dir = std::env::temp_dir()
            .join(format!("rapid-elastic-rejoin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut mlp = Mlp::new(&[16, 24, 4], 4);
        let mut mem = Membership::new(4).unwrap();
        let mut store = CheckpointStore::open(&dir, "el", 4).unwrap();
        let mut plan = crash_plan(13, 0.05, 1);
        let cfg = ElasticTrainConfig { rejoin_at_barrier: true, ..world_cfg(4, 6) };
        let (_, report) = train_elastic(
            &mut mlp,
            &Fp32Backend,
            &data,
            &cfg,
            &mut mem,
            Some(&mut plan),
            Some(&mut store),
            None,
        )
        .unwrap();
        assert_eq!(report.crashes_survived, 1, "{report:?}");
        assert!(report.rejoins >= 1);
        assert_eq!(report.final_world, 4, "the crashed node is back by the end");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_counters_cover_both_layers() {
        let data = gaussian_blobs(64, 4, 16, 0.35, 46);
        let mut mlp = Mlp::new(&[16, 24, 4], 5);
        let mut mem = Membership::new(4).unwrap();
        let mut plan = crash_plan(21, 1.0, 1);
        let mut tele = Telemetry::default();
        let (_, report) = train_elastic(
            &mut mlp,
            &Fp32Backend,
            &data,
            &world_cfg(4, 2),
            &mut mem,
            Some(&mut plan),
            None,
            Some(&mut tele),
        )
        .unwrap();
        assert_eq!(tele.registry.counter("recover.elastic.crashes_survived"), 1);
        assert_eq!(
            tele.registry.counter("recover.elastic.steps_run"),
            report.steps_run
        );
        assert_eq!(
            tele.registry.counter("ring.elastic.exchanges"),
            report.steps_run,
            "every step is one instrumented elastic exchange"
        );
        assert!(tele.registry.counter("ring.elastic.splices") >= 1);
    }

    #[test]
    fn shard_ranges_partition_the_batch() {
        for (len, of) in [(32usize, 4usize), (10, 3), (7, 4), (3, 4)] {
            let mut covered = 0;
            for idx in 0..of {
                let (lo, hi) = shard_range(100, 100 + len, idx, of);
                assert!(lo <= hi && hi <= 100 + len);
                covered += hi - lo;
            }
            assert_eq!(covered, len, "shards must cover the batch exactly");
        }
    }
}
