//! Checksummed, versioned, atomically-written training checkpoints.
//!
//! On-disk format (all integers little-endian):
//!
//! ```text
//! ┌──────────┬─────────┬─────────────┬───────┬──────────────┐
//! │ "RPCK"   │ version │ payload len │ CRC32 │ payload …    │
//! │ 4 bytes  │ u32     │ u64         │ u32   │ len bytes    │
//! └──────────┴─────────┴─────────────┴───────┴──────────────┘
//! ```
//!
//! The payload serializes a [`TrainState`]: step counter, RNG word, loss
//! scaler state, per-layer weights/biases and PACT clipping levels. The
//! CRC32 covers the payload only, so header truncation and payload
//! corruption are distinguishable failures.
//!
//! [`CheckpointStore`] writes generation-numbered files (`prefix.N.ckpt`)
//! through a temporary name plus rename — a crash mid-write leaves a
//! `.tmp` orphan, never a half-written checkpoint under the real name —
//! and [`CheckpointStore::load_latest`] walks generations newest-first,
//! *skipping* any file the checksum or header rejects, so a corrupted
//! newest generation falls back to the one before it.
//!
//! The external `serde` stub in this workspace is a no-op marker (no
//! crates.io access), so the codec is hand-rolled here.

use crate::crc::crc32;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File magic.
const MAGIC: &[u8; 4] = b"RPCK";
/// Current format version.
const VERSION: u32 = 1;
/// Header length: magic + version + payload len + CRC32.
const HEADER_LEN: usize = 4 + 4 + 8 + 4;

/// One dense layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerState {
    /// Weight shape `[rows, cols]`.
    pub rows: u64,
    /// Weight shape `[rows, cols]`.
    pub cols: u64,
    /// Row-major weights, `rows × cols` values.
    pub w: Vec<f32>,
    /// Bias vector, `cols` values.
    pub b: Vec<f32>,
}

/// Everything a resilient training loop needs to resume: model
/// parameters, optimizer (loss scaler) state, RNG word and step counter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainState {
    /// Global step the checkpoint was taken at.
    pub step: u64,
    /// RNG state word (the trainers' schedules are deterministic in the
    /// step counter; this carries any auxiliary stream's seed).
    pub rng_state: u64,
    /// Loss scaler scale.
    pub scale: f32,
    /// Loss scaler clean-step counter.
    pub scaler_good_steps: u32,
    /// Per-layer parameters.
    pub layers: Vec<LayerState>,
    /// PACT clipping levels (empty for models without quantizers).
    pub alphas: Vec<f32>,
}

/// Why a checkpoint could not be read or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a checkpoint (bad magic) or an unknown version.
    BadHeader(String),
    /// The file ends before the header's payload length.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload does not match its checksum.
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        stored: u32,
        /// CRC32 of the payload as read.
        computed: u32,
    },
    /// The payload decoded inconsistently (counts disagree with lengths).
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::BadHeader(why) => write!(f, "bad checkpoint header: {why}"),
            Self::Truncated { expected, actual } => {
                write!(f, "truncated checkpoint: {actual} of {expected} payload bytes")
            }
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::Malformed(why) => write!(f, "malformed checkpoint payload: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

// ---- payload codec ----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            CheckpointError::Malformed("length overflow".to_string())
        })?;
        if end > self.buf.len() {
            return Err(CheckpointError::Malformed(format!(
                "payload ends at byte {} but field needs {}..{}",
                self.buf.len(),
                self.pos,
                end
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f32_vec(&mut self, n: u64) -> Result<Vec<f32>, CheckpointError> {
        let n = usize::try_from(n)
            .map_err(|_| CheckpointError::Malformed("vector length overflows usize".to_string()))?;
        // Bound by the remaining bytes before allocating.
        if n.checked_mul(4).is_none_or(|bytes| self.pos + bytes > self.buf.len()) {
            return Err(CheckpointError::Malformed(format!(
                "vector of {n} floats exceeds remaining payload"
            )));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }
}

/// Serializes a [`TrainState`] into a complete checkpoint file image
/// (header + checksummed payload).
pub fn encode(state: &TrainState) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, state.step);
    put_u64(&mut payload, state.rng_state);
    put_f32(&mut payload, state.scale);
    put_u32(&mut payload, state.scaler_good_steps);
    put_u32(&mut payload, state.layers.len() as u32);
    for layer in &state.layers {
        put_u64(&mut payload, layer.rows);
        put_u64(&mut payload, layer.cols);
        for &w in &layer.w {
            put_f32(&mut payload, w);
        }
        put_u64(&mut payload, layer.b.len() as u64);
        for &b in &layer.b {
            put_f32(&mut payload, b);
        }
    }
    put_u32(&mut payload, state.alphas.len() as u32);
    for &a in &state.alphas {
        put_f32(&mut payload, a);
    }

    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(MAGIC);
    put_u32(&mut file, VERSION);
    put_u64(&mut file, payload.len() as u64);
    put_u32(&mut file, crc32(&payload));
    file.extend_from_slice(&payload);
    file
}

/// Decodes a checkpoint file image, verifying magic, version, length and
/// checksum before touching the payload.
///
/// # Errors
///
/// Every malformation maps to a distinct [`CheckpointError`]; none panic.
pub fn decode(bytes: &[u8]) -> Result<TrainState, CheckpointError> {
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::BadHeader(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadHeader("magic is not RPCK".to_string()));
    }
    let mut hdr = Reader::new(&bytes[4..HEADER_LEN]);
    let version = hdr.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadHeader(format!(
            "version {version} (this build reads {VERSION})"
        )));
    }
    let payload_len = hdr.u64()?;
    let stored_crc = hdr.u32()?;
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if actual < payload_len {
        return Err(CheckpointError::Truncated { expected: payload_len, actual });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(CheckpointError::ChecksumMismatch { stored: stored_crc, computed });
    }

    let mut r = Reader::new(payload);
    let step = r.u64()?;
    let rng_state = r.u64()?;
    let scale = r.f32()?;
    let scaler_good_steps = r.u32()?;
    let n_layers = r.u32()?;
    let mut layers = Vec::new();
    for _ in 0..n_layers {
        let rows = r.u64()?;
        let cols = r.u64()?;
        let elems = rows.checked_mul(cols).ok_or_else(|| {
            CheckpointError::Malformed("weight shape overflows".to_string())
        })?;
        let w = r.f32_vec(elems)?;
        let blen = r.u64()?;
        let b = r.f32_vec(blen)?;
        layers.push(LayerState { rows, cols, w, b });
    }
    let n_alphas = r.u32()?;
    let alphas = r.f32_vec(u64::from(n_alphas))?;
    Ok(TrainState { step, rng_state, scale, scaler_good_steps, layers, alphas })
}

// ---- generation store --------------------------------------------------

/// A directory of generation-numbered checkpoints with atomic writes and
/// bounded retention.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    prefix: String,
    keep: usize,
    next_gen: u64,
    corrupt_skipped: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store under `dir` writing
    /// `prefix.N.ckpt` files and retaining the newest `keep` generations.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures.
    pub fn open(
        dir: impl AsRef<Path>,
        prefix: &str,
        keep: usize,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut store = Self {
            dir,
            prefix: prefix.to_string(),
            keep: keep.max(1),
            next_gen: 0,
            corrupt_skipped: 0,
        };
        if let Some(max) = store.generations()?.last() {
            store.next_gen = max + 1;
        }
        Ok(store)
    }

    /// Existing generation numbers, ascending.
    fn generations(&self) -> Result<Vec<u64>, CheckpointError> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&format!("{}.", self.prefix)) else {
                continue;
            };
            let Some(num) = rest.strip_suffix(".ckpt") else { continue };
            if let Ok(gen) = num.parse::<u64>() {
                gens.push(gen);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    fn path_for(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("{}.{gen}.ckpt", self.prefix))
    }

    /// Corrupt/truncated generations skipped by loads so far.
    pub fn corrupt_skipped(&self) -> u64 {
        self.corrupt_skipped
    }

    /// Writes `state` as the next generation: encode, write to a `.tmp`
    /// sibling, flush, then rename into place so the real name only ever
    /// points at a complete file. Prunes generations beyond the retention
    /// limit. Returns the generation number written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the store's generation counter is
    /// only advanced on success.
    pub fn save(&mut self, state: &TrainState) -> Result<u64, CheckpointError> {
        let gen = self.next_gen;
        let bytes = encode(state);
        let tmp = self.dir.join(format!("{}.{gen}.tmp", self.prefix));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path_for(gen))?;
        self.next_gen = gen + 1;
        // Retention: drop the oldest generations beyond `keep`.
        let gens = self.generations()?;
        if gens.len() > self.keep {
            for &old in &gens[..gens.len() - self.keep] {
                let _ = fs::remove_file(self.path_for(old));
            }
        }
        Ok(gen)
    }

    /// Loads the newest generation that passes validation, skipping (and
    /// counting) corrupted or truncated ones. `Ok(None)` when no valid
    /// checkpoint exists.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures only; per-file corruption is a
    /// skip, not an error.
    pub fn load_latest(&mut self) -> Result<Option<(u64, TrainState)>, CheckpointError> {
        let gens = self.generations()?;
        for &gen in gens.iter().rev() {
            match fs::read(self.path_for(gen)) {
                Ok(bytes) => match decode(&bytes) {
                    Ok(state) => return Ok(Some((gen, state))),
                    Err(_) => self.corrupt_skipped += 1,
                },
                Err(_) => self.corrupt_skipped += 1,
            }
        }
        Ok(None)
    }
}

/// Reads one checkpoint file directly (no store).
///
/// # Errors
///
/// Propagates I/O failures and every validation failure of
/// [`decode`].
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<TrainState, CheckpointError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_state(step: u64) -> TrainState {
        TrainState {
            step,
            rng_state: 0xDEAD_BEEF,
            scale: 512.0,
            scaler_good_steps: 17,
            layers: vec![
                LayerState {
                    rows: 2,
                    cols: 3,
                    w: vec![0.5, -1.25, 3.0, 0.0, f32::MIN_POSITIVE, -0.125],
                    b: vec![0.1, 0.2, 0.3],
                },
                LayerState { rows: 3, cols: 1, w: vec![1.0, 2.0, 3.0], b: vec![-0.5] },
            ],
            alphas: vec![4.0],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rapid-recover-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn codec_round_trips() {
        let state = sample_state(42);
        let decoded = decode(&encode(&state)).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let state = sample_state(7);
        let clean = encode(&state);
        // Flip one byte at a sample of positions across header and
        // payload; every flip must be rejected, never mis-decoded.
        for pos in (0..clean.len()).step_by(7) {
            let mut dirty = clean.clone();
            dirty[pos] ^= 0x10;
            assert!(decode(&dirty).is_err(), "flip at byte {pos} accepted");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let clean = encode(&sample_state(7));
        for keep in [0, 3, HEADER_LEN - 1, HEADER_LEN, clean.len() - 1] {
            assert!(decode(&clean[..keep]).is_err(), "truncation to {keep} accepted");
        }
    }

    #[test]
    fn store_saves_loads_and_prunes() {
        let dir = temp_dir("store");
        let mut store = CheckpointStore::open(&dir, "train", 3).unwrap();
        for step in 0..5 {
            store.save(&sample_state(step)).unwrap();
        }
        let (gen, state) = store.load_latest().unwrap().unwrap();
        assert_eq!(gen, 4);
        assert_eq!(state.step, 4);
        // Retention: only the newest 3 remain.
        assert_eq!(store.generations().unwrap(), vec![2, 3, 4]);
        // Reopen resumes the generation counter past the survivors.
        let mut reopened = CheckpointStore::open(&dir, "train", 3).unwrap();
        assert_eq!(reopened.save(&sample_state(5)).unwrap(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_newest_falls_back_to_previous_generation() {
        let dir = temp_dir("fallback");
        let mut store = CheckpointStore::open(&dir, "train", 4).unwrap();
        store.save(&sample_state(1)).unwrap();
        store.save(&sample_state(2)).unwrap();
        // Flip a payload byte in the newest file.
        let newest = dir.join("train.1.ckpt");
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let (gen, state) = store.load_latest().unwrap().unwrap();
        assert_eq!(gen, 0, "must fall back past the corrupted generation");
        assert_eq!(state.step, 1);
        assert_eq!(store.corrupt_skipped(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_loads_none() {
        let dir = temp_dir("empty");
        let mut store = CheckpointStore::open(&dir, "train", 2).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
