//! The HFP8 training backend with fault injection and a configurable
//! guard policy — the backend the resilient training loops drive.
//!
//! Under [`GuardPolicy::Saturate`] every corrupted accumulator is clamped
//! and counted (the run continues, `guard_clamps` reports the damage);
//! under [`GuardPolicy::Error`] the first corruption surfaces as a
//! [`NumericsError`] for the recovery loop to catch — skip the step, back
//! off the loss scale, roll back if it keeps happening.

use rapid_fault::{FaultConfig, FaultCounts, FaultPlan};
use rapid_numerics::abft::{abft_matmul_emulated, AbftReport};
use rapid_numerics::fma::FmaMode;
use rapid_numerics::gemm::{matmul_emulated_guarded, GemmStats};
use rapid_numerics::{GuardPolicy, NumericsError, Tensor};
use rapid_refnet::backend::{Backend, OperandRole};
use rapid_telemetry::MetricsRegistry;
use std::cell::RefCell;

/// The registry prefix this backend's GEMM statistics accumulate under.
pub const BACKEND_METRIC_PREFIX: &str = "recover.gemm";

/// The registry prefix ABFT reports accumulate under when
/// [`Protection::Abft`] is active.
pub const ABFT_METRIC_PREFIX: &str = "recover.abft";

/// How a backend protects its datapath against injected faults.
///
/// The resilient training loop composes with all three: `None` relies
/// purely on guards + skip/rollback, `Redundancy(r)` votes `r` executions
/// elementwise (PR 3's brute-force baseline, a `r`× compute tax), and
/// `Abft` runs every GEMM through the Huang–Abraham checksum scheme which
/// detects and repairs faulty elements at O(m+n) extra work per product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No datapath protection beyond the numeric guards.
    None,
    /// Execute each step `r` times and vote elementwise (r ≥ 1).
    Redundancy(u32),
    /// Checksum-protected GEMMs: detect + correct in the kernel itself.
    Abft,
}

impl Protection {
    /// How many redundant executions the training loop should run: 1 for
    /// every mode except `Redundancy(r)`.
    pub fn redundancy(&self) -> u32 {
        match self {
            Protection::Redundancy(r) => (*r).max(1),
            _ => 1,
        }
    }

    /// Whether GEMMs run under ABFT checksums.
    pub fn abft(&self) -> bool {
        matches!(self, Protection::Abft)
    }
}

/// HFP8 backend with a seeded fault plan spliced into every GEMM and a
/// configurable guard policy. The `Backend` trait takes `&self`, so the
/// plan (which must mutate its RNG and trace) and the metrics registry
/// live in `RefCell`s; training is single-threaded per backend instance.
///
/// Statistics accumulate into a [`MetricsRegistry`] (the unified telemetry
/// store); [`GuardedHfp8Backend::stats`] reconstructs the legacy
/// [`GemmStats`] as a thin view over its counters.
#[derive(Debug)]
pub struct GuardedHfp8Backend {
    chunk_len: usize,
    policy: GuardPolicy,
    protection: Protection,
    plan: RefCell<FaultPlan>,
    metrics: RefCell<MetricsRegistry>,
}

impl GuardedHfp8Backend {
    /// Creates a backend injecting per `cfg` and guarding per `policy`,
    /// with the default MPE chunk length of 64.
    pub fn new(cfg: FaultConfig, policy: GuardPolicy) -> Self {
        Self {
            chunk_len: 64,
            policy,
            protection: Protection::None,
            plan: RefCell::new(FaultPlan::new(cfg)),
            metrics: RefCell::new(MetricsRegistry::new()),
        }
    }

    /// Selects the datapath protection mode (default [`Protection::None`]).
    /// Under [`Protection::Abft`] every GEMM runs the checksum-protected
    /// kernel: faults are repaired inside the call and the guard policy
    /// only sees what ABFT could not express (shape errors).
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// The datapath protection mode in force.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Overrides the accumulation chunk length.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    pub fn with_chunk_len(mut self, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        self.chunk_len = chunk_len;
        self
    }

    /// The guard policy in force.
    pub fn policy(&self) -> GuardPolicy {
        self.policy
    }

    /// Injection totals so far.
    pub fn counts(&self) -> FaultCounts {
        self.plan.borrow().counts()
    }

    /// GEMM statistics accumulated across every call — `guard_clamps`
    /// counts the accumulators [`GuardPolicy::Saturate`] clamped. A thin
    /// view reconstructed from the backing metrics registry.
    pub fn stats(&self) -> GemmStats {
        GemmStats::from_registry(&self.metrics.borrow(), BACKEND_METRIC_PREFIX)
    }

    /// Snapshot of the backing metrics registry (GEMM counters under
    /// [`BACKEND_METRIC_PREFIX`], plus `recover.gemm.calls`).
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.borrow().clone()
    }

    /// Drains this backend's metrics into an external registry (e.g. a
    /// bench harness `Telemetry` bundle) and resets the local one.
    pub fn drain_metrics_into(&self, reg: &mut MetricsRegistry) {
        let mut mine = self.metrics.borrow_mut();
        reg.merge(&mine);
        *mine = MetricsRegistry::new();
    }

    /// Accumulated ABFT observations (zero unless [`Protection::Abft`]).
    pub fn abft_report(&self) -> AbftReport {
        AbftReport::from_registry(&self.metrics.borrow(), ABFT_METRIC_PREFIX)
    }

    fn guarded(&self, mode: FmaMode, a: &Tensor, b: &Tensor) -> Result<Tensor, NumericsError> {
        let mut plan = self.plan.borrow_mut();
        let (c, stats) = if self.protection.abft() {
            let (c, stats, report) =
                abft_matmul_emulated(mode, a, b, self.chunk_len, Some(&mut plan))?;
            let mut reg = self.metrics.borrow_mut();
            report.record_into(&mut reg, ABFT_METRIC_PREFIX);
            (c, stats)
        } else {
            matmul_emulated_guarded(mode, a, b, self.chunk_len, self.policy, Some(&mut plan))?
        };
        let mut reg = self.metrics.borrow_mut();
        stats.record_into(&mut reg, BACKEND_METRIC_PREFIX);
        reg.incr("recover.gemm.calls");
        Ok(c)
    }
}

impl Backend for GuardedHfp8Backend {
    fn try_matmul(
        &self,
        a: &Tensor,
        b: &Tensor,
        roles: (OperandRole, OperandRole),
    ) -> Result<Tensor, NumericsError> {
        use OperandRole::{Data, Error};
        match roles {
            (Data, Data) => self.guarded(FmaMode::hfp8_fwd_default(), a, b),
            (Data, Error) | (Error, Error) => self.guarded(FmaMode::hfp8_bwd_default(), a, b),
            // Same transpose identity as the clean Hfp8Backend: the
            // pipeline takes (1,4,3) on port A, so C = A×B = (BᵀAᵀ)ᵀ.
            (Error, Data) => {
                if a.shape().len() != 2 || b.shape().len() != 2 {
                    return Err(NumericsError::ShapeMismatch {
                        expected: "rank-2 operands".to_string(),
                        actual: format!("a {:?} × b {:?}", a.shape(), b.shape()),
                    });
                }
                self.guarded(FmaMode::hfp8_bwd_default(), &b.transposed(), &a.transposed())
                    .map(|c| c.transposed())
            }
        }
    }

    fn name(&self) -> &'static str {
        "hfp8+guarded"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_numerics::gemm::matmul_f32;

    fn mats() -> (Tensor, Tensor) {
        (
            Tensor::random_uniform(vec![4, 8], -1.0, 1.0, 31),
            Tensor::random_uniform(vec![8, 4], -1.0, 1.0, 32),
        )
    }

    #[test]
    fn clean_plan_tracks_reference() {
        let (a, b) = mats();
        let be = GuardedHfp8Backend::new(FaultConfig::default(), GuardPolicy::Error);
        let exact = matmul_f32(&a, &b);
        for roles in [
            (OperandRole::Data, OperandRole::Data),
            (OperandRole::Data, OperandRole::Error),
            (OperandRole::Error, OperandRole::Data),
        ] {
            let r = be.try_matmul(&a, &b, roles).unwrap();
            assert!(r.max_rel_diff(&exact) < 0.15, "{roles:?}");
        }
        assert!(be.stats().macs > 0);
        assert_eq!(be.stats().guard_clamps, 0);
    }

    #[test]
    fn error_policy_eventually_trips_and_saturate_counts() {
        let (a, b) = mats();
        let cfg = FaultConfig { seed: 9, mac_acc_rate: 0.05, ..FaultConfig::default() };
        let error_be = GuardedHfp8Backend::new(cfg, GuardPolicy::Error);
        let sat_be = GuardedHfp8Backend::new(cfg, GuardPolicy::Saturate);
        let mut tripped = false;
        for _ in 0..32 {
            let r = error_be.try_matmul(&a, &b, (OperandRole::Data, OperandRole::Data));
            let _ = sat_be.try_matmul(&a, &b, (OperandRole::Data, OperandRole::Data)).unwrap();
            if matches!(r, Err(NumericsError::NonFinite { .. })) {
                tripped = true;
            }
        }
        assert!(tripped, "5% accumulator flips should trip the Error guard");
        assert!(
            sat_be.stats().guard_clamps > 0,
            "Saturate must count what it clamps: {:?}",
            sat_be.stats()
        );
        assert!(sat_be.counts().mac_acc_flips > 0);
    }

    #[test]
    fn abft_protection_absorbs_faults_the_error_guard_would_trip_on() {
        use rapid_numerics::abft::fp_tolerance_factor;
        use rapid_numerics::gemm::matmul_emulated;

        let (a, b) = mats();
        let cfg = FaultConfig { seed: 9, mac_acc_rate: 0.05, ..FaultConfig::default() };
        let be = GuardedHfp8Backend::new(cfg, GuardPolicy::Error)
            .with_protection(Protection::Abft);
        let mode = FmaMode::hfp8_fwd_default();
        let (clean, _) = matmul_emulated(mode, &a, &b, 64);
        // The FP contract: after ABFT every element is bit-exact clean or
        // within the checksum detector's rounding envelope of it —
        // anything larger was flagged and repaired. Non-finites and
        // exponent upsets can never survive.
        let (fa, fb) = mode.operand_formats();
        let (k, n) = (a.shape()[1], b.shape()[1]);
        let qa: Vec<f64> =
            a.as_slice().iter().map(|&x| f64::from(fa.quantize(x).abs())).collect();
        let qb: Vec<f64> =
            b.as_slice().iter().map(|&x| f64::from(fb.quantize(x).abs())).collect();
        let tol = fp_tolerance_factor(k, 64);
        for _ in 0..32 {
            let r = be
                .try_matmul(&a, &b, (OperandRole::Data, OperandRole::Data))
                .expect("ABFT must repair instead of trip");
            for (i, (row_got, row_clean)) in
                r.as_slice().chunks(n).zip(clean.as_slice().chunks(n)).enumerate()
            {
                let envelope: f64 =
                    (0..k).map(|p| qa[i * k + p] * (0..n).map(|j| qb[p * n + j]).sum::<f64>()).sum();
                for (&got, &want) in row_got.iter().zip(row_clean) {
                    assert!(got.is_finite());
                    // 2× the detector tolerance: a surviving fault can hide
                    // behind up to one tolerance of legitimate rounding
                    // residual on top of its own sub-tolerance magnitude.
                    assert!(
                        got.to_bits() == want.to_bits()
                            || f64::from((got - want).abs()) <= 2.0 * tol * envelope,
                        "row {i}: got {got}, clean {want}, envelope {envelope}"
                    );
                }
            }
        }
        let rep = be.abft_report();
        assert!(rep.corrections > 0, "5% flip rate must exercise repair: {rep:?}");
        // Analytical cap: checksums cost 2(mk+kn+mn) MACs per call and the
        // union repair recomputes at most every output cell (one extra base).
        // The 4×8×4 test matrices are tiny, so the checksum share dominates;
        // real layer shapes amortise to ~1.0x (see the protection sweep).
        let m = a.shape()[0];
        let cap = 2.0 + 2.0 * ((m * k + k * n + m * n) as f64) / ((m * k * n) as f64);
        assert!(rep.overhead_ratio() <= cap, "{} > {cap}", rep.overhead_ratio());
        assert!(be.metrics().counter("recover.abft.corrections") > 0);
    }

    #[test]
    fn protection_modes_report_their_cost_shape() {
        assert_eq!(Protection::None.redundancy(), 1);
        assert_eq!(Protection::Redundancy(3).redundancy(), 3);
        assert_eq!(Protection::Redundancy(0).redundancy(), 1, "clamped to ≥1");
        assert_eq!(Protection::Abft.redundancy(), 1);
        assert!(Protection::Abft.abft());
        assert!(!Protection::Redundancy(3).abft());
        let be = GuardedHfp8Backend::new(FaultConfig::default(), GuardPolicy::Error);
        assert_eq!(be.protection(), Protection::None);
    }
}
