//! Dynamic loss scaling for the HFP8 error path.
//!
//! The FP8 (1,5,2) error format underflows small gradients; multiplying
//! the loss gradient by a scale `S` (and dividing the weight update by
//! `S`) keeps them representable. Too large an `S` overflows instead, so
//! the scale adapts: it backs off multiplicatively whenever a step trips a
//! numerics guard and grows again after a window of clean steps — the
//! standard mixed-precision recipe, driven here by the guards the fault
//! injectors exercise.

/// Adaptive loss scale with grow/backoff dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicLossScaler {
    scale: f32,
    growth: f32,
    backoff: f32,
    growth_interval: u32,
    good_steps: u32,
    min_scale: f32,
    max_scale: f32,
}

impl Default for DynamicLossScaler {
    /// Defaults sized for the reference trainer's small models: start at
    /// `2^8`, double after 64 clean steps, halve on every failure, stay
    /// within `[1, 2^16]`.
    fn default() -> Self {
        Self::new(256.0)
    }
}

impl DynamicLossScaler {
    /// Creates a scaler starting at `initial_scale`, clamped into the
    /// documented `[1, 65536]` range — the floor of 1 is an invariant from
    /// construction on, not just an `on_overflow` stop: a sub-1 initial
    /// scale would otherwise sit below the floor until the first back-off.
    ///
    /// # Panics
    ///
    /// Panics if `initial_scale` is not positive and finite.
    pub fn new(initial_scale: f32) -> Self {
        assert!(
            initial_scale.is_finite() && initial_scale > 0.0,
            "loss scale must be positive"
        );
        let (min_scale, max_scale) = (1.0, 65_536.0);
        Self {
            scale: initial_scale.clamp(min_scale, max_scale),
            growth: 2.0,
            backoff: 0.5,
            growth_interval: 64,
            good_steps: 0,
            min_scale,
            max_scale,
        }
    }

    /// The current scale to multiply into the loss gradient.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Clean steps since the last scale change.
    pub fn good_steps(&self) -> u32 {
        self.good_steps
    }

    /// Records a successful step; grows the scale after
    /// `growth_interval` consecutive clean steps.
    pub fn on_success(&mut self) {
        self.good_steps += 1;
        if self.good_steps >= self.growth_interval {
            self.scale = (self.scale * self.growth).min(self.max_scale);
            self.good_steps = 0;
        }
    }

    /// Records an overflow/non-finite step: the scale backs off
    /// immediately and the growth window restarts.
    pub fn on_overflow(&mut self) {
        self.scale = (self.scale * self.backoff).max(self.min_scale);
        self.good_steps = 0;
    }

    /// Serializable state: `(scale, good_steps)`.
    pub fn state(&self) -> (f32, u32) {
        (self.scale, self.good_steps)
    }

    /// Restores state captured by [`DynamicLossScaler::state`] —
    /// non-finite or non-positive scales are clamped into the valid range
    /// rather than trusted (the checkpoint checksum already vouches for
    /// integrity; this guards against semantic drift between versions).
    pub fn restore(&mut self, scale: f32, good_steps: u32) {
        self.scale = if scale.is_finite() && scale > 0.0 {
            scale.clamp(self.min_scale, self.max_scale)
        } else {
            self.min_scale
        };
        self.good_steps = good_steps;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn grows_after_clean_window_and_backs_off_on_overflow() {
        let mut s = DynamicLossScaler::new(256.0);
        for _ in 0..64 {
            s.on_success();
        }
        assert_eq!(s.scale(), 512.0);
        s.on_overflow();
        assert_eq!(s.scale(), 256.0);
        assert_eq!(s.good_steps(), 0);
    }

    #[test]
    fn scale_stays_bounded() {
        let mut s = DynamicLossScaler::new(1.5);
        for _ in 0..100 {
            s.on_overflow();
        }
        assert_eq!(s.scale(), 1.0, "floor holds");
        for _ in 0..64 * 40 {
            s.on_success();
        }
        assert_eq!(s.scale(), 65_536.0, "ceiling holds");
    }

    #[test]
    fn floor_holds_at_the_boundary_from_construction() {
        // Regression: a sub-1 initial scale used to sit below the
        // documented floor of 1 until the first back-off. The floor must
        // hold from construction and under any number of consecutive
        // guard trips — including the boundary case of starting exactly
        // at the floor.
        let mut s = DynamicLossScaler::new(0.5);
        assert_eq!(s.scale(), 1.0, "construction clamps to the floor");
        for trips in 1..=200 {
            s.on_overflow();
            assert!(s.scale() >= 1.0, "floor violated after {trips} consecutive trips");
        }
        assert_eq!(s.scale(), 1.0);
        // Starting just above the floor: one trip lands exactly on it,
        // never below.
        let mut t = DynamicLossScaler::new(1.0 + f32::EPSILON);
        t.on_overflow();
        assert_eq!(t.scale(), 1.0);
        t.on_overflow();
        assert_eq!(t.scale(), 1.0);
    }

    #[test]
    fn state_round_trips_and_sanitizes() {
        let mut s = DynamicLossScaler::new(256.0);
        s.on_success();
        let (scale, good) = s.state();
        let mut t = DynamicLossScaler::default();
        t.restore(scale, good);
        assert_eq!(t.state(), (256.0, 1));
        t.restore(f32::NAN, 3);
        assert_eq!(t.scale(), 1.0, "corrupt scale clamps to floor");
    }

    #[test]
    #[should_panic(expected = "loss scale must be positive")]
    fn rejects_nonpositive_initial_scale() {
        let _ = DynamicLossScaler::new(0.0);
    }
}
