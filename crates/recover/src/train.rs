//! Resilient training loops: skip / back-off / roll-back instead of abort.
//!
//! The state machine each step runs through:
//!
//! ```text
//!                ┌────────────────────────────────────────────────┐
//!                ▼                                                │
//!          ┌───────────┐ replicas ┌────────────┐ pass ┌─────────┐ │
//!   batch ─▶ snapshot,  ├─────────▶ vote, then ├──────▶ apply,  ├─┤
//!          │ attempt ×R │  agree   │ anomaly +  │      │ scaler  │ │
//!          └─────┬─────┘          │ clip gate  │      │ .grow?, │ │
//!                │ majority       └─────┬──────┘      │ every   │ │
//!                │ tripped              │ fail        │ Nth ckpt│ │
//!                ▼                      ▼             └─────────┘ │
//!          ┌──────────────┐   < K consecutive                    │
//!          │ restore      ├──── skip batch ──────────────────────┤
//!          │ snapshot,    │                                      │
//!          │ scale backs  │   ≥ K consecutive guard trips        │
//!          │ off          ├──── roll back to last good ──────────┘
//!          └──────────────┘     checkpoint
//! ```
//!
//! Every attempt snapshots the parameters first because the backward pass
//! applies SGD inline per layer — a mid-backward guard trip leaves the
//! model partially updated, and the snapshot undoes that. The guards only
//! see *non-finite* accumulators, so each applied update is defended in
//! depth against silent (finite) corruption: redundant executions vote
//! coordinate-wise ([`ResilientConfig::redundancy`]), the update-anomaly
//! check rejects steps whose magnitude no honest step reaches
//! ([`ResilientConfig::anomaly_factor`]), and the per-element clip bound
//! caps whatever slips through ([`ResilientConfig::clip_factor`]). `K`
//! consecutive guard trips mean skipping isn't working (the fault burst
//! outlasts single batches), so the run restores the last good checkpoint
//! — from the persistent [`CheckpointStore`] when one is attached
//! (corrupted newest generations fall back automatically), else from the
//! in-memory copy — and continues the schedule from the current batch.
//!
//! Final accuracy is evaluated on the clean FP32 reference path: the
//! faulty backend is a training-time hazard model, not an eval harness.

use crate::checkpoint::{CheckpointError, CheckpointStore, LayerState, TrainState};
use crate::scaler::DynamicLossScaler;
use rapid_numerics::{NumericsError, Tensor};
use rapid_refnet::backend::{Backend, Fp32Backend};
use rapid_refnet::data::Dataset;
use rapid_refnet::mlp::{softmax_cross_entropy, Mlp, TrainConfig};
use rapid_refnet::qat::{QatConfig, QatMlp};

/// Recovery-loop policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientConfig {
    /// Consecutive failed steps before rolling back to the last good
    /// checkpoint.
    pub rollback_after: u32,
    /// Successful steps between checkpoints (in-memory always; persisted
    /// too when a store is attached).
    pub checkpoint_every: u64,
    /// Initial dynamic loss scale.
    pub initial_scale: f32,
    /// Total skipped-step budget before the run gives up — the guard
    /// against a fault rate above what skip/rollback can absorb.
    pub max_skipped_steps: u64,
    /// Update-anomaly rejection threshold: an applied step whose largest
    /// parameter change exceeds this factor times the running average is
    /// rejected as silently corrupted. Bit flips that saturate an
    /// accumulator to a huge *finite* value pass the non-finite guard but
    /// land updates orders of magnitude above honest SGD steps; this is
    /// the end-to-end check that catches them. The factor is deliberately
    /// loose — sparse flips that only nudge an accumulator are ordinary
    /// SGD noise (the saturating fault sweeps converge through them) and
    /// rejecting those starves training. Set to `f64::INFINITY` to
    /// disable.
    pub anomaly_factor: f64,
    /// Per-element update clamp: every parameter delta in an applied step
    /// is clipped to this factor times the running honest magnitude.
    /// Guards only see *non-finite* accumulators; a flip that saturates a
    /// chunk to a large finite value sails through and, applied raw,
    /// compounds — the damaged weights enlarge the next step's activations
    /// and gradients, which saturate more chunks (measured: unclipped
    /// saturating runs drift to per-step deltas of ~1e7 and their
    /// clean-path accuracy *decays* with more epochs). Clipping keeps the
    /// honest components of a corrupted update while bounding each damaged
    /// element to SGD-noise scale. Set to `f64::INFINITY` to disable.
    pub clip_factor: f64,
    /// Redundant executions per step — modular redundancy, the classic
    /// accelerator hardening move, applied at step granularity. Injected
    /// damage is *sparse per replica* (a flip corrupts the coordinates fed
    /// by its accumulation chunk) and replicas draw independent faults, so
    /// the elementwise median across three executions recovers the honest
    /// update at every coordinate corrupted in at most one replica —
    /// magnitude thresholds cannot do this, because honest-large and
    /// corrupt-medium updates overlap. At `2` the two executions must
    /// agree within [`ResilientConfig::verify_ratio`] or the step is
    /// skipped; at `1` single executions are trusted (guard trips and the
    /// anomaly check are then the only corruption detectors).
    pub redundancy: u32,
    /// Agreement tolerance for two-way redundancy: the pair applies when
    /// its largest disagreement is at most this fraction of the smaller
    /// replica's own update magnitude.
    pub verify_ratio: f64,
}

/// Applied steps observed before the anomaly check engages — the running
/// average needs a few honest magnitudes before its threshold means
/// anything.
const ANOMALY_WARMUP_STEPS: u64 = 4;

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            rollback_after: 4,
            checkpoint_every: 8,
            initial_scale: 256.0,
            max_skipped_steps: 100_000,
            anomaly_factor: 64.0,
            clip_factor: 8.0,
            redundancy: 3,
            verify_ratio: 0.5,
        }
    }
}

/// What the recovery loop did, alongside the trained model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Steps attempted (applied + skipped).
    pub steps_run: u64,
    /// Steps whose update was applied.
    pub steps_applied: u64,
    /// Steps skipped after a guard trip or anomaly rejection.
    pub steps_skipped: u64,
    /// Of the skipped steps, how many were rejected by the update-anomaly
    /// check (silent corruption) rather than a guard trip.
    pub anomaly_rejections: u64,
    /// Parameter elements whose per-step delta was clamped to the clip
    /// bound in otherwise-applied steps.
    pub updates_clipped: u64,
    /// Of the skipped steps, how many were rejected because redundant
    /// executions disagreed (silent corruption caught by replay).
    pub verify_rejections: u64,
    /// Rollbacks to the last good checkpoint.
    pub rollbacks: u64,
    /// Applied steps re-lost by rollbacks (progress between the restored
    /// checkpoint and the failure).
    pub steps_lost_to_rollback: u64,
    /// Checkpoints written to the attached store.
    pub checkpoints_written: u64,
    /// Corrupt/truncated checkpoint generations skipped during loads.
    pub corrupt_checkpoints_skipped: u64,
    /// Loss scale at the end of the run.
    pub final_scale: f32,
}

/// Why a resilient run could not finish.
#[derive(Debug)]
pub enum RecoverError {
    /// The checkpoint store failed (I/O, not corruption — corruption is
    /// absorbed by generation fallback).
    Checkpoint(CheckpointError),
    /// More steps were skipped than
    /// [`ResilientConfig::max_skipped_steps`] allows: the fault rate is
    /// beyond what skip/backoff/rollback can absorb.
    FaultRateTooHigh {
        /// Steps skipped when the budget ran out.
        skipped: u64,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "checkpoint store failure: {e}"),
            Self::FaultRateTooHigh { skipped } => {
                write!(f, "skipped-step budget exhausted after {skipped} skips")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<CheckpointError> for RecoverError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

// ---- generic driver ----------------------------------------------------

/// Captured parameters: per-layer weights/biases plus the PACT alphas
/// (empty for models without learned clipping).
type Params = (Vec<LayerState>, Vec<f32>);

/// Largest absolute parameter change between a snapshot and freshly
/// captured parameters — the signal the anomaly check thresholds.
fn max_abs_delta(before: &TrainState, after: &Params) -> f64 {
    let mut mag = 0.0f64;
    for (old, new) in before.layers.iter().zip(&after.0) {
        for (&a, &b) in old.w.iter().zip(&new.w) {
            mag = mag.max(f64::from((a - b).abs()));
        }
        for (&a, &b) in old.b.iter().zip(&new.b) {
            mag = mag.max(f64::from((a - b).abs()));
        }
    }
    for (&a, &b) in before.alphas.iter().zip(&after.1) {
        mag = mag.max(f64::from((a - b).abs()));
    }
    mag
}

/// Largest absolute elementwise disagreement between two captured
/// parameter sets — under redundant execution this is exactly the
/// injected damage, since the clean datapath is deterministic.
fn max_abs_between(a: &Params, b: &Params) -> f64 {
    let mut mag = 0.0f64;
    for (la, lb) in a.0.iter().zip(&b.0) {
        for (&x, &y) in la.w.iter().zip(&lb.w) {
            mag = mag.max(f64::from((x - y).abs()));
        }
        for (&x, &y) in la.b.iter().zip(&lb.b) {
            mag = mag.max(f64::from((x - y).abs()));
        }
    }
    for (&x, &y) in a.1.iter().zip(&b.1) {
        mag = mag.max(f64::from((x - y).abs()));
    }
    mag
}

/// Elementwise vote across replica parameter sets: the median for an odd
/// count (a coordinate corrupted in a minority of replicas recovers its
/// honest value exactly), the midpoint of the middle pair for an even
/// count.
fn vote(replicas: &[Params]) -> Params {
    let k = replicas.len();
    let mut scratch = vec![0.0f64; k];
    let mut median = |pick: &dyn Fn(&Params) -> f32| -> f32 {
        for (slot, r) in scratch.iter_mut().zip(replicas) {
            *slot = f64::from(pick(r));
        }
        scratch.sort_by(f64::total_cmp);
        let mid = if k % 2 == 1 {
            scratch[k / 2]
        } else {
            0.5 * (scratch[k / 2 - 1] + scratch[k / 2])
        };
        mid as f32
    };
    let mut out = replicas[0].clone();
    for (li, layer) in out.0.iter_mut().enumerate() {
        for wi in 0..layer.w.len() {
            layer.w[wi] = median(&|r| r.0[li].w[wi]);
        }
        for bi in 0..layer.b.len() {
            layer.b[bi] = median(&|r| r.0[li].b[bi]);
        }
    }
    for (ai, a) in out.1.iter_mut().enumerate() {
        *a = median(&|r| r.1[ai]);
    }
    out
}

/// Clamps every parameter delta between `before` and `after` to `±bound`,
/// in place. Returns the number of clamped elements.
fn clip_update(before: &TrainState, after: &mut Params, bound: f64) -> u64 {
    let mut clamped = 0u64;
    let mut clip = |old: f32, new: &mut f32| {
        let delta = f64::from(*new) - f64::from(old);
        if delta.abs() > bound {
            *new = (f64::from(old) + delta.signum() * bound) as f32;
            clamped += 1;
        }
    };
    for (old, new) in before.layers.iter().zip(&mut after.0) {
        for (&a, b) in old.w.iter().zip(&mut new.w) {
            clip(a, b);
        }
        for (&a, b) in old.b.iter().zip(&mut new.b) {
            clip(a, b);
        }
    }
    for (&a, b) in before.alphas.iter().zip(&mut after.1) {
        clip(a, b);
    }
    clamped
}

/// How one attempted step resolved.
enum Verdict {
    /// Update accepted; the freshly captured parameters ride along so the
    /// checkpoint path need not re-capture.
    Applied(Params),
    /// Update rejected. `guard_trip` distinguishes a numerics-guard error
    /// from an anomaly rejection, and both consequences follow from it:
    /// only guard trips back the loss scale off (they are range evidence;
    /// anomaly rejections are magnitude evidence, and shrinking the scale
    /// would shrink its protective headroom) and only guard trips count
    /// toward the consecutive-failure rollback trigger (an anomaly
    /// rejection already restored a pristine snapshot, so rolling further
    /// back would discard good progress to fix nothing).
    Rejected { guard_trip: bool },
}

/// Runs the epochs × batches schedule with snapshot/skip/rollback around
/// a fallible step. `capture`/`restore` move parameters in and out of
/// [`TrainState`]s; `attempt` runs one training step at the given loss
/// scale.
#[allow(clippy::too_many_arguments)] // private driver: the three hooks are the API
fn run_resilient<M>(
    model: &mut M,
    data: &Dataset,
    epochs: usize,
    batch: usize,
    rcfg: &ResilientConfig,
    mut store: Option<&mut CheckpointStore>,
    mut capture: impl FnMut(&M) -> Params,
    mut restore: impl FnMut(&mut M, &TrainState),
    mut attempt: impl FnMut(&mut M, &Tensor, &[usize], f32) -> Result<(), NumericsError>,
) -> Result<RecoveryReport, RecoverError> {
    let mut scaler = DynamicLossScaler::new(rcfg.initial_scale);
    let make_state = |(layers, alphas): Params, scaler: &DynamicLossScaler, step: u64| {
        let (scale, scaler_good_steps) = scaler.state();
        TrainState { step, rng_state: 0, scale, scaler_good_steps, layers, alphas }
    };
    let mut report = RecoveryReport::default();
    let mut last_good = make_state(capture(model), &scaler, 0);
    let mut consecutive = 0u32;
    let mut applied_since_ckpt = 0u64;
    let mut gstep = 0u64;
    // Running average of honest update magnitudes for the anomaly check.
    let mut ema_update: Option<f64> = None;
    for _epoch in 0..epochs {
        let mut start = 0;
        while start < data.len() {
            let end = (start + batch).min(data.len());
            let (bx, by) = data.batch(start, end);
            let snapshot = make_state(capture(model), &scaler, gstep);
            report.steps_run += 1;
            gstep += 1;
            // Stage 1: produce a candidate update (voted or single).
            let candidate = if rcfg.redundancy >= 2 {
                // Modular redundancy: run the batch `redundancy` times
                // from the same snapshot (independent fault draws) and
                // vote. A replica that trips a guard is excluded.
                let mut replicas = Vec::with_capacity(rcfg.redundancy as usize);
                for _ in 0..rcfg.redundancy {
                    if attempt(model, &bx, by, scaler.scale()).is_ok() {
                        replicas.push(capture(model));
                    }
                    restore(model, &snapshot);
                }
                match replicas.len() {
                    // A majority of replicas tripped: range evidence.
                    0 | 1 => Err(true),
                    // A pair cannot outvote a corrupted member: require
                    // agreement instead.
                    2 => {
                        let mag = max_abs_delta(&snapshot, &replicas[0])
                            .min(max_abs_delta(&snapshot, &replicas[1]));
                        if max_abs_between(&replicas[0], &replicas[1])
                            <= rcfg.verify_ratio * mag
                        {
                            Ok(vote(&replicas))
                        } else {
                            report.verify_rejections += 1;
                            Err(false)
                        }
                    }
                    _ => Ok(vote(&replicas)),
                }
            } else {
                match attempt(model, &bx, by, scaler.scale()) {
                    Ok(()) => Ok(capture(model)),
                    Err(_guard_trip) => Err(true),
                }
            };
            // Stage 2: gate the candidate through the anomaly check and
            // the clip bound — voting narrows but cannot close the
            // silent-corruption window (two replicas can damage the same
            // coordinate on the same side), so the magnitude backstops
            // run on every candidate.
            let verdict = match candidate {
                Err(guard_trip) => Verdict::Rejected { guard_trip },
                Ok(mut new_params) => {
                    let mag = max_abs_delta(&snapshot, &new_params);
                    let armed = report.steps_applied >= ANOMALY_WARMUP_STEPS
                        && ema_update.is_some_and(|e| e > 0.0);
                    let ema = ema_update.unwrap_or(mag);
                    if armed && mag > rcfg.anomaly_factor * ema {
                        // Too corrupted to salvage even element-wise.
                        report.anomaly_rejections += 1;
                        Verdict::Rejected { guard_trip: false }
                    } else {
                        let mut applied_mag = mag;
                        if armed && rcfg.clip_factor.is_finite() {
                            let bound = rcfg.clip_factor * ema;
                            let clamped = clip_update(&snapshot, &mut new_params, bound);
                            if clamped > 0 {
                                report.updates_clipped += clamped;
                                applied_mag = mag.min(bound);
                            }
                        }
                        restore(model, &make_state(new_params.clone(), &scaler, gstep));
                        ema_update = Some(
                            ema_update.map_or(applied_mag, |e| 0.9 * e + 0.1 * applied_mag),
                        );
                        Verdict::Applied(new_params)
                    }
                }
            };
            match verdict {
                Verdict::Applied(new_params) => {
                    scaler.on_success();
                    consecutive = 0;
                    report.steps_applied += 1;
                    applied_since_ckpt += 1;
                    if applied_since_ckpt >= rcfg.checkpoint_every {
                        last_good = make_state(new_params, &scaler, gstep);
                        if let Some(st) = store.as_deref_mut() {
                            st.save(&last_good)?;
                            report.checkpoints_written += 1;
                        }
                        applied_since_ckpt = 0;
                    }
                }
                Verdict::Rejected { guard_trip } => {
                    // Undo any partial update and skip the batch.
                    restore(model, &snapshot);
                    if guard_trip {
                        scaler.on_overflow();
                        consecutive += 1;
                    }
                    report.steps_skipped += 1;
                    if report.steps_skipped > rcfg.max_skipped_steps {
                        return Err(RecoverError::FaultRateTooHigh {
                            skipped: report.steps_skipped,
                        });
                    }
                    if consecutive >= rcfg.rollback_after {
                        let target = match store.as_deref_mut() {
                            Some(st) => st
                                .load_latest()?
                                .map(|(_, s)| s)
                                .unwrap_or_else(|| last_good.clone()),
                            None => last_good.clone(),
                        };
                        report.steps_lost_to_rollback +=
                            gstep.saturating_sub(target.step);
                        restore(model, &target);
                        scaler.restore(target.scale, target.scaler_good_steps);
                        report.rollbacks += 1;
                        consecutive = 0;
                        applied_since_ckpt = 0;
                    }
                }
            }
            start = end;
        }
    }
    report.final_scale = scaler.scale();
    if let Some(st) = store {
        report.corrupt_checkpoints_skipped = st.corrupt_skipped();
    }
    Ok(report)
}

// ---- MLP ---------------------------------------------------------------

fn capture_mlp(mlp: &Mlp) -> Params {
    let layers = (0..mlp.depth())
        .map(|i| {
            let w = mlp.weights(i);
            LayerState {
                rows: w.shape()[0] as u64,
                cols: w.shape()[1] as u64,
                w: w.as_slice().to_vec(),
                b: mlp.biases(i).to_vec(),
            }
        })
        .collect();
    (layers, Vec::new())
}

fn restore_mlp(mlp: &mut Mlp, state: &TrainState) {
    for (i, layer) in state.layers.iter().enumerate() {
        let shape = vec![layer.rows as usize, layer.cols as usize];
        mlp.set_weights(i, Tensor::from_vec(shape, layer.w.clone()));
        mlp.set_biases(i, layer.b.clone());
    }
}

/// [`rapid_refnet::mlp::train`] with the recovery loop wrapped around
/// every step. Returns the final training accuracy — evaluated on the
/// clean FP32 path — and the [`RecoveryReport`].
///
/// # Errors
///
/// [`RecoverError::Checkpoint`] on store I/O failure,
/// [`RecoverError::FaultRateTooHigh`] when the skip budget runs out.
pub fn train_mlp_resilient(
    mlp: &mut Mlp,
    backend: &dyn Backend,
    data: &Dataset,
    cfg: &TrainConfig,
    rcfg: &ResilientConfig,
    store: Option<&mut CheckpointStore>,
) -> Result<(f64, RecoveryReport), RecoverError> {
    let lr = cfg.lr;
    let report = run_resilient(
        mlp,
        data,
        cfg.epochs,
        cfg.batch,
        rcfg,
        store,
        capture_mlp,
        restore_mlp,
        |m, bx, by, scale| {
            let logits = m.try_forward(backend, bx)?;
            let (_, grad) = softmax_cross_entropy(&logits, by);
            // Scale the loss gradient so the FP8 (1,5,2) error tensors
            // stay representable; the update divides the scale back out.
            let scaled = grad.map(|v| v * scale);
            m.try_backward_sgd(backend, &scaled, lr / scale)
        },
    )?;
    Ok((mlp.accuracy(&Fp32Backend, data), report))
}

// ---- QAT ---------------------------------------------------------------

fn capture_qat(qat: &QatMlp) -> Params {
    let layers = (0..qat.depth())
        .map(|i| {
            let w = qat.weights(i);
            LayerState {
                rows: w.shape()[0] as u64,
                cols: w.shape()[1] as u64,
                w: w.as_slice().to_vec(),
                b: qat.biases(i).to_vec(),
            }
        })
        .collect();
    (layers, qat.alphas())
}

fn restore_qat(qat: &mut QatMlp, state: &TrainState) {
    for (i, layer) in state.layers.iter().enumerate() {
        let shape = vec![layer.rows as usize, layer.cols as usize];
        qat.set_weights(i, Tensor::from_vec(shape, layer.w.clone()));
        qat.set_biases(i, layer.b.clone());
    }
    qat.set_alphas(&state.alphas);
}

/// [`rapid_refnet::qat::train_qat`] through an arbitrary (typically
/// guarded HFP8) backend with the recovery loop wrapped around every
/// step: checkpoints cover master weights, biases, the learned PACT
/// clipping levels and the loss scaler. Returns the final quantized
/// training accuracy (clean eval path) and the [`RecoveryReport`].
///
/// # Errors
///
/// Same contract as [`train_mlp_resilient`].
pub fn train_qat_resilient(
    qat: &mut QatMlp,
    backend: &dyn Backend,
    data: &Dataset,
    cfg: &QatConfig,
    rcfg: &ResilientConfig,
    store: Option<&mut CheckpointStore>,
) -> Result<(f64, RecoveryReport), RecoverError> {
    let qcfg = *cfg;
    let report = run_resilient(
        qat,
        data,
        cfg.epochs,
        cfg.batch,
        rcfg,
        store,
        capture_qat,
        restore_qat,
        |m, bx, by, scale| m.try_step_with(backend, bx, by, &qcfg, scale),
    )?;
    Ok((qat.accuracy(data), report))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::backend::GuardedHfp8Backend;
    use rapid_fault::FaultConfig;
    use rapid_numerics::int::IntFormat;
    use rapid_numerics::GuardPolicy;
    use rapid_refnet::data::gaussian_blobs;
    use rapid_refnet::mlp::train;

    fn faulty_backend(seed: u64, rate: f64) -> GuardedHfp8Backend {
        GuardedHfp8Backend::new(
            FaultConfig {
                seed,
                mac_acc_rate: rate,
                mac_operand_rate: rate / 4.0,
                ..FaultConfig::default()
            },
            GuardPolicy::Error,
        )
    }

    #[test]
    fn fault_free_resilient_matches_plain_training() {
        let data = gaussian_blobs(256, 4, 16, 0.35, 42);
        let cfg = TrainConfig { epochs: 10, ..TrainConfig::default() };
        let mut plain = Mlp::new(&[16, 32, 4], 1);
        let acc_plain = train(&mut plain, &Fp32Backend, &data, &cfg);
        let mut res = Mlp::new(&[16, 32, 4], 1);
        let (acc_res, report) = train_mlp_resilient(
            &mut res,
            &Fp32Backend,
            &data,
            &cfg,
            &ResilientConfig::default(),
            None,
        )
        .unwrap();
        // Loss scaling is exactly compensated in FP32, so the runs agree.
        assert!((acc_res - acc_plain).abs() < 0.02, "plain {acc_plain} vs resilient {acc_res}");
        assert_eq!(report.steps_skipped, 0);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.steps_run, report.steps_applied);
    }

    #[test]
    fn skips_and_recovers_under_flips() {
        let data = gaussian_blobs(256, 4, 16, 0.35, 42);
        let cfg = TrainConfig { epochs: 12, ..TrainConfig::default() };
        let mut clean = Mlp::new(&[16, 32, 4], 1);
        let acc_clean =
            train(&mut clean, &rapid_refnet::backend::Hfp8Backend::default(), &data, &cfg);
        let backend = faulty_backend(7, 1e-3);
        let mut model = Mlp::new(&[16, 32, 4], 1);
        let (acc, report) = train_mlp_resilient(
            &mut model,
            &backend,
            &data,
            &cfg,
            &ResilientConfig::default(),
            None,
        )
        .unwrap();
        assert!(report.steps_skipped > 0, "1e-3 flips must trip guards: {report:?}");
        assert!(
            acc > acc_clean - 0.02,
            "resilient {acc} must stay within 2% of fault-free {acc_clean}: {report:?}"
        );
    }

    #[test]
    fn rollback_restores_checkpointed_state() {
        let data = gaussian_blobs(128, 4, 16, 0.35, 43);
        let cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        // A rate high enough that rollback_after consecutive failures
        // happen; small rollback_after makes them certain.
        let backend = faulty_backend(11, 2e-2);
        let mut model = Mlp::new(&[16, 32, 4], 2);
        let rcfg =
            ResilientConfig { rollback_after: 2, checkpoint_every: 4, ..Default::default() };
        let (_, report) =
            train_mlp_resilient(&mut model, &backend, &data, &cfg, &rcfg, None).unwrap();
        assert!(report.rollbacks > 0, "2% flips should force rollbacks: {report:?}");
        assert!(report.final_scale <= rcfg.initial_scale);
    }

    #[test]
    fn impossible_fault_rate_exhausts_the_skip_budget() {
        let data = gaussian_blobs(64, 4, 16, 0.35, 44);
        let cfg = TrainConfig { epochs: 50, ..TrainConfig::default() };
        let backend = faulty_backend(13, 0.5);
        let mut model = Mlp::new(&[16, 32, 4], 3);
        let rcfg = ResilientConfig { max_skipped_steps: 10, ..Default::default() };
        let err =
            train_mlp_resilient(&mut model, &backend, &data, &cfg, &rcfg, None).unwrap_err();
        assert!(matches!(err, RecoverError::FaultRateTooHigh { .. }), "{err}");
    }

    #[test]
    fn qat_resilient_writes_and_reloads_checkpoints() {
        let dir = std::env::temp_dir()
            .join(format!("rapid-recover-train-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let data = gaussian_blobs(128, 4, 16, 0.35, 45);
        let cfg = QatConfig { epochs: 4, ..QatConfig::default() };
        let mut store = CheckpointStore::open(&dir, "qat", 3).unwrap();
        let mut model = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 5);
        let rcfg = ResilientConfig { checkpoint_every: 4, ..Default::default() };
        let (acc, report) = train_qat_resilient(
            &mut model,
            &Fp32Backend,
            &data,
            &cfg,
            &rcfg,
            Some(&mut store),
        )
        .unwrap();
        assert!(acc > 0.5);
        assert!(report.checkpoints_written > 0);
        let (_, state) = store.load_latest().unwrap().unwrap();
        assert_eq!(state.layers.len(), 2);
        assert_eq!(state.alphas.len(), 1);
        // The checkpointed parameters are the live ones.
        assert_eq!(state.layers[0].w, model.weights(0).as_slice().to_vec());
        assert_eq!(state.alphas, model.alphas());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
