//! # rapid-recover
//!
//! The recovery layer: everything `rapid-fault` can inject and the guards
//! can *detect*, this crate makes *survivable*.
//!
//! PR 2 left the stack fail-stop: a tripped [`GuardPolicy::Error`] aborts
//! the training run, and nothing restores state afterwards. Long-running
//! ultra-low-precision training — the paper's 4-chip × 32-core HFP8
//! configuration (§IV-A) — needs the opposite: detected corruption should
//! cost a skipped step, a reduced loss scale, or at worst a rollback to
//! the last good checkpoint, never the run.
//!
//! The pieces:
//!
//! * [`scaler::DynamicLossScaler`] — grow-on-success / back-off-on-overflow
//!   loss scaling for the FP8 (1,5,2) error tensors;
//! * [`checkpoint`] — versioned, CRC32-checksummed, atomically-written
//!   training checkpoints with generation retention; a corrupted or
//!   truncated file is detected and the previous generation restored;
//! * [`backend::GuardedHfp8Backend`] — the HFP8 training backend with a
//!   seeded fault plan spliced into every GEMM and a configurable guard
//!   policy, accumulating [`GemmStats`] (including `guard_clamps`) across
//!   the run;
//! * [`train`] — resilient variants of the refnet training loops: a failed
//!   step is rolled back to its pre-step snapshot and skipped, the scale
//!   backs off, and `K` consecutive failures restore the last good
//!   checkpoint instead of aborting.
//!
//! Ring-side recovery (ack/retransmit all-reduce) lives in
//! `rapid_ring::reliable`; degraded-core remapping lives in
//! `rapid_sim::chip` and `rapid_model::scaling`. This crate is the
//! training-state half of the story.
//!
//! # Example
//!
//! ```
//! use rapid_fault::FaultConfig;
//! use rapid_numerics::GuardPolicy;
//! use rapid_recover::backend::GuardedHfp8Backend;
//! use rapid_recover::train::{train_mlp_resilient, ResilientConfig};
//! use rapid_refnet::data::gaussian_blobs;
//! use rapid_refnet::mlp::{Mlp, TrainConfig};
//!
//! let data = gaussian_blobs(128, 3, 8, 0.3, 7);
//! let mut model = Mlp::new(&[8, 16, 3], 0);
//! let backend = GuardedHfp8Backend::new(
//!     FaultConfig { seed: 1, mac_acc_rate: 1e-4, ..FaultConfig::default() },
//!     GuardPolicy::Error,
//! );
//! let cfg = TrainConfig { epochs: 4, ..TrainConfig::default() };
//! let (acc, report) = train_mlp_resilient(
//!     &mut model, &backend, &data, &cfg, &ResilientConfig::default(), None,
//! ).unwrap();
//! assert!(acc > 0.4);
//! assert_eq!(report.steps_run, report.steps_applied + report.steps_skipped);
//! ```
//!
//! [`GuardPolicy::Error`]: rapid_numerics::GuardPolicy
//! [`GemmStats`]: rapid_numerics::gemm::GemmStats

// unwrap/expect denial comes from [workspace.lints] in the root manifest.

pub mod backend;
pub mod checkpoint;
pub mod crc;
pub mod elastic;
pub mod scaler;
pub mod train;

pub use backend::{GuardedHfp8Backend, Protection, ABFT_METRIC_PREFIX, BACKEND_METRIC_PREFIX};
pub use checkpoint::{CheckpointError, CheckpointStore, LayerState, TrainState};
pub use crc::crc32;
pub use elastic::{train_elastic, ElasticReport, ElasticTrainConfig, ElasticTrainError};
pub use scaler::DynamicLossScaler;
pub use train::{
    train_mlp_resilient, train_qat_resilient, RecoverError, RecoveryReport, ResilientConfig,
};
