//! Per-layer inference reports: the layer-resolution view behind the
//! aggregate numbers (what the compiler's design-space exploration and the
//! Fig 17 analysis look at).

use crate::cost::{elem_bytes, sfu_lanes, total_corelets, ModelConfig};
use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_compiler::mapping::map_layer;
use rapid_compiler::plan::NetworkPlan;
use rapid_workloads::graph::Network;
use serde::{Deserialize, Serialize};

/// Cost report for one layer of a compiled plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Execution precision.
    pub precision: Precision,
    /// MACs (×batch ×repeat).
    pub macs: u64,
    /// MPE cycles at the MAC-rate bound.
    pub ideal_cycles: f64,
    /// MPE overhead cycles (residue + exposed block-loads/fills + fixed).
    pub overhead_cycles: f64,
    /// Quantization cycles on the SFU.
    pub quant_cycles: f64,
    /// Auxiliary cycles on the SFU (for aux layers).
    pub aux_cycles: f64,
    /// External-memory bytes moved for this layer.
    pub dram_bytes: f64,
    /// Whether the layer is memory-bound at this configuration.
    pub memory_bound: bool,
    /// MPE-array utilization for compute layers (0 for aux layers).
    pub utilization: f64,
}

impl LayerReport {
    /// Total on-chip cycles attributed to the layer.
    pub fn total_cycles(&self) -> f64 {
        self.ideal_cycles + self.overhead_cycles + self.quant_cycles + self.aux_cycles
    }

    /// One CSV row (matches [`csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.0},{:.0},{:.0},{:.0},{:.0},{},{:.3}",
            self.name,
            self.precision,
            self.macs,
            self.ideal_cycles,
            self.overhead_cycles,
            self.quant_cycles,
            self.aux_cycles,
            self.dram_bytes,
            self.memory_bound,
            self.utilization
        )
    }
}

/// Header for [`LayerReport::csv_row`].
pub fn csv_header() -> &'static str {
    "layer,precision,macs,ideal_cycles,overhead_cycles,quant_cycles,aux_cycles,dram_bytes,memory_bound,utilization"
}

/// Produces per-layer reports for a compiled plan at a batch size.
///
/// # Panics
///
/// Panics if the plan does not match the network.
pub fn layer_reports(
    net: &Network,
    plan: &NetworkPlan,
    chip: &ChipConfig,
    batch: u64,
    cfg: &ModelConfig,
) -> Vec<LayerReport> {
    assert_eq!(net.layers.len(), plan.layers.len(), "plan/network mismatch");
    let n_corelets = total_corelets(chip);
    let corelet = &chip.core.corelet;
    let lanes = sfu_lanes(chip);
    let mut out = Vec::with_capacity(net.layers.len());
    for (layer, lp) in net.layers.iter().zip(&plan.layers) {
        let rep = layer.repeat as f64;
        if !layer.op.is_compute() {
            out.push(LayerReport {
                name: layer.name.clone(),
                precision: Precision::Fp16,
                macs: 0,
                ideal_cycles: 0.0,
                overhead_cycles: 0.0,
                quant_cycles: 0.0,
                aux_cycles: layer.aux_lane_cycles() * batch as f64 / lanes
                    + 0.5 * cfg.per_layer_overhead_cycles * rep,
                dram_bytes: 0.0,
                memory_bound: false,
                utilization: 0.0,
            });
            continue;
        }
        let m = map_layer(&layer.op, lp.precision, batch, corelet, n_corelets);
        let exposed = m.compute_cycles
            + cfg.blockload_exposure * m.blockload_cycles
            + cfg.fill_exposure * m.fill_cycles;
        let ideal = m.ideal_cycles * rep;
        let overhead =
            (exposed - m.ideal_cycles).max(0.0) * rep + cfg.per_layer_overhead_cycles * rep;
        let out_elems = layer.op.output_elems() as f64 * rep * batch as f64;
        let quant = lp.quant.lane_cycles_per_elem() * out_elems / lanes;
        let w1 = layer.op.weight_elems() as f64 * elem_bytes(lp.precision);
        let l1_budget = 0.5 * f64::from(chip.cores) * chip.core.l1_bytes as f64;
        let wbytes = if w1 > l1_budget { w1 * rep } else { w1 };
        let abytes = if lp.spill_activations {
            (layer.op.input_elems() + layer.op.output_elems()) as f64
                * rep
                * batch as f64
                * elem_bytes(lp.precision)
        } else {
            0.0
        };
        let mem_s = (wbytes + abytes) / (chip.mem_bw_gbps * 1e9);
        let onchip_s = (ideal + overhead + quant) / (lp.effective_ghz * 1e9);
        out.push(LayerReport {
            name: layer.name.clone(),
            precision: lp.precision,
            macs: layer.macs() * batch,
            ideal_cycles: ideal,
            overhead_cycles: overhead,
            quant_cycles: quant,
            aux_cycles: 0.0,
            dram_bytes: wbytes + abytes,
            memory_bound: mem_s > onchip_s,
            utilization: m.utilization(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_compiler::passes::{compile, CompileOptions};
    use rapid_workloads::suite::benchmark;

    fn reports(name: &str, p: Precision) -> Vec<LayerReport> {
        let net = benchmark(name).unwrap();
        let chip = ChipConfig::rapid_4core();
        let plan = compile(&net, &chip, &CompileOptions::for_precision(p));
        layer_reports(&net, &plan, &chip, 1, &ModelConfig::default())
    }

    #[test]
    fn reports_cover_every_layer() {
        let net = benchmark("resnet50").unwrap();
        let r = reports("resnet50", Precision::Int4);
        assert_eq!(r.len(), net.layers.len());
    }

    #[test]
    fn layer_reports_sum_to_network_breakdown() {
        use crate::inference::evaluate_inference;
        let net = benchmark("resnet50").unwrap();
        let chip = ChipConfig::rapid_4core();
        let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
        let cfg = ModelConfig::default();
        let agg = evaluate_inference(&net, &plan, &chip, 1, &cfg);
        let per: f64 = layer_reports(&net, &plan, &chip, 1, &cfg)
            .iter()
            .map(LayerReport::total_cycles)
            .sum();
        let total = agg.breakdown.total();
        assert!(
            (per - total).abs() / total < 1e-9,
            "per-layer {per} vs aggregate {total}"
        );
    }

    #[test]
    fn first_layer_is_fp16_and_underutilized() {
        let r = reports("resnet50", Precision::Int4);
        let first = r.iter().find(|l| l.macs > 0).expect("has compute");
        assert_eq!(first.precision, Precision::Fp16);
        assert!(first.utilization < 0.5, "conv1 utilization {}", first.utilization);
    }

    #[test]
    fn csv_rows_are_well_formed() {
        let r = reports("mobilenetv1", Precision::Int4);
        let cols = csv_header().split(',').count();
        for row in r.iter().take(5) {
            assert_eq!(row.csv_row().split(',').count(), cols);
        }
    }
}
