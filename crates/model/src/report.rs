//! Per-layer inference reports: the layer-resolution view behind the
//! aggregate numbers (what the compiler's design-space exploration and the
//! Fig 17 analysis look at).

use crate::cost::{elem_bytes, sfu_lanes, total_corelets, ModelConfig};
use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_compiler::mapping::map_layer;
use rapid_compiler::plan::NetworkPlan;
use rapid_workloads::graph::Network;
use serde::{Deserialize, Serialize};

/// Roofline placement of one layer: where it sits relative to the
/// machine's compute roof and memory-bandwidth slope, plus how its
/// on-chip cycles split across the pipeline components.
///
/// Ops are counted as 2 × MACs (multiply and add separately), matching
/// [`ChipConfig::peak_ops_per_cycle`]. Intensities are ops per DRAM
/// byte; a layer whose working set stays on chip has infinite intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak throughput at the layer's precision and effective frequency.
    pub peak_tops: f64,
    /// Achieved throughput: ops over the layer's wall time (the larger
    /// of its on-chip and memory-transfer times).
    pub achieved_tops: f64,
    /// Arithmetic intensity in ops/byte ([`f64::INFINITY`] when the
    /// layer moves no DRAM bytes).
    pub intensity: f64,
    /// Ridge-point intensity: peak ops/s over memory bandwidth. Layers
    /// left of this are bandwidth-limited on the classic roofline.
    pub ridge_intensity: f64,
    /// Share of on-chip cycles in ideal MPE compute.
    pub ideal_share: f64,
    /// Share of on-chip cycles in MPE overhead.
    pub overhead_share: f64,
    /// Share of on-chip cycles in SFU quantization.
    pub quant_share: f64,
    /// Share of on-chip cycles in SFU auxiliary work.
    pub aux_share: f64,
}

impl Roofline {
    /// Whether the layer sits right of the ridge point (its intensity
    /// clears the bandwidth slope, so the compute roof is the limit).
    pub fn compute_bound(&self) -> bool {
        self.intensity >= self.ridge_intensity
    }

    /// Achieved over peak throughput (0 when peak is 0).
    pub fn efficiency(&self) -> f64 {
        if self.peak_tops > 0.0 { self.achieved_tops / self.peak_tops } else { 0.0 }
    }

    fn zero() -> Self {
        Self {
            peak_tops: 0.0,
            achieved_tops: 0.0,
            intensity: 0.0,
            ridge_intensity: 0.0,
            ideal_share: 0.0,
            overhead_share: 0.0,
            quant_share: 0.0,
            aux_share: 0.0,
        }
    }
}

/// Cost report for one layer of a compiled plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Execution precision.
    pub precision: Precision,
    /// MACs (×batch ×repeat).
    pub macs: u64,
    /// MPE cycles at the MAC-rate bound.
    pub ideal_cycles: f64,
    /// MPE overhead cycles (residue + exposed block-loads/fills + fixed).
    pub overhead_cycles: f64,
    /// Quantization cycles on the SFU.
    pub quant_cycles: f64,
    /// Auxiliary cycles on the SFU (for aux layers).
    pub aux_cycles: f64,
    /// External-memory bytes moved for this layer.
    pub dram_bytes: f64,
    /// Whether the layer is memory-bound at this configuration.
    pub memory_bound: bool,
    /// MPE-array utilization for compute layers (0 for aux layers).
    pub utilization: f64,
    /// Roofline placement and component cycle shares.
    pub roofline: Roofline,
}

impl LayerReport {
    /// Total on-chip cycles attributed to the layer.
    pub fn total_cycles(&self) -> f64 {
        self.ideal_cycles + self.overhead_cycles + self.quant_cycles + self.aux_cycles
    }

    /// One CSV row (matches [`csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.0},{:.0},{:.0},{:.0},{:.0},{},{:.3},{:.3},{:.3},{:.2},{:.2},{:.3},{:.3},{:.3},{:.3}",
            self.name,
            self.precision,
            self.macs,
            self.ideal_cycles,
            self.overhead_cycles,
            self.quant_cycles,
            self.aux_cycles,
            self.dram_bytes,
            self.memory_bound,
            self.utilization,
            self.roofline.achieved_tops,
            self.roofline.peak_tops,
            self.roofline.intensity,
            self.roofline.ridge_intensity,
            self.roofline.ideal_share,
            self.roofline.overhead_share,
            self.roofline.quant_share,
            self.roofline.aux_share
        )
    }
}

/// Header for [`LayerReport::csv_row`].
pub fn csv_header() -> &'static str {
    "layer,precision,macs,ideal_cycles,overhead_cycles,quant_cycles,aux_cycles,dram_bytes,memory_bound,utilization,\
     achieved_tops,peak_tops,intensity,ridge_intensity,ideal_share,overhead_share,quant_share,aux_share"
}

/// Produces per-layer reports for a compiled plan at a batch size.
///
/// # Panics
///
/// Panics if the plan does not match the network.
pub fn layer_reports(
    net: &Network,
    plan: &NetworkPlan,
    chip: &ChipConfig,
    batch: u64,
    cfg: &ModelConfig,
) -> Vec<LayerReport> {
    assert_eq!(net.layers.len(), plan.layers.len(), "plan/network mismatch");
    let n_corelets = total_corelets(chip);
    let corelet = &chip.core.corelet;
    let lanes = sfu_lanes(chip);
    let mut out = Vec::with_capacity(net.layers.len());
    for (layer, lp) in net.layers.iter().zip(&plan.layers) {
        let rep = layer.repeat as f64;
        if !layer.op.is_compute() {
            let aux = layer.aux_lane_cycles() * batch as f64 / lanes
                + 0.5 * cfg.per_layer_overhead_cycles * rep;
            let roofline = Roofline {
                aux_share: if aux > 0.0 { 1.0 } else { 0.0 },
                ..Roofline::zero()
            };
            out.push(LayerReport {
                name: layer.name.clone(),
                precision: Precision::Fp16,
                macs: 0,
                ideal_cycles: 0.0,
                overhead_cycles: 0.0,
                quant_cycles: 0.0,
                aux_cycles: aux,
                dram_bytes: 0.0,
                memory_bound: false,
                utilization: 0.0,
                roofline,
            });
            continue;
        }
        let m = map_layer(&layer.op, lp.precision, batch, corelet, n_corelets);
        let exposed = m.compute_cycles
            + cfg.blockload_exposure * m.blockload_cycles
            + cfg.fill_exposure * m.fill_cycles;
        let ideal = m.ideal_cycles * rep;
        let overhead =
            (exposed - m.ideal_cycles).max(0.0) * rep + cfg.per_layer_overhead_cycles * rep;
        let out_elems = layer.op.output_elems() as f64 * rep * batch as f64;
        let quant = lp.quant.lane_cycles_per_elem() * out_elems / lanes;
        let w1 = layer.op.weight_elems() as f64 * elem_bytes(lp.precision);
        let l1_budget = 0.5 * f64::from(chip.cores) * chip.core.l1_bytes as f64;
        let wbytes = if w1 > l1_budget { w1 * rep } else { w1 };
        let abytes = if lp.spill_activations {
            (layer.op.input_elems() + layer.op.output_elems()) as f64
                * rep
                * batch as f64
                * elem_bytes(lp.precision)
        } else {
            0.0
        };
        let mem_s = (wbytes + abytes) / (chip.mem_bw_gbps * 1e9);
        let onchip_s = (ideal + overhead + quant) / (lp.effective_ghz * 1e9);
        let macs = layer.macs() * batch;
        let ops = 2.0 * macs as f64;
        let wall_s = mem_s.max(onchip_s);
        let peak_ops_per_s = chip.peak_ops_per_cycle(lp.precision) as f64 * lp.effective_ghz * 1e9;
        let total = ideal + overhead + quant;
        let dram = wbytes + abytes;
        let roofline = Roofline {
            peak_tops: peak_ops_per_s / 1e12,
            achieved_tops: if wall_s > 0.0 { ops / wall_s / 1e12 } else { 0.0 },
            intensity: if dram > 0.0 { ops / dram } else { f64::INFINITY },
            ridge_intensity: peak_ops_per_s / (chip.mem_bw_gbps * 1e9),
            ideal_share: if total > 0.0 { ideal / total } else { 0.0 },
            overhead_share: if total > 0.0 { overhead / total } else { 0.0 },
            quant_share: if total > 0.0 { quant / total } else { 0.0 },
            aux_share: 0.0,
        };
        out.push(LayerReport {
            name: layer.name.clone(),
            precision: lp.precision,
            macs,
            ideal_cycles: ideal,
            overhead_cycles: overhead,
            quant_cycles: quant,
            aux_cycles: 0.0,
            dram_bytes: dram,
            memory_bound: mem_s > onchip_s,
            utilization: m.utilization(),
            roofline,
        });
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_compiler::passes::{compile, CompileOptions};
    use rapid_workloads::suite::benchmark;

    fn reports(name: &str, p: Precision) -> Vec<LayerReport> {
        let net = benchmark(name).unwrap();
        let chip = ChipConfig::rapid_4core();
        let plan = compile(&net, &chip, &CompileOptions::for_precision(p));
        layer_reports(&net, &plan, &chip, 1, &ModelConfig::default())
    }

    #[test]
    fn reports_cover_every_layer() {
        let net = benchmark("resnet50").unwrap();
        let r = reports("resnet50", Precision::Int4);
        assert_eq!(r.len(), net.layers.len());
    }

    #[test]
    fn layer_reports_sum_to_network_breakdown() {
        use crate::inference::evaluate_inference;
        let net = benchmark("resnet50").unwrap();
        let chip = ChipConfig::rapid_4core();
        let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
        let cfg = ModelConfig::default();
        let agg = evaluate_inference(&net, &plan, &chip, 1, &cfg);
        let per: f64 = layer_reports(&net, &plan, &chip, 1, &cfg)
            .iter()
            .map(LayerReport::total_cycles)
            .sum();
        let total = agg.breakdown.total();
        assert!(
            (per - total).abs() / total < 1e-9,
            "per-layer {per} vs aggregate {total}"
        );
    }

    #[test]
    fn first_layer_is_fp16_and_underutilized() {
        let r = reports("resnet50", Precision::Int4);
        let first = r.iter().find(|l| l.macs > 0).expect("has compute");
        assert_eq!(first.precision, Precision::Fp16);
        assert!(first.utilization < 0.5, "conv1 utilization {}", first.utilization);
    }

    #[test]
    fn roofline_is_consistent() {
        let r = reports("resnet50", Precision::Int4);
        for l in &r {
            let rf = &l.roofline;
            let shares = rf.ideal_share + rf.overhead_share + rf.quant_share + rf.aux_share;
            if l.total_cycles() > 0.0 {
                assert!((shares - 1.0).abs() < 1e-9, "{}: shares sum {shares}", l.name);
            }
            if l.macs == 0 {
                assert_eq!(rf.achieved_tops, 0.0, "{}", l.name);
                continue;
            }
            assert!(rf.peak_tops > 0.0 && rf.achieved_tops > 0.0, "{}", l.name);
            assert!(
                rf.achieved_tops <= rf.peak_tops * 1.01,
                "{}: achieved {} > peak {}",
                l.name,
                rf.achieved_tops,
                rf.peak_tops
            );
            assert!(rf.efficiency() <= 1.01, "{}", l.name);
            assert!(rf.intensity > 0.0 && rf.ridge_intensity > 0.0, "{}", l.name);
            // A layer that the time model calls memory-bound must sit left
            // of the ridge point on the classic roofline too.
            if l.memory_bound {
                assert!(!rf.compute_bound(), "{}: memory-bound right of ridge", l.name);
            }
        }
    }

    #[test]
    fn csv_rows_are_well_formed() {
        let r = reports("mobilenetv1", Precision::Int4);
        let cols = csv_header().split(',').count();
        for row in r.iter().take(5) {
            assert_eq!(row.csv_row().split(',').count(), cols);
        }
    }
}
