//! End-to-end inference evaluation (Figs 13, 14, 16, 17, 18a).
//!
//! Per layer, the model composes: MPE cycles from the compiler's dataflow
//! mapping (ideal + overheads), quantization cycles on the SFU, auxiliary
//! SFU cycles, and double-buffered external-memory transfer time; the
//! layer's wall time is `max(on-chip time, memory time)` (§III-E: regular
//! access patterns allow fetch latency to be hidden behind compute).

use crate::cost::{elem_bytes, sfu_lanes, total_corelets, CycleBreakdown, EnergyLedger, ModelConfig};
use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_compiler::mapping::map_layer;
use rapid_compiler::plan::NetworkPlan;
use rapid_workloads::graph::Network;
use serde::{Deserialize, Serialize};

/// Result of one inference evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResult {
    /// Benchmark name.
    pub network: String,
    /// Quantized target precision of the plan.
    pub precision: Precision,
    /// Batch size.
    pub batch: u64,
    /// End-to-end latency for the batch, seconds.
    pub latency_s: f64,
    /// Inputs processed per second (Fig 13's "classifications per second").
    pub throughput_per_s: f64,
    /// Compute-cycle breakdown (Fig 17).
    pub breakdown: CycleBreakdown,
    /// Seconds during which external memory is the bottleneck.
    pub memory_bound_s: f64,
    /// Energy per batch.
    pub energy: EnergyLedger,
    /// Average power in watts.
    pub avg_power_w: f64,
    /// Sustained useful throughput in T(FL)OPS (2 × MACs / latency).
    pub sustained_tops: f64,
    /// Sustained efficiency in T(FL)OPS/W (Fig 14).
    pub tops_per_w: f64,
}

/// Evaluates a compiled plan on a chip at a batch size.
///
/// # Panics
///
/// Panics if the plan does not match the network's layer count.
pub fn evaluate_inference(
    net: &Network,
    plan: &NetworkPlan,
    chip: &ChipConfig,
    batch: u64,
    cfg: &ModelConfig,
) -> InferenceResult {
    assert_eq!(net.layers.len(), plan.layers.len(), "plan/network mismatch");
    let n_corelets = total_corelets(chip);
    let corelet = &chip.core.corelet;
    let lanes = sfu_lanes(chip);
    let mem_bw = chip.mem_bw_gbps * 1e9;
    let pm = &cfg.power;

    let mut breakdown = CycleBreakdown::default();
    let mut energy = EnergyLedger::default();
    let mut latency_s = 0.0f64;
    let mut memory_bound_s = 0.0f64;
    let mut total_macs = 0u64;

    for (layer, lp) in net.layers.iter().zip(&plan.layers) {
        let f_hz = lp.effective_ghz * 1e9;
        let dyn_scale = pm.dyn_scale(chip.freq_ghz);
        if !layer.op.is_compute() {
            // Auxiliary layer on the SFU (plus a fixed program/sync cost —
            // small tensors cannot amortize it, which is part of why
            // aux-dominated networks stop scaling in Fig 18a).
            let cycles = layer.aux_lane_cycles() * batch as f64 / lanes
                + 0.5 * cfg.per_layer_overhead_cycles * layer.repeat as f64;
            breakdown.aux += cycles;
            latency_s += cycles / f_hz;
            let lane_ops = layer.aux_lane_cycles() * batch as f64;
            energy.sfu_j += lane_ops * pm.energy.sfu_op_pj * dyn_scale * 1e-12;
            continue;
        }

        // MPE mapping cost (per instance; repeats run back to back).
        // Block-loads partially overlap with the previous tile's drain and
        // pipeline fills chain across consecutive blocks, so only a
        // fraction of each is exposed.
        let m = map_layer(&layer.op, lp.precision, batch, corelet, n_corelets);
        let rep = layer.repeat as f64;
        let ideal = m.ideal_cycles * rep;
        let exposed = m.compute_cycles
            + cfg.blockload_exposure * m.blockload_cycles
            + cfg.fill_exposure * m.fill_cycles;
        let overhead =
            (exposed - m.ideal_cycles).max(0.0) * rep + cfg.per_layer_overhead_cycles * rep;
        breakdown.conv_ideal += ideal;
        breakdown.conv_overhead += overhead;

        // Quantization / conversion of the layer's output activations.
        let out_elems = layer.op.output_elems() as f64 * rep * batch as f64;
        let quant_lane_ops = lp.quant.lane_cycles_per_elem() * out_elems;
        let quant_cycles = quant_lane_ops / lanes;
        breakdown.quant += quant_cycles;

        // External memory traffic: weights stream in once per layer — or
        // once per repeat when one instance's weights exceed the on-chip
        // budget (recurrent weights stay resident in L1 across timesteps
        // when they fit). Boundary activations spill when they don't fit.
        let w1 = layer.op.weight_elems() as f64 * elem_bytes(lp.precision);
        let l1_budget = 0.5 * chip.cores as f64 * chip.core.l1_bytes as f64;
        let wbytes = if w1 > l1_budget { w1 * rep } else { w1 };
        let abytes = if lp.spill_activations {
            (layer.op.input_elems() + layer.op.output_elems()) as f64
                * rep
                * batch as f64
                * elem_bytes(lp.precision)
        } else {
            0.0
        };
        let mem_s = (wbytes + abytes) / mem_bw;

        let onchip_s = (ideal + overhead + quant_cycles) / f_hz;
        let layer_s = onchip_s.max(mem_s);
        latency_s += layer_s;
        if mem_s > onchip_s {
            memory_bound_s += mem_s - onchip_s;
        }

        // Energy.
        let macs = layer.macs() * batch;
        total_macs += macs;
        energy.mpe_j += macs as f64 * 2.0 * pm.energy.mpe_op_pj(lp.precision) * dyn_scale * 1e-12;
        // Overhead cycles toggle the array at a reduced activity.
        let array_macs_per_cycle = chip.macs_per_cycle(lp.precision) as f64;
        energy.mpe_idle_j += overhead
            * array_macs_per_cycle
            * 2.0
            * pm.energy.mpe_op_pj(lp.precision)
            * cfg.idle_activity
            * dyn_scale
            * 1e-12;
        energy.sfu_j += quant_lane_ops * pm.energy.sfu_op_pj * dyn_scale * 1e-12;
        // Scratchpad streaming: inputs and outputs each traverse L1+L0
        // once, weights once.
        let act_elems = (layer.op.input_elems() + 2 * layer.op.output_elems()) as f64
            * rep
            * batch as f64;
        let sram_bytes = act_elems * elem_bytes(lp.precision)
            + layer.op.weight_elems() as f64 * rep * elem_bytes(lp.precision);
        energy.sram_j += sram_bytes
            * (pm.energy.l1_byte_pj + pm.energy.l0_byte_pj)
            * dyn_scale
            * 1e-12;
        energy.dram_j += (wbytes + abytes) * pm.energy.dram_byte_pj * 1e-12;
        // Input activations multicast over the on-chip ring (average two
        // hops).
        energy.interconnect_j += (wbytes + abytes) * pm.energy.ring_byte_hop_pj * 2.0 * 1e-12;
    }

    energy.static_j = pm.static_power_w(chip.cores, chip.freq_ghz) * latency_s;
    let avg_power_w = if latency_s > 0.0 { energy.total() / latency_s } else { 0.0 };
    let sustained_tops = total_macs as f64 * 2.0 / latency_s / 1e12;
    InferenceResult {
        network: net.name.clone(),
        precision: plan.target,
        batch,
        latency_s,
        throughput_per_s: batch as f64 / latency_s,
        breakdown,
        memory_bound_s,
        energy,
        avg_power_w,
        sustained_tops,
        tops_per_w: sustained_tops / avg_power_w,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_compiler::passes::{compile, CompileOptions};
    use rapid_workloads::suite::benchmark;

    fn run(name: &str, p: Precision) -> InferenceResult {
        let net = benchmark(name).unwrap();
        let chip = ChipConfig::rapid_4core();
        let plan = compile(&net, &chip, &CompileOptions::for_precision(p));
        evaluate_inference(&net, &plan, &chip, 1, &ModelConfig::default())
    }

    #[test]
    fn int4_beats_fp8_beats_fp16() {
        // The paper's headline ordering (Fig 13) on a compute-heavy net.
        let fp16 = run("resnet50", Precision::Fp16);
        let fp8 = run("resnet50", Precision::Hfp8);
        let int4 = run("resnet50", Precision::Int4);
        assert!(fp8.latency_s < fp16.latency_s);
        assert!(int4.latency_s < fp8.latency_s);
    }

    #[test]
    fn resnet50_int4_speedup_in_paper_band() {
        // Fig 13: INT4 end-to-end speedups are 1.4×–4.2× over FP16.
        let fp16 = run("resnet50", Precision::Fp16);
        let int4 = run("resnet50", Precision::Int4);
        let speedup = fp16.latency_s / int4.latency_s;
        assert!((1.4..=4.4).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn mobilenet_benefits_least() {
        // "mobile networks with lean convolutions and a significant
        // fraction of auxiliary operations benefit the least."
        let mob16 = run("mobilenetv1", Precision::Fp16);
        let mob4 = run("mobilenetv1", Precision::Int4);
        let vgg16 = run("vgg16", Precision::Fp16);
        let vgg4 = run("vgg16", Precision::Int4);
        let mob_speedup = mob16.latency_s / mob4.latency_s;
        let vgg_speedup = vgg16.latency_s / vgg4.latency_s;
        assert!(mob_speedup < vgg_speedup, "mob {mob_speedup} vs vgg {vgg_speedup}");
    }

    #[test]
    fn int4_efficiency_in_paper_band() {
        // Fig 14: INT4 sustained efficiency spans 3–13.5 TOPS/W.
        for name in ["vgg16", "resnet50", "mobilenetv1"] {
            let r = run(name, Precision::Int4);
            assert!(
                (1.5..18.0).contains(&r.tops_per_w),
                "{name}: {} TOPS/W",
                r.tops_per_w
            );
        }
    }

    #[test]
    fn breakdown_fractions_are_sane() {
        // Fig 17: on average Conv/GEMM ≈ 50%, the rest split between
        // overheads, quantization and aux.
        let r = run("resnet50", Precision::Int4);
        let f = r.breakdown.fractions();
        assert!(f[0] > 0.2 && f[0] < 0.8, "conv fraction {}", f[0]);
        assert!(f[3] > 0.02, "aux fraction {}", f[3]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_is_sub_second_at_batch_1() {
        for name in ["resnet50", "bert", "lstm"] {
            let r = run(name, Precision::Int4);
            assert!(r.latency_s > 1e-6 && r.latency_s < 1.0, "{name}: {}", r.latency_s);
        }
    }

    #[test]
    fn energy_ledger_is_positive_and_dominated_by_dynamic_terms() {
        let r = run("vgg16", Precision::Int4);
        assert!(r.energy.mpe_j > 0.0);
        assert!(r.energy.dram_j > 0.0);
        assert!(r.avg_power_w > 1.0 && r.avg_power_w < 30.0, "power {}", r.avg_power_w);
    }
}
