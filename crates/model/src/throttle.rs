//! Sparsity-aware frequency-throttling study (Fig 16).
//!
//! Baseline: the power-control module must assume dense weights, so every
//! layer runs at the dense throttled clock `f_eff(0)`. With the
//! compiler-guided schedule, each layer runs at the clock its measured
//! weight sparsity affords. Auxiliary (SFU-only) phases draw little array
//! power and run un-throttled in both configurations.

use crate::cost::ModelConfig;
use crate::inference::{evaluate_inference, InferenceResult};
use rapid_arch::geometry::ChipConfig;
use rapid_arch::power::ThrottleModel;
use rapid_arch::precision::Precision;
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_workloads::graph::Network;
use serde::{Deserialize, Serialize};

/// Outcome of the throttling study for one pruned benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleStudy {
    /// Benchmark name.
    pub network: String,
    /// MAC-weighted average weight sparsity of the pruned model.
    pub avg_sparsity: f64,
    /// Latency with the sparsity-oblivious (dense-budget) clock.
    pub baseline: InferenceResult,
    /// Latency with the sparsity-aware schedule.
    pub throttled: InferenceResult,
}

impl ThrottleStudy {
    /// Speedup of sparsity-aware throttling over the dense-budget baseline
    /// (the Fig 16b bars).
    pub fn speedup(&self) -> f64 {
        self.baseline.latency_s / self.throttled.latency_s
    }
}

/// Runs the Fig 16 study on a *pruned* network (layers must carry
/// `pruned_sparsity`; see `rapid_workloads::apply_pruning_profile`).
/// The study uses FP16 execution, matching the paper's pruned checkpoints.
pub fn throttling_study(
    net: &Network,
    chip: &ChipConfig,
    throttle: &ThrottleModel,
    cfg: &ModelConfig,
) -> ThrottleStudy {
    let opts = CompileOptions::for_precision(Precision::Fp16);

    // Baseline: dense-budget clock everywhere (aux phases un-throttled).
    let mut base_plan = compile(net, chip, &opts);
    let dense_ghz = throttle.effective_frequency_ghz(0.0);
    for (lp, layer) in base_plan.layers.iter_mut().zip(&net.layers) {
        lp.effective_ghz = if layer.op.is_compute() { dense_ghz } else { throttle.f_max_ghz };
    }

    // Sparsity-aware: per-layer clock from the compiler's sparsity analysis.
    let mut sparse_plan = compile(net, chip, &opts);
    for (lp, layer) in sparse_plan.layers.iter_mut().zip(&net.layers) {
        lp.effective_ghz = if layer.op.is_compute() {
            throttle.effective_frequency_ghz(layer.pruned_sparsity)
        } else {
            throttle.f_max_ghz
        };
    }

    ThrottleStudy {
        network: net.name.clone(),
        avg_sparsity: net.average_pruned_sparsity(),
        baseline: evaluate_inference(net, &base_plan, chip, 1, cfg),
        throttled: evaluate_inference(net, &sparse_plan, chip, 1, cfg),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_workloads::suite::{apply_pruning_profile, benchmark};

    fn study(name: &str) -> ThrottleStudy {
        let mut net = benchmark(name).unwrap();
        apply_pruning_profile(&mut net);
        throttling_study(
            &net,
            &ChipConfig::rapid_4core(),
            &ThrottleModel::rapid_default(),
            &ModelConfig::default(),
        )
    }

    #[test]
    fn speedups_fall_in_fig16_band() {
        // Paper: 1.1×–1.7× (average 1.3×) across the pruned benchmarks.
        for name in ["vgg16", "resnet50", "ssd300", "bert"] {
            let s = study(name);
            assert!(
                (1.02..=1.75).contains(&s.speedup()),
                "{name}: speedup {} at sparsity {}",
                s.speedup(),
                s.avg_sparsity
            );
        }
    }

    #[test]
    fn sparser_models_speed_up_more() {
        let vgg = study("vgg16"); // 80% target sparsity
        let mob = study("mobilenetv1"); // 50% target sparsity
        assert!(vgg.speedup() > mob.speedup(), "vgg {} mob {}", vgg.speedup(), mob.speedup());
    }

    #[test]
    fn baseline_is_slower_than_nominal_unthrottled() {
        // The dense-budget clock is below f_max, so the baseline latency
        // exceeds the sparsity-aware latency.
        let s = study("resnet50");
        assert!(s.baseline.latency_s > s.throttled.latency_s);
    }
}
