//! The protection tax: what end-to-end data protection costs a workload.
//!
//! Composes [`rapid_arch::protection::ProtectionParams`] with a network's
//! shapes into one report: ABFT checksum MACs vs base MACs (the compute
//! tax), the SECDED scratchpad storage factor (the capacity tax), and the
//! CRC link-bandwidth derate (the communication tax). The headline
//! comparison — ABFT vs 3-way modular redundancy — is what the
//! `protection_sweep` bench measures empirically; this module is the
//! analytical counterpart.

use rapid_arch::protection::ProtectionParams;
use rapid_workloads::graph::Network;
use serde::{Deserialize, Serialize};

/// Aggregate protection overheads for one network at one batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtectionTax {
    /// Unprotected MACs across all compute layers (×batch ×repeat).
    pub base_macs: f64,
    /// Checksum MACs ABFT adds: two passes over each layer's input,
    /// weight, and output tensors.
    pub abft_checksum_macs: f64,
    /// ABFT compute overhead relative to the base MACs.
    pub abft_overhead_ratio: f64,
    /// 3-way modular redundancy's compute overhead (the alternative ABFT
    /// replaces): always 2.0.
    pub redundancy3_overhead_ratio: f64,
    /// Physical-over-logical scratchpad capacity with SECDED (≥ 1).
    pub l1_storage_factor: f64,
    /// Effective link bandwidth with CRC bytes, relative to raw (≤ 1).
    pub link_bandwidth_factor: f64,
    /// Per-access scratchpad energy uplift from the ECC logic.
    pub spad_energy_uplift: f64,
}

impl ProtectionTax {
    /// How many times cheaper ABFT's compute tax is than triplication
    /// (the ISSUE's headline ratio; `inf`-safe for zero-MAC networks).
    pub fn abft_advantage(&self) -> f64 {
        if self.abft_overhead_ratio > 0.0 {
            self.redundancy3_overhead_ratio / self.abft_overhead_ratio
        } else {
            f64::INFINITY
        }
    }
}

/// Computes the protection tax for a network at a batch size.
pub fn protection_tax(net: &Network, batch: u64, params: &ProtectionParams) -> ProtectionTax {
    let mut base = 0.0f64;
    let mut checksum = 0.0f64;
    for layer in &net.layers {
        if !layer.op.is_compute() {
            continue;
        }
        let rep = layer.repeat as f64 * batch as f64;
        base += layer.op.macs() as f64 * rep;
        // Row/column checksum passes touch each operand tensor twice
        // (sum + reference), the direct analog of 2(mk + kn + mn) on a
        // plain GEMM.
        checksum += 2.0
            * (layer.op.input_elems() + layer.op.weight_elems() + layer.op.output_elems()) as f64
            * rep;
    }
    ProtectionTax {
        base_macs: base,
        abft_checksum_macs: checksum,
        abft_overhead_ratio: if base > 0.0 { checksum / base } else { 0.0 },
        redundancy3_overhead_ratio: params.redundancy_overhead_ratio(3),
        l1_storage_factor: 1.0 + params.secded_storage_overhead,
        link_bandwidth_factor: params.crc_bandwidth_factor(),
        spad_energy_uplift: params.secded_energy_uplift,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_workloads::suite::benchmark;

    #[test]
    fn resnet_abft_tax_is_pennies_next_to_triplication() {
        let net = benchmark("resnet50").expect("suite has resnet50");
        let tax = protection_tax(&net, 1, &ProtectionParams::rapid());
        assert!(tax.base_macs > 1e9, "resnet50 has billions of MACs");
        assert!(tax.abft_overhead_ratio > 0.0);
        assert!(
            tax.abft_overhead_ratio < 0.1,
            "ABFT tax should be well under 10%, got {}",
            tax.abft_overhead_ratio
        );
        assert!(tax.abft_advantage() >= 2.0, "advantage {}", tax.abft_advantage());
        assert!((tax.redundancy3_overhead_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_and_bandwidth_taxes_are_flat_rates() {
        let net = benchmark("mobilenetv1").expect("suite has mobilenetv1");
        let tax = protection_tax(&net, 4, &ProtectionParams::rapid());
        assert!((tax.l1_storage_factor - (1.0 + 7.0 / 32.0)).abs() < 1e-12);
        assert!(tax.link_bandwidth_factor < 1.0 && tax.link_bandwidth_factor > 0.99);
        assert!(tax.spad_energy_uplift > 0.0 && tax.spad_energy_uplift < 0.5);
    }

    #[test]
    fn batch_scales_both_sides_leaving_the_ratio_fixed() {
        let net = benchmark("resnet50").expect("suite has resnet50");
        let p = ProtectionParams::rapid();
        let b1 = protection_tax(&net, 1, &p);
        let b8 = protection_tax(&net, 8, &p);
        assert!((b8.base_macs / b1.base_macs - 8.0).abs() < 1e-9);
        assert!((b8.abft_overhead_ratio - b1.abft_overhead_ratio).abs() < 1e-12);
    }
}
