//! Core- and chip-count scaling sweeps (Fig 18).

use crate::cost::ModelConfig;
use crate::inference::evaluate_inference;
use crate::training::evaluate_training;
use rapid_arch::geometry::{ChipConfig, SystemConfig};
use rapid_arch::precision::Precision;
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_workloads::graph::Network;
use serde::{Deserialize, Serialize};

/// One point of a scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Scaled resource count (cores or chips).
    pub count: u32,
    /// Speedup relative to the count-1 configuration.
    pub speedup: f64,
    /// Absolute throughput (inputs/s).
    pub throughput: f64,
}

/// Fig 18(a): INT4 batch-1 inference speedup as the core count scales,
/// with the external memory bandwidth held fixed (paper: "we fixed the
/// external bandwidth even as we scale the number of cores").
pub fn inference_core_scaling(net: &Network, counts: &[u32], cfg: &ModelConfig) -> Vec<ScalePoint> {
    let mut points = Vec::with_capacity(counts.len());
    let mut base = None;
    for &cores in counts {
        let chip = ChipConfig::rapid_4core().with_cores(cores);
        let plan = compile(net, &chip, &CompileOptions::for_precision(Precision::Int4));
        let r = evaluate_inference(net, &plan, &chip, 1, cfg);
        let base_latency = *base.get_or_insert(r.latency_s);
        points.push(ScalePoint {
            count: cores,
            speedup: base_latency / r.latency_s,
            throughput: r.throughput_per_s,
        });
    }
    points
}

/// One point of a degraded-core sweep: the chip running on `survivors` of
/// its cores after failures, relative to the healthy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedPoint {
    /// Cores still alive.
    pub survivors: u32,
    /// Batch-1 inference latency on the survivors, seconds.
    pub latency_s: f64,
    /// Latency relative to the healthy chip (≥ 1.0; 1.0 = no slowdown).
    pub slowdown: f64,
    /// Absolute throughput on the survivors (inputs/s).
    pub throughput: f64,
}

/// Throughput of a chip that lost cores: the work of the failed cores is
/// remapped across the `survivors`, so the degraded chip is modeled as the
/// same chip with fewer cores — external memory bandwidth unchanged (the
/// memory interface is not on a core) — and the slowdown is the healthy
/// latency divided into the survivor latency.
///
/// Returns the healthy point followed by one point per failure, down to
/// `survivors_floor` cores (e.g. `healthy = 4, floor = 3` gives the
/// 4-core → 3-core inference latency curve the recovery layer reports).
pub fn degraded_throughput(
    net: &Network,
    healthy_cores: u32,
    survivors_floor: u32,
    precision: Precision,
    cfg: &ModelConfig,
) -> Vec<DegradedPoint> {
    let floor = survivors_floor.clamp(1, healthy_cores);
    let mut points = Vec::with_capacity((healthy_cores - floor + 1) as usize);
    let mut healthy_latency = None;
    for survivors in (floor..=healthy_cores).rev() {
        let chip = ChipConfig::rapid_4core().with_cores(survivors);
        let plan = compile(net, &chip, &CompileOptions::for_precision(precision));
        let r = evaluate_inference(net, &plan, &chip, 1, cfg);
        let base = *healthy_latency.get_or_insert(r.latency_s);
        points.push(DegradedPoint {
            survivors,
            latency_s: r.latency_s,
            slowdown: r.latency_s / base,
            throughput: r.throughput_per_s,
        });
    }
    points
}

/// Analytic goodput-retention floor after quarantining `quarantined` of
/// `world` cores: `(world − k) / world`, the linear capacity law of the
/// column remap (every output column is an independent accumulation, so
/// losing a core removes exactly its share of the compute and nothing
/// else — memory bandwidth is not on a core).
///
/// `health_sweep` (E24) hard-asserts measured post-quarantine goodput
/// stays at or above this curve: the health layer may only cost the
/// capacity of the cores it removed, never more. Returns 0.0 when every
/// core is quarantined and 1.0 for `world == 0` (nothing to lose).
pub fn quarantine_retention(world: u32, quarantined: u32) -> f64 {
    if world == 0 {
        return 1.0;
    }
    f64::from(world.saturating_sub(quarantined)) / f64::from(world)
}

/// One point of an elastic N-chip training curve: the system running on
/// `survivors` of its `world` chips after node losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticPoint {
    /// Chips the run started with.
    pub world: u32,
    /// Chips still in the ring.
    pub survivors: u32,
    /// HFP8 training throughput on the survivors (inputs/s).
    pub throughput: f64,
    /// Fraction of the full-world throughput retained (1.0 at
    /// `survivors == world`).
    pub retention: f64,
}

/// The N-chip elastic analogue of [`degraded_throughput`]: training
/// throughput as the ring shrinks from `world` chips down to
/// `survivors_floor`, at a fixed global minibatch. Each survivor count is
/// modeled as the same system with fewer chips — the elastic layer's
/// post-heal steady state, where the surviving ring carries the full
/// minibatch (per-chip share grows) over shorter all-reduce hops.
///
/// Returns the full-world point first, then one point per lost chip.
pub fn elastic_training_curve(
    net: &Network,
    world: u32,
    survivors_floor: u32,
    minibatch: u64,
    cfg: &ModelConfig,
) -> Vec<ElasticPoint> {
    let world = world.max(1);
    let floor = survivors_floor.clamp(1, world);
    let mut points = Vec::with_capacity((world - floor + 1) as usize);
    let mut full = None;
    for survivors in (floor..=world).rev() {
        let sys = SystemConfig::training_4x32().with_chips(survivors);
        let r = evaluate_training(net, &sys, Precision::Hfp8, minibatch, cfg);
        let base = *full.get_or_insert(r.inputs_per_s);
        points.push(ElasticPoint {
            world,
            survivors,
            throughput: r.inputs_per_s,
            retention: r.inputs_per_s / base,
        });
    }
    points
}

/// Fig 18(b): HFP8 training speedup as the chip count scales at a fixed
/// global minibatch and fixed 128 GBps chip-to-chip bandwidth.
pub fn training_chip_scaling(
    net: &Network,
    counts: &[u32],
    minibatch: u64,
    cfg: &ModelConfig,
) -> Vec<ScalePoint> {
    let mut points = Vec::with_capacity(counts.len());
    let mut base = None;
    for &chips in counts {
        let sys = SystemConfig::training_4x32().with_chips(chips);
        let r = evaluate_training(net, &sys, Precision::Hfp8, minibatch, cfg);
        let base_rate = *base.get_or_insert(r.inputs_per_s);
        points.push(ScalePoint {
            count: chips,
            speedup: r.inputs_per_s / base_rate,
            throughput: r.inputs_per_s,
        });
    }
    points
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_workloads::suite::benchmark;

    #[test]
    fn quarantine_retention_is_the_linear_capacity_law() {
        assert_eq!(quarantine_retention(4, 0), 1.0);
        assert_eq!(quarantine_retention(4, 1), 0.75);
        assert_eq!(quarantine_retention(4, 4), 0.0);
        assert_eq!(quarantine_retention(4, 9), 0.0, "over-quarantine saturates");
        assert_eq!(quarantine_retention(0, 3), 1.0, "empty world loses nothing");
    }

    #[test]
    fn compute_heavy_nets_scale_to_32_cores() {
        // Fig 18a: "Compute-intensive benchmarks like VGG16, Resnet50,
        // Yolov3, SSD300 show performance improvement even as we scale to
        // 32 cores."
        for name in ["vgg16", "resnet50", "yolov3", "ssd300"] {
            let net = benchmark(name).unwrap();
            let pts =
                inference_core_scaling(&net, &[1, 2, 4, 8, 16, 32], &ModelConfig::default());
            assert!(
                pts[5].speedup > pts[4].speedup,
                "{name}: no gain from 16→32 cores: {pts:?}"
            );
        }
        let net = benchmark("resnet50").unwrap();
        let pts = inference_core_scaling(&net, &[1, 32], &ModelConfig::default());
        assert!(pts[1].speedup > 8.0, "resnet50 32-core speedup {}", pts[1].speedup);
    }

    #[test]
    fn aux_and_memory_dominated_nets_saturate() {
        // Fig 18a: aux-dominated (MobileNetV1) and memory-stall-dominated
        // (LSTM) benchmarks saturate; their marginal gain from 16→32 cores
        // is well below a compute-heavy network's.
        let cfg = ModelConfig::default();
        let marginal = |name: &str| {
            let net = benchmark(name).unwrap();
            let pts = inference_core_scaling(&net, &[16, 32], &cfg);
            pts[1].speedup
        };
        let yolo = marginal("yolov3");
        assert!(marginal("mobilenetv1") < yolo, "mobilenet should trail yolov3");
        assert!(marginal("lstm") < yolo, "lstm should trail yolov3");
        assert!(marginal("lstm") < 1.15, "lstm 16→32 gain {}", marginal("lstm"));
    }

    #[test]
    fn speedup_is_monotone_nondecreasing_for_resnet() {
        let net = benchmark("resnet50").unwrap();
        let pts = inference_core_scaling(&net, &[1, 2, 4, 8, 16, 32], &ModelConfig::default());
        for w in pts.windows(2) {
            assert!(w[1].speedup >= w[0].speedup * 0.95, "{:?}", pts);
        }
    }

    #[test]
    fn losing_a_core_costs_latency_but_bounded() {
        // The recovery layer's 4-core → 3-core curve: a single failed core
        // slows batch-1 inference, but by less than the naive 4/3 compute
        // ratio would suggest once memory/aux time is counted.
        let net = benchmark("resnet50").unwrap();
        let pts = degraded_throughput(&net, 4, 3, Precision::Int4, &ModelConfig::default());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].survivors, 4);
        assert_eq!(pts[0].slowdown, 1.0);
        assert_eq!(pts[1].survivors, 3);
        assert!(pts[1].slowdown > 1.0, "3-core slowdown {}", pts[1].slowdown);
        assert!(pts[1].slowdown < 4.0 / 3.0 + 0.05, "slowdown {}", pts[1].slowdown);
        assert!(pts[1].throughput < pts[0].throughput);
    }

    #[test]
    fn elastic_curve_degrades_monotonically_and_bounded() {
        let net = benchmark("resnet50").unwrap();
        let pts = elastic_training_curve(&net, 4, 1, 512, &ModelConfig::default());
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].survivors, 4);
        assert!((pts[0].retention - 1.0).abs() < f64::EPSILON);
        for w in pts.windows(2) {
            assert!(
                w[1].throughput <= w[0].throughput * 1.001,
                "losing a chip cannot speed training up: {pts:?}"
            );
            assert!(w[1].retention <= w[0].retention * 1.001);
        }
        // Losing 1 of 4 chips costs at most its compute share (plus it
        // shortens the ring, so the hit is strictly under 25% + slack).
        assert!(
            pts[1].retention > 0.5,
            "3-of-4 survivors must retain most of the throughput: {pts:?}"
        );
    }

    #[test]
    fn training_scales_with_chips_but_sublinearly() {
        let net = benchmark("resnet50").unwrap();
        let pts = training_chip_scaling(&net, &[1, 2, 4, 8, 16, 32], 512, &ModelConfig::default());
        let s32 = pts.last().unwrap().speedup;
        assert!(s32 > 3.0, "32-chip speedup {s32}");
        assert!(s32 < 32.0, "32-chip speedup {s32} should be sublinear");
    }

    #[test]
    fn comm_heavy_vgg_saturates_earlier_than_resnet() {
        // VGG16's 138 M weights make the update-phase exchange dominate.
        let cfg = ModelConfig::default();
        let vgg = benchmark("vgg16").unwrap();
        let res = benchmark("resnet50").unwrap();
        let v = training_chip_scaling(&vgg, &[1, 32], 512, &cfg);
        let r = training_chip_scaling(&res, &[1, 32], 512, &cfg);
        assert!(v[1].speedup < r[1].speedup, "vgg {} resnet {}", v[1].speedup, r[1].speedup);
    }
}
