//! Fast analytical latency surrogate for serving admission control.
//!
//! The serving runtime must decide *before* enqueueing a request whether
//! its deadline is feasible — running the cycle simulator (or even the
//! full analytical model) per request is far too slow for that. Following
//! the NeuroScalar approach, this module fits a tiny closed-form surrogate
//! over the calibrated analytical model: for each `(model, precision)`
//! pair, [`evaluate_inference`] is sampled at two batch sizes and reduced
//! to a linear `base + per_item × batch` service-time law. Lookups are
//! then a couple of map probes plus a multiply — cheap enough to sit on
//! the admission hot path of every request.
//!
//! The linear law is exact for the throughput-dominated regime the model
//! already describes (per-layer cost is affine in batch for the mapped
//! compute and quantization terms) and conservative at the batch sizes in
//! between the two calibration points.

use crate::cost::ModelConfig;
use crate::inference::evaluate_inference;
use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_workloads::graph::Network;
use std::collections::BTreeMap;

/// Serving-relevant precisions, in quality order (highest first). These
/// are the tiers the load shedder walks down under pressure.
pub const SERVING_PRECISIONS: [Precision; 3] =
    [Precision::Fp16, Precision::Hfp8, Precision::Int4];

/// Linear service-time law for one `(model, precision)` pair:
/// `service(batch) = base_us + per_item_us × batch`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEntry {
    /// Fixed per-batch cost in microseconds (pipeline fill, per-layer
    /// overheads, weight streaming).
    pub base_us: f64,
    /// Marginal cost of one more input in the batch, microseconds.
    pub per_item_us: f64,
}

impl LatencyEntry {
    /// Estimated service time for a batch, microseconds.
    pub fn estimate_us(&self, batch: usize) -> f64 {
        self.base_us + self.per_item_us * batch as f64
    }
}

/// The surrogate table: closed-form service-time estimates for every
/// calibrated `(model, precision)` pair.
#[derive(Debug, Clone, Default)]
pub struct LatencyTable {
    entries: BTreeMap<(String, Precision), LatencyEntry>,
}

impl LatencyTable {
    /// Builds the table for `models` over the serving precisions on
    /// `chip`, sampling each pair at batch 1 and `calib_batch` (≥ 2) and
    /// fitting the linear law through the two points.
    pub fn build(
        models: &[Network],
        chip: &ChipConfig,
        cfg: &ModelConfig,
        calib_batch: u64,
    ) -> Self {
        let calib_batch = calib_batch.max(2);
        let mut entries = BTreeMap::new();
        for net in models {
            for p in SERVING_PRECISIONS {
                let plan = compile(net, chip, &CompileOptions::for_precision(p));
                let lat1 = evaluate_inference(net, &plan, chip, 1, cfg).latency_s * 1e6;
                let latb =
                    evaluate_inference(net, &plan, chip, calib_batch, cfg).latency_s * 1e6;
                let per_item = ((latb - lat1) / (calib_batch - 1) as f64).max(0.0);
                let base = (lat1 - per_item).max(0.0);
                entries.insert(
                    (net.name.clone(), p),
                    LatencyEntry { base_us: base, per_item_us: per_item },
                );
            }
        }
        Self { entries }
    }

    /// Builds a table directly from fitted entries — synthetic tables
    /// for unit tests and virtual-time serving sweeps.
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = ((String, Precision), LatencyEntry)>,
    {
        Self { entries: entries.into_iter().collect() }
    }

    /// The fitted law for one pair, if calibrated.
    pub fn entry(&self, model: &str, precision: Precision) -> Option<LatencyEntry> {
        self.entries.get(&(model.to_string(), precision)).copied()
    }

    /// Estimated service time of a `batch`-sized request group,
    /// microseconds. `None` when the pair was not calibrated.
    pub fn estimate_us(&self, model: &str, precision: Precision, batch: usize) -> Option<f64> {
        self.entry(model, precision).map(|e| e.estimate_us(batch))
    }

    /// Steady-state capacity of `workers` parallel executors serving
    /// `model` at `precision` with batches of `batch`, in requests/s.
    pub fn capacity_qps(
        &self,
        model: &str,
        precision: Precision,
        batch: usize,
        workers: usize,
    ) -> Option<f64> {
        let batch = batch.max(1);
        let e = self.entry(model, precision)?;
        let per_req_us = e.per_item_us + e.base_us / batch as f64;
        if per_req_us <= 0.0 {
            return None;
        }
        Some(workers as f64 * 1e6 / per_req_us)
    }

    /// Calibrated model names (each present for all serving precisions).
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.entries.keys().map(|(m, _)| m.clone()).collect();
        names.dedup();
        names
    }

    /// Number of calibrated `(model, precision)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_workloads::suite::benchmark;

    fn table_for(names: &[&str]) -> LatencyTable {
        let models: Vec<Network> = names.iter().map(|n| benchmark(n).unwrap()).collect();
        LatencyTable::build(&models, &ChipConfig::rapid_4core(), &ModelConfig::default(), 32)
    }

    #[test]
    fn estimates_are_positive_and_monotone_in_batch() {
        let t = table_for(&["resnet50", "mobilenetv1"]);
        assert_eq!(t.len(), 6);
        for model in ["resnet50", "mobilenetv1"] {
            for p in SERVING_PRECISIONS {
                let b1 = t.estimate_us(model, p, 1).unwrap();
                let b8 = t.estimate_us(model, p, 8).unwrap();
                assert!(b1 > 0.0, "{model} {p:?}: {b1}");
                assert!(b8 >= b1, "{model} {p:?}: batch-8 {b8} < batch-1 {b1}");
            }
        }
    }

    #[test]
    fn lower_precision_is_faster() {
        // The shedding premise: walking FP16 → HFP8 → INT4 buys capacity.
        let t = table_for(&["resnet50"]);
        let fp16 = t.estimate_us("resnet50", Precision::Fp16, 8).unwrap();
        let hfp8 = t.estimate_us("resnet50", Precision::Hfp8, 8).unwrap();
        let int4 = t.estimate_us("resnet50", Precision::Int4, 8).unwrap();
        assert!(hfp8 < fp16, "hfp8 {hfp8} vs fp16 {fp16}");
        assert!(int4 < hfp8, "int4 {int4} vs hfp8 {hfp8}");
    }

    #[test]
    fn surrogate_tracks_the_full_model_between_calibration_points() {
        // The linear law sampled at batch {1, 32} must stay within 25% of
        // the full analytical model at an intermediate batch size.
        let net = benchmark("resnet50").unwrap();
        let chip = ChipConfig::rapid_4core();
        let cfg = ModelConfig::default();
        let t = LatencyTable::build(std::slice::from_ref(&net), &chip, &cfg, 32);
        let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
        let exact = evaluate_inference(&net, &plan, &chip, 8, &cfg).latency_s * 1e6;
        let est = t.estimate_us("resnet50", Precision::Int4, 8).unwrap();
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.25, "surrogate off by {:.0}% ({est} vs {exact})", rel * 100.0);
    }

    #[test]
    fn capacity_scales_with_workers_and_uncalibrated_lookups_are_none() {
        let t = table_for(&["lstm"]);
        let one = t.capacity_qps("lstm", Precision::Fp16, 8, 1).unwrap();
        let four = t.capacity_qps("lstm", Precision::Fp16, 8, 4).unwrap();
        assert!((four / one - 4.0).abs() < 1e-9);
        assert!(t.estimate_us("resnet50", Precision::Fp16, 1).is_none());
        assert!(t.entry("lstm", Precision::Int2).is_none());
        assert!(!t.is_empty());
        assert_eq!(t.models(), vec!["lstm".to_string()]);
    }
}
