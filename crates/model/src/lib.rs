//! # rapid-model
//!
//! Analytical performance and power model of the RaPiD chip and its scaled
//! systems — the reproduction counterpart of the paper's "detailed
//! performance model calibrated to within 1% of the measurement results"
//! (§V-A). Component utilization comes from the compiler's dataflow
//! mapping; silicon characterization comes from `rapid-arch::power`; this
//! crate composes them into end-to-end results:
//!
//! * [`inference::evaluate_inference`] — batch-1 inference latency,
//!   sustained TOPS and TOPS/W, and the four-way compute-cycle breakdown
//!   (Figs 13, 14, 17).
//! * [`training::evaluate_training`] — distributed data-parallel training
//!   step time, inputs/s and sustained TFLOPS (Fig 15).
//! * [`throttle::throttling_study`] — sparsity-aware frequency throttling
//!   vs the dense-budget baseline (Fig 16).
//! * [`scaling`] — core-count and chip-count sweeps (Fig 18).
//!
//! Calibration against the cycle-approximate simulator (`rapid-sim`) is
//! exercised in the workspace integration tests and the `calibration`
//! bench binary.
//!
//! # Example
//!
//! ```
//! use rapid_arch::geometry::ChipConfig;
//! use rapid_arch::precision::Precision;
//! use rapid_compiler::passes::{compile, CompileOptions};
//! use rapid_model::cost::ModelConfig;
//! use rapid_model::inference::evaluate_inference;
//! use rapid_workloads::suite::benchmark;
//!
//! let net = benchmark("resnet50").unwrap();
//! let chip = ChipConfig::rapid_4core();
//! let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
//! let r = evaluate_inference(&net, &plan, &chip, 1, &ModelConfig::default());
//! assert!(r.latency_s > 0.0 && r.tops_per_w > 1.0);
//! ```

pub mod cost;
pub mod inference;
pub mod latency;
pub mod protection;
pub mod report;
pub mod scaling;
pub mod throttle;
pub mod training;

pub use cost::{CycleBreakdown, EnergyLedger, ModelConfig};
pub use inference::{evaluate_inference, InferenceResult};
pub use latency::{LatencyEntry, LatencyTable, SERVING_PRECISIONS};
pub use protection::{protection_tax, ProtectionTax};
pub use report::{layer_reports, LayerReport};
pub use scaling::{
    degraded_throughput, elastic_training_curve, inference_core_scaling, quarantine_retention,
    training_chip_scaling,
    DegradedPoint, ElasticPoint, ScalePoint,
};
pub use throttle::{throttling_study, ThrottleStudy};
pub use training::{evaluate_training, TrainingResult};
