//! Shared cost structures: cycle breakdown and energy accounting.

use rapid_arch::geometry::ChipConfig;
use rapid_arch::power::PowerModel;
use rapid_arch::precision::Precision;
use serde::{Deserialize, Serialize};

/// Model-level knobs that are not part of the silicon characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Silicon power characterization.
    pub power: PowerModel,
    /// Fixed per-compute-layer-instance cost (program distribution, token
    /// synchronization, drain) in cycles.
    pub per_layer_overhead_cycles: f64,
    /// Activity factor of the MPE array during overhead (residue /
    /// block-load / stall) cycles, as a fraction of full-rate dynamic
    /// power.
    pub idle_activity: f64,
    /// Fraction of gradient-communication time hidden under compute during
    /// training (0.0 = fully exposed update phase).
    pub comm_overlap: f64,
    /// Fraction of LRF block-load time exposed on the critical path (the
    /// rest hides behind the previous tile's drain).
    pub blockload_exposure: f64,
    /// Fraction of systolic fill/drain time exposed (consecutive blocks
    /// chain through the array).
    pub fill_exposure: f64,
    /// Cost of one backward pass (dgrad or wgrad) relative to the forward
    /// pass: rotated kernels and weight-shaped reductions map worse onto
    /// the weight-stationary dataflow.
    pub backward_derate: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            power: PowerModel::rapid_7nm(),
            per_layer_overhead_cycles: 400.0,
            idle_activity: 0.10,
            comm_overlap: 0.0,
            blockload_exposure: 0.6,
            fill_exposure: 0.5,
            backward_derate: 1.4,
        }
    }
}

/// Compute-cycle breakdown in the paper's four categories (Fig 17).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Conv/GEMM cycles at the MAC-rate lower bound (includes layers kept
    /// at FP16).
    pub conv_ideal: f64,
    /// Conv/GEMM overheads: residue, block-loads, pipeline fill, imbalance
    /// and fixed per-layer costs.
    pub conv_overhead: f64,
    /// Quantization / precision-conversion cycles (FP16 ⇄ INT4/FP8).
    pub quant: f64,
    /// Auxiliary operations on the SFU (activations, norms, pooling...).
    pub aux: f64,
}

impl CycleBreakdown {
    /// Total compute cycles.
    pub fn total(&self) -> f64 {
        self.conv_ideal + self.conv_overhead + self.quant + self.aux
    }

    /// Fractions `[conv, overhead, quant, aux]` (zeros if empty).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; 4];
        }
        [self.conv_ideal / t, self.conv_overhead / t, self.quant / t, self.aux / t]
    }

    /// Accumulates another breakdown.
    pub fn add(&mut self, other: &CycleBreakdown) {
        self.conv_ideal += other.conv_ideal;
        self.conv_overhead += other.conv_overhead;
        self.quant += other.quant;
        self.aux += other.aux;
    }
}

/// Energy ledger for one evaluation, in joules per component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// MPE dynamic energy (useful MACs).
    pub mpe_j: f64,
    /// MPE idle/overhead toggling energy.
    pub mpe_idle_j: f64,
    /// SFU dynamic energy.
    pub sfu_j: f64,
    /// Scratchpad (L0+L1) access energy.
    pub sram_j: f64,
    /// External memory energy.
    pub dram_j: f64,
    /// Ring / chip-to-chip link energy.
    pub interconnect_j: f64,
    /// Leakage over the execution time.
    pub static_j: f64,
}

impl EnergyLedger {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.mpe_j
            + self.mpe_idle_j
            + self.sfu_j
            + self.sram_j
            + self.dram_j
            + self.interconnect_j
            + self.static_j
    }

    /// Accumulates another ledger.
    pub fn add(&mut self, other: &EnergyLedger) {
        self.mpe_j += other.mpe_j;
        self.mpe_idle_j += other.mpe_idle_j;
        self.sfu_j += other.sfu_j;
        self.sram_j += other.sram_j;
        self.dram_j += other.dram_j;
        self.interconnect_j += other.interconnect_j;
        self.static_j += other.static_j;
    }
}

/// Total SFU lanes across a chip.
pub fn sfu_lanes(chip: &ChipConfig) -> f64 {
    f64::from(chip.cores) * chip.core.sfu_ops_per_cycle() as f64
}

/// Total corelets across a chip.
pub fn total_corelets(chip: &ChipConfig) -> u32 {
    chip.cores * chip.core.corelets
}

/// Storage bytes of an activation/weight element at a precision.
pub fn elem_bytes(p: Precision) -> f64 {
    p.bytes()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = CycleBreakdown { conv_ideal: 50.0, conv_overhead: 14.0, quant: 17.0, aux: 19.0 };
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[0], 0.5);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        assert_eq!(CycleBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn ledger_totals() {
        let mut a = EnergyLedger { mpe_j: 1.0, ..Default::default() };
        let b = EnergyLedger { sfu_j: 2.0, static_j: 3.0, ..Default::default() };
        a.add(&b);
        assert_eq!(a.total(), 6.0);
    }

    #[test]
    fn chip_lane_counts() {
        let chip = ChipConfig::rapid_4core();
        assert_eq!(sfu_lanes(&chip), 1024.0);
        assert_eq!(total_corelets(&chip), 8);
    }
}
