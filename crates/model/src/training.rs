//! Distributed training-step evaluation (Figs 15, 18b).
//!
//! The training system (paper §IV-A, Fig 11) is data-parallel: each chip
//! trains `minibatch / chips` samples, stashes forward activations to its
//! HBM, and exchanges weight gradients over the 128 GBps chip-to-chip
//! links during the update phase. In HFP8 mode the forward pass uses
//! 8-bit weights, so the weight-broadcast half of the exchange moves 8-bit
//! payloads (§V-F).

use crate::cost::{elem_bytes, EnergyLedger, ModelConfig};
use rapid_arch::geometry::SystemConfig;
use rapid_arch::precision::Precision;
use rapid_compiler::mapping::map_layer;
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_workloads::graph::Network;
use serde::{Deserialize, Serialize};

/// Result of one training-step evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingResult {
    /// Benchmark name.
    pub network: String,
    /// Training precision (FP16 baseline or HFP8).
    pub precision: Precision,
    /// Global minibatch size.
    pub minibatch: u64,
    /// Wall time of one training step, seconds.
    pub step_time_s: f64,
    /// Inputs trained per second (Fig 15).
    pub inputs_per_s: f64,
    /// Per-chip on-chip compute time, seconds.
    pub compute_s: f64,
    /// Per-chip HBM transfer time (activation stash + weights), seconds.
    pub memory_s: f64,
    /// Gradient/weight exchange time over the chip links, seconds.
    pub comm_s: f64,
    /// Sustained useful training throughput in T(FL)OPS
    /// (2 ops × 3 passes × MACs × minibatch / step time).
    pub sustained_tflops: f64,
    /// Energy per step across the system.
    pub energy: EnergyLedger,
}

/// Evaluates one training step of `net` on `system` at `precision`.
///
/// # Panics
///
/// Panics if `minibatch` is zero or smaller than the chip count.
pub fn evaluate_training(
    net: &Network,
    system: &SystemConfig,
    precision: Precision,
    minibatch: u64,
    cfg: &ModelConfig,
) -> TrainingResult {
    assert!(minibatch >= u64::from(system.chips), "minibatch must cover every chip");
    let chip = &system.chip;
    let local_batch = minibatch / u64::from(system.chips);
    // Data parallelism extends across the cores within a chip (paper §V-F:
    // "these studies used data-parallelism"): each core trains its own
    // slice of the chip's samples with a replica of the weights. At large
    // chip counts the per-core batch shrinks toward 1 and utilization
    // collapses — the Fig 18b saturation.
    let per_core_batch = local_batch.div_ceil(u64::from(chip.cores)).max(1);
    let plan = compile(net, chip, &CompileOptions::for_precision(precision));
    let corelet = &chip.core.corelet;
    // Per-core resources: 2 corelets and their SFU lanes.
    let core_corelets = chip.core.corelets;
    let core_lanes = chip.core.sfu_ops_per_cycle() as f64;
    let f_hz = chip.freq_ghz * 1e9;
    let pm = &cfg.power;
    let dyn_scale = pm.dyn_scale(chip.freq_ghz);

    let mut compute_cycles = 0.0f64;
    let mut stash_bytes = 0.0f64;
    let mut total_macs = 0u64;
    let mut energy = EnergyLedger::default();

    for (layer, lp) in net.layers.iter().zip(&plan.layers) {
        let rep = layer.repeat as f64;
        if !layer.op.is_compute() {
            // Forward + backward auxiliary work (per core, on its slice).
            let cycles =
                2.0 * layer.aux_lane_cycles() * per_core_batch as f64 / core_lanes;
            compute_cycles += cycles;
            energy.sfu_j += 2.0
                * layer.aux_lane_cycles()
                * local_batch as f64
                * pm.energy.sfu_op_pj
                * dyn_scale
                * 1e-12;
            continue;
        }

        // Forward pass + dgrad + wgrad: the backward GEMMs move the same
        // MAC volumes (transposed), but map worse onto the
        // weight-stationary array — dgrad streams rotated kernels and
        // wgrad reduces over the batch/spatial axis into weight-shaped
        // outputs — so each backward pass is derated.
        let fwd =
            map_layer(&layer.op, lp.precision, per_core_batch, corelet, core_corelets);
        let passes = 1.0 + 2.0 * cfg.backward_derate;
        let exposed = fwd.compute_cycles
            + cfg.blockload_exposure * fwd.blockload_cycles
            + cfg.fill_exposure * fwd.fill_cycles;
        compute_cycles += passes * (exposed * rep + cfg.per_layer_overhead_cycles * rep);

        // HFP8 conversions: activations, errors and weight copies re-round
        // once per pass (per core, on its slice).
        let out_elems = layer.op.output_elems() as f64 * rep * local_batch as f64;
        let core_out_elems = layer.op.output_elems() as f64 * rep * per_core_batch as f64;
        let conv_lane_ops = lp.quant.lane_cycles_per_elem() * core_out_elems * passes;
        compute_cycles += conv_lane_ops / core_lanes;
        energy.sfu_j += lp.quant.lane_cycles_per_elem()
            * out_elems
            * passes
            * pm.energy.sfu_op_pj
            * dyn_scale
            * 1e-12;

        // Optimizer: FP32 weight update + chunk-accumulated gradient
        // reduction on the SFU (≈6 lane-cycles per weight; every core
        // updates its own weight replica).
        let w_elems = layer.op.weight_elems() as f64 * rep;
        compute_cycles += 6.0 * w_elems / core_lanes;
        energy.sfu_j += 6.0
            * w_elems
            * f64::from(chip.cores)
            * pm.energy.sfu_op_pj
            * dyn_scale
            * 1e-12;

        // Backward data reorganization: wgrad and dgrad consume transposed
        // activation/error tiles, produced by the SFU permute engines.
        let shuffle_lane_ops = 2.0 * core_out_elems * 2.0;
        compute_cycles += shuffle_lane_ops / core_lanes;
        energy.sfu_j +=
            2.0 * out_elems * 2.0 * pm.energy.sfu_op_pj * dyn_scale * 1e-12;

        // Activation stash: forward activations (at the training precision)
        // and FP16 error tensors are written and read back for wgrad/dgrad
        // — "training is memory intensive as activations produced during
        // the forward pass need to be retained" (§V-C).
        // Each layer stashes both its forward activations (training
        // precision) and its FP16 error tensors, written once and read
        // back once; frameworks additionally retain pre-activation copies
        // for the non-linearity backward, doubling the footprint.
        stash_bytes += 4.0 * out_elems * (elem_bytes(lp.precision) + 2.0);

        let macs = layer.macs() * local_batch * 3;
        total_macs += macs;
        energy.mpe_j +=
            macs as f64 * 2.0 * pm.energy.mpe_op_pj(lp.precision) * dyn_scale * 1e-12;
        energy.mpe_idle_j += passes
            * (fwd.overhead_cycles() * rep)
            * chip.macs_per_cycle(lp.precision) as f64
            * 2.0
            * pm.energy.mpe_op_pj(lp.precision)
            * cfg.idle_activity
            * dyn_scale
            * 1e-12;
        let sram_bytes = (layer.op.input_elems() + 2 * layer.op.output_elems()) as f64
            * rep
            * local_batch as f64
            * passes
            * elem_bytes(lp.precision);
        energy.sram_j +=
            sram_bytes * (pm.energy.l1_byte_pj + pm.energy.l0_byte_pj) * dyn_scale * 1e-12;
    }

    // Weights stream from HBM each pass when the model exceeds the chip's
    // distributed L1 (64 MB on the 32-core chip).
    let weight_bytes: f64 = net
        .layers
        .iter()
        .zip(&plan.layers)
        .filter(|(l, _)| l.op.is_compute())
        .map(|(l, lp)| l.op.weight_elems() as f64 * l.repeat as f64 * elem_bytes(lp.precision))
        .sum();
    let l1_total = chip.cores as f64 * chip.core.l1_bytes as f64;
    let weight_traffic = if weight_bytes > 0.5 * l1_total { 3.0 * weight_bytes } else { 0.0 };

    let mem_bytes = stash_bytes + weight_traffic;
    let memory_s = mem_bytes / (chip.mem_bw_gbps * 1e9);
    energy.dram_j +=
        mem_bytes * pm.energy.hbm_byte_pj * 1e-12 * f64::from(system.chips);

    let compute_s = compute_cycles / f_hz;

    // Update phase: ring all-reduce of FP16 gradients, then a broadcast of
    // updated weights at the training storage width (8-bit in HFP8 mode).
    let comm_s = if system.chips > 1 {
        let n = f64::from(system.chips);
        let grad_bytes = net.total_weights() as f64 * 2.0; // FP16 gradients
        let wcast_bytes = net.total_weights() as f64
            * if precision == Precision::Hfp8 { 1.0 } else { 2.0 };
        let bytes = (n - 1.0) / n * (grad_bytes + wcast_bytes);
        let s = bytes / (system.link_bw_gbps * 1e9);
        energy.interconnect_j +=
            bytes * pm.energy.link_byte_pj * 1e-12 * f64::from(system.chips);
        s * (1.0 - cfg.comm_overlap)
    } else {
        0.0
    };

    let step_time_s = compute_s.max(memory_s) + comm_s;
    energy.static_j = pm.static_power_w(chip.cores, chip.freq_ghz)
        * f64::from(system.chips)
        * step_time_s;
    // Dynamic energy above was accounted per chip for compute terms; scale
    // by chip count (every chip does the same local work).
    energy.mpe_j *= f64::from(system.chips);
    energy.mpe_idle_j *= f64::from(system.chips);
    energy.sfu_j *= f64::from(system.chips);
    energy.sram_j *= f64::from(system.chips);

    let total_system_macs = total_macs * u64::from(system.chips);
    TrainingResult {
        network: net.name.clone(),
        precision,
        minibatch,
        step_time_s,
        inputs_per_s: minibatch as f64 / step_time_s,
        compute_s,
        memory_s,
        comm_s,
        sustained_tflops: total_system_macs as f64 * 2.0 / step_time_s / 1e12,
        energy,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_workloads::suite::benchmark;

    fn run(name: &str, p: Precision) -> TrainingResult {
        let net = benchmark(name).unwrap();
        let sys = SystemConfig::training_4x32();
        evaluate_training(&net, &sys, p, 512, &ModelConfig::default())
    }

    #[test]
    fn hfp8_speedup_in_paper_band() {
        // Fig 15: HFP8 over FP16 training speedups range 1.1×–2×.
        for name in ["resnet50", "vgg16", "bert"] {
            let fp16 = run(name, Precision::Fp16);
            let hfp8 = run(name, Precision::Hfp8);
            let speedup = fp16.step_time_s / hfp8.step_time_s;
            assert!((1.05..=2.2).contains(&speedup), "{name}: speedup {speedup}");
        }
    }

    #[test]
    fn sustained_tflops_in_paper_band() {
        // "FP8 training ... achieves a sustained 102 - 588 TFLOPS".
        for name in ["vgg16", "resnet50", "bert"] {
            let r = run(name, Precision::Hfp8);
            assert!(
                (50.0..786.0).contains(&r.sustained_tflops),
                "{name}: {} TFLOPS",
                r.sustained_tflops
            );
        }
    }

    #[test]
    fn training_is_slower_per_input_than_inference_would_be() {
        let r = run("resnet50", Precision::Hfp8);
        // 512 inputs in a step; throughput should be meaningfully below the
        // pure-compute bound but nonzero.
        assert!(r.inputs_per_s > 100.0, "{}", r.inputs_per_s);
        assert!(r.step_time_s > r.comm_s);
    }

    #[test]
    fn hfp8_reduces_communication() {
        let fp16 = run("vgg16", Precision::Fp16);
        let hfp8 = run("vgg16", Precision::Hfp8);
        assert!(hfp8.comm_s < fp16.comm_s);
    }

    #[test]
    fn single_chip_has_no_comm() {
        let net = benchmark("resnet50").unwrap();
        let sys = SystemConfig::training_4x32().with_chips(1);
        let r = evaluate_training(&net, &sys, Precision::Hfp8, 512, &ModelConfig::default());
        assert_eq!(r.comm_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "minibatch must cover every chip")]
    fn tiny_minibatch_panics() {
        let net = benchmark("resnet50").unwrap();
        let sys = SystemConfig::training_4x32();
        let _ = evaluate_training(&net, &sys, Precision::Hfp8, 2, &ModelConfig::default());
    }
}
