//! SECDED(39,32) error-correcting code for scratchpad words.
//!
//! Classic extended Hamming: 32 data bits are spread over codeword
//! positions `1..=38`, six check bits sit at the power-of-two positions
//! (`1, 2, 4, 8, 16, 32`), and position `0` holds an overall parity bit.
//! The decoder computes the 6-bit syndrome `s` (the XOR of the position
//! indices of all set bits) and the overall parity `P`:
//!
//! | `s`    | `P`  | meaning                       | action            |
//! |--------|------|-------------------------------|-------------------|
//! | 0      | even | clean                         | deliver           |
//! | any    | odd  | single-bit error at pos `s`   | flip + deliver    |
//! | ≠ 0    | even | double-bit error              | escalate (DED)    |
//!
//! Single Error Correct, Double Error Detect — every 1-bit upset is
//! repaired transparently on read, every 2-bit upset is *detected* and
//! escalated instead of silently delivered. Storage overhead is 7 bits
//! per 32-bit word ([`STORAGE_OVERHEAD`] ≈ 21.9 %), the figure the
//! `rapid-arch` protection-tax model charges.

/// Bits in a full codeword: 32 data + 6 check + 1 overall parity.
pub const CODEWORD_BITS: u32 = 39;

/// Extra storage per data bit: 7 check bits per 32-bit word.
pub const STORAGE_OVERHEAD: f64 = 7.0 / 32.0;

/// Check-bit positions (powers of two) within the codeword.
const CHECK_POSITIONS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Returns masks `MASK[j]` selecting every codeword position `p` in
/// `1..=38` with bit `j` of `p` set — the parity groups.
const fn parity_masks() -> [u64; 6] {
    let mut masks = [0u64; 6];
    let mut j = 0;
    while j < 6 {
        let mut p = 1u32;
        while p <= 38 {
            if p & (1 << j) != 0 {
                masks[j] |= 1 << p;
            }
            p += 1;
        }
        j += 1;
    }
    masks
}

const PARITY_MASKS: [u64; 6] = parity_masks();

/// Whether codeword position `p` (1..=38) holds a data bit.
#[inline]
fn is_data_position(p: u32) -> bool {
    (1..=38).contains(&p) && !p.is_power_of_two()
}

/// Encodes 32 data bits into a 39-bit SECDED codeword (bit `i` of the
/// result is codeword position `i`).
pub fn encode(data: u32) -> u64 {
    let mut cw = 0u64;
    let mut di = 0u32;
    let mut p = 1u32;
    while p <= 38 {
        if is_data_position(p) {
            if (data >> di) & 1 == 1 {
                cw |= 1 << p;
            }
            di += 1;
        }
        p += 1;
    }
    for (j, mask) in PARITY_MASKS.iter().enumerate() {
        if (cw & mask).count_ones() % 2 == 1 {
            cw |= 1 << CHECK_POSITIONS[j];
        }
    }
    if cw.count_ones() % 2 == 1 {
        cw |= 1; // overall parity at position 0
    }
    cw
}

/// Extracts the 32 data bits from a codeword (no checking).
pub fn data_of(cw: u64) -> u32 {
    let mut data = 0u32;
    let mut di = 0u32;
    let mut p = 1u32;
    while p <= 38 {
        if is_data_position(p) {
            if (cw >> p) & 1 == 1 {
                data |= 1 << di;
            }
            di += 1;
        }
        p += 1;
    }
    data
}

/// Outcome of decoding one stored codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// Syndrome zero, parity even: the stored data is intact.
    Clean,
    /// A single data-bit upset was corrected; the payload is the repaired
    /// data word.
    CorrectedData(u32),
    /// A single check-bit or parity-bit upset was corrected; the data was
    /// never wrong.
    CorrectedCheck,
    /// Two bits upset: detectable, not correctable. The data cannot be
    /// trusted and must be escalated.
    DoubleError,
}

/// Decodes a 39-bit codeword: SEC corrects, DED escalates.
pub fn decode(cw: u64) -> Decoded {
    let mut syndrome = 0u32;
    for (j, mask) in PARITY_MASKS.iter().enumerate() {
        if (cw & mask).count_ones() % 2 == 1 {
            syndrome |= 1 << j;
        }
    }
    let parity_odd = cw.count_ones() % 2 == 1;
    match (syndrome, parity_odd) {
        (0, false) => Decoded::Clean,
        (0, true) => Decoded::CorrectedCheck, // the parity bit itself flipped
        (s, true) => {
            if is_data_position(s) {
                Decoded::CorrectedData(data_of(cw ^ (1u64 << s)))
            } else {
                Decoded::CorrectedCheck
            }
        }
        (_, false) => Decoded::DoubleError,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn clean_round_trip_every_pattern_class() {
        for data in [0u32, u32::MAX, 0xDEAD_BEEF, 1, 0x8000_0000, 0x5555_5555, 0xAAAA_AAAA] {
            let cw = encode(data);
            assert_eq!(data_of(cw), data);
            assert_eq!(decode(cw), Decoded::Clean, "{data:#x}");
            assert!(cw < (1 << 39));
        }
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        for data in [0u32, 0xDEAD_BEEF, 0x0F0F_0F0F, u32::MAX] {
            let cw = encode(data);
            for bit in 0..CODEWORD_BITS {
                let damaged = cw ^ (1u64 << bit);
                match decode(damaged) {
                    Decoded::CorrectedData(d) => {
                        assert_eq!(d, data, "bit {bit} of {data:#x}")
                    }
                    Decoded::CorrectedCheck => {
                        // Check/parity-bit flip: the data bits are intact.
                        assert_eq!(data_of(damaged), data, "bit {bit}");
                    }
                    other => panic!("bit {bit} of {data:#x}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected_never_miscorrected() {
        let data = 0xCAFE_F00Du32;
        let cw = encode(data);
        for b1 in 0..CODEWORD_BITS {
            for b2 in (b1 + 1)..CODEWORD_BITS {
                let damaged = cw ^ (1u64 << b1) ^ (1u64 << b2);
                assert_eq!(
                    decode(damaged),
                    Decoded::DoubleError,
                    "flips at {b1}+{b2} must be DED"
                );
            }
        }
    }

    #[test]
    fn overhead_constant_matches_geometry() {
        assert!((STORAGE_OVERHEAD - 7.0 / 32.0).abs() < 1e-12);
        assert_eq!(CODEWORD_BITS, 32 + 6 + 1);
    }
}
