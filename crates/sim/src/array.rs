//! The corelet's systolic MPE array as a functional, cycle-tracked state
//! machine.
//!
//! The array executes the weight-stationary dataflow of Fig 5 one
//! (co-tile, ci-block) stationary block at a time:
//!
//! 1. **BlockLoad** — pull the block's weights from the weight link into
//!    the LRFs (the array is occupied, as with the `BlockLoad` MPE
//!    instruction);
//! 2. **Fill** — systolic pipeline fill (`rows + cols` cycles);
//! 3. **Stream** — consume input positions from the input link at up to
//!    `ci_tile(precision)` elements/cycle, issuing the FMMA work
//!    functionally through the `rapid-numerics` pipelines (chunk-based
//!    accumulation, zero-gating);
//! 4. signal the weight sequencer (token) so the next block may load.
//!
//! Values are checked against reference GEMMs in the driver's tests; the
//! cycle counts are what the calibration experiment (E9) compares with the
//! analytical model.

use crate::error::SimError;
use crate::seq::Link;
use crate::token::TokenFile;
use rapid_arch::geometry::CoreletConfig;
use rapid_arch::precision::Precision;
use rapid_numerics::accumulate::ChunkAccumulator;
use rapid_numerics::fma::FmaMode;
use rapid_numerics::int::{IntAccumulator, QuantParams};

/// Token the array signals when a stationary block has fully streamed and
/// its LRF may be overwritten.
pub const TOKEN_BLOCK_FREE: u8 = 0;

/// How the array's datapath computes (which pipeline + quantizers).
#[derive(Debug, Clone)]
pub enum Datapath {
    /// FPU pipeline (FP16 or HFP8); operands are already exact members of
    /// the mode's formats.
    Float {
        /// FMA mode (fixes operand formats and sub-SIMD factor).
        mode: FmaMode,
    },
    /// FXU pipeline: INT4/INT2 codes with INT16-chunk accumulation.
    Int {
        /// Input-activation quantization.
        qa: QuantParams,
        /// Weight quantization.
        qb: QuantParams,
    },
}

/// One output tile's accumulators.
#[derive(Debug)]
enum AccBank {
    Float(Vec<ChunkAccumulator>),
    Int(Vec<IntAccumulator>, f32),
}

/// Phase of the block state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    BlockLoad,
    Fill(u64),
    Stream,
    Done,
}

/// Static description of the GEMM the array runs: `C[M,N] = A[M,K]×B[K,N]`
/// restricted to this corelet's share of output tiles.
#[derive(Debug, Clone)]
pub struct ArrayJob {
    /// Stream positions (rows of A).
    pub m: u64,
    /// Reduction length.
    pub k: u64,
    /// Output-column tiles owned by this corelet: `(col_start, width)`.
    pub tiles: Vec<(u64, u64)>,
    /// Execution precision.
    pub precision: Precision,
}

/// The corelet MPE array simulator.
#[derive(Debug)]
pub struct MpeArray {
    cfg: CoreletConfig,
    job: ArrayJob,
    datapath: Datapath,
    // Iteration state.
    tile_idx: usize,
    block_idx: u64,
    n_blocks: u64,
    phase: Phase,
    // Current stationary block.
    lrf: Vec<f32>, // [ci_b × tile_width], row-major by ci
    lrf_filled: u64,
    // Current streaming position.
    pos: u64,
    pos_buf: Vec<f32>,
    // Per-(position, col) accumulators for the current tile.
    acc: Option<AccBank>,
    /// Completed outputs: `(row, col, value)` triples.
    pub outputs: Vec<(u64, u64, f32)>,
    /// Cycles spent per phase: `[blockload, fill, stream, starved]`.
    pub phase_cycles: [u64; 4],
    /// MACs actually issued (zero-gated included).
    pub macs: u64,
    /// Zero-gated MACs.
    pub zero_gated: u64,
}

impl MpeArray {
    /// Creates the array for a job on this corelet.
    ///
    /// # Panics
    ///
    /// Panics if the job has no tiles or a zero reduction. Use
    /// [`MpeArray::try_new`] for a structured error instead.
    // Infallible wrapper: the only failure is the validated job shape.
    #[allow(clippy::expect_used)]
    pub fn new(cfg: CoreletConfig, job: ArrayJob, datapath: Datapath) -> Self {
        Self::try_new(cfg, job, datapath).expect("invalid array job")
    }

    /// [`MpeArray::new`] that rejects structurally invalid jobs (no tiles,
    /// zero reduction, or no stream positions) with
    /// [`SimError::InvalidConfig`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending field.
    pub fn try_new(
        cfg: CoreletConfig,
        job: ArrayJob,
        datapath: Datapath,
    ) -> Result<Self, SimError> {
        if job.tiles.is_empty() {
            return Err(SimError::InvalidConfig("job must own at least one tile".to_string()));
        }
        if job.k == 0 || job.m == 0 {
            return Err(SimError::InvalidConfig(format!(
                "degenerate GEMM: m = {}, k = {}",
                job.m, job.k
            )));
        }
        let ci_lrf = u64::from(cfg.ci_lrf_max(job.precision));
        let n_blocks = job.k.div_ceil(ci_lrf);
        let mut array = Self {
            cfg,
            job,
            datapath,
            tile_idx: 0,
            block_idx: 0,
            n_blocks,
            phase: Phase::BlockLoad,
            lrf: Vec::new(),
            lrf_filled: 0,
            pos: 0,
            pos_buf: Vec::new(),
            acc: None,
            outputs: Vec::new(),
            phase_cycles: [0; 4],
            macs: 0,
            zero_gated: 0,
        };
        array.start_tile();
        Ok(array)
    }

    fn ci_lrf(&self) -> u64 {
        u64::from(self.cfg.ci_lrf_max(self.job.precision))
    }

    /// Reduction depth of the current block.
    fn block_ci(&self) -> u64 {
        let ci_lrf = self.ci_lrf();
        let start = self.block_idx * ci_lrf;
        (self.job.k - start).min(ci_lrf)
    }

    fn tile_width(&self) -> u64 {
        self.job.tiles[self.tile_idx].1
    }

    fn start_tile(&mut self) {
        let w = (self.tile_width() * self.job.m) as usize;
        self.acc = Some(match &self.datapath {
            Datapath::Float { mode } => AccBank::Float(
                (0..w).map(|_| ChunkAccumulator::new(*mode, self.ci_lrf() as usize)).collect(),
            ),
            Datapath::Int { qa, qb } => {
                AccBank::Int((0..w).map(|_| IntAccumulator::new(64)).collect(), qa.scale() * qb.scale())
            }
        });
        self.block_idx = 0;
        self.begin_block();
    }

    fn begin_block(&mut self) {
        self.lrf.clear();
        self.lrf_filled = 0;
        self.pos = 0;
        self.pos_buf.clear();
        self.phase = Phase::BlockLoad;
    }

    /// Whether the whole job completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Total cycles the array has been ticked.
    pub fn total_cycles(&self) -> u64 {
        self.phase_cycles.iter().sum()
    }

    /// A composite counter that changes whenever the array makes forward
    /// progress, for watchdog change-detection. Deliberately excludes the
    /// block-load and starvation cycle counters, which tick even when the
    /// array is wedged waiting on data that will never arrive.
    pub fn progress_marker(&self) -> u64 {
        self.macs
            .wrapping_add(self.outputs.len() as u64)
            .wrapping_add(self.lrf_filled)
            .wrapping_add(self.pos)
            .wrapping_add(self.pos_buf.len() as u64)
            .wrapping_add(self.block_idx)
            .wrapping_add(self.tile_idx as u64)
            .wrapping_add(self.phase_cycles[1])
            .wrapping_add(self.phase_cycles[2])
    }

    /// One cycle: consumes from the weight/input links per the phase.
    pub fn tick(&mut self, weights: &mut Link, inputs: &mut Link, tokens: &mut TokenFile) {
        match self.phase {
            Phase::Done => {}
            Phase::BlockLoad => {
                self.phase_cycles[0] += 1;
                // The LRF write port absorbs up to one L1 port's worth of
                // weights per cycle; the weight link is already
                // budget-limited, so drain whatever arrived.
                let need = self.block_ci() * self.tile_width();
                while self.lrf_filled < need {
                    let Some(v) = weights.pop() else { break };
                    self.lrf.push(v);
                    self.lrf_filled += 1;
                }
                if self.lrf_filled == need {
                    self.phase = Phase::Fill(self.cfg.pipeline_fill_cycles());
                }
            }
            Phase::Fill(n) => {
                self.phase_cycles[1] += 1;
                self.phase = if n <= 1 { Phase::Stream } else { Phase::Fill(n - 1) };
            }
            Phase::Stream => {
                // Per cycle the rows accept up to ci_tile input elements.
                let ci_cyc = u64::from(self.cfg.ci_tile(self.job.precision));
                let need = self.block_ci() as usize;
                let mut taken = 0;
                while taken < ci_cyc && self.pos_buf.len() < need {
                    let Some(v) = inputs.pop() else { break };
                    self.pos_buf.push(v);
                    taken += 1;
                }
                if taken == 0 && self.pos_buf.len() < need {
                    self.phase_cycles[3] += 1; // starved on inputs
                    return;
                }
                self.phase_cycles[2] += 1;
                if self.pos_buf.len() == need {
                    self.issue_position();
                    self.pos_buf.clear();
                    self.pos += 1;
                    if self.pos == self.job.m {
                        self.finish_block(tokens);
                    }
                }
            }
        }
    }

    /// Issues the FMMA work of one completed input position against the
    /// stationary block.
    // The accumulator bank invariantly exists between start_tile and
    // finish_block; a violation is a simulator bug, not a runtime input.
    #[allow(clippy::expect_used)]
    fn issue_position(&mut self) {
        let w = self.tile_width() as usize;
        let base = (self.pos as usize) * w;
        let acc = self.acc.as_mut().expect("tile accumulators exist");
        match (acc, &self.datapath) {
            (AccBank::Float(bank), Datapath::Float { .. }) => {
                for (ci, &a) in self.pos_buf.iter().enumerate() {
                    let row = &self.lrf[ci * w..(ci + 1) * w];
                    for (c, &b) in row.iter().enumerate() {
                        bank[base + c].mac(a, b);
                    }
                }
                self.macs += (self.pos_buf.len() * w) as u64;
            }
            (AccBank::Int(bank, _), Datapath::Int { qa, qb }) => {
                for (ci, &a) in self.pos_buf.iter().enumerate() {
                    let ca = qa.quantize(a);
                    let row = &self.lrf[ci * w..(ci + 1) * w];
                    for (c, &b) in row.iter().enumerate() {
                        bank[base + c].mac(ca, qb.quantize(b));
                    }
                }
                self.macs += (self.pos_buf.len() * w) as u64;
            }
            _ => unreachable!("datapath/accumulator banks always match"),
        }
    }

    // Same invariant as issue_position: the bank exists and is m*w long.
    #[allow(clippy::expect_used)]
    fn finish_block(&mut self, tokens: &mut TokenFile) {
        tokens.signal(TOKEN_BLOCK_FREE);
        self.block_idx += 1;
        if self.block_idx < self.n_blocks {
            self.begin_block();
            return;
        }
        // Tile complete: drain accumulators to the output stream.
        let (col_start, w) = self.job.tiles[self.tile_idx];
        let acc = self.acc.take().expect("tile accumulators exist");
        match acc {
            AccBank::Float(bank) => {
                let mut it = bank.into_iter();
                for r in 0..self.job.m {
                    for c in 0..w {
                        let a = it.next().expect("bank sized m*w");
                        // Gating statistics accumulate per tile.
                        self.zero_gated += a.zero_gated();
                        self.outputs.push((r, col_start + c, a.finish()));
                    }
                }
            }
            AccBank::Int(bank, scale) => {
                let mut it = bank.into_iter();
                for r in 0..self.job.m {
                    for c in 0..w {
                        let a = it.next().expect("bank sized m*w");
                        self.zero_gated += a.zero_gated();
                        self.outputs.push((r, col_start + c, a.finish() as f32 * scale));
                    }
                }
            }
        }
        self.tile_idx += 1;
        if self.tile_idx == self.job.tiles.len() {
            self.phase = Phase::Done;
        } else {
            self.start_tile();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn drive(
        array: &mut MpeArray,
        weights: &mut Link,
        inputs: &mut Link,
        feed: impl Fn(u64) -> (Vec<f32>, Vec<f32>),
    ) -> u64 {
        // Test harness: refill links greedily each cycle from the feed
        // closure (cycle -> (weight elems, input elems) to offer).
        let mut tokens = TokenFile::new(2);
        let mut cycle = 0u64;
        while !array.is_done() {
            let (ws, is) = feed(cycle);
            for w in ws {
                let _ = weights.push(w);
            }
            for i in is {
                let _ = inputs.push(i);
            }
            array.tick(weights, inputs, &mut tokens);
            cycle += 1;
            assert!(cycle < 1_000_000, "array did not finish");
        }
        cycle
    }

    #[test]
    fn tiny_fp16_gemm_is_exact() {
        // 2×2 GEMM with one tile of width 2, k=2.
        let cfg = CoreletConfig::default();
        let job = ArrayJob { m: 2, k: 2, tiles: vec![(0, 2)], precision: Precision::Fp16 };
        let a = [[1.0f32, 2.0], [3.0, 4.0]]; // [m][k]
        let b = [[5.0f32, 6.0], [7.0, 8.0]]; // [k][n]
        let mut array = MpeArray::new(cfg, job, Datapath::Float { mode: FmaMode::Fp16 });
        let mut wl = Link::new(1024);
        let mut il = Link::new(1024);
        // Weights stream ci-major: row ci=0 (cols), row ci=1.
        for row in &b {
            for &v in row {
                wl.push(v);
            }
        }
        // Inputs: position 0 (k elems), position 1.
        for row in &a {
            for &v in row {
                il.push(v);
            }
        }
        drive(&mut array, &mut wl, &mut il, |_| (vec![], vec![]));
        let mut c = [[0.0f32; 2]; 2];
        for &(r, cc, v) in &array.outputs {
            c[r as usize][cc as usize] = v;
        }
        assert_eq!(c, [[19.0, 22.0], [43.0, 50.0]]);
        assert_eq!(array.macs, 8);
    }

    #[test]
    fn stream_rate_matches_ci_tile() {
        // k = 64 at FP16: 8 elems/cycle -> 8 stream cycles per position.
        let cfg = CoreletConfig::default();
        let job = ArrayJob { m: 4, k: 64, tiles: vec![(0, 8)], precision: Precision::Fp16 };
        let mut array = MpeArray::new(cfg, job, Datapath::Float { mode: FmaMode::Fp16 });
        let mut wl = Link::new(4096);
        let mut il = Link::new(4096);
        for _ in 0..64 * 8 {
            wl.push(0.5);
        }
        for _ in 0..4 * 64 {
            il.push(1.0);
        }
        drive(&mut array, &mut wl, &mut il, |_| (vec![], vec![]));
        // 4 positions × ceil(64/8) = 32 stream cycles.
        assert_eq!(array.phase_cycles[2], 32);
        for &(_, _, v) in &array.outputs {
            assert_eq!(v, 32.0); // 64 × 0.5
        }
    }

    #[test]
    fn starved_inputs_are_counted() {
        let cfg = CoreletConfig::default();
        let job = ArrayJob { m: 1, k: 8, tiles: vec![(0, 1)], precision: Precision::Fp16 };
        let mut array = MpeArray::new(cfg, job, Datapath::Float { mode: FmaMode::Fp16 });
        let mut wl = Link::new(64);
        let mut il = Link::new(64);
        for _ in 0..8 {
            wl.push(1.0);
        }
        // Deliver inputs 1 element every fourth cycle — slower than the
        // block-load + fill phases can buffer ahead.
        let cycles = drive(&mut array, &mut wl, &mut il, |c| {
            if c % 4 == 0 {
                (vec![], vec![1.0])
            } else {
                (vec![], vec![])
            }
        });
        assert!(array.phase_cycles[3] > 0, "starvation must be visible");
        assert!(cycles > 8);
        assert_eq!(array.outputs[0].2, 8.0);
    }

    #[test]
    fn int4_datapath_quantizes_and_scales() {
        use rapid_numerics::int::{IntFormat, Signedness};
        let cfg = CoreletConfig::default();
        let job = ArrayJob { m: 1, k: 4, tiles: vec![(0, 2)], precision: Precision::Int4 };
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 7.0);
        let qb = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 7.0);
        let mut array = MpeArray::new(cfg, job, Datapath::Int { qa, qb });
        let mut wl = Link::new(64);
        let mut il = Link::new(64);
        // b rows (k=4, n=2): all ones; a: [1, 2, 3, 4].
        for _ in 0..4 {
            wl.push(1.0);
            wl.push(2.0);
        }
        for v in [1.0, 2.0, 3.0, 4.0] {
            il.push(v);
        }
        drive(&mut array, &mut wl, &mut il, |_| (vec![], vec![]));
        // Exact: col0 = 10, col1 = 20 (all values on the integer grid).
        assert_eq!(array.outputs[0].2, 10.0);
        assert_eq!(array.outputs[1].2, 20.0);
    }

    #[test]
    fn multi_block_reduction_signals_tokens() {
        // k = 300 at FP16 (LRF depth 128): 3 blocks -> 3 block-free tokens.
        let cfg = CoreletConfig::default();
        let job = ArrayJob { m: 2, k: 300, tiles: vec![(0, 4)], precision: Precision::Fp16 };
        let mut array = MpeArray::new(cfg, job, Datapath::Float { mode: FmaMode::Fp16 });
        let mut wl = Link::new(8192);
        let mut il = Link::new(8192);
        let mut tokens = TokenFile::new(2);
        for _ in 0..300 * 4 {
            wl.push(0.25);
        }
        for _ in 0..2 * 300 {
            il.push(2.0);
        }
        let mut guard = 0;
        while !array.is_done() {
            array.tick(&mut wl, &mut il, &mut tokens);
            guard += 1;
            assert!(guard < 100_000);
        }
        assert_eq!(tokens.value(TOKEN_BLOCK_FREE), 3);
        // 300 × 0.25 × 2 = 150, exactly representable.
        assert_eq!(array.outputs[0].2, 150.0);
    }
}
