//! Forward-progress watchdogs: change-detection over a composite progress
//! marker that converts a wedged simulation (token-wait cycles, starved
//! links that will never fill) into a structured [`SimError::Deadlock`]
//! report in bounded time, instead of an unbounded spin or a bare panic.

use crate::error::SimError;
use crate::seq::{Link, Scratchpad, Sequencer};
use crate::token::TokenFile;
use rapid_arch::isa::SeqInstr;

/// Default no-progress window, in cycles. Chosen far above any legitimate
/// stall the core simulator produces (block loads, pipeline fills,
/// fault-injected sequencer stalls of tens of cycles) so the watchdog
/// never trips on a healthy run.
pub const DEFAULT_WATCHDOG_WINDOW: u64 = 100_000;

/// A no-forward-progress detector.
///
/// Callers feed it a *progress marker* — any counter-like composite that
/// changes whenever the machine does useful work — once per cycle. If the
/// marker holds the same value for a whole window of cycles, the watchdog
/// trips.
#[derive(Debug, Clone)]
pub struct Watchdog {
    window: u64,
    last_marker: u64,
    last_change_cycle: u64,
    primed: bool,
}

impl Watchdog {
    /// Creates a watchdog that trips after `window` cycles without a
    /// marker change (`window` is clamped to at least 1).
    pub fn new(window: u64) -> Self {
        Self { window: window.max(1), last_marker: 0, last_change_cycle: 0, primed: false }
    }

    /// Observes the marker at `cycle`. Returns `true` when the marker has
    /// been static for the whole window — the caller should abort with a
    /// deadlock report.
    pub fn observe(&mut self, cycle: u64, marker: u64) -> bool {
        if !self.primed || marker != self.last_marker {
            self.primed = true;
            self.last_marker = marker;
            self.last_change_cycle = cycle;
            return false;
        }
        cycle.saturating_sub(self.last_change_cycle) >= self.window
    }
}

/// Runs a set of data-sequencing programs against one shared token file
/// until every program retires, returning the cycle count.
///
/// Each program gets its own generously sized link and an unlimited port
/// budget, so the only way to block is token synchronization — this is the
/// harness for demonstrating (and testing) that a *cyclic* token
/// dependency produces a clean [`SimError::Deadlock`] rather than a hang.
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] with per-sequencer snapshots and the
/// token counter values when no sequencer makes progress for `window`
/// cycles.
pub fn run_token_programs(
    programs: &[Vec<SeqInstr>],
    n_tokens: usize,
    window: u64,
) -> Result<u64, SimError> {
    let spad = Scratchpad::new(4096);
    let mut seqs: Vec<Sequencer> = programs.iter().map(|p| Sequencer::new(p.clone(), 2.0)).collect();
    let mut links: Vec<Link> = programs.iter().map(|_| Link::new(1 << 20)).collect();
    let mut tokens = TokenFile::new(n_tokens);
    let mut dog = Watchdog::new(window);
    let mut cycle = 0u64;
    while seqs.iter().any(|s| !s.is_done()) {
        for (seq, link) in seqs.iter_mut().zip(links.iter_mut()) {
            let mut budget = f64::INFINITY;
            seq.tick(&spad, link, &mut tokens, &mut budget);
        }
        cycle += 1;
        // Marker: retired pcs + streamed elements + signalled tokens. Any
        // of these moving means the system is not wedged.
        let marker = seqs
            .iter()
            .map(|s| s.pc() as u64 + s.elems_moved)
            .sum::<u64>()
            .wrapping_add(tokens.snapshot().iter().map(|&(_, v)| u64::from(v)).sum::<u64>());
        if dog.observe(cycle, marker) {
            return Err(SimError::Deadlock {
                cycle,
                sequencer_states: seqs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s.snapshot(format!("seq{i}")))
                    .collect(),
                waiting_tokens: tokens.snapshot(),
            });
        }
    }
    Ok(cycle)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_does_not_trip_while_marker_moves() {
        let mut dog = Watchdog::new(10);
        for c in 0..1000 {
            assert!(!dog.observe(c, c), "marker changes every cycle");
        }
    }

    #[test]
    fn watchdog_trips_after_exactly_one_window() {
        let mut dog = Watchdog::new(10);
        assert!(!dog.observe(0, 42));
        for c in 1..10 {
            assert!(!dog.observe(c, 42), "cycle {c} is inside the window");
        }
        assert!(dog.observe(10, 42));
    }

    #[test]
    fn independent_programs_finish() {
        // Producer signals, consumer waits: completes.
        let producer = vec![SeqInstr::Read { addr: 0, len: 4, stride: 1 }, SeqInstr::SignalToken { token: 0 }];
        let consumer = vec![SeqInstr::WaitToken { token: 0, count: 1 }, SeqInstr::Read { addr: 0, len: 4, stride: 1 }];
        let cycles = run_token_programs(&[producer, consumer], 1, 100).expect("no deadlock");
        assert!(cycles > 0);
    }

    #[test]
    fn token_cycle_deadlocks_with_clean_report() {
        // A waits on token 1 before signalling 0; B waits on 0 before
        // signalling 1: a classic circular wait.
        let a = vec![SeqInstr::WaitToken { token: 1, count: 1 }, SeqInstr::SignalToken { token: 0 }];
        let b = vec![SeqInstr::WaitToken { token: 0, count: 1 }, SeqInstr::SignalToken { token: 1 }];
        let err = run_token_programs(&[a, b], 2, 50).expect_err("must deadlock");
        match err {
            SimError::Deadlock { cycle, sequencer_states, waiting_tokens } => {
                assert!((50..200).contains(&cycle), "bounded detection, got {cycle}");
                assert_eq!(sequencer_states.len(), 2);
                assert_eq!(sequencer_states[0].waiting_on, Some((1, 1)));
                assert_eq!(sequencer_states[1].waiting_on, Some((0, 1)));
                assert_eq!(waiting_tokens, vec![(0, 0), (1, 0)]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }
}
