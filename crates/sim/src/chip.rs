//! Chip-level simulation: a GEMM partitioned across the chip's cores with
//! the operand distribution carried over the bidirectional ring — the
//! composition the 4-core chip of Fig 9 performs, with the MNI multicast
//! of Fig 8 broadcasting the shared operand.
//!
//! This stitches the two timing simulators together: `rapid-ring` times
//! the weight/input distribution phase, `rapid-sim`'s cores time the
//! compute, and double-buffering overlaps the next core-group transfer
//! with the current compute as the paper's software stack does (§III-E).

use crate::error::SimError;
use crate::gemm::{CoreSim, GemmJob, SimResult};
use crate::sfu::{SfuStage, SfuUnit};
use rapid_arch::geometry::CoreConfig;
use rapid_arch::precision::Precision;
use rapid_fault::FaultPlan;
use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::{NumericsError, Tensor};
use rapid_ring::sim::{memory_read, RingSim};
use rapid_telemetry::{Telemetry, TraceSink};

/// Chrome-trace process id the SFU pool's track lives under (cores use
/// their ids, the ring uses [`rapid_ring::RING_TRACE_PID`]).
pub const SFU_TRACE_PID: u32 = 1001;

/// A chip-level GEMM job.
#[derive(Debug, Clone)]
pub struct ChipGemmJob {
    /// Left operand `[m, k]` — broadcast to every core (shared input).
    pub a: Tensor,
    /// Right operand `[k, n]` — column-partitioned across cores.
    pub b: Tensor,
    /// Execution precision.
    pub precision: Precision,
}

/// Result of a chip-level simulated GEMM.
#[derive(Debug, Clone)]
pub struct ChipSimResult {
    /// The assembled result `[m, n]`.
    pub c: Tensor,
    /// Ring cycles to distribute the operands (memory → cores, with the
    /// shared input multicast).
    pub distribution_cycles: u64,
    /// Compute cycles of the slowest core.
    pub compute_cycles: u64,
    /// End-to-end cycles with distribution overlapped against compute via
    /// double buffering (`max` composition plus the first-tile fill).
    pub total_cycles: u64,
    /// Per-core GEMM results.
    pub cores: Vec<SimResult>,
}

/// Simulates a GEMM across `n_cores` cores of a chip.
///
/// # Panics
///
/// Panics if shapes are incompatible or `n_cores == 0`. Use
/// [`try_run_chip_gemm`] for a structured error instead.
// Infallible wrapper: the only failures are the validated job shape and
// core count; the ring budget is far above any reachable drain time.
#[allow(clippy::expect_used)]
pub fn run_chip_gemm(job: &ChipGemmJob, core_cfg: CoreConfig, n_cores: usize) -> ChipSimResult {
    try_run_chip_gemm(job, core_cfg, n_cores).expect("invalid chip GEMM job")
}

/// [`run_chip_gemm`] that surfaces malformed jobs and simulation failures
/// as [`SimError`] instead of panicking.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for `n_cores == 0`,
/// [`SimError::Numerics`] for incompatible operand shapes,
/// [`SimError::Ring`] if the distribution phase fails to drain, and
/// propagates any core-simulation error.
pub fn try_run_chip_gemm(
    job: &ChipGemmJob,
    core_cfg: CoreConfig,
    n_cores: usize,
) -> Result<ChipSimResult, SimError> {
    try_run_chip_gemm_with(job, core_cfg, n_cores, None)
}

/// [`try_run_chip_gemm`] with an optional fault plan applied to the
/// operand-distribution ring (drops, duplicates, slot delays). The compute
/// phase is unaffected; ring faults show up as distribution-cycle
/// inflation, never as value corruption (dropped flits are retransmitted).
///
/// # Errors
///
/// Same contract as [`try_run_chip_gemm`].
pub fn try_run_chip_gemm_with(
    job: &ChipGemmJob,
    core_cfg: CoreConfig,
    n_cores: usize,
    ring_faults: Option<FaultPlan>,
) -> Result<ChipSimResult, SimError> {
    try_run_chip_gemm_degraded(job, core_cfg, n_cores, 0, ring_faults)
}

/// [`try_run_chip_gemm_with`] on a chip with permanently failed cores:
/// bit `i` of `failed_mask` marks core `i` dead (the mask a
/// [`rapid_fault::FaultConfig::core_failed_mask`] carries, or one built
/// directly). The failed cores take no work — their column partitions are
/// remapped across the survivors — while the ring keeps its full node
/// count (the physical interconnect is intact; a dead core's station just
/// forwards).
///
/// Because every output element is an independent chunked accumulation
/// along `k`, the remap changes only *which core* computes each column,
/// never the value: the degraded result is bit-identical to the healthy
/// chip's, and only `compute_cycles`/`total_cycles` pay for the loss.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] when every core is masked out; otherwise
/// the same contract as [`try_run_chip_gemm`].
pub fn try_run_chip_gemm_degraded(
    job: &ChipGemmJob,
    core_cfg: CoreConfig,
    n_cores: usize,
    failed_mask: u64,
    ring_faults: Option<FaultPlan>,
) -> Result<ChipSimResult, SimError> {
    try_run_chip_gemm_telemetry(job, core_cfg, n_cores, failed_mask, ring_faults, None)
}

/// [`try_run_chip_gemm_degraded`] driven by a live health
/// [`CoreMap`](rapid_health::CoreMap) instead of a static mask — the
/// dynamic generalization the online health monitor maintains. Consult the
/// map between batches: quarantined cores take no work (their column
/// partitions remap across the in-service cores, values unchanged), and a
/// reinstated core resumes work on the next call with no other state to
/// update. `map.epoch()` is the cheap staleness check for callers caching
/// anything derived from the layout.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] when the map has excluded every core;
/// otherwise the same contract as [`try_run_chip_gemm`].
pub fn try_run_chip_gemm_mapped(
    job: &ChipGemmJob,
    core_cfg: CoreConfig,
    map: &rapid_health::CoreMap,
    ring_faults: Option<FaultPlan>,
    tele: Option<&mut Telemetry>,
) -> Result<ChipSimResult, SimError> {
    try_run_chip_gemm_telemetry(
        job,
        core_cfg,
        map.cores() as usize,
        map.failed_mask(),
        ring_faults,
        tele,
    )
}

/// [`try_run_chip_gemm_degraded`] with an optional telemetry bundle. With
/// `tele = Some`, distribution/compute/total cycle counters and ring
/// transport statistics accumulate under `chip.*`, every core contributes
/// its `sim.core<id>.*` counters, and — when the bundle carries a trace
/// sink — the trace gains the per-core sequencer/array tracks, a `ring`
/// track group with per-node flit events, and an `sfu` track timing the
/// operand quantization that runs on the SFU arrays. `tele = None` is the
/// byte-for-byte uninstrumented path.
///
/// # Errors
///
/// Same contract as [`try_run_chip_gemm_degraded`].
pub fn try_run_chip_gemm_telemetry(
    job: &ChipGemmJob,
    core_cfg: CoreConfig,
    n_cores: usize,
    failed_mask: u64,
    ring_faults: Option<FaultPlan>,
    mut tele: Option<&mut Telemetry>,
) -> Result<ChipSimResult, SimError> {
    if n_cores == 0 {
        return Err(SimError::InvalidConfig("need at least one core".to_string()));
    }
    let active: Vec<usize> =
        (0..n_cores).filter(|&i| i >= 64 || failed_mask & (1 << i) == 0).collect();
    if active.is_empty() {
        return Err(SimError::InvalidConfig(format!(
            "all {n_cores} cores marked failed (mask {failed_mask:#x})"
        )));
    }
    if job.a.shape().len() != 2
        || job.b.shape().len() != 2
        || job.a.shape()[1] != job.b.shape()[0]
    {
        return Err(SimError::Numerics(NumericsError::ShapeMismatch {
            expected: "a [m, k] × b [k, n]".to_string(),
            actual: format!("a {:?} × b {:?}", job.a.shape(), job.b.shape()),
        }));
    }
    let (m, k) = (job.a.shape()[0], job.a.shape()[1]);
    let n = job.b.shape()[1];

    // --- Distribution phase on the ring -------------------------------
    // Every surviving core needs the whole A (multicast from memory); each
    // needs only its own remapped column slice of B (unicast reads).
    let elem_bytes = job.precision.bytes();
    let mut ring = RingSim::try_new(n_cores, 50)?;
    if let Some(plan) = ring_faults {
        ring.set_fault_plan(plan);
    }
    if tele.as_deref().is_some_and(Telemetry::tracing) {
        ring.set_trace_sink(TraceSink::new());
    }
    let a_bytes = (m * k) as f64 * elem_bytes;
    memory_read(&mut ring, 1, &active, a_bytes.ceil() as u32);
    let cols_per_core = n.div_ceil(active.len());
    for (slot, &core) in active.iter().enumerate() {
        let cols = cols_per_core.min(n.saturating_sub(slot * cols_per_core));
        if cols == 0 {
            continue;
        }
        let b_bytes = (k * cols) as f64 * elem_bytes;
        memory_read(&mut ring, 2 + core as u16, &[core], b_bytes.ceil() as u32);
    }
    let distribution_cycles = ring.run_until_idle(100_000_000)?;
    if let Some(t) = tele.as_deref_mut() {
        ring.record_metrics(&mut t.registry, "chip.ring");
        if let (Some(ring_trace), Some(sink)) = (ring.take_trace_sink(), t.trace.as_mut()) {
            sink.merge(ring_trace);
        }
        // The operand quantization that produced the distributed tensors
        // runs on the SFU arrays: time it honestly at the SFU's quantize
        // throughput and give it its own track (the cost estimate depends
        // only on element counts and lane count, never on values).
        let sfu = SfuUnit::new(core_cfg.corelet.sfu_lanes);
        let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        let (_, a_cycles) = sfu.apply(&SfuStage::Quantize(q), &job.a);
        let (_, b_cycles) = sfu.apply(&SfuStage::Quantize(q), &job.b);
        t.registry.add("chip.sfu.quantize_cycles", a_cycles + b_cycles);
        if let Some(sink) = t.trace.as_mut() {
            sink.track(SFU_TRACE_PID, 0, "sfu", "quantize");
            sink.complete(SFU_TRACE_PID, 0, "sfu", "quantize(A)", 0, a_cycles);
            sink.complete(SFU_TRACE_PID, 0, "sfu", "quantize(B)", a_cycles, b_cycles);
        }
    }

    // --- Compute phase on the surviving cores ---------------------------
    let mut c = Tensor::zeros(vec![m, n]);
    let mut cores = Vec::new();
    let mut compute_cycles = 0u64;
    for (slot, &core_id) in active.iter().enumerate() {
        let c0 = slot * cols_per_core;
        if c0 >= n {
            break;
        }
        let cols = cols_per_core.min(n - c0);
        // Slice B's columns for this core.
        let mut b_slice = Tensor::zeros(vec![k, cols]);
        for r in 0..k {
            for cc in 0..cols {
                b_slice.set(&[r, cc], job.b.get(&[r, c0 + cc]));
            }
        }
        let sim = CoreSim::new(core_cfg).with_core_id(core_id as u32);
        let r = sim.try_run_gemm_instrumented(
            &GemmJob { a: job.a.clone(), b: b_slice, precision: job.precision },
            None,
            tele.as_deref_mut(),
        )?;
        for row in 0..m {
            for cc in 0..cols {
                c.set(&[row, c0 + cc], r.c.get(&[row, cc]));
            }
        }
        compute_cycles = compute_cycles.max(r.cycles);
        cores.push(r);
    }

    // Double buffering: the next tile's distribution hides under this
    // tile's compute; one initial fill is exposed. For a single tile the
    // exposure is the smaller of the two phases.
    let total_cycles = compute_cycles.max(distribution_cycles)
        + compute_cycles.min(distribution_cycles).min(distribution_cycles / 8);
    if let Some(t) = tele {
        t.registry.add("chip.distribution_cycles", distribution_cycles);
        t.registry.add("chip.compute_cycles", compute_cycles);
        t.registry.add("chip.total_cycles", total_cycles);
        t.registry.counter_max("chip.cores_active", active.len() as u64);
    }
    Ok(ChipSimResult { c, distribution_cycles, compute_cycles, total_cycles, cores })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_numerics::fma::FmaMode;
    use rapid_numerics::gemm::matmul_emulated;

    fn job(m: usize, k: usize, n: usize, p: Precision) -> ChipGemmJob {
        ChipGemmJob {
            a: Tensor::random_uniform(vec![m, k], -1.0, 1.0, 90),
            b: Tensor::random_uniform(vec![k, n], -1.0, 1.0, 91),
            precision: p,
        }
    }

    #[test]
    fn chip_gemm_is_bitexact_vs_emulated() {
        let j = job(8, 128, 256, Precision::Fp16);
        let r = run_chip_gemm(&j, CoreConfig::default(), 4);
        let ci_lrf = CoreConfig::default().corelet.ci_lrf_max(Precision::Fp16) as usize;
        let (expect, _) = matmul_emulated(FmaMode::Fp16, &j.a, &j.b, ci_lrf);
        assert_eq!(r.c, expect);
    }

    #[test]
    fn more_cores_cut_compute_cycles() {
        let j = job(16, 256, 512, Precision::Fp16);
        let one = run_chip_gemm(&j, CoreConfig::default(), 1);
        let four = run_chip_gemm(&j, CoreConfig::default(), 4);
        assert!(
            four.compute_cycles * 3 < one.compute_cycles,
            "4-core {} vs 1-core {}",
            four.compute_cycles,
            one.compute_cycles
        );
        assert_eq!(one.c, four.c, "partitioning must not change values");
    }

    #[test]
    fn distribution_overlaps_with_compute() {
        let j = job(16, 256, 256, Precision::Fp16);
        let r = run_chip_gemm(&j, CoreConfig::default(), 4);
        assert!(r.total_cycles < r.compute_cycles + r.distribution_cycles);
        assert!(r.total_cycles >= r.compute_cycles.max(r.distribution_cycles));
    }

    #[test]
    fn try_run_chip_gemm_rejects_bad_jobs() {
        let j = job(4, 16, 16, Precision::Fp16);
        assert!(matches!(
            try_run_chip_gemm(&j, CoreConfig::default(), 0),
            Err(SimError::InvalidConfig(_))
        ));
        let bad = ChipGemmJob { b: Tensor::zeros(vec![17, 16]), ..j };
        assert!(matches!(
            try_run_chip_gemm(&bad, CoreConfig::default(), 2),
            Err(SimError::Numerics(_))
        ));
    }

    #[test]
    fn ring_faults_inflate_distribution_but_never_values() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let j = job(8, 128, 128, Precision::Fp16);
        let clean = run_chip_gemm(&j, CoreConfig::default(), 4);
        let plan = FaultPlan::new(FaultConfig {
            seed: 11,
            ring_drop_rate: 0.02,
            ring_delay_rate: 0.01,
            ..FaultConfig::default()
        });
        let faulty = try_run_chip_gemm_with(&j, CoreConfig::default(), 4, Some(plan))
            .expect("drops are retransmitted, not lost");
        assert_eq!(faulty.c, clean.c, "ring faults must not corrupt values");
        assert!(
            faulty.distribution_cycles >= clean.distribution_cycles,
            "faulty {} vs clean {}",
            faulty.distribution_cycles,
            clean.distribution_cycles
        );
    }

    #[test]
    fn degraded_chip_keeps_values_and_pays_cycles() {
        let j = job(8, 128, 256, Precision::Fp16);
        let healthy = run_chip_gemm(&j, CoreConfig::default(), 4);
        // Core 2 dead: work remaps across cores {0, 1, 3}.
        let degraded =
            try_run_chip_gemm_degraded(&j, CoreConfig::default(), 4, 0b0100, None).unwrap();
        assert_eq!(degraded.c, healthy.c, "remap must not change values");
        assert_eq!(degraded.cores.len(), 3);
        assert!(
            degraded.compute_cycles > healthy.compute_cycles,
            "3 survivors {} should be slower than 4 cores {}",
            degraded.compute_cycles,
            healthy.compute_cycles
        );
        // All cores dead is a configuration error, not a panic.
        assert!(matches!(
            try_run_chip_gemm_degraded(&j, CoreConfig::default(), 4, 0b1111, None),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mapped_chip_follows_quarantine_and_reinstatement() {
        use rapid_health::CoreMap;
        let j = job(8, 128, 256, Precision::Fp16);
        let healthy = run_chip_gemm(&j, CoreConfig::default(), 4);
        let mut map = CoreMap::new(4);
        // Full-strength map is identical to the plain path.
        let r = try_run_chip_gemm_mapped(&j, CoreConfig::default(), &map, None, None).unwrap();
        assert_eq!(r.c, healthy.c);
        assert_eq!(r.cores.len(), 4);
        // Quarantining core 2 matches the static-degraded result exactly.
        map.exclude(2);
        let q = try_run_chip_gemm_mapped(&j, CoreConfig::default(), &map, None, None).unwrap();
        let s = try_run_chip_gemm_degraded(&j, CoreConfig::default(), 4, 0b0100, None).unwrap();
        assert_eq!(q.c, healthy.c, "remap must not change values");
        assert_eq!(q.compute_cycles, s.compute_cycles);
        assert_eq!(q.cores.len(), 3);
        // Reinstatement restores full strength on the next batch.
        map.restore(2);
        let back = try_run_chip_gemm_mapped(&j, CoreConfig::default(), &map, None, None).unwrap();
        assert_eq!(back.compute_cycles, healthy.compute_cycles);
        // An empty map is a configuration error, not a panic.
        for c in 0..4 {
            map.exclude(c);
        }
        assert!(matches!(
            try_run_chip_gemm_mapped(&j, CoreConfig::default(), &map, None, None),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shared_input_multicast_beats_replicated_reads() {
        // The distribution phase multicasts A once; four replicated reads
        // of the same bytes serialize at the memory port.
        let a_bytes = 64 * 256 * 2u32;
        let mut mc = RingSim::new(4, 50);
        memory_read(&mut mc, 1, &[0, 1, 2, 3], a_bytes);
        let t_mc = mc.run_until_idle(10_000_000).expect("drains");
        let mut uc = RingSim::new(4, 50);
        for (tag, core) in [(1u16, 0usize), (2, 1), (3, 2), (4, 3)] {
            memory_read(&mut uc, tag, &[core], a_bytes);
        }
        let t_uc = uc.run_until_idle(10_000_000).expect("drains");
        // One multicast stream vs four serialized streams: ~3-4x faster
        // (bubble flow control costs the multicast a little headroom).
        assert!(
            (t_mc as f64) * 2.5 < t_uc as f64,
            "multicast {t_mc} should be much faster than replicated reads {t_uc}"
        );
    }
}
