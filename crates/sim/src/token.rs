//! Token-based hardware synchronization (paper §II-A): small counters that
//! producer units signal and consumer units wait on, ordering accesses to
//! shared buffers without centralized control.

/// A file of token counters shared by the programmable units of one core.
#[derive(Debug, Clone)]
pub struct TokenFile {
    counters: Vec<u32>,
}

impl TokenFile {
    /// Creates `n` token counters, all zero.
    pub fn new(n: usize) -> Self {
        Self { counters: vec![0; n] }
    }

    /// Signals token `t` once.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn signal(&mut self, t: u8) {
        self.counters[t as usize] += 1;
    }

    /// Attempts to consume `count` signals of token `t`. Returns `true`
    /// and decrements on success; leaves the counter untouched otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn try_consume(&mut self, t: u8, count: u16) -> bool {
        let c = &mut self.counters[t as usize];
        if *c >= u32::from(count) {
            *c -= u32::from(count);
            true
        } else {
            false
        }
    }

    /// Current value of token `t`.
    pub fn value(&self, t: u8) -> u32 {
        self.counters[t as usize]
    }

    /// All `(token, value)` pairs — attached to deadlock reports so the
    /// hung system's synchronization state is visible.
    pub fn snapshot(&self) -> Vec<(u8, u32)> {
        self.counters.iter().enumerate().map(|(t, &v)| (t as u8, v)).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn signal_and_consume() {
        let mut tf = TokenFile::new(4);
        assert!(!tf.try_consume(2, 1));
        tf.signal(2);
        tf.signal(2);
        assert_eq!(tf.value(2), 2);
        assert!(tf.try_consume(2, 2));
        assert!(!tf.try_consume(2, 1));
    }

    #[test]
    fn tokens_are_independent() {
        let mut tf = TokenFile::new(2);
        tf.signal(0);
        assert!(!tf.try_consume(1, 1));
        assert!(tf.try_consume(0, 1));
    }
}
