//! Structured simulator errors: every failure the cycle-tick machinery
//! can hit — malformed jobs, numeric guard trips, ring timeouts, and
//! watchdog-detected deadlocks — surfaces as a [`SimError`] instead of a
//! panic, with enough state attached to diagnose the hang.

use rapid_numerics::NumericsError;
use rapid_ring::sim::{RingError, RingTimeout};
use std::fmt;

/// A point-in-time dump of one sequencer, attached to deadlock reports so
/// the stuck program counter and blocking token are visible without a
/// debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqSnapshot {
    /// Which sequencer this is ("weights", "inputs", or a caller label).
    pub name: String,
    /// Program counter at the time of the dump.
    pub pc: usize,
    /// Total program length (so `pc == len` reads as "retired").
    pub program_len: usize,
    /// The `(token, count)` the sequencer is blocked on, when its current
    /// instruction is a `WaitToken`.
    pub waiting_on: Option<(u8, u16)>,
    /// Elements streamed so far.
    pub elems_moved: u64,
    /// Cycles spent stalled.
    pub stall_cycles: u64,
}

impl fmt::Display for SeqSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: pc {}/{}, {} elems moved, {} stall cycles",
            self.name, self.pc, self.program_len, self.elems_moved, self.stall_cycles
        )?;
        if let Some((token, count)) = self.waiting_on {
            write!(f, ", waiting on token {token} (count {count})")?;
        }
        Ok(())
    }
}

/// Errors from the core/chip simulators.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The watchdog saw no forward progress for its whole window: the
    /// machine is wedged (e.g. a token-wait cycle). Carries the state
    /// needed to see *why*.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Per-sequencer state dumps.
        sequencer_states: Vec<SeqSnapshot>,
        /// Token counter values `(token, value)` at the time of the hang.
        waiting_tokens: Vec<(u8, u32)>,
    },
    /// A numeric-layer failure (bad shapes, guard trips, invalid formats).
    Numerics(NumericsError),
    /// A ring-interconnect failure during operand distribution.
    Ring(RingError),
    /// A scratchpad read hit a double-bit upset: SECDED detected it but
    /// cannot correct it, and the delivered word was corrupt. The run
    /// aborts rather than compute on bad data.
    EccUncorrectable {
        /// Cycle at which the poisoned read was detected.
        cycle: u64,
        /// Scratchpad element address of the damaged word.
        addr: usize,
    },
    /// A structurally invalid simulator configuration or job.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, sequencer_states, waiting_tokens } => {
                write!(f, "simulation deadlocked at cycle {cycle}: no forward progress")?;
                for s in sequencer_states {
                    write!(f, "\n  {s}")?;
                }
                if !waiting_tokens.is_empty() {
                    write!(f, "\n  tokens:")?;
                    for (t, v) in waiting_tokens {
                        write!(f, " [{t}]={v}")?;
                    }
                }
                Ok(())
            }
            SimError::Numerics(e) => write!(f, "numerics error: {e}"),
            SimError::Ring(e) => write!(f, "ring error: {e}"),
            SimError::EccUncorrectable { cycle, addr } => write!(
                f,
                "uncorrectable scratchpad error at cycle {cycle}: \
                 double-bit upset in word {addr} (SECDED detected, cannot correct)"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Numerics(e) => Some(e),
            SimError::Ring(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for SimError {
    fn from(e: NumericsError) -> Self {
        SimError::Numerics(e)
    }
}

impl From<RingError> for SimError {
    fn from(e: RingError) -> Self {
        SimError::Ring(e)
    }
}

impl From<RingTimeout> for SimError {
    fn from(e: RingTimeout) -> Self {
        SimError::Ring(RingError::from(e))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_includes_state() {
        let e = SimError::Deadlock {
            cycle: 1234,
            sequencer_states: vec![SeqSnapshot {
                name: "weights".to_string(),
                pc: 3,
                program_len: 10,
                waiting_on: Some((0, 1)),
                elems_moved: 42,
                stall_cycles: 999,
            }],
            waiting_tokens: vec![(0, 0), (1, 2)],
        };
        let msg = e.to_string();
        assert!(msg.contains("cycle 1234"), "{msg}");
        assert!(msg.contains("pc 3/10"), "{msg}");
        assert!(msg.contains("waiting on token 0"), "{msg}");
        assert!(msg.contains("[1]=2"), "{msg}");
    }

    #[test]
    fn ecc_display_names_cycle_and_address() {
        let e = SimError::EccUncorrectable { cycle: 77, addr: 4096 };
        let msg = e.to_string();
        assert!(msg.contains("cycle 77"), "{msg}");
        assert!(msg.contains("word 4096"), "{msg}");
        assert!(msg.contains("double-bit"), "{msg}");
    }

    #[test]
    fn conversions_wrap_sources() {
        let n: SimError = NumericsError::InvalidFormat("x".to_string()).into();
        assert!(matches!(n, SimError::Numerics(_)));
        let t: SimError = RingTimeout { cycles: 7 }.into();
        assert!(matches!(t, SimError::Ring(RingError::Timeout(_))));
    }
}
