//! The SFU array as a simulator stage: applies activation / quantization
//! functions to an output stream at the array's lane throughput, using the
//! bit-accurate approximations from `rapid-numerics::sfu`.

use rapid_arch::isa::SfuOpKind;
use rapid_numerics::format::FpFormat;
use rapid_numerics::int::QuantParams;
use rapid_numerics::sfu as fns;
use rapid_numerics::sfu::SfuAccuracy;
use rapid_numerics::Tensor;

/// A fused SFU stage over an output stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SfuStage {
    /// ReLU.
    Relu,
    /// Sigmoid (fast approximation).
    Sigmoid,
    /// Tanh (fast approximation).
    Tanh,
    /// Quantize to an integer grid with per-tensor parameters (the
    /// FP16 → INT4 conversion of the paper's third cycle category).
    Quantize(QuantParams),
}

impl SfuStage {
    /// The ISA op kind this stage lowers to.
    pub fn op_kind(&self) -> SfuOpKind {
        match self {
            SfuStage::Relu => SfuOpKind::Relu,
            SfuStage::Sigmoid => SfuOpKind::Sigmoid,
            SfuStage::Tanh => SfuOpKind::Tanh,
            SfuStage::Quantize(_) => SfuOpKind::Quantize,
        }
    }
}

/// One corelet group's SFU array (a number of FP16 lanes).
#[derive(Debug, Clone, Copy)]
pub struct SfuUnit {
    lanes: u32,
}

impl SfuUnit {
    /// Creates an SFU pool with `lanes` FP16 lanes.
    pub fn new(lanes: u32) -> Self {
        Self { lanes: lanes.max(1) }
    }

    /// Applies a stage to a tensor, returning the result and the lane-time
    /// in cycles (elements / throughput-per-lane / lanes).
    pub fn apply(&self, stage: &SfuStage, x: &Tensor) -> (Tensor, u64) {
        let fp16 = FpFormat::fp16();
        let out = match stage {
            SfuStage::Relu => x.map(|v| fp16.quantize(v.max(0.0))),
            SfuStage::Sigmoid => x.map(|v| fns::sigmoid(v, SfuAccuracy::Fast)),
            SfuStage::Tanh => x.map(|v| fns::tanh(v, SfuAccuracy::Fast)),
            SfuStage::Quantize(q) => x.map(|v| q.fake_quantize(v)),
        };
        let per_lane = self.op_kind_rate(stage);
        let cycles = (x.len() as f64 / (f64::from(self.lanes) * per_lane)).ceil() as u64;
        (out, cycles)
    }

    fn op_kind_rate(&self, stage: &SfuStage) -> f64 {
        stage.op_kind().elems_per_lane_cycle(false)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_numerics::int::{IntFormat, Signedness};

    #[test]
    fn relu_throughput_one_per_lane_cycle() {
        let u = SfuUnit::new(128);
        let x = Tensor::random_uniform(vec![1280], -1.0, 1.0, 80);
        let (y, cycles) = u.apply(&SfuStage::Relu, &x);
        assert_eq!(cycles, 10);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sigmoid_costs_two_slots() {
        let u = SfuUnit::new(128);
        let x = Tensor::random_uniform(vec![1280], -4.0, 4.0, 81);
        let (y, cycles) = u.apply(&SfuStage::Sigmoid, &x);
        assert_eq!(cycles, 20);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn quantize_stage_lands_on_grid() {
        let u = SfuUnit::new(64);
        let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        let x = Tensor::random_uniform(vec![64], -1.0, 1.0, 82);
        let (y, cycles) = u.apply(&SfuStage::Quantize(q), &x);
        assert_eq!(cycles, 1);
        for &v in y.as_slice() {
            let code = (v / q.scale()).round();
            assert!((v - code * q.scale()).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_lane_pool_is_clamped() {
        let u = SfuUnit::new(0);
        let x = Tensor::zeros(vec![4]);
        let (_, cycles) = u.apply(&SfuStage::Relu, &x);
        assert!(cycles >= 4);
    }
}
