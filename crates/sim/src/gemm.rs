//! The core-level GEMM driver: lowers `C = A×B` onto a RaPiD core's two
//! corelets, generates the data-sequencing programs, and runs the
//! cycle-tick simulation to produce both numeric results and cycle counts.

use crate::array::{ArrayJob, Datapath, MpeArray, TOKEN_BLOCK_FREE};
use crate::error::SimError;
use crate::seq::{Link, Scratchpad, Sequencer};
use crate::token::TokenFile;
use crate::watchdog::{Watchdog, DEFAULT_WATCHDOG_WINDOW};
use rapid_arch::geometry::CoreConfig;
use rapid_arch::isa::SeqInstr;
use rapid_arch::precision::Precision;
use rapid_fault::FaultPlan;
use rapid_numerics::fma::FmaMode;
use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::{NumericsError, QTensor, Tensor};
use rapid_telemetry::{MetricsRegistry, SpanCoalescer, Telemetry};

/// The stable label a [`Precision`] carries in telemetry metric names
/// (`sim.macs.fp16`, ...).
pub fn precision_label(p: Precision) -> &'static str {
    match p {
        Precision::Fp32 => "fp32",
        Precision::Fp16 => "fp16",
        Precision::Hfp8 => "hfp8",
        Precision::Int4 => "int4",
        Precision::Int2 => "int2",
    }
}

/// A GEMM job for the core simulator.
#[derive(Debug, Clone)]
pub struct GemmJob {
    /// Left operand `[m, k]` (activations; FP8 (1,4,3) side in HFP8).
    pub a: Tensor,
    /// Right operand `[k, n]` (weights; stationary in the LRFs).
    pub b: Tensor,
    /// Execution precision (FP16, HFP8 or INT4/INT2).
    pub precision: Precision,
}

/// Per-corelet execution report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreletReport {
    /// Total cycles to drain this corelet.
    pub cycles: u64,
    /// Cycles per phase: `[blockload, fill, stream, input-starved]`.
    pub phase_cycles: [u64; 4],
    /// MACs issued.
    pub macs: u64,
    /// Zero-gated MACs.
    pub zero_gated: u64,
    /// Cycles the weight sequencer stalled on the block-free token.
    pub weight_stalls: u64,
}

/// Result of a simulated GEMM.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The numeric result `[m, n]`, bit-exact per the emulated pipelines.
    pub c: Tensor,
    /// Wall cycles (max over corelets; they run concurrently).
    pub cycles: u64,
    /// Per-corelet reports.
    pub corelets: Vec<CoreletReport>,
}

/// A RaPiD core (two corelets sharing the L1, each with its own
/// 128 B/cycle port, §III-D).
#[derive(Debug, Clone)]
pub struct CoreSim {
    cfg: CoreConfig,
    core_id: u32,
    spad_ecc: bool,
}

impl CoreSim {
    /// Creates a simulator for a core configuration. Scratchpads are
    /// SECDED-protected by default (the RaPiD L1 arrays carry ECC).
    pub fn new(cfg: CoreConfig) -> Self {
        Self { cfg, core_id: 0, spad_ecc: true }
    }

    /// Enables or disables scratchpad SECDED. With ECC off, injected
    /// scratchpad bit flips ([`rapid_fault::FaultConfig::spad_flip_rate`])
    /// corrupt streamed operands silently — the unprotected baseline the
    /// protection sweep measures against. On clean data both settings are
    /// bit-identical.
    pub fn with_spad_ecc(mut self, on: bool) -> Self {
        self.spad_ecc = on;
        self
    }

    /// Sets the core id used to label this core's telemetry (metric name
    /// prefixes and trace track groups). Chip-level runs number their
    /// cores; a standalone core is core 0.
    pub fn with_core_id(mut self, core_id: u32) -> Self {
        self.core_id = core_id;
        self
    }

    /// The default RaPiD core.
    pub fn rapid() -> Self {
        Self::new(CoreConfig::default())
    }

    /// The core configuration this simulator models.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs a GEMM on the core, splitting output-column tiles across the
    /// corelets.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes are incompatible or `precision` is
    /// [`Precision::Fp32`] (SFU-only). Use [`CoreSim::try_run_gemm`] to get
    /// an error instead.
    // Infallible wrapper: the only failures are the validated job shape
    // and precision; the watchdog cannot trip without fault injection.
    #[allow(clippy::expect_used)]
    pub fn run_gemm(&self, job: &GemmJob) -> SimResult {
        self.try_run_gemm(job).expect("invalid GEMM job")
    }

    /// Runs a GEMM on the core, returning an error for malformed jobs
    /// (non-matrix operands, mismatched inner dimensions, or the SFU-only
    /// FP32 precision) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Numerics`] wrapping
    /// [`NumericsError::ShapeMismatch`] when the operands are not
    /// `[m, k] × [k, n]` matrices or [`NumericsError::InvalidFormat`] when
    /// `precision` is [`Precision::Fp32`] (which the MPE array cannot run),
    /// and [`SimError::Deadlock`] if the watchdog sees no forward progress
    /// for its whole window.
    pub fn try_run_gemm(&self, job: &GemmJob) -> Result<SimResult, SimError> {
        self.try_run_gemm_with(job, None)
    }

    /// [`CoreSim::try_run_gemm`] with an optional fault plan: when a plan
    /// with a non-zero `seq_stall_rate` is supplied, the corelet sequencers
    /// randomly lose their token-grant slot for a burst of cycles, and the
    /// run-loop watchdog converts any resulting wedge into a structured
    /// [`SimError::Deadlock`]. Passing `None` (or an all-zero-rate plan) is
    /// the bit-exact fast path.
    ///
    /// # Errors
    ///
    /// Same contract as [`CoreSim::try_run_gemm`].
    pub fn try_run_gemm_with(
        &self,
        job: &GemmJob,
        faults: Option<&mut FaultPlan>,
    ) -> Result<SimResult, SimError> {
        self.try_run_gemm_instrumented(job, faults, None)
    }

    /// [`CoreSim::try_run_gemm_with`] with an optional telemetry bundle:
    /// when `tele` is `Some`, per-corelet counters (cycles by phase, MACs,
    /// zero-gated MACs, sequencer stalls and elements moved) accumulate
    /// into the registry under `sim.core<id>.c<corelet>.*`, and — when the
    /// bundle carries a trace sink — every corelet contributes three
    /// Chrome-trace tracks (weight sequencer, input sequencer, array
    /// phases). With `tele = None` the run is byte-for-byte the
    /// uninstrumented path.
    ///
    /// On a watchdog deadlock the partial counters collected up to the
    /// failure cycle are flushed into the registry (plus a
    /// `sim.watchdog.deadlocks` increment and a `deadlock` trace instant)
    /// before the error returns, so stall diagnostics carry the counter
    /// snapshot at the failure cycle.
    ///
    /// # Errors
    ///
    /// Same contract as [`CoreSim::try_run_gemm`].
    pub fn try_run_gemm_instrumented(
        &self,
        job: &GemmJob,
        mut faults: Option<&mut FaultPlan>,
        mut tele: Option<&mut Telemetry>,
    ) -> Result<SimResult, SimError> {
        if job.a.shape().len() != 2
            || job.b.shape().len() != 2
            || job.a.shape()[1] != job.b.shape()[0]
        {
            return Err(SimError::Numerics(NumericsError::ShapeMismatch {
                expected: "a [m, k] × b [k, n]".to_string(),
                actual: format!("a {:?} × b {:?}", job.a.shape(), job.b.shape()),
            }));
        }
        if job.precision == Precision::Fp32 {
            return Err(SimError::Numerics(NumericsError::InvalidFormat(
                "FP32 GEMMs do not execute on the MPE array (SFU-only precision)".to_string(),
            )));
        }
        let (m, k) = (job.a.shape()[0] as u64, job.a.shape()[1] as u64);
        let n = job.b.shape()[1] as u64;

        // Quantize operands once, as they would be stored in the L1.
        let (qa_t, qb_t, datapath) = prepare_operands(job);

        // Partition: output-column tiles round-robin across the corelets;
        // when there are fewer tiles than corelets, replicate the weights
        // and split the streaming rows instead (the compiler's Spatial
        // split, Fig 5 discussion).
        let co_tile = u64::from(self.cfg.corelet.co_tile());
        let tiles: Vec<(u64, u64)> = (0..n.div_ceil(co_tile))
            .map(|t| (t * co_tile, co_tile.min(n - t * co_tile)))
            .collect();
        let n_corelets = self.cfg.corelets as usize;
        // (row_start, row_count, tiles) per corelet.
        type Share = (u64, u64, Vec<(u64, u64)>);
        let mut shares: Vec<Share> = Vec::new();
        if tiles.len() >= n_corelets {
            let mut per: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_corelets];
            for (i, t) in tiles.iter().enumerate() {
                per[i % n_corelets].push(*t);
            }
            shares.extend(per.into_iter().filter(|t| !t.is_empty()).map(|t| (0, m, t)));
        } else {
            let group = n_corelets / tiles.len();
            let rows = m.div_ceil(group as u64);
            for t in &tiles {
                let mut r0 = 0u64;
                while r0 < m {
                    let rc = rows.min(m - r0);
                    shares.push((r0, rc, vec![*t]));
                    r0 += rc;
                }
            }
        }

        let mut c = Tensor::zeros(vec![m as usize, n as usize]);
        let mut reports = Vec::new();
        let mut wall = 0u64;
        for (idx, (row0, rows, tiles)) in shares.into_iter().enumerate() {
            let (outputs, report) = self.run_corelet(
                &qa_t,
                &qb_t,
                row0,
                rows,
                k,
                n,
                &tiles,
                job.precision,
                datapath.clone(),
                faults.as_deref_mut(),
                idx as u32,
                tele.as_deref_mut(),
            )?;
            for (r, cc, v) in outputs {
                c.set(&[(row0 + r) as usize, cc as usize], v);
            }
            wall = wall.max(report.cycles);
            reports.push(report);
        }
        if let Some(t) = tele {
            let reg = &mut t.registry;
            reg.incr("sim.gemm.runs");
            reg.add("sim.gemm.wall_cycles", wall);
            let macs: u64 = reports.iter().map(|r| r.macs).sum();
            let gated: u64 = reports.iter().map(|r| r.zero_gated).sum();
            reg.add(&format!("sim.macs.{}", precision_label(job.precision)), macs);
            reg.add("sim.macs.zero_gated", gated);
            for r in &reports {
                reg.observe("sim.corelet_cycles", r.cycles);
            }
        }
        Ok(SimResult { c, cycles: wall, corelets: reports })
    }

    /// Runs one corelet's share and returns its outputs and report.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn run_corelet(
        &self,
        a: &Tensor,
        b: &Tensor,
        row0: u64,
        m: u64,
        k: u64,
        n: u64,
        tiles: &[(u64, u64)],
        precision: Precision,
        datapath: Datapath,
        mut faults: Option<&mut FaultPlan>,
        corelet_idx: u32,
        mut tele: Option<&mut Telemetry>,
    ) -> Result<(Vec<(u64, u64, f32)>, CoreletReport), SimError> {
        let corelet = self.cfg.corelet;
        let ci_lrf = u64::from(corelet.ci_lrf_max(precision));
        let n_blocks = k.div_ceil(ci_lrf);
        let total_m = a.shape()[0] as u64;
        let b_off = (total_m * k) as usize;

        // Scratchpad image: the whole A at 0, B at b_off
        // (element-addressed); this corelet reads rows [row0, row0+m).
        let mut spad = Scratchpad::new((total_m * k + k * n) as usize);
        spad.store_slice(0, a.as_slice());
        spad.store_slice(b_off, b.as_slice());
        if self.spad_ecc {
            spad = spad.with_ecc();
        }

        // Weight program: wait for the LRF to be free, then stream the
        // stationary block row by row (ci-major within the block).
        let mut wprog = Vec::new();
        for &(col, width) in tiles {
            for blk in 0..n_blocks {
                let ci0 = blk * ci_lrf;
                let ci_b = (k - ci0).min(ci_lrf);
                wprog.push(SeqInstr::WaitToken { token: TOKEN_BLOCK_FREE, count: 1 });
                for ci in 0..ci_b {
                    wprog.push(SeqInstr::Read {
                        addr: (b_off as u64 + (ci0 + ci) * n + col) as u32,
                        len: width as u32,
                        stride: 1,
                    });
                }
            }
        }

        // Input program: for each (tile, block), replay every position's
        // slice of A (reuse across columns happens inside the array).
        let mut iprog = Vec::new();
        for _ in tiles {
            for blk in 0..n_blocks {
                let ci0 = blk * ci_lrf;
                let ci_b = (k - ci0).min(ci_lrf);
                for row in row0..row0 + m {
                    iprog.push(SeqInstr::Read {
                        addr: (row * k + ci0) as u32,
                        len: ci_b as u32,
                        stride: 1,
                    });
                }
            }
        }

        let elem_bytes = precision.bytes();
        let mut wseq = Sequencer::new(wprog, elem_bytes);
        let mut iseq = Sequencer::new(iprog, elem_bytes);
        let mut wlink = Link::new(16 * 1024);
        let mut ilink = Link::new(1024);
        let mut tokens = TokenFile::new(2);
        tokens.signal(TOKEN_BLOCK_FREE); // the first block may load at once

        let job = ArrayJob { m, k, tiles: tiles.to_vec(), precision };
        let mut array = MpeArray::try_new(corelet, job, datapath)?;

        let mut cycles = 0u64;
        let port = f64::from(corelet.l1_bw_bytes_per_cycle);
        // Watchdog: a change-detector over the machine's progress counters
        // replaces the old hard cycle cap, so a wedge surfaces as a
        // structured deadlock report in bounded time.
        let mut dog = Watchdog::new(DEFAULT_WATCHDOG_WINDOW);
        // Fault-injected sequencer stalls: remaining burst cycles per
        // sequencer (a stalled sequencer loses its port turn entirely).
        let (mut wstall, mut istall) = (0u32, 0u32);

        // Trace plumbing: three tracks per corelet (weight sequencer,
        // input sequencer, array phases). Per-cycle labels are derived by
        // diffing the machine's own counters, so the trace is a pure
        // observer — nothing here feeds back into the simulation.
        let pid = self.core_id;
        let tid = corelet_idx * 3;
        let tracing = tele.as_deref().is_some_and(Telemetry::tracing);
        let mut spans = if tracing {
            if let Some(sink) = tele.as_deref_mut().and_then(|t| t.trace.as_mut()) {
                let p = format!("core{}", self.core_id);
                sink.track(pid, tid, &p, &format!("corelet{corelet_idx}.wseq"));
                sink.track(pid, tid + 1, &p, &format!("corelet{corelet_idx}.iseq"));
                sink.track(pid, tid + 2, &p, &format!("corelet{corelet_idx}.array"));
            }
            Some((
                SpanCoalescer::new(pid, tid, "seq"),
                SpanCoalescer::new(pid, tid + 1, "seq"),
                SpanCoalescer::new(pid, tid + 2, "array"),
            ))
        } else {
            None
        };

        while !array.is_done() {
            if let Some(plan) = faults.as_deref_mut().filter(|p| p.seq_enabled()) {
                if wstall == 0 {
                    wstall = plan.seq_stall().unwrap_or(0);
                }
                if istall == 0 {
                    istall = plan.seq_stall().unwrap_or(0);
                }
            }
            // Particle strikes on the scratchpad array: at most one bit
            // per cycle, uniformly over the stored words.
            if let Some(plan) = faults.as_deref_mut().filter(|p| p.spad_enabled()) {
                if let Some((addr, bit)) = plan.spad_flip(spad.len() as u64) {
                    spad.inject_flip(addr as usize, bit);
                }
            }
            let before = spans.as_ref().map(|_| {
                (
                    array.phase_cycles,
                    wseq.stall_cycles,
                    wseq.elems_moved,
                    wseq.waiting_on(),
                    iseq.stall_cycles,
                    iseq.elems_moved,
                )
            });
            let mut budget = port;
            // The L1 port serves the weight stream first (block loads are
            // the critical path), then input streaming.
            if wstall > 0 {
                wstall -= 1;
                wseq.stall_cycles += 1;
            } else {
                wseq.tick(&spad, &mut wlink, &mut tokens, &mut budget);
            }
            if istall > 0 {
                istall -= 1;
                iseq.stall_cycles += 1;
            } else {
                iseq.tick(&spad, &mut ilink, &mut tokens, &mut budget);
            }
            array.tick(&mut wlink, &mut ilink, &mut tokens);
            if let (Some((wsc, isc, asc)), Some(b)) = (spans.as_mut(), before) {
                if let Some(sink) = tele.as_deref_mut().and_then(|t| t.trace.as_mut()) {
                    let (phases, wst, wel, wwait, ist, iel) = b;
                    asc.observe(sink, cycles, phase_delta_label(phases, array.phase_cycles));
                    wsc.observe(sink, cycles, seq_cycle_label(&wseq, wst, wel));
                    isc.observe(sink, cycles, seq_cycle_label(&iseq, ist, iel));
                    // A sequencer that was parked on a WaitToken and moved
                    // on this cycle just had its token granted.
                    if wwait.is_some() && wseq.waiting_on() != wwait {
                        sink.instant(pid, tid, "seq", "token_grant", cycles);
                    }
                }
            }
            cycles += 1;
            // A read hit a double-bit upset this cycle: SECDED detected
            // it but the delivered word was corrupt. Escalate instead of
            // computing on poisoned data.
            if let Some(addr) = spad.take_uncorrectable() {
                if let Some(t) = tele {
                    t.registry.incr("sim.ecc.uncorrectable");
                    record_corelet_counters(
                        &mut t.registry,
                        self.core_id,
                        corelet_idx,
                        cycles,
                        &array,
                        &wseq,
                        &iseq,
                        &spad,
                    );
                    if let (Some((mut wsc, mut isc, mut asc)), Some(sink)) =
                        (spans.take(), t.trace.as_mut())
                    {
                        wsc.finish(sink, cycles);
                        isc.finish(sink, cycles);
                        asc.finish(sink, cycles);
                        sink.instant(pid, tid + 2, "array", "ecc_uncorrectable", cycles);
                    }
                }
                return Err(SimError::EccUncorrectable { cycle: cycles, addr });
            }
            let marker = array
                .progress_marker()
                .wrapping_add(wseq.elems_moved)
                .wrapping_add(iseq.elems_moved)
                .wrapping_add(wseq.pc() as u64)
                .wrapping_add(iseq.pc() as u64);
            if dog.observe(cycles, marker) {
                // Flush partial telemetry so the deadlock diagnosis carries
                // the counter snapshot at the failure cycle.
                if let Some(t) = tele {
                    t.registry.incr("sim.watchdog.deadlocks");
                    t.registry.counter_max("sim.watchdog.deadlock_cycle", cycles);
                    record_corelet_counters(
                        &mut t.registry,
                        self.core_id,
                        corelet_idx,
                        cycles,
                        &array,
                        &wseq,
                        &iseq,
                        &spad,
                    );
                    if let (Some((mut wsc, mut isc, mut asc)), Some(sink)) =
                        (spans.take(), t.trace.as_mut())
                    {
                        wsc.finish(sink, cycles);
                        isc.finish(sink, cycles);
                        asc.finish(sink, cycles);
                        sink.instant(pid, tid + 2, "array", "deadlock", cycles);
                    }
                }
                return Err(SimError::Deadlock {
                    cycle: cycles,
                    sequencer_states: vec![
                        wseq.snapshot("weights".to_string()),
                        iseq.snapshot("inputs".to_string()),
                    ],
                    waiting_tokens: tokens.snapshot(),
                });
            }
        }
        if let Some(t) = tele {
            record_corelet_counters(
                &mut t.registry,
                self.core_id,
                corelet_idx,
                cycles,
                &array,
                &wseq,
                &iseq,
                &spad,
            );
            if let (Some((mut wsc, mut isc, mut asc)), Some(sink)) =
                (spans.take(), t.trace.as_mut())
            {
                wsc.finish(sink, cycles);
                isc.finish(sink, cycles);
                asc.finish(sink, cycles);
            }
        }
        let report = CoreletReport {
            cycles,
            phase_cycles: array.phase_cycles,
            macs: array.macs,
            zero_gated: array.zero_gated,
            weight_stalls: wseq.stall_cycles,
        };
        Ok((array.outputs, report))
    }
}

/// Which array phase consumed the cycle, from the phase-counter delta.
fn phase_delta_label(before: [u64; 4], after: [u64; 4]) -> Option<&'static str> {
    const LABELS: [&str; 4] = ["blockload", "fill", "stream", "starved"];
    (0..4).find(|&i| after[i] > before[i]).map(|i| LABELS[i])
}

/// What a sequencer did this cycle, from its own counters.
fn seq_cycle_label(seq: &Sequencer, stalls_before: u64, elems_before: u64) -> Option<&'static str> {
    if seq.stall_cycles > stalls_before {
        Some("stall")
    } else if seq.elems_moved > elems_before {
        Some("stream")
    } else {
        None
    }
}

/// Accumulates one corelet's end-of-run (or failure-cycle) counters into
/// the registry under `sim.core<id>.c<corelet>.*`, plus the chip-wide
/// `sim.ecc.{sec,ded}` protection counters when the scratchpad is
/// SECDED-protected.
#[allow(clippy::too_many_arguments)]
fn record_corelet_counters(
    reg: &mut MetricsRegistry,
    core_id: u32,
    corelet_idx: u32,
    cycles: u64,
    array: &MpeArray,
    wseq: &Sequencer,
    iseq: &Sequencer,
    spad: &Scratchpad,
) {
    if spad.ecc_enabled() {
        reg.add("sim.ecc.sec", spad.ecc_sec());
        reg.add("sim.ecc.ded", spad.ecc_ded());
    }
    let p = format!("sim.core{core_id}.c{corelet_idx}");
    reg.add(&format!("{p}.cycles"), cycles);
    for (label, v) in
        ["blockload", "fill", "stream", "starved"].iter().zip(array.phase_cycles.iter())
    {
        reg.add(&format!("{p}.{label}_cycles"), *v);
    }
    reg.add(&format!("{p}.macs"), array.macs);
    reg.add(&format!("{p}.zero_gated"), array.zero_gated);
    reg.add(&format!("{p}.wseq_stall_cycles"), wseq.stall_cycles);
    reg.add(&format!("{p}.iseq_stall_cycles"), iseq.stall_cycles);
    reg.add(&format!("{p}.wseq_elems"), wseq.elems_moved);
    reg.add(&format!("{p}.iseq_elems"), iseq.elems_moved);
}

/// Quantizes the operands for storage and picks the array datapath.
fn prepare_operands(job: &GemmJob) -> (Tensor, Tensor, Datapath) {
    match job.precision {
        Precision::Fp16 => {
            let (fa, fb) = FmaMode::Fp16.operand_formats();
            (
                QTensor::quantize(&job.a, fa).into_values(),
                QTensor::quantize(&job.b, fb).into_values(),
                Datapath::Float { mode: FmaMode::Fp16 },
            )
        }
        Precision::Hfp8 => {
            let mode = FmaMode::hfp8_fwd_default();
            let (fa, fb) = mode.operand_formats();
            (
                QTensor::quantize(&job.a, fa).into_values(),
                QTensor::quantize(&job.b, fb).into_values(),
                Datapath::Float { mode },
            )
        }
        Precision::Int4 | Precision::Int2 => {
            let fmt =
                if job.precision == Precision::Int4 { IntFormat::Int4 } else { IntFormat::Int2 };
            let qa = QuantParams::from_abs_max(fmt, Signedness::Signed, job.a.max_abs());
            let qb = QuantParams::from_abs_max(fmt, Signedness::Signed, job.b.max_abs());
            // Store the dequantized grid values; the FXU re-derives codes.
            (
                job.a.map(|v| qa.fake_quantize(v)),
                job.b.map(|v| qb.fake_quantize(v)),
                Datapath::Int { qa, qb },
            )
        }
        // try_run_gemm rejects FP32 before operands are prepared.
        Precision::Fp32 => unreachable!("FP32 rejected by try_run_gemm"),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_numerics::gemm::{matmul_emulated, matmul_int};

    fn job(m: usize, k: usize, n: usize, p: Precision, seed: u64) -> GemmJob {
        GemmJob {
            a: Tensor::random_uniform(vec![m, k], -1.0, 1.0, seed),
            b: Tensor::random_uniform(vec![k, n], -1.0, 1.0, seed + 1),
            precision: p,
        }
    }

    #[test]
    fn fp16_simulation_matches_emulated_gemm_bitexactly() {
        let core = CoreSim::rapid();
        let j = job(16, 200, 96, Precision::Fp16, 50);
        let r = core.run_gemm(&j);
        let ci_lrf = core.cfg.corelet.ci_lrf_max(Precision::Fp16) as usize;
        let (expect, _) = matmul_emulated(FmaMode::Fp16, &j.a, &j.b, ci_lrf);
        assert_eq!(r.c, expect, "simulated values must be bit-exact");
    }

    #[test]
    fn hfp8_simulation_matches_emulated_gemm_bitexactly() {
        let core = CoreSim::rapid();
        let j = job(8, 130, 70, Precision::Hfp8, 52);
        let r = core.run_gemm(&j);
        let ci_lrf = core.cfg.corelet.ci_lrf_max(Precision::Hfp8) as usize;
        let (expect, _) = matmul_emulated(FmaMode::hfp8_fwd_default(), &j.a, &j.b, ci_lrf);
        assert_eq!(r.c, expect);
    }

    #[test]
    fn int4_simulation_matches_emulated_int_gemm() {
        let core = CoreSim::rapid();
        let j = job(4, 96, 64, Precision::Int4, 54);
        let r = core.run_gemm(&j);
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, j.a.max_abs());
        let qb = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, j.b.max_abs());
        let (expect, _) = matmul_int(&j.a, &j.b, qa, qb, 64);
        assert_eq!(r.c, expect);
    }

    #[test]
    fn int2_simulation_matches_emulated_int_gemm() {
        // The double-pumped INT2 path (future work in the paper; the
        // engines exist in the FXU).
        let core = CoreSim::rapid();
        let j = job(4, 64, 64, Precision::Int2, 55);
        let r = core.run_gemm(&j);
        let qa = QuantParams::from_abs_max(IntFormat::Int2, Signedness::Signed, j.a.max_abs());
        let qb = QuantParams::from_abs_max(IntFormat::Int2, Signedness::Signed, j.b.max_abs());
        let (expect, _) = matmul_int(&j.a, &j.b, qa, qb, 64);
        assert_eq!(r.c, expect);
        // INT2 streams 128 channels/cycle: positions complete in 1 cycle.
        let ri = core.run_gemm(&job(4, 64, 64, Precision::Int4, 55));
        assert!(r.corelets[0].phase_cycles[2] <= ri.corelets[0].phase_cycles[2]);
    }

    #[test]
    fn try_run_gemm_rejects_bad_jobs() {
        let core = CoreSim::rapid();
        let bad_shape = GemmJob {
            a: Tensor::zeros(vec![2, 3]),
            b: Tensor::zeros(vec![4, 2]),
            precision: Precision::Fp16,
        };
        assert!(matches!(
            core.try_run_gemm(&bad_shape),
            Err(SimError::Numerics(NumericsError::ShapeMismatch { .. }))
        ));
        let fp32 = GemmJob {
            a: Tensor::zeros(vec![2, 3]),
            b: Tensor::zeros(vec![3, 2]),
            precision: Precision::Fp32,
        };
        assert!(matches!(
            core.try_run_gemm(&fp32),
            Err(SimError::Numerics(NumericsError::InvalidFormat(_)))
        ));
    }

    #[test]
    fn seq_stall_faults_slow_the_run_but_stay_bit_exact() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let core = CoreSim::rapid();
        let j = job(8, 128, 64, Precision::Fp16, 64);
        let clean = core.run_gemm(&j);
        let mut plan = FaultPlan::new(FaultConfig {
            seq_stall_rate: 0.01,
            seq_stall_cycles: 16,
            ..FaultConfig::default()
        });
        let faulty = core.try_run_gemm_with(&j, Some(&mut plan)).expect("stalls only delay");
        // Sequencer stalls delay data movement but never corrupt it.
        assert_eq!(faulty.c, clean.c, "values must survive stall faults");
        assert!(faulty.cycles > clean.cycles, "stalls must cost cycles");
        assert!(plan.counts().seq_stalls > 0, "injector must have fired");
    }

    #[test]
    fn ecc_corrects_injected_spad_flips_bit_exactly() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let core = CoreSim::rapid();
        let j = job(8, 128, 64, Precision::Fp16, 71);
        let clean = core.run_gemm(&j);
        let mut plan = FaultPlan::new(FaultConfig {
            spad_flip_rate: 0.004,
            seed: 3,
            ..FaultConfig::default()
        });
        let mut tele = rapid_telemetry::Telemetry::new();
        let faulty = core
            .try_run_gemm_instrumented(&j, Some(&mut plan), Some(&mut tele))
            .expect("SEC absorbs single flips");
        assert_eq!(faulty.c, clean.c, "ECC must deliver bit-exact data");
        assert!(plan.counts().spad_flips > 0, "injector must have fired");
        assert!(
            tele.registry.counter("sim.ecc.sec") > 0,
            "at least one flip must be corrected on read"
        );
        assert_eq!(tele.registry.counter("sim.ecc.ded"), 0);
    }

    #[test]
    fn without_ecc_spad_flips_corrupt_results_silently() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let core = CoreSim::rapid().with_spad_ecc(false);
        let j = job(8, 128, 64, Precision::Fp16, 71);
        let clean = core.run_gemm(&j);
        // A flip lands every cycle, but only flips that strike a word
        // before its (early) streaming read show up in the output — scan
        // a few deterministic seeds for one that does.
        let corrupted = (0..16u64).any(|seed| {
            let mut plan = FaultPlan::new(FaultConfig {
                spad_flip_rate: 1.0,
                seed,
                ..FaultConfig::default()
            });
            let faulty = core
                .try_run_gemm_with(&j, Some(&mut plan))
                .expect("unprotected flips are silent, not errors");
            assert!(plan.counts().spad_flips > 0, "injector must have fired");
            faulty.c != clean.c
        });
        assert!(corrupted, "no seed's flips reached the streamed operands");
    }

    #[test]
    fn double_spad_flips_escalate_to_a_structured_error() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let core = CoreSim::rapid();
        // A flip every cycle; two strikes landing in one word before a
        // read are a matter of time, and SECDED must then refuse to
        // deliver. Scan a few deterministic seeds so the test does not
        // hinge on one stream's collision luck.
        let j = job(8, 128, 512, Precision::Fp16, 73);
        let escalated = (0..16u64).any(|seed| {
            let mut plan = FaultPlan::new(FaultConfig {
                spad_flip_rate: 1.0,
                seed,
                ..FaultConfig::default()
            });
            match core.try_run_gemm_with(&j, Some(&mut plan)) {
                Err(SimError::EccUncorrectable { cycle, .. }) => {
                    assert!(cycle > 0);
                    true
                }
                Ok(_) => false,
                other => panic!("expected EccUncorrectable or Ok, got {other:?}"),
            }
        });
        assert!(escalated, "no seed produced a double-bit upset on a live word");
    }

    #[test]
    fn corelets_split_tiles_and_run_concurrently() {
        let core = CoreSim::rapid();
        // n = 256 -> 4 tiles -> 2 per corelet.
        let j = job(8, 64, 256, Precision::Fp16, 56);
        let r = core.run_gemm(&j);
        assert_eq!(r.corelets.len(), 2);
        // Wall cycles ≈ per-corelet cycles, not their sum.
        let sum: u64 = r.corelets.iter().map(|c| c.cycles).sum();
        assert!(r.cycles < sum, "corelets must overlap");
    }

    #[test]
    fn int4_streams_faster_than_fp16() {
        let core = CoreSim::rapid();
        let jf = job(32, 256, 64, Precision::Fp16, 58);
        let ji = job(32, 256, 64, Precision::Int4, 58);
        let rf = core.run_gemm(&jf);
        let ri = core.run_gemm(&ji);
        // INT4 consumes 64 channels/cycle vs FP16's 8: stream cycles drop
        // by ~8x, though block-load costs dilute the end-to-end gain.
        let sf = rf.corelets[0].phase_cycles[2];
        let si = ri.corelets[0].phase_cycles[2];
        assert!(si * 6 < sf, "int4 stream {si} vs fp16 {sf}");
        assert!(ri.cycles < rf.cycles);
    }

    #[test]
    fn zero_gating_visible_in_sparse_inputs() {
        let core = CoreSim::rapid();
        let mut j = job(8, 64, 64, Precision::Fp16, 60);
        for (i, v) in j.a.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let r = core.run_gemm(&j);
        let gated: u64 = r.corelets.iter().map(|c| c.zero_gated).sum();
        let macs: u64 = r.corelets.iter().map(|c| c.macs).sum();
        let frac = gated as f64 / macs as f64;
        assert!((frac - 0.5).abs() < 0.05, "gated fraction {frac}");
    }

    /// E9: the analytical model calibration. The paper claims its model is
    /// within 1% of silicon; we require the analytical mapping to land
    /// within a few percent of the cycle simulation.
    #[test]
    fn analytical_model_calibrates_to_simulation() {
        use rapid_compiler::mapping::map_layer;
        use rapid_workloads::graph::Op;
        let core = CoreSim::rapid();
        for (m, k, n, p) in [
            (32usize, 256usize, 128usize, Precision::Fp16),
            (16, 512, 128, Precision::Hfp8),
            (64, 256, 64, Precision::Int4),
        ] {
            let j = job(m, k, n, p, 62);
            let r = core.run_gemm(&j);
            let op = Op::Gemm { m: m as u64, k: k as u64, n: n as u64, weighted: true };
            let cost = map_layer(&op, p, 1, &core.cfg.corelet, core.cfg.corelets);
            let predicted = cost.total_cycles();
            let err = (predicted - r.cycles as f64).abs() / r.cycles as f64;
            assert!(
                err < 0.05,
                "{p}: predicted {predicted:.0} vs simulated {} ({:.1}% off)",
                r.cycles,
                err * 100.0
            );
        }
    }
}
