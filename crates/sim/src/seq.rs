//! Data-sequencing machinery: scratchpads, bounded links and the
//! programmable sequencers at the end points of each link (paper §II-A's
//! decoupled access–execute organization).

use crate::token::TokenFile;
use rapid_arch::isa::SeqInstr;
use std::collections::VecDeque;

/// A scratchpad holding `f32` element values (each an exact member of the
/// stored format's value set). Addressing is in elements; bandwidth
/// accounting converts to bytes with the stream's element width.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    data: Vec<f32>,
}

impl Scratchpad {
    /// Creates a scratchpad of `n` elements.
    pub fn new(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the scratchpad is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads one element.
    pub fn read(&self, addr: usize) -> f32 {
        self.data[addr]
    }

    /// Writes one element.
    pub fn write(&mut self, addr: usize, v: f32) {
        self.data[addr] = v;
    }

    /// Bulk-stores a slice starting at `addr` (job setup).
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit.
    pub fn store_slice(&mut self, addr: usize, values: &[f32]) {
        self.data[addr..addr + values.len()].copy_from_slice(values);
    }

    /// Bulk-loads `len` elements starting at `addr` (result readout).
    pub fn load_slice(&self, addr: usize, len: usize) -> Vec<f32> {
        self.data[addr..addr + len].to_vec()
    }
}

/// A bounded FIFO link between units, carrying element values.
#[derive(Debug, Clone)]
pub struct Link {
    queue: VecDeque<f32>,
    capacity: usize,
}

impl Link {
    /// Creates a link buffering up to `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        Self { queue: VecDeque::with_capacity(capacity), capacity }
    }

    /// Free slots.
    pub fn space(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Buffered elements.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the link is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pushes an element; returns `false` when full.
    pub fn push(&mut self, v: f32) -> bool {
        if self.queue.len() == self.capacity {
            return false;
        }
        self.queue.push_back(v);
        true
    }

    /// Pops the head element.
    pub fn pop(&mut self) -> Option<f32> {
        self.queue.pop_front()
    }
}

/// Execution state of one data-sequencing program.
#[derive(Debug, Clone)]
pub struct Sequencer {
    program: Vec<SeqInstr>,
    pc: usize,
    loop_stack: Vec<(usize, u32)>, // (body start pc, iterations remaining)
    read_progress: u32,            // elements already pushed of the current Read
    /// Bytes each streamed element occupies (precision dependent).
    pub elem_bytes: f64,
    /// Elements pushed in total (statistics).
    pub elems_moved: u64,
    /// Cycles this sequencer spent stalled on tokens or link backpressure.
    pub stall_cycles: u64,
}

impl Sequencer {
    /// Creates a sequencer for a program streaming `elem_bytes`-wide
    /// elements.
    pub fn new(program: Vec<SeqInstr>, elem_bytes: f64) -> Self {
        Self {
            program,
            pc: 0,
            loop_stack: Vec::new(),
            read_progress: 0,
            elem_bytes,
            elems_moved: 0,
            stall_cycles: 0,
        }
    }

    /// Whether the program has retired completely.
    pub fn is_done(&self) -> bool {
        self.pc >= self.program.len()
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Total program length.
    pub fn program_len(&self) -> usize {
        self.program.len()
    }

    /// The `(token, count)` this sequencer is blocked on, when its current
    /// instruction is a `WaitToken` (the watchdog uses this to name the
    /// blocking token in deadlock reports).
    pub fn waiting_on(&self) -> Option<(u8, u16)> {
        match self.program.get(self.pc) {
            Some(SeqInstr::WaitToken { token, count }) => Some((*token, *count)),
            _ => None,
        }
    }

    /// Dumps this sequencer's state for a deadlock report.
    pub fn snapshot(&self, name: String) -> crate::error::SeqSnapshot {
        crate::error::SeqSnapshot {
            name,
            pc: self.pc,
            program_len: self.program.len(),
            waiting_on: self.waiting_on(),
            elems_moved: self.elems_moved,
            stall_cycles: self.stall_cycles,
        }
    }

    /// Runs one cycle: advances through control instructions (loops,
    /// tokens are free), then streams elements of the current `Read` into
    /// `link`, limited by the link's space and the shared L1 port budget
    /// `port_bytes` (decremented by the bytes actually moved).
    pub fn tick(
        &mut self,
        spad: &Scratchpad,
        link: &mut Link,
        tokens: &mut TokenFile,
        port_bytes: &mut f64,
    ) {
        let mut made_progress = false;
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(instr) = self.program.get(self.pc).copied() else { break };
            match instr {
                SeqInstr::LoopBegin { count } => {
                    if count == 0 {
                        // Skip to the matching LoopEnd.
                        let mut depth = 1;
                        let mut pc = self.pc + 1;
                        while pc < self.program.len() && depth > 0 {
                            match self.program[pc] {
                                SeqInstr::LoopBegin { .. } => depth += 1,
                                SeqInstr::LoopEnd => depth -= 1,
                                _ => {}
                            }
                            pc += 1;
                        }
                        self.pc = pc;
                    } else {
                        self.loop_stack.push((self.pc + 1, count));
                        self.pc += 1;
                    }
                }
                SeqInstr::LoopEnd => {
                    let Some(top) = self.loop_stack.last_mut() else {
                        self.pc += 1; // tolerate unmatched end
                        continue;
                    };
                    top.1 -= 1;
                    if top.1 == 0 {
                        self.loop_stack.pop();
                        self.pc += 1;
                    } else {
                        self.pc = top.0;
                    }
                }
                SeqInstr::SignalToken { token } => {
                    tokens.signal(token);
                    self.pc += 1;
                }
                SeqInstr::WaitToken { token, count } => {
                    if tokens.try_consume(token, count) {
                        self.pc += 1;
                    } else {
                        if !made_progress {
                            self.stall_cycles += 1;
                        }
                        return; // blocked this cycle
                    }
                }
                SeqInstr::Read { addr, len, stride } => {
                    // Stream as many elements as budget and space allow.
                    let budget_elems = (*port_bytes / self.elem_bytes).floor() as u32;
                    let n = (len - self.read_progress)
                        .min(budget_elems)
                        .min(link.space() as u32);
                    for i in 0..n {
                        let idx = self.read_progress + i;
                        let a = addr as usize + (idx as usize) * stride as usize;
                        let ok = link.push(spad.read(a));
                        debug_assert!(ok, "space was checked");
                    }
                    *port_bytes -= f64::from(n) * self.elem_bytes;
                    self.read_progress += n;
                    self.elems_moved += u64::from(n);
                    if n > 0 {
                        made_progress = true;
                    }
                    if self.read_progress == len {
                        self.read_progress = 0;
                        self.pc += 1;
                        // Control instructions after a finished read may
                        // retire in the same cycle, but at most one Read
                        // streams per cycle.
                        if self
                            .program
                            .get(self.pc)
                            .is_some_and(|i| matches!(i, SeqInstr::Read { .. }))
                            && *port_bytes < self.elem_bytes
                        {
                            return;
                        }
                        continue;
                    }
                    if !made_progress {
                        self.stall_cycles += 1;
                    }
                    return; // read still in flight
                }
                SeqInstr::Write { .. } => {
                    // Writes are handled by the dedicated write-back unit in
                    // this simulator; treat as a no-op marker.
                    self.pc += 1;
                }
            }
            if self.pc >= self.program.len() {
                break;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn spad_with(values: &[f32]) -> Scratchpad {
        let mut s = Scratchpad::new(values.len());
        s.store_slice(0, values);
        s
    }

    #[test]
    fn read_streams_under_port_budget() {
        let spad = spad_with(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut link = Link::new(64);
        let mut tokens = TokenFile::new(1);
        let mut seq =
            Sequencer::new(vec![SeqInstr::Read { addr: 0, len: 8, stride: 1 }], 2.0);
        // Budget of 8 bytes/cycle = 4 fp16 elements per cycle.
        for _ in 0..2 {
            let mut budget = 8.0;
            seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        }
        assert!(seq.is_done());
        assert_eq!(link.len(), 8);
        assert_eq!(link.pop(), Some(1.0));
    }

    #[test]
    fn strided_read() {
        let spad = spad_with(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut link = Link::new(8);
        let mut tokens = TokenFile::new(1);
        let mut seq =
            Sequencer::new(vec![SeqInstr::Read { addr: 1, len: 3, stride: 2 }], 2.0);
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.pop(), Some(1.0));
        assert_eq!(link.pop(), Some(3.0));
        assert_eq!(link.pop(), Some(5.0));
    }

    #[test]
    fn link_backpressure_stalls() {
        let spad = spad_with(&[1.0; 16]);
        let mut link = Link::new(4);
        let mut tokens = TokenFile::new(1);
        let mut seq =
            Sequencer::new(vec![SeqInstr::Read { addr: 0, len: 16, stride: 1 }], 1.0);
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.len(), 4, "capacity caps the stream");
        assert!(!seq.is_done());
        // Drain two, stream resumes.
        link.pop();
        link.pop();
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.len(), 4);
    }

    #[test]
    fn hardware_loops_repeat_reads() {
        let spad = spad_with(&[7.0, 8.0]);
        let mut link = Link::new(64);
        let mut tokens = TokenFile::new(1);
        let mut seq = Sequencer::new(
            vec![
                SeqInstr::LoopBegin { count: 3 },
                SeqInstr::Read { addr: 0, len: 2, stride: 1 },
                SeqInstr::LoopEnd,
            ],
            2.0,
        );
        for _ in 0..10 {
            let mut budget = 128.0;
            seq.tick(&spad, &mut link, &mut tokens, &mut budget);
            if seq.is_done() {
                break;
            }
        }
        assert!(seq.is_done());
        assert_eq!(link.len(), 6);
        assert_eq!(seq.elems_moved, 6);
    }

    #[test]
    fn wait_token_blocks_until_signalled() {
        let spad = spad_with(&[1.0]);
        let mut link = Link::new(4);
        let mut tokens = TokenFile::new(2);
        let mut seq = Sequencer::new(
            vec![
                SeqInstr::WaitToken { token: 0, count: 1 },
                SeqInstr::Read { addr: 0, len: 1, stride: 1 },
            ],
            2.0,
        );
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert!(link.is_empty());
        assert_eq!(seq.stall_cycles, 1);
        tokens.signal(0);
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.len(), 1);
        assert!(seq.is_done());
    }

    #[test]
    fn nested_loops() {
        let spad = spad_with(&[1.0]);
        let mut link = Link::new(64);
        let mut tokens = TokenFile::new(1);
        let mut seq = Sequencer::new(
            vec![
                SeqInstr::LoopBegin { count: 2 },
                SeqInstr::LoopBegin { count: 3 },
                SeqInstr::Read { addr: 0, len: 1, stride: 1 },
                SeqInstr::LoopEnd,
                SeqInstr::LoopEnd,
            ],
            1.0,
        );
        for _ in 0..20 {
            let mut budget = 128.0;
            seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        }
        assert!(seq.is_done());
        assert_eq!(seq.elems_moved, 6);
    }
}
