//! Data-sequencing machinery: scratchpads, bounded links and the
//! programmable sequencers at the end points of each link (paper §II-A's
//! decoupled access–execute organization).

use crate::ecc::{self, Decoded};
use crate::token::TokenFile;
use rapid_arch::isa::SeqInstr;
use std::cell::Cell;
use std::collections::VecDeque;

/// Per-word SECDED state of an ECC-protected scratchpad. Reads correct
/// through [`Cell`]s so `Scratchpad::read(&self)` keeps its shared-borrow
/// signature — exactly like real ECC logic, which corrects on the read
/// path without a store port.
#[derive(Debug, Clone)]
struct EccState {
    /// The stored 39-bit codeword per element (what the array cells
    /// actually hold; `data` is the decoded shadow for the fast path).
    codewords: Vec<u64>,
    /// Single-bit errors corrected on read.
    sec: Cell<u64>,
    /// Double-bit errors detected on read.
    ded: Cell<u64>,
    /// First uncorrectable address seen, awaiting escalation.
    pending: Cell<Option<usize>>,
}

/// A scratchpad holding `f32` element values (each an exact member of the
/// stored format's value set). Addressing is in elements; bandwidth
/// accounting converts to bytes with the stream's element width.
///
/// With [`Scratchpad::with_ecc`] every word is stored as a SECDED(39,32)
/// codeword: single-bit upsets (see [`Scratchpad::inject_flip`]) are
/// corrected transparently on read, double-bit upsets are detected and
/// parked for the machine to escalate via
/// [`Scratchpad::take_uncorrectable`]. On clean data the ECC path is
/// bit-identical to the unprotected path.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    data: Vec<f32>,
    ecc: Option<EccState>,
}

impl Scratchpad {
    /// Creates a scratchpad of `n` elements (unprotected).
    pub fn new(n: usize) -> Self {
        Self { data: vec![0.0; n], ecc: None }
    }

    /// Enables SECDED protection, encoding the current contents.
    pub fn with_ecc(mut self) -> Self {
        let codewords = self.data.iter().map(|v| ecc::encode(v.to_bits())).collect();
        self.ecc = Some(EccState {
            codewords,
            sec: Cell::new(0),
            ded: Cell::new(0),
            pending: Cell::new(None),
        });
        self
    }

    /// Whether SECDED protection is on.
    pub fn ecc_enabled(&self) -> bool {
        self.ecc.is_some()
    }

    /// Single-bit errors corrected on read so far.
    pub fn ecc_sec(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.sec.get())
    }

    /// Double-bit errors detected on read so far.
    pub fn ecc_ded(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.ded.get())
    }

    /// Takes the pending uncorrectable-error address, if a read hit a
    /// double-bit upset since the last call. The machine must escalate
    /// this — the delivered data was corrupt.
    pub fn take_uncorrectable(&self) -> Option<usize> {
        self.ecc.as_ref().and_then(|e| e.pending.take())
    }

    /// Flips one stored bit at `addr` (a particle strike). With ECC on,
    /// `bit` addresses the 39-bit codeword (data, check, or parity bits
    /// all hittable); without ECC only the 32 data bits exist, and flips
    /// aimed at the (absent) check bits are no-ops.
    pub fn inject_flip(&mut self, addr: usize, bit: u32) {
        match &mut self.ecc {
            Some(e) => e.codewords[addr] ^= 1u64 << (bit % ecc::CODEWORD_BITS),
            None => {
                if bit < 32 {
                    self.data[addr] = f32::from_bits(self.data[addr].to_bits() ^ (1 << bit));
                }
            }
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the scratchpad is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads one element, decoding/correcting through ECC when enabled.
    pub fn read(&self, addr: usize) -> f32 {
        let Some(e) = &self.ecc else { return self.data[addr] };
        match ecc::decode(e.codewords[addr]) {
            Decoded::Clean => self.data[addr],
            Decoded::CorrectedData(bits) => {
                e.sec.set(e.sec.get() + 1);
                f32::from_bits(bits)
            }
            Decoded::CorrectedCheck => {
                e.sec.set(e.sec.get() + 1);
                self.data[addr]
            }
            Decoded::DoubleError => {
                e.ded.set(e.ded.get() + 1);
                if e.pending.get().is_none() {
                    e.pending.set(Some(addr));
                }
                // The hardware delivers the (corrupt) raw word; the
                // escalation path keeps it from being trusted.
                f32::from_bits(ecc::data_of(e.codewords[addr]))
            }
        }
    }

    /// Writes one element (re-encoding the codeword when ECC is on).
    pub fn write(&mut self, addr: usize, v: f32) {
        self.data[addr] = v;
        if let Some(e) = &mut self.ecc {
            e.codewords[addr] = ecc::encode(v.to_bits());
        }
    }

    /// Bulk-stores a slice starting at `addr` (job setup).
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit.
    pub fn store_slice(&mut self, addr: usize, values: &[f32]) {
        self.data[addr..addr + values.len()].copy_from_slice(values);
        if let Some(e) = &mut self.ecc {
            for (i, v) in values.iter().enumerate() {
                e.codewords[addr + i] = ecc::encode(v.to_bits());
            }
        }
    }

    /// Bulk-loads `len` elements starting at `addr` (result readout),
    /// through the correcting read path.
    pub fn load_slice(&self, addr: usize, len: usize) -> Vec<f32> {
        (addr..addr + len).map(|a| self.read(a)).collect()
    }
}

/// A bounded FIFO link between units, carrying element values.
#[derive(Debug, Clone)]
pub struct Link {
    queue: VecDeque<f32>,
    capacity: usize,
}

impl Link {
    /// Creates a link buffering up to `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        Self { queue: VecDeque::with_capacity(capacity), capacity }
    }

    /// Free slots.
    pub fn space(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Buffered elements.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the link is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pushes an element; returns `false` when full.
    pub fn push(&mut self, v: f32) -> bool {
        if self.queue.len() == self.capacity {
            return false;
        }
        self.queue.push_back(v);
        true
    }

    /// Pops the head element.
    pub fn pop(&mut self) -> Option<f32> {
        self.queue.pop_front()
    }
}

/// Execution state of one data-sequencing program.
#[derive(Debug, Clone)]
pub struct Sequencer {
    program: Vec<SeqInstr>,
    pc: usize,
    loop_stack: Vec<(usize, u32)>, // (body start pc, iterations remaining)
    read_progress: u32,            // elements already pushed of the current Read
    /// Bytes each streamed element occupies (precision dependent).
    pub elem_bytes: f64,
    /// Elements pushed in total (statistics).
    pub elems_moved: u64,
    /// Cycles this sequencer spent stalled on tokens or link backpressure.
    pub stall_cycles: u64,
}

impl Sequencer {
    /// Creates a sequencer for a program streaming `elem_bytes`-wide
    /// elements.
    pub fn new(program: Vec<SeqInstr>, elem_bytes: f64) -> Self {
        Self {
            program,
            pc: 0,
            loop_stack: Vec::new(),
            read_progress: 0,
            elem_bytes,
            elems_moved: 0,
            stall_cycles: 0,
        }
    }

    /// Whether the program has retired completely.
    pub fn is_done(&self) -> bool {
        self.pc >= self.program.len()
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Total program length.
    pub fn program_len(&self) -> usize {
        self.program.len()
    }

    /// The `(token, count)` this sequencer is blocked on, when its current
    /// instruction is a `WaitToken` (the watchdog uses this to name the
    /// blocking token in deadlock reports).
    pub fn waiting_on(&self) -> Option<(u8, u16)> {
        match self.program.get(self.pc) {
            Some(SeqInstr::WaitToken { token, count }) => Some((*token, *count)),
            _ => None,
        }
    }

    /// Dumps this sequencer's state for a deadlock report.
    pub fn snapshot(&self, name: String) -> crate::error::SeqSnapshot {
        crate::error::SeqSnapshot {
            name,
            pc: self.pc,
            program_len: self.program.len(),
            waiting_on: self.waiting_on(),
            elems_moved: self.elems_moved,
            stall_cycles: self.stall_cycles,
        }
    }

    /// Runs one cycle: advances through control instructions (loops,
    /// tokens are free), then streams elements of the current `Read` into
    /// `link`, limited by the link's space and the shared L1 port budget
    /// `port_bytes` (decremented by the bytes actually moved).
    pub fn tick(
        &mut self,
        spad: &Scratchpad,
        link: &mut Link,
        tokens: &mut TokenFile,
        port_bytes: &mut f64,
    ) {
        let mut made_progress = false;
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(instr) = self.program.get(self.pc).copied() else { break };
            match instr {
                SeqInstr::LoopBegin { count } => {
                    if count == 0 {
                        // Skip to the matching LoopEnd.
                        let mut depth = 1;
                        let mut pc = self.pc + 1;
                        while pc < self.program.len() && depth > 0 {
                            match self.program[pc] {
                                SeqInstr::LoopBegin { .. } => depth += 1,
                                SeqInstr::LoopEnd => depth -= 1,
                                _ => {}
                            }
                            pc += 1;
                        }
                        self.pc = pc;
                    } else {
                        self.loop_stack.push((self.pc + 1, count));
                        self.pc += 1;
                    }
                }
                SeqInstr::LoopEnd => {
                    let Some(top) = self.loop_stack.last_mut() else {
                        self.pc += 1; // tolerate unmatched end
                        continue;
                    };
                    top.1 -= 1;
                    if top.1 == 0 {
                        self.loop_stack.pop();
                        self.pc += 1;
                    } else {
                        self.pc = top.0;
                    }
                }
                SeqInstr::SignalToken { token } => {
                    tokens.signal(token);
                    self.pc += 1;
                }
                SeqInstr::WaitToken { token, count } => {
                    if tokens.try_consume(token, count) {
                        self.pc += 1;
                    } else {
                        if !made_progress {
                            self.stall_cycles += 1;
                        }
                        return; // blocked this cycle
                    }
                }
                SeqInstr::Read { addr, len, stride } => {
                    // Stream as many elements as budget and space allow.
                    let budget_elems = (*port_bytes / self.elem_bytes).floor() as u32;
                    let n = (len - self.read_progress)
                        .min(budget_elems)
                        .min(link.space() as u32);
                    for i in 0..n {
                        let idx = self.read_progress + i;
                        let a = addr as usize + (idx as usize) * stride as usize;
                        let ok = link.push(spad.read(a));
                        debug_assert!(ok, "space was checked");
                    }
                    *port_bytes -= f64::from(n) * self.elem_bytes;
                    self.read_progress += n;
                    self.elems_moved += u64::from(n);
                    if n > 0 {
                        made_progress = true;
                    }
                    if self.read_progress == len {
                        self.read_progress = 0;
                        self.pc += 1;
                        // Control instructions after a finished read may
                        // retire in the same cycle, but at most one Read
                        // streams per cycle.
                        if self
                            .program
                            .get(self.pc)
                            .is_some_and(|i| matches!(i, SeqInstr::Read { .. }))
                            && *port_bytes < self.elem_bytes
                        {
                            return;
                        }
                        continue;
                    }
                    if !made_progress {
                        self.stall_cycles += 1;
                    }
                    return; // read still in flight
                }
                SeqInstr::Write { .. } => {
                    // Writes are handled by the dedicated write-back unit in
                    // this simulator; treat as a no-op marker.
                    self.pc += 1;
                }
            }
            if self.pc >= self.program.len() {
                break;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn spad_with(values: &[f32]) -> Scratchpad {
        let mut s = Scratchpad::new(values.len());
        s.store_slice(0, values);
        s
    }

    #[test]
    fn read_streams_under_port_budget() {
        let spad = spad_with(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut link = Link::new(64);
        let mut tokens = TokenFile::new(1);
        let mut seq =
            Sequencer::new(vec![SeqInstr::Read { addr: 0, len: 8, stride: 1 }], 2.0);
        // Budget of 8 bytes/cycle = 4 fp16 elements per cycle.
        for _ in 0..2 {
            let mut budget = 8.0;
            seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        }
        assert!(seq.is_done());
        assert_eq!(link.len(), 8);
        assert_eq!(link.pop(), Some(1.0));
    }

    #[test]
    fn strided_read() {
        let spad = spad_with(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut link = Link::new(8);
        let mut tokens = TokenFile::new(1);
        let mut seq =
            Sequencer::new(vec![SeqInstr::Read { addr: 1, len: 3, stride: 2 }], 2.0);
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.pop(), Some(1.0));
        assert_eq!(link.pop(), Some(3.0));
        assert_eq!(link.pop(), Some(5.0));
    }

    #[test]
    fn link_backpressure_stalls() {
        let spad = spad_with(&[1.0; 16]);
        let mut link = Link::new(4);
        let mut tokens = TokenFile::new(1);
        let mut seq =
            Sequencer::new(vec![SeqInstr::Read { addr: 0, len: 16, stride: 1 }], 1.0);
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.len(), 4, "capacity caps the stream");
        assert!(!seq.is_done());
        // Drain two, stream resumes.
        link.pop();
        link.pop();
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.len(), 4);
    }

    #[test]
    fn hardware_loops_repeat_reads() {
        let spad = spad_with(&[7.0, 8.0]);
        let mut link = Link::new(64);
        let mut tokens = TokenFile::new(1);
        let mut seq = Sequencer::new(
            vec![
                SeqInstr::LoopBegin { count: 3 },
                SeqInstr::Read { addr: 0, len: 2, stride: 1 },
                SeqInstr::LoopEnd,
            ],
            2.0,
        );
        for _ in 0..10 {
            let mut budget = 128.0;
            seq.tick(&spad, &mut link, &mut tokens, &mut budget);
            if seq.is_done() {
                break;
            }
        }
        assert!(seq.is_done());
        assert_eq!(link.len(), 6);
        assert_eq!(seq.elems_moved, 6);
    }

    #[test]
    fn wait_token_blocks_until_signalled() {
        let spad = spad_with(&[1.0]);
        let mut link = Link::new(4);
        let mut tokens = TokenFile::new(2);
        let mut seq = Sequencer::new(
            vec![
                SeqInstr::WaitToken { token: 0, count: 1 },
                SeqInstr::Read { addr: 0, len: 1, stride: 1 },
            ],
            2.0,
        );
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert!(link.is_empty());
        assert_eq!(seq.stall_cycles, 1);
        tokens.signal(0);
        let mut budget = 128.0;
        seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        assert_eq!(link.len(), 1);
        assert!(seq.is_done());
    }

    #[test]
    fn ecc_on_clean_data_is_bit_identical() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32) * 0.125 - 3.0).collect();
        let plain = spad_with(&values);
        let protected = spad_with(&values).with_ecc();
        for a in 0..values.len() {
            assert_eq!(plain.read(a).to_bits(), protected.read(a).to_bits());
        }
        assert_eq!(protected.ecc_sec(), 0);
        assert_eq!(protected.ecc_ded(), 0);
        assert_eq!(protected.take_uncorrectable(), None);
    }

    #[test]
    fn ecc_corrects_any_single_bit_flip() {
        let values = [1.5f32, -0.25, 1024.0, 3.0e-5];
        for bit in 0..39 {
            let mut s = spad_with(&values).with_ecc();
            s.inject_flip(2, bit);
            assert_eq!(s.read(2).to_bits(), values[2].to_bits(), "bit {bit}");
            assert_eq!(s.ecc_sec(), 1, "bit {bit} must count as SEC");
            assert_eq!(s.take_uncorrectable(), None);
        }
    }

    #[test]
    fn ecc_escalates_double_flips_instead_of_delivering_silently() {
        let mut s = spad_with(&[0.5f32, 2.0, -8.0]).with_ecc();
        s.inject_flip(1, 3);
        s.inject_flip(1, 17);
        let _ = s.read(1);
        assert_eq!(s.ecc_ded(), 1);
        assert_eq!(s.take_uncorrectable(), Some(1));
        assert_eq!(s.take_uncorrectable(), None, "pending is taken once");
        // A rewrite scrubs the word.
        s.write(1, 2.0);
        assert_eq!(s.read(1), 2.0);
        assert_eq!(s.take_uncorrectable(), None);
    }

    #[test]
    fn without_ecc_data_bit_flips_corrupt_silently() {
        let mut s = spad_with(&[1.0f32]);
        s.inject_flip(0, 30);
        assert_ne!(s.read(0), 1.0, "unprotected flip must damage the value");
        // Check-bit flips have no storage to hit without ECC.
        let mut s2 = spad_with(&[1.0f32]);
        s2.inject_flip(0, 35);
        assert_eq!(s2.read(0), 1.0);
    }

    #[test]
    fn nested_loops() {
        let spad = spad_with(&[1.0]);
        let mut link = Link::new(64);
        let mut tokens = TokenFile::new(1);
        let mut seq = Sequencer::new(
            vec![
                SeqInstr::LoopBegin { count: 2 },
                SeqInstr::LoopBegin { count: 3 },
                SeqInstr::Read { addr: 0, len: 1, stride: 1 },
                SeqInstr::LoopEnd,
                SeqInstr::LoopEnd,
            ],
            1.0,
        );
        for _ in 0..20 {
            let mut budget = 128.0;
            seq.tick(&spad, &mut link, &mut tokens, &mut budget);
        }
        assert!(seq.is_done());
        assert_eq!(seq.elems_moved, 6);
    }
}
