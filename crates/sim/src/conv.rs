//! Convolution on the core simulator: the driver performs the im2col
//! lowering the dataflow realizes implicitly (streaming H×W innermost,
//! Fig 5) and runs the resulting GEMM through the cycle-tick machinery,
//! optionally fusing the SFU activation stage on the output stream.

use crate::error::SimError;
use crate::gemm::{CoreSim, GemmJob, SimResult};
use crate::sfu::{SfuStage, SfuUnit};
use rapid_arch::precision::Precision;
use rapid_numerics::gemm::{im2col_into, ConvSpec};
use rapid_numerics::{NumericsError, Tensor};

/// A convolution job for the core simulator.
#[derive(Debug, Clone)]
pub struct ConvJob {
    /// Input `[n, ci, h, w]`.
    pub input: Tensor,
    /// Weights `[co, ci, kh, kw]`.
    pub weight: Tensor,
    /// Convolution geometry.
    pub spec: ConvSpec,
    /// Execution precision.
    pub precision: Precision,
    /// Optional fused SFU stage applied to the output stream.
    pub sfu: Option<SfuStage>,
}

/// Result of a simulated convolution.
#[derive(Debug, Clone)]
pub struct ConvSimResult {
    /// Output `[n, co, ho, wo]`.
    pub output: Tensor,
    /// MPE-array cycles (from the GEMM engine).
    pub array_cycles: u64,
    /// SFU cycles for the fused stage (overlapped with the array up to the
    /// SFU's throughput; the exposed extra is `sfu_exposed_cycles`).
    pub sfu_cycles: u64,
    /// SFU cycles not hidden under the array stream.
    pub sfu_exposed_cycles: u64,
    /// The underlying GEMM result (per-corelet reports, stats).
    pub gemm: SimResult,
}

impl ConvSimResult {
    /// End-to-end cycles including the exposed SFU tail.
    pub fn total_cycles(&self) -> u64 {
        self.array_cycles + self.sfu_exposed_cycles
    }
}

/// Runs a convolution on the core: im2col → systolic GEMM → (optional)
/// fused SFU stage → fold to `[n, co, ho, wo]`.
///
/// # Panics
///
/// Panics if the operand ranks or channel counts are inconsistent, or the
/// precision is FP32 (SFU-only). Use [`try_run_conv`] for an error instead.
// Infallible wrapper: the only failures are the validated job shapes.
#[allow(clippy::expect_used)]
pub fn run_conv(core: &CoreSim, job: &ConvJob) -> ConvSimResult {
    try_run_conv(core, job).expect("invalid conv job")
}

/// [`run_conv`] that surfaces malformed jobs as [`SimError`] instead of
/// panicking.
///
/// # Errors
///
/// Returns [`SimError::Numerics`] wrapping
/// [`NumericsError::ShapeMismatch`] for inconsistent operand ranks or
/// channel counts and [`NumericsError::InvalidFormat`] for FP32, and
/// propagates any error of the underlying GEMM simulation.
pub fn try_run_conv(core: &CoreSim, job: &ConvJob) -> Result<ConvSimResult, SimError> {
    try_run_conv_with_scratch(core, job, &mut Tensor::default())
}

/// [`try_run_conv`] reusing a caller-provided im2col scratch tensor, so
/// repeated convolutions (e.g. layer sweeps) don't reallocate the lowered
/// matrix on every call. The scratch is resized in place and its previous
/// contents are discarded.
///
/// # Errors
///
/// Same contract as [`try_run_conv`].
pub fn try_run_conv_with_scratch(
    core: &CoreSim,
    job: &ConvJob,
    cols_scratch: &mut Tensor,
) -> Result<ConvSimResult, SimError> {
    if job.input.shape().len() != 4 || job.weight.shape().len() != 4 {
        return Err(SimError::Numerics(NumericsError::ShapeMismatch {
            expected: "input [n, ci, h, w] and weight [co, ci, kh, kw]".to_string(),
            actual: format!("input {:?}, weight {:?}", job.input.shape(), job.weight.shape()),
        }));
    }
    if job.input.shape()[1] != job.weight.shape()[1] {
        return Err(SimError::Numerics(NumericsError::ShapeMismatch {
            expected: format!("input channels = {}", job.weight.shape()[1]),
            actual: format!("input channels = {}", job.input.shape()[1]),
        }));
    }
    let (n, _ci, h, w) = (
        job.input.shape()[0],
        job.input.shape()[1],
        job.input.shape()[2],
        job.input.shape()[3],
    );
    let (co, ci, kh, kw) = (
        job.weight.shape()[0],
        job.weight.shape()[1],
        job.weight.shape()[2],
        job.weight.shape()[3],
    );
    let ho = job.spec.out_dim(h, kh);
    let wo = job.spec.out_dim(w, kw);

    im2col_into(&job.input, kh, kw, job.spec, cols_scratch);
    let wmat = job
        .weight
        .clone()
        .reshape(vec![co, ci * kh * kw])
        .map_err(SimError::Numerics)?
        .transposed();
    // Move the scratch buffer into the job (GemmJob owns its operands) and
    // hand it back afterwards so the allocation survives for the next call.
    let gjob = GemmJob { a: std::mem::take(cols_scratch), b: wmat, precision: job.precision };
    let gemm = core.try_run_gemm(&gjob)?;
    *cols_scratch = gjob.a;

    // Fused SFU stage over the flat output stream.
    let (flat, sfu_cycles, sfu_exposed) = match &job.sfu {
        Some(stage) => {
            let unit = SfuUnit::new(core.config().corelets * core.config().corelet.sfu_lanes);
            let (out, cycles) = unit.apply(stage, &gemm.c);
            // The SFU drains the output stream while the array computes;
            // only the portion beyond the array time is exposed.
            let exposed = cycles.saturating_sub(gemm.cycles);
            (out, cycles, exposed)
        }
        None => (gemm.c.clone(), 0, 0),
    };

    // Fold [n*ho*wo, co] → [n, co, ho, wo] with flat indexing.
    let mut output = Tensor::zeros(vec![n, co, ho, wo]);
    let hw = ho * wo;
    let fd = flat.as_slice();
    let od = output.as_mut_slice();
    for ni in 0..n {
        for s in 0..hw {
            let frow = (ni * hw + s) * co;
            for c in 0..co {
                od[(ni * co + c) * hw + s] = fd[frow + c];
            }
        }
    }
    Ok(ConvSimResult {
        output,
        array_cycles: gemm.cycles,
        sfu_cycles,
        sfu_exposed_cycles: sfu_exposed,
        gemm,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_numerics::fma::FmaMode;
    use rapid_numerics::gemm::conv2d_emulated;

    #[test]
    fn simulated_conv_matches_emulated_conv() {
        let core = CoreSim::rapid();
        let job = ConvJob {
            input: Tensor::random_uniform(vec![1, 8, 6, 6], -1.0, 1.0, 70),
            weight: Tensor::random_uniform(vec![16, 8, 3, 3], -0.5, 0.5, 71),
            spec: ConvSpec { stride: 1, pad: 1 },
            precision: Precision::Fp16,
            sfu: None,
        };
        let r = run_conv(&core, &job);
        assert_eq!(r.output.shape(), &[1, 16, 6, 6]);
        let ci_lrf = core.config().corelet.ci_lrf_max(Precision::Fp16) as usize;
        let (expect, _) =
            conv2d_emulated(&job.input, &job.weight, job.spec, FmaMode::Fp16, ci_lrf);
        assert_eq!(r.output, expect, "simulated conv must be bit-exact");
    }

    #[test]
    fn fused_relu_clamps_negatives() {
        let core = CoreSim::rapid();
        let job = ConvJob {
            input: Tensor::random_uniform(vec![1, 4, 4, 4], -1.0, 1.0, 72),
            weight: Tensor::random_uniform(vec![8, 4, 3, 3], -0.5, 0.5, 73),
            spec: ConvSpec { stride: 1, pad: 1 },
            precision: Precision::Fp16,
            sfu: Some(SfuStage::Relu),
        };
        let r = run_conv(&core, &job);
        assert!(r.output.as_slice().iter().all(|&v| v >= 0.0));
        assert!(r.sfu_cycles > 0);
    }

    #[test]
    fn sfu_mostly_hides_under_the_array() {
        let core = CoreSim::rapid();
        let job = ConvJob {
            input: Tensor::random_uniform(vec![1, 16, 8, 8], -1.0, 1.0, 74),
            weight: Tensor::random_uniform(vec![32, 16, 3, 3], -0.5, 0.5, 75),
            spec: ConvSpec { stride: 1, pad: 1 },
            precision: Precision::Fp16,
            sfu: Some(SfuStage::Relu),
        };
        let r = run_conv(&core, &job);
        // 2048 outputs over 256 SFU lanes ≈ 16 cycles — trivially hidden
        // under thousands of array cycles.
        assert_eq!(r.sfu_exposed_cycles, 0, "relu should hide: {r:?}");
        assert_eq!(r.total_cycles(), r.array_cycles);
    }

    #[test]
    fn scratch_reuse_is_bit_exact_and_errors_surface() {
        let core = CoreSim::rapid();
        let job = ConvJob {
            input: Tensor::random_uniform(vec![1, 4, 5, 5], -1.0, 1.0, 80),
            weight: Tensor::random_uniform(vec![6, 4, 3, 3], -0.5, 0.5, 81),
            spec: ConvSpec { stride: 1, pad: 1 },
            precision: Precision::Hfp8,
            sfu: None,
        };
        let fresh = run_conv(&core, &job);
        // Dirty scratch from a differently-shaped run must not leak in.
        let mut scratch = Tensor::random_uniform(vec![7, 9], -3.0, 3.0, 82);
        let reused = try_run_conv_with_scratch(&core, &job, &mut scratch).unwrap();
        assert_eq!(reused.output, fresh.output);
        // The scratch now holds the im2col matrix, ready for reuse.
        assert_eq!(scratch.shape(), &[25, 36]);

        let bad = ConvJob { weight: Tensor::zeros(vec![6, 3, 3, 3]), ..job.clone() };
        assert!(matches!(
            try_run_conv(&core, &bad),
            Err(SimError::Numerics(NumericsError::ShapeMismatch { .. }))
        ));
        let fp32 = ConvJob { precision: Precision::Fp32, ..job };
        assert!(matches!(
            try_run_conv(&core, &fp32),
            Err(SimError::Numerics(NumericsError::InvalidFormat(_)))
        ));
    }

    #[test]
    fn strided_conv_shapes() {
        let core = CoreSim::rapid();
        let job = ConvJob {
            input: Tensor::random_uniform(vec![2, 3, 8, 8], -1.0, 1.0, 76),
            weight: Tensor::random_uniform(vec![4, 3, 3, 3], -0.5, 0.5, 77),
            spec: ConvSpec { stride: 2, pad: 1 },
            precision: Precision::Int4,
            sfu: None,
        };
        let r = run_conv(&core, &job);
        assert_eq!(r.output.shape(), &[2, 4, 4, 4]);
    }
}
