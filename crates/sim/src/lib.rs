//! # rapid-sim
//!
//! A cycle-approximate, *functionally executing* simulator of the RaPiD
//! core (paper §II-A, §III): decoupled data-sequencing programs with
//! token-based synchronization feed a systolic MPE array that computes
//! through the bit-exact `rapid-numerics` pipelines.
//!
//! Structure (one corelet):
//!
//! ```text
//!  L1 scratchpad ──(128 B/cyc port)──┬── weight sequencer ─→ weight link ─┐
//!                                    └── input sequencer  ─→ input link ──┤
//!                                                                         ▼
//!            token: BLOCK_FREE  ◀───────────────  8×8 MPE array (FMMA, zero-gating,
//!                                                 chunk accumulation) ─→ outputs
//! ```
//!
//! The array executes the weight-stationary dataflow of Fig 5; block-loads
//! are exposed (the weight sequencer waits on the array's block-free
//! token), so the cycle counts line up with the compiler's analytical
//! mapping — experiment E9 verifies the calibration within a few percent,
//! our analog of the paper's "calibrated to within 1% of the measurement
//! results".
//!
//! # Example
//!
//! ```
//! use rapid_arch::precision::Precision;
//! use rapid_numerics::Tensor;
//! use rapid_sim::gemm::{CoreSim, GemmJob};
//!
//! let core = CoreSim::rapid();
//! let job = GemmJob {
//!     a: Tensor::random_uniform(vec![4, 32], -1.0, 1.0, 1),
//!     b: Tensor::random_uniform(vec![32, 64], -1.0, 1.0, 2),
//!     precision: Precision::Fp16,
//! };
//! let r = core.run_gemm(&job);
//! assert_eq!(r.c.shape(), &[4, 64]);
//! assert!(r.cycles > 0);
//! ```

// unwrap/expect denial comes from [workspace.lints] in the root manifest.

pub mod array;
pub mod chip;
pub mod conv;
pub mod ecc;
pub mod error;
pub mod gemm;
pub mod seq;
pub mod sfu;
pub mod token;
pub mod watchdog;

pub use array::{ArrayJob, Datapath, MpeArray, TOKEN_BLOCK_FREE};
pub use chip::{
    run_chip_gemm, try_run_chip_gemm, try_run_chip_gemm_degraded, try_run_chip_gemm_mapped,
    try_run_chip_gemm_telemetry, try_run_chip_gemm_with, ChipGemmJob, ChipSimResult,
    SFU_TRACE_PID,
};
pub use conv::{run_conv, try_run_conv, ConvJob, ConvSimResult};
pub use error::{SeqSnapshot, SimError};
pub use gemm::{precision_label, CoreSim, CoreletReport, GemmJob, SimResult};
pub use sfu::{SfuStage, SfuUnit};
pub use seq::{Link, Scratchpad, Sequencer};
pub use token::TokenFile;
pub use watchdog::{run_token_programs, Watchdog, DEFAULT_WATCHDOG_WINDOW};
