//! # rapid
//!
//! A comprehensive reproduction of **RaPiD: AI Accelerator for Ultra-low
//! Precision Training and Inference** (Venkataramani et al., ISCA 2021) —
//! the IBM 7 nm 4-core chip supporting FP16 / Hybrid-FP8 / INT4 / INT2
//! execution.
//!
//! This facade re-exports every subsystem of the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`numerics`] | `rapid-numerics` | bit-exact FP16/HFP8/FP9/INT4/INT2 emulation, chunked accumulation, GEMM/conv kernels |
//! | [`arch`] | `rapid-arch` | machine organization, ISA, silicon power/area characterization |
//! | [`workloads`] | `rapid-workloads` | the 11-benchmark DNN suite with pruning profiles |
//! | [`compiler`] | `rapid-compiler` | precision assignment, weight-stationary dataflow mapping, throttling schedules |
//! | [`model`] | `rapid-model` | calibrated analytical performance/power model (inference, training, scaling) |
//! | [`sim`] | `rapid-sim` | cycle-approximate, functionally-executing core simulator with deadlock watchdogs |
//! | [`fault`] | `rapid-fault` | deterministic seeded fault injection (MAC bit-flips, ring drops/delays, sequencer stalls) |
//! | [`ring`] | `rapid-ring` | bidirectional ring + MNI multicast simulator |
//! | [`quant`] | `rapid-quant` | PACT, SaWB, magnitude pruning |
//! | [`refnet`] | `rapid-refnet` | reference trainer demonstrating HFP8 parity and INT4/INT2 PTQ |
//! | [`recover`] | `rapid-recover` | end-to-end recovery: checksummed checkpoints, loss-scale rollback, redundant-execution training |
//! | [`serve`] | `rapid-serve` | overload-hardened serving runtime: admission control, deadline propagation, precision-tiered shedding, circuit breaking |
//! | [`telemetry`] | `rapid-telemetry` | unified metrics registry, Chrome-trace cycle tracer, bench JSON schemas |
//! | [`health`] | `rapid-health` | online core health: known-answer self-test probes, decaying scores, mercurial-core quarantine |
//!
//! # Quickstart
//!
//! ```
//! use rapid::arch::geometry::ChipConfig;
//! use rapid::arch::precision::Precision;
//! use rapid::compiler::passes::{compile, CompileOptions};
//! use rapid::model::cost::ModelConfig;
//! use rapid::model::inference::evaluate_inference;
//! use rapid::workloads::suite::benchmark;
//!
//! let net = benchmark("resnet50").unwrap();
//! let chip = ChipConfig::rapid_4core();
//! let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
//! let result = evaluate_inference(&net, &plan, &chip, 1, &ModelConfig::default());
//! println!("ResNet50 INT4 batch-1: {:.0} inf/s at {:.1} TOPS/W",
//!          result.throughput_per_s, result.tops_per_w);
//! ```

pub use rapid_arch as arch;
pub use rapid_compiler as compiler;
pub use rapid_fault as fault;
pub use rapid_health as health;
pub use rapid_model as model;
pub use rapid_numerics as numerics;
pub use rapid_quant as quant;
pub use rapid_recover as recover;
pub use rapid_refnet as refnet;
pub use rapid_ring as ring;
pub use rapid_serve as serve;
pub use rapid_sim as sim;
pub use rapid_telemetry as telemetry;
pub use rapid_workloads as workloads;
