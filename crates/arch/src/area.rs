//! Area and power accounting for the decoupled FPU/FXU pipelines
//! (Fig 4c) and the chip floorplan (Fig 10).
//!
//! The paper's silicon analysis: adding the separate INT pipeline costs
//! ~16% MPE area, but the INT4 pipeline consumes only 0.3× the power of
//! the FP16 pipeline — which is what made *doubling* the INT4/INT2 engines
//! inside the FXU affordable (the "double pumping" of §III-A).

use serde::{Deserialize, Serialize};

/// Relative area/power accounting for one MPE (FP16 pipeline ≡ 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpeAreaModel {
    /// FPU (FP16 + HFP8) pipeline area, the reference.
    pub fpu_area: f64,
    /// FXU pipeline area relative to the FPU (Fig 4c: ~16% overhead on the
    /// MPE, attributed to the added INT pipeline).
    pub fxu_area: f64,
    /// Single INT4 engine power relative to the FP16 pipeline (Fig 4c: 0.3×).
    pub int4_engine_power: f64,
    /// LRF + control area relative to the FPU.
    pub lrf_area: f64,
}

impl MpeAreaModel {
    /// Fig 4(c) accounting.
    pub fn rapid() -> Self {
        Self { fpu_area: 1.0, fxu_area: 0.16, int4_engine_power: 0.3, lrf_area: 0.25 }
    }

    /// Total MPE area relative to an FPU-only MPE.
    pub fn total_relative_area(&self) -> f64 {
        (self.fpu_area + self.fxu_area + self.lrf_area) / (self.fpu_area + self.lrf_area)
    }

    /// Power of the doubled INT4 engines relative to the FP16 pipeline:
    /// 2 engines × 0.3 — still well below 1.0, which is why doubling fits
    /// the power budget.
    pub fn doubled_int4_power(&self) -> f64 {
        2.0 * self.int4_engine_power
    }
}

/// Chip floorplan facts (Fig 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipFloorplan {
    /// Die edge in millimetres (6 × 6).
    pub edge_mm: f64,
    /// Technology node label.
    pub node_nm: u32,
}

impl ChipFloorplan {
    /// The fabricated 36 mm² 7 nm EUV chip.
    pub fn rapid_7nm() -> Self {
        Self { edge_mm: 6.0, node_nm: 7 }
    }

    /// Die area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.edge_mm * self.edge_mm
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fig4c_relationships() {
        let m = MpeAreaModel::rapid();
        // ~16% area overhead for the INT pipeline on top of FPU+LRF.
        let overhead = m.total_relative_area() - 1.0;
        assert!((overhead - 0.128).abs() < 0.01, "overhead {overhead}");
        // Doubled INT4 engines draw 0.6× the FP16 pipeline power.
        assert!((m.doubled_int4_power() - 0.6).abs() < 1e-12);
        assert!(m.doubled_int4_power() < 1.0);
    }

    #[test]
    fn chip_is_36mm2() {
        let f = ChipFloorplan::rapid_7nm();
        assert_eq!(f.area_mm2(), 36.0);
        assert_eq!(f.node_nm, 7);
    }
}
