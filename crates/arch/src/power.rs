//! Silicon characterization model: voltage/frequency curve, per-op
//! energies, static power, and the sparsity-aware throttling model.
//!
//! The paper measures power on silicon and feeds the characterization into
//! its performance model (§V-A); we substitute a parametric model
//! *calibrated to the paper's published envelopes* (Fig 10):
//!
//! | precision | peak T(FL)OPS (1.0–1.6 GHz) | peak T(FL)OPS/W |
//! |-----------|------------------------------|-----------------|
//! | FP16      | 8 – 12.8                     | 0.98 – 1.8      |
//! | HFP8      | 16 – 25.6                    | 1.9 – 3.5       |
//! | INT4      | 64 – 102.4                   | 8.9 – 16.5      |
//!
//! Peak efficiency is achieved at the nominal-voltage end (1.0 GHz /
//! 0.55 V); the 1.6 GHz point needs a voltage boost and lands at the low
//! end of the efficiency range. Dynamic energy scales as V², static power
//! as V³. With `P_static(0.55 V) = 0.8 W` for the 4-core chip, fitting the
//! per-op effective energies to the Fig 10 efficiencies gives
//! `e_fp16 ≈ 0.458 pJ/op`, `e_hfp8 ≈ 0.237 pJ/op`, `e_int4 ≈ 0.048 pJ/op`
//! at 0.55 V (an "op" is one multiply or one add; a MAC is two ops).
//! The remaining component energies (scratchpads, ring, DRAM) take
//! representative published values for 7 nm-class designs; they move the
//! *sustained* efficiency levels but not the relative shapes.

use crate::geometry::ChipConfig;
use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// Linear voltage/frequency operating curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    /// Frequency at the low-voltage end (GHz).
    pub f_min_ghz: f64,
    /// Voltage at `f_min_ghz` (V).
    pub v_min: f64,
    /// Frequency at the high-voltage end (GHz).
    pub f_max_ghz: f64,
    /// Voltage at `f_max_ghz` (V).
    pub v_max: f64,
}

impl VfCurve {
    /// RaPiD 7 nm curve: 0.55 V @ 1.0 GHz (nominal voltage, peak
    /// efficiency) to 0.75 V @ 1.6 GHz.
    pub fn rapid_7nm() -> Self {
        Self { f_min_ghz: 1.0, v_min: 0.55, f_max_ghz: 1.6, v_max: 0.75 }
    }

    /// Operating voltage at a frequency (linear, extrapolating past the
    /// endpoints but clamped to at least `v_min`).
    pub fn voltage(&self, f_ghz: f64) -> f64 {
        let slope = (self.v_max - self.v_min) / (self.f_max_ghz - self.f_min_ghz);
        (self.v_min + slope * (f_ghz - self.f_min_ghz)).max(self.v_min)
    }
}

/// Per-operation / per-byte effective energies at the reference voltage,
/// in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// MPE op energy (pJ) at FP16. A MAC counts as 2 ops.
    pub mpe_fp16_op_pj: f64,
    /// MPE op energy (pJ) at HFP8.
    pub mpe_hfp8_op_pj: f64,
    /// MPE op energy (pJ) at INT4.
    pub mpe_int4_op_pj: f64,
    /// MPE op energy (pJ) at INT2.
    pub mpe_int2_op_pj: f64,
    /// SFU FP16 op energy (pJ).
    pub sfu_op_pj: f64,
    /// Residual energy fraction of a zero-gated MAC (bypass still clocks
    /// latches; 1.0 would mean gating saves nothing).
    pub zero_gate_residual: f64,
    /// L1 scratchpad access energy (pJ/byte).
    pub l1_byte_pj: f64,
    /// L0 scratchpad access energy (pJ/byte).
    pub l0_byte_pj: f64,
    /// On-chip ring transfer energy (pJ/byte/hop).
    pub ring_byte_hop_pj: f64,
    /// External DRAM access energy (pJ/byte) — DDR for the inference chip.
    pub dram_byte_pj: f64,
    /// HBM access energy (pJ/byte) — training system memory.
    pub hbm_byte_pj: f64,
    /// Chip-to-chip link energy (pJ/byte).
    pub link_byte_pj: f64,
}

impl EnergyTable {
    /// Energies calibrated to Fig 10 at the 0.55 V reference (see module
    /// docs for the fit).
    pub fn rapid_7nm() -> Self {
        Self {
            mpe_fp16_op_pj: 0.4579,
            mpe_hfp8_op_pj: 0.2369,
            mpe_int4_op_pj: 0.0484,
            mpe_int2_op_pj: 0.0242,
            sfu_op_pj: 0.4579,
            zero_gate_residual: 0.15,
            l1_byte_pj: 0.5,
            l0_byte_pj: 0.2,
            ring_byte_hop_pj: 0.1,
            dram_byte_pj: 15.0,
            hbm_byte_pj: 6.0,
            link_byte_pj: 10.0,
        }
    }

    /// MPE op energy at a precision (pJ at the reference voltage).
    ///
    /// # Panics
    ///
    /// Panics for [`Precision::Fp32`] (SFU-only).
    pub fn mpe_op_pj(&self, p: Precision) -> f64 {
        match p {
            Precision::Fp32 => panic!("FP32 does not execute on the MPE array"),
            Precision::Fp16 => self.mpe_fp16_op_pj,
            Precision::Hfp8 => self.mpe_hfp8_op_pj,
            Precision::Int4 => self.mpe_int4_op_pj,
            Precision::Int2 => self.mpe_int2_op_pj,
        }
    }
}

/// The chip-level power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Voltage/frequency operating curve.
    pub vf: VfCurve,
    /// Reference voltage for the energy table (V).
    pub v_ref: f64,
    /// Static power per core at the reference voltage (W).
    pub static_w_per_core: f64,
    /// Per-op/per-byte energies at the reference voltage.
    pub energy: EnergyTable,
}

impl PowerModel {
    /// The calibrated 7 nm RaPiD model.
    pub fn rapid_7nm() -> Self {
        Self {
            vf: VfCurve::rapid_7nm(),
            v_ref: 0.55,
            static_w_per_core: 0.2,
            energy: EnergyTable::rapid_7nm(),
        }
    }

    /// Dynamic-energy scale factor at frequency `f_ghz` relative to the
    /// reference voltage: (V/V_ref)².
    pub fn dyn_scale(&self, f_ghz: f64) -> f64 {
        let v = self.vf.voltage(f_ghz);
        (v / self.v_ref).powi(2)
    }

    /// Static power of `cores` cores at frequency `f_ghz` (scales as V³).
    pub fn static_power_w(&self, cores: u32, f_ghz: f64) -> f64 {
        let v = self.vf.voltage(f_ghz);
        self.static_w_per_core * f64::from(cores) * (v / self.v_ref).powi(3)
    }

    /// MPE op energy at a precision and frequency, in joules.
    pub fn mpe_op_joules(&self, p: Precision, f_ghz: f64) -> f64 {
        self.energy.mpe_op_pj(p) * self.dyn_scale(f_ghz) * 1e-12
    }

    /// Chip power when every MPE lane computes at full rate (peak).
    pub fn peak_power_w(&self, chip: &ChipConfig, p: Precision, f_ghz: f64) -> f64 {
        let ops_per_s = chip.peak_ops_per_cycle(p) as f64 * f_ghz * 1e9;
        self.static_power_w(chip.cores, f_ghz) + ops_per_s * self.mpe_op_joules(p, f_ghz)
    }

    /// Peak compute efficiency in T(FL)OPS/W (the Fig 10 rows).
    pub fn peak_efficiency(&self, chip: &ChipConfig, p: Precision, f_ghz: f64) -> f64 {
        let tops = chip.peak_tops(p, f_ghz);
        tops / self.peak_power_w(chip, p, f_ghz)
    }
}

/// Sparsity-aware frequency-throttling model (paper §III-C, Fig 6/16a).
///
/// The chip runs at the voltage supporting `f_max`; an on-chip power
/// control module skips clock edges so that average power stays inside the
/// budget. Zero-gating makes per-cycle compute energy fall with weight
/// sparsity, so the compiler can program a lower stall rate for sparse
/// layers — re-investing the saved power as effective frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleModel {
    /// Maximum (un-throttled) clock frequency (GHz).
    pub f_max_ghz: f64,
    /// Power budget as a fraction of the dense full-rate power at `f_max`.
    pub budget_fraction: f64,
    /// Fraction of per-cycle dynamic energy spent in the gateable MPE
    /// compute pipelines.
    pub compute_energy_fraction: f64,
    /// Fraction of a gated MAC's energy actually saved (1 − residual).
    pub gating_efficiency: f64,
}

impl ThrottleModel {
    /// Model calibrated so dense workloads throttle to ≈60% of `f_max` and
    /// 80%-sparse workloads run un-throttled — reproducing Fig 16's
    /// 1.1×–1.7× speedup band.
    pub fn rapid_default() -> Self {
        Self {
            f_max_ghz: 1.6,
            budget_fraction: 0.6,
            compute_energy_fraction: 0.7,
            gating_efficiency: 0.85,
        }
    }

    /// Relative per-cycle power at weight sparsity `s` (dense = 1.0).
    pub fn relative_cycle_power(&self, sparsity: f64) -> f64 {
        let s = sparsity.clamp(0.0, 1.0);
        1.0 - self.compute_energy_fraction * self.gating_efficiency * s
    }

    /// Effective frequency (GHz) the power-control module allows at a given
    /// weight sparsity.
    pub fn effective_frequency_ghz(&self, sparsity: f64) -> f64 {
        let f = self.f_max_ghz * self.budget_fraction / self.relative_cycle_power(sparsity);
        f.min(self.f_max_ghz)
    }

    /// Clock-edge-skip throttle rate at a given sparsity — the Fig 16a
    /// curve. 0.0 means no skipped edges.
    pub fn throttle_rate(&self, sparsity: f64) -> f64 {
        1.0 - self.effective_frequency_ghz(sparsity) / self.f_max_ghz
    }

    /// Speedup of sparsity-aware throttling over the sparsity-oblivious
    /// baseline (which must assume dense power).
    pub fn speedup_vs_dense_baseline(&self, sparsity: f64) -> f64 {
        self.effective_frequency_ghz(sparsity) / self.effective_frequency_ghz(0.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::geometry::ChipConfig;

    #[test]
    fn vf_curve_endpoints() {
        let vf = VfCurve::rapid_7nm();
        assert_eq!(vf.voltage(1.0), 0.55);
        assert_eq!(vf.voltage(1.6), 0.75);
        assert!((vf.voltage(1.5) - 0.71667).abs() < 1e-4);
        // Below f_min the voltage floor holds.
        assert_eq!(vf.voltage(0.8), 0.55);
    }

    #[test]
    fn fig10_peak_efficiency_high_end() {
        let pm = PowerModel::rapid_7nm();
        let chip = ChipConfig::rapid_4core();
        // At 1.0 GHz / 0.55 V the model must reproduce the calibration
        // targets: 1.8 / 3.5 / 16.5 T(FL)OPS/W.
        assert!((pm.peak_efficiency(&chip, Precision::Fp16, 1.0) - 1.8).abs() < 0.01);
        assert!((pm.peak_efficiency(&chip, Precision::Hfp8, 1.0) - 3.5).abs() < 0.02);
        assert!((pm.peak_efficiency(&chip, Precision::Int4, 1.0) - 16.5).abs() < 0.1);
    }

    #[test]
    fn fig10_peak_efficiency_low_end() {
        let pm = PowerModel::rapid_7nm();
        let chip = ChipConfig::rapid_4core();
        // At 1.6 GHz / 0.75 V: 0.98 / 1.9 / 8.9 T(FL)OPS/W (±10%).
        let fp16 = pm.peak_efficiency(&chip, Precision::Fp16, 1.6);
        let hfp8 = pm.peak_efficiency(&chip, Precision::Hfp8, 1.6);
        let int4 = pm.peak_efficiency(&chip, Precision::Int4, 1.6);
        assert!((fp16 - 0.98).abs() / 0.98 < 0.10, "fp16 {fp16}");
        assert!((hfp8 - 1.9).abs() / 1.9 < 0.10, "hfp8 {hfp8}");
        assert!((int4 - 8.9).abs() / 8.9 < 0.10, "int4 {int4}");
    }

    #[test]
    fn efficiency_falls_with_frequency() {
        let pm = PowerModel::rapid_7nm();
        let chip = ChipConfig::rapid_4core();
        for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4] {
            let mut prev = pm.peak_efficiency(&chip, p, 1.0);
            for f in [1.2, 1.4, 1.6] {
                let e = pm.peak_efficiency(&chip, p, f);
                assert!(e < prev, "{p} at {f} GHz: {e} !< {prev}");
                prev = e;
            }
        }
    }

    #[test]
    fn static_power_scales_with_cores_and_voltage() {
        let pm = PowerModel::rapid_7nm();
        assert!((pm.static_power_w(4, 1.0) - 0.8).abs() < 1e-12);
        assert!(pm.static_power_w(32, 1.0) > pm.static_power_w(4, 1.0) * 7.9);
        assert!(pm.static_power_w(4, 1.6) > pm.static_power_w(4, 1.0) * 2.0);
    }

    #[test]
    fn throttle_rate_decreases_with_sparsity() {
        let t = ThrottleModel::rapid_default();
        let mut prev = t.throttle_rate(0.0);
        assert!(prev > 0.3, "dense throttle {prev}");
        for s in [0.2, 0.4, 0.6, 0.8] {
            let r = t.throttle_rate(s);
            assert!(r < prev, "throttle at {s}: {r} !< {prev}");
            prev = r;
        }
        // At 80% sparsity the chip runs essentially un-throttled.
        assert!(t.throttle_rate(0.8) < 0.05);
    }

    #[test]
    fn throttling_speedup_band_matches_fig16() {
        let t = ThrottleModel::rapid_default();
        // Paper: 1.1×–1.7× across benchmarks with 50–80% sparsity.
        let lo = t.speedup_vs_dense_baseline(0.45);
        let hi = t.speedup_vs_dense_baseline(0.80);
        assert!(lo > 1.1 && lo < 1.6, "lo {lo}");
        assert!(hi > 1.5 && hi <= 1.7, "hi {hi}");
    }

    #[test]
    fn zero_gating_residual_bounds() {
        let e = EnergyTable::rapid_7nm();
        assert!(e.zero_gate_residual > 0.0 && e.zero_gate_residual < 1.0);
    }

    #[test]
    fn peak_power_magnitude_is_single_digit_watts() {
        // The 36 mm² chip is a single-digit-watt part at nominal voltage.
        let pm = PowerModel::rapid_7nm();
        let chip = ChipConfig::rapid_4core();
        for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4] {
            let w = pm.peak_power_w(&chip, p, 1.0);
            assert!(w > 3.0 && w < 8.0, "{p}: {w} W");
        }
    }
}
