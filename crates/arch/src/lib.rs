//! # rapid-arch
//!
//! Architecture description of the RaPiD chip (ISCA 2021): machine
//! organization, precision taxonomy, instruction formats, and the silicon
//! characterization (power/area) model.
//!
//! The RaPiD chip is organized hierarchically (paper §III–IV):
//!
//! ```text
//! System ─ chips ─ 4 cores/chip ─ 2 corelets/core ─ 8×8 MPE array + SFU arrays
//!                   │                │
//!                   │                └ L0 scratchpad, 128 B/cyc from L1
//!                   └ 2 MB L1/core, MNI + bidirectional ring (128 B/cyc/dir)
//! ```
//!
//! * [`precision::Precision`] — the five supported data formats and their
//!   per-element storage/throughput properties.
//! * [`geometry`] — [`geometry::MpeConfig`] through
//!   [`geometry::SystemConfig`], with peak-throughput
//!   calculators that reproduce Fig 10's 8–12.8 / 16–25.6 / 64–102.4
//!   T(FL)OPS envelopes.
//! * [`isa`] — the MPE/SFU/MNI instruction formats of Fig 4(b), shared by
//!   the compiler (`rapid-compiler`) and the cycle simulator (`rapid-sim`).
//! * [`power`] — the silicon characterization model: V(f) curve, per-op
//!   energies, static power, peak TOPS/W (Fig 10), zero-gating savings and
//!   the clock-edge-skipping throttle model (Fig 16a).
//! * [`area`] — the Fig 4(c) area/power accounting for the decoupled
//!   FPU/FXU pipelines.
//!
//! # Example
//!
//! ```
//! use rapid_arch::geometry::ChipConfig;
//! use rapid_arch::precision::Precision;
//!
//! let chip = ChipConfig::rapid_4core();
//! // Fig 10: "64 – 102.4 TOPS" INT4 over 1.0–1.6 GHz (the paper rounds
//! // 65.536 down to 64).
//! assert_eq!(chip.peak_tops(Precision::Int4, 1.0), 65.536);
//! assert!(chip.peak_tops(Precision::Int4, 1.6) > 102.4);
//! ```

pub mod area;
pub mod geometry;
pub mod isa;
pub mod power;
pub mod precision;
pub mod protection;

pub use geometry::{ChipConfig, CoreConfig, CoreletConfig, MpeConfig, SystemConfig};
pub use power::{PowerModel, ThrottleModel, VfCurve};
pub use precision::Precision;
pub use protection::ProtectionParams;
