//! Instruction formats of the RaPiD programmable units (Fig 4b).
//!
//! Execution of a DNN operation is orchestrated by many small programs
//! (paper §II-A): *data-processing* programs on the MPEs and SFUs, and
//! *data-sequencing* programs on the load/store sequencers at the end
//! points of each link. Token-based hardware synchronization orders
//! producers and consumers. The compiler (`rapid-compiler`) emits these
//! instructions; the cycle simulator (`rapid-sim`) executes them.

use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// Identifies a synchronization token counter (hardware semaphore).
pub type TokenId = u8;

/// Source of an FMMA multiplicand (Fig 4a: North/West neighbors or LRF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandSrc {
    /// Operand streams in from the West link (row broadcast).
    West,
    /// Operand streams in from the North link.
    North,
    /// Operand is read from the local register file.
    Lrf,
}

/// An MPE (data-processing) instruction.
///
/// Within a program the operand precision is fixed and held in registers so
/// the hardware can data-gate operand widths (paper §III-A); the simulator
/// enforces the same invariant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MpeInstr {
    /// Fused multiply-multiply-accumulate across the SIMD lanes: multiply
    /// the streaming operand by `vecs` stationary LRF vectors and
    /// accumulate into the passing partial sums.
    Fmma {
        /// Execution precision (FP16/HFP8 on the FPU, INT4/INT2 on the FXU).
        precision: Precision,
        /// Multiplicand A source.
        src_a: OperandSrc,
        /// Multiplicand B source.
        src_b: OperandSrc,
        /// First LRF register of the stationary block.
        lrf_base: u8,
        /// Number of LRF vectors consumed (INT4 mode reads 2 registers /
        /// 256 bits per MAC instruction, §III-A).
        vecs: u8,
    },
    /// Block-load `words` 128-bit words from the incoming link into the LRF
    /// starting at `lrf_base`.
    BlockLoad {
        /// Destination LRF register.
        lrf_base: u8,
        /// Number of 128-bit words to load.
        words: u8,
    },
    /// Configure the programmable exponent bias of the (1,4,3) operands.
    SetBias {
        /// Bias for operand A's tensor.
        bias_a: i8,
        /// Bias for operand B's tensor.
        bias_b: i8,
    },
    /// Pass partial sums through unchanged for `cycles` cycles.
    Nop {
        /// Idle cycle count.
        cycles: u16,
    },
}

impl MpeInstr {
    /// Encodes into the 32-bit instruction word layout of Fig 4(b):
    /// `[31:28] opcode | [27:24] precision | fields`.
    pub fn encode(&self) -> u32 {
        match *self {
            MpeInstr::Fmma { precision, src_a, src_b, lrf_base, vecs } => {
                (0x1 << 28)
                    | (precision_code(precision) << 24)
                    | (src_code(src_a) << 22)
                    | (src_code(src_b) << 20)
                    | ((lrf_base as u32) << 12)
                    | ((vecs as u32) << 4)
            }
            MpeInstr::BlockLoad { lrf_base, words } => {
                (0x2 << 28) | ((lrf_base as u32) << 12) | ((words as u32) << 4)
            }
            MpeInstr::SetBias { bias_a, bias_b } => {
                (0x3 << 28) | (((bias_a as u8) as u32) << 8) | ((bias_b as u8) as u32)
            }
            MpeInstr::Nop { cycles } => cycles as u32,
        }
    }

    /// Decodes an instruction word produced by [`MpeInstr::encode`].
    ///
    /// Returns `None` for an unknown opcode or field encoding.
    pub fn decode(word: u32) -> Option<Self> {
        match word >> 28 {
            0x0 => Some(MpeInstr::Nop { cycles: (word & 0xffff) as u16 }),
            0x1 => Some(MpeInstr::Fmma {
                precision: decode_precision((word >> 24) & 0xf)?,
                src_a: decode_src((word >> 22) & 0x3)?,
                src_b: decode_src((word >> 20) & 0x3)?,
                lrf_base: ((word >> 12) & 0xff) as u8,
                vecs: ((word >> 4) & 0xff) as u8,
            }),
            0x2 => Some(MpeInstr::BlockLoad {
                lrf_base: ((word >> 12) & 0xff) as u8,
                words: ((word >> 4) & 0xff) as u8,
            }),
            0x3 => Some(MpeInstr::SetBias {
                bias_a: ((word >> 8) & 0xff) as u8 as i8,
                bias_b: (word & 0xff) as u8 as i8,
            }),
            _ => None,
        }
    }
}

fn precision_code(p: Precision) -> u32 {
    match p {
        Precision::Fp32 => 0,
        Precision::Fp16 => 1,
        Precision::Hfp8 => 2,
        Precision::Int4 => 3,
        Precision::Int2 => 4,
    }
}

fn decode_precision(c: u32) -> Option<Precision> {
    Some(match c {
        0 => Precision::Fp32,
        1 => Precision::Fp16,
        2 => Precision::Hfp8,
        3 => Precision::Int4,
        4 => Precision::Int2,
        _ => return None,
    })
}

fn src_code(s: OperandSrc) -> u32 {
    match s {
        OperandSrc::West => 0,
        OperandSrc::North => 1,
        OperandSrc::Lrf => 2,
    }
}

fn decode_src(c: u32) -> Option<OperandSrc> {
    Some(match c {
        0 => OperandSrc::West,
        1 => OperandSrc::North,
        2 => OperandSrc::Lrf,
        _ => return None,
    })
}

/// Special Function Unit operation kinds (paper §III-B: accurate and fast
/// variants of a broad set of non-linear and data-movement functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SfuOpKind {
    /// Rectified linear unit (forward or backward).
    Relu,
    /// Leaky ReLU with a fixed negative slope.
    LeakyRelu,
    /// PACT clipped activation (clip at a learned α).
    PactClip,
    /// Logistic sigmoid (approximated).
    Sigmoid,
    /// Hyperbolic tangent (approximated).
    Tanh,
    /// Square root (approximated).
    Sqrt,
    /// Natural exponent (approximated).
    Exp,
    /// Natural logarithm (approximated).
    Ln,
    /// Reciprocal (approximated).
    Reciprocal,
    /// Element-wise add (residual connections, gradient reduction).
    Add,
    /// Element-wise multiply (gates, scales).
    Mul,
    /// Running maximum (max pooling).
    Max,
    /// Chunk-based accumulation of MPE partial sums (FP16/INT16 → FP32).
    ChunkAccum,
    /// FP16 → INT4/INT2 quantization with a per-tensor scale.
    Quantize,
    /// INT16/INT32 → FP16 dequantization with a per-tensor scale.
    Dequantize,
    /// Data shuffle / permute.
    Permute,
    /// Tile transpose (update phase of training).
    Transpose,
}

impl SfuOpKind {
    /// Whether the op runs on the FP32 sub-units (selected operations keep
    /// 32-bit precision, §I feature 3).
    pub fn uses_fp32(&self) -> bool {
        matches!(self, SfuOpKind::ChunkAccum | SfuOpKind::Sqrt | SfuOpKind::Ln | SfuOpKind::Exp)
    }

    /// Throughput in elements per lane per cycle (fast approximations run
    /// at 1/lane/cycle; accurate iterative versions at 1/4).
    pub fn elems_per_lane_cycle(&self, accurate: bool) -> f64 {
        let base = match self {
            SfuOpKind::Relu
            | SfuOpKind::LeakyRelu
            | SfuOpKind::PactClip
            | SfuOpKind::Add
            | SfuOpKind::Mul
            | SfuOpKind::Max
            | SfuOpKind::ChunkAccum
            | SfuOpKind::Quantize
            | SfuOpKind::Dequantize
            | SfuOpKind::Permute
            | SfuOpKind::Transpose => 1.0,
            SfuOpKind::Sigmoid
            | SfuOpKind::Tanh
            | SfuOpKind::Sqrt
            | SfuOpKind::Exp
            | SfuOpKind::Ln
            | SfuOpKind::Reciprocal => 0.5,
        };
        if accurate {
            base / 4.0
        } else {
            base
        }
    }
}

/// A data-sequencing instruction for the programmable load/store units at
/// the end points of each link (paper §II-A, access–execute style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeqInstr {
    /// Read `len` elements from scratchpad starting at `addr` with the
    /// given element `stride`, pushing them onto the outgoing link.
    Read {
        /// Start address (bytes).
        addr: u32,
        /// Element count.
        len: u32,
        /// Stride between elements (bytes).
        stride: u32,
    },
    /// Pop `len` elements from the incoming link and write them starting
    /// at `addr` with `stride`.
    Write {
        /// Start address (bytes).
        addr: u32,
        /// Element count.
        len: u32,
        /// Stride between elements (bytes).
        stride: u32,
    },
    /// Block until token `token` has been signalled at least `count` times,
    /// then consume `count` signals.
    WaitToken {
        /// Token counter id.
        token: TokenId,
        /// Signals to consume.
        count: u16,
    },
    /// Signal token `token` once.
    SignalToken {
        /// Token counter id.
        token: TokenId,
    },
    /// Begin a hardware loop repeating the following instructions `count`
    /// times (loops may nest).
    LoopBegin {
        /// Iteration count.
        count: u32,
    },
    /// End of the innermost hardware loop body.
    LoopEnd,
}

impl SeqInstr {
    /// Encodes into a 64-bit word: `[63:60] opcode | fields`.
    pub fn encode(&self) -> u64 {
        match *self {
            SeqInstr::Read { addr, len, stride } => {
                (0x1u64 << 60)
                    | ((u64::from(addr) & 0xFFFF_FFFF) << 28)
                    | ((u64::from(len) & 0xF_FFFF) << 8)
                    | (u64::from(stride) & 0xFF)
            }
            SeqInstr::Write { addr, len, stride } => {
                (0x2u64 << 60)
                    | ((u64::from(addr) & 0xFFFF_FFFF) << 28)
                    | ((u64::from(len) & 0xF_FFFF) << 8)
                    | (u64::from(stride) & 0xFF)
            }
            SeqInstr::WaitToken { token, count } => {
                (0x3u64 << 60) | (u64::from(token) << 16) | u64::from(count)
            }
            SeqInstr::SignalToken { token } => (0x4u64 << 60) | u64::from(token),
            SeqInstr::LoopBegin { count } => (0x5u64 << 60) | u64::from(count),
            SeqInstr::LoopEnd => 0x6u64 << 60,
        }
    }

    /// Decodes a word produced by [`SeqInstr::encode`]. Returns `None` for
    /// an unknown opcode.
    pub fn decode(word: u64) -> Option<Self> {
        Some(match word >> 60 {
            0x1 => SeqInstr::Read {
                addr: ((word >> 28) & 0xFFFF_FFFF) as u32,
                len: ((word >> 8) & 0xF_FFFF) as u32,
                stride: (word & 0xFF) as u32,
            },
            0x2 => SeqInstr::Write {
                addr: ((word >> 28) & 0xFFFF_FFFF) as u32,
                len: ((word >> 8) & 0xF_FFFF) as u32,
                stride: (word & 0xFF) as u32,
            },
            0x3 => SeqInstr::WaitToken {
                token: ((word >> 16) & 0xFF) as u8,
                count: (word & 0xFFFF) as u16,
            },
            0x4 => SeqInstr::SignalToken { token: (word & 0xFF) as u8 },
            0x5 => SeqInstr::LoopBegin { count: (word & 0xFFFF_FFFF) as u32 },
            0x6 => SeqInstr::LoopEnd,
            _ => return None,
        })
    }
}

/// MNI (memory/neighbor interface) primitives (paper §III-E, Fig 8).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MniInstr {
    /// Post a receive for `bytes` tagged `tag`, to be written at `local_addr`.
    /// `consumers` is the number of participating consumers for multi-cast
    /// aggregation (1 for unicast).
    Recv {
        /// Transfer identification tag.
        tag: u16,
        /// Producer core id (or memory).
        from: u8,
        /// Bytes to receive.
        bytes: u32,
        /// Local scratchpad address for the data return.
        local_addr: u32,
        /// Number of participating consumers (multi-cast group size).
        consumers: u8,
    },
    /// Send `bytes` from `local_addr`, tagged `tag`, once `consumers`
    /// matching `Recv` requests have aggregated.
    Send {
        /// Transfer identification tag.
        tag: u16,
        /// Bytes to send.
        bytes: u32,
        /// Local scratchpad address of the payload.
        local_addr: u32,
        /// Number of consumer requests to aggregate before posting.
        consumers: u8,
    },
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mpe_encode_decode_roundtrip() {
        let instrs = [
            MpeInstr::Fmma {
                precision: Precision::Int4,
                src_a: OperandSrc::West,
                src_b: OperandSrc::Lrf,
                lrf_base: 3,
                vecs: 2,
            },
            MpeInstr::BlockLoad { lrf_base: 0, words: 16 },
            MpeInstr::SetBias { bias_a: -4, bias_b: 7 },
            MpeInstr::Nop { cycles: 100 },
        ];
        for i in instrs {
            assert_eq!(MpeInstr::decode(i.encode()), Some(i), "{i:?}");
        }
    }

    #[test]
    fn decode_rejects_unknown_opcodes() {
        assert_eq!(MpeInstr::decode(0xF000_0000), None);
        // Bad precision code in an FMMA word.
        assert_eq!(MpeInstr::decode((0x1 << 28) | (0xA << 24)), None);
    }

    #[test]
    fn seq_encode_decode_roundtrip() {
        let instrs = [
            SeqInstr::Read { addr: 0xDEAD_BEEF, len: 1000, stride: 4 },
            SeqInstr::Write { addr: 42, len: 7, stride: 1 },
            SeqInstr::WaitToken { token: 3, count: 2 },
            SeqInstr::SignalToken { token: 250 },
            SeqInstr::LoopBegin { count: 123_456 },
            SeqInstr::LoopEnd,
        ];
        for i in instrs {
            assert_eq!(SeqInstr::decode(i.encode()), Some(i), "{i:?}");
        }
        assert_eq!(SeqInstr::decode(0xF000_0000_0000_0000), None);
    }

    #[test]
    fn sfu_throughputs() {
        assert_eq!(SfuOpKind::Relu.elems_per_lane_cycle(false), 1.0);
        assert_eq!(SfuOpKind::Sigmoid.elems_per_lane_cycle(false), 0.5);
        assert_eq!(SfuOpKind::Sigmoid.elems_per_lane_cycle(true), 0.125);
        assert!(SfuOpKind::ChunkAccum.uses_fp32());
        assert!(!SfuOpKind::Relu.uses_fp32());
    }
}
