//! The five RaPiD data formats at the architecture level.
//!
//! `Precision` describes what the *machine* needs to know about a format:
//! storage width, which MPE pipeline executes it, and the throughput
//! multiplier relative to FP16. The value-level semantics live in
//! `rapid-numerics`.

use rapid_numerics::fma::FmaMode;
use serde::{Deserialize, Serialize};

/// Which MPE pipeline a precision executes on (paper §III-A separates the
/// FPU and FXU pipelines to decouple their circuit optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pipeline {
    /// Floating-point pipeline (FP16 and HFP8 share the 128-bit datapath).
    Fpu,
    /// Fixed-point pipeline (INT4/INT2, double-pumped).
    Fxu,
    /// FP32 runs only on the SFU array (selected auxiliary operations).
    Sfu,
}

/// A compute precision supported by the RaPiD core.
///
/// The declaration order doubles as the serving quality order: variants
/// compare from highest precision (`Fp32`) down to lowest (`Int2`), so
/// `a < b` means `a` is the higher-quality tier — the ordering the
/// precision-tiered load shedder walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit IEEE floating point (SFU only; selected ops).
    Fp32,
    /// 16-bit DLFloat (1,6,9) — the baseline precision.
    Fp16,
    /// Hybrid FP8: (1,4,3) with programmable bias forward, (1,5,2) backward.
    Hfp8,
    /// 4-bit fixed point (inference).
    Int4,
    /// 2-bit fixed point (inference).
    Int2,
}

impl Precision {
    /// All precisions the MPE array can execute (excludes FP32, which is
    /// SFU-only).
    pub const MPE_PRECISIONS: [Precision; 4] =
        [Precision::Fp16, Precision::Hfp8, Precision::Int4, Precision::Int2];

    /// Storage bits per element.
    pub fn bits(&self) -> u32 {
        match self {
            Precision::Fp32 => 32,
            Precision::Fp16 => 16,
            Precision::Hfp8 => 8,
            Precision::Int4 => 4,
            Precision::Int2 => 2,
        }
    }

    /// Storage bytes per element (fractional for sub-byte formats).
    pub fn bytes(&self) -> f64 {
        f64::from(self.bits()) / 8.0
    }

    /// MAC throughput multiplier relative to FP16 on the MPE
    /// (paper: HFP8 2× via sub-SIMD; INT4 8× via the double-pumped FXU
    /// with 8 MAC engines per lane; INT2 16×).
    ///
    /// # Panics
    ///
    /// Panics for [`Precision::Fp32`], which the MPE array does not execute.
    pub fn mpe_throughput_multiplier(&self) -> u32 {
        match self {
            Precision::Fp32 => panic!("FP32 does not execute on the MPE array"),
            Precision::Fp16 => 1,
            Precision::Hfp8 => 2,
            Precision::Int4 => 8,
            Precision::Int2 => 16,
        }
    }

    /// The pipeline that executes this precision.
    pub fn pipeline(&self) -> Pipeline {
        match self {
            Precision::Fp32 => Pipeline::Sfu,
            Precision::Fp16 | Precision::Hfp8 => Pipeline::Fpu,
            Precision::Int4 | Precision::Int2 => Pipeline::Fxu,
        }
    }

    /// Whether this is a floating-point format.
    pub fn is_float(&self) -> bool {
        matches!(self, Precision::Fp32 | Precision::Fp16 | Precision::Hfp8)
    }

    /// The forward-pass FMA mode of this precision, when it executes on the
    /// FPU (used to drive the functional pipelines in `rapid-numerics`).
    pub fn fma_mode(&self) -> Option<FmaMode> {
        match self {
            Precision::Fp16 => Some(FmaMode::Fp16),
            Precision::Hfp8 => Some(FmaMode::hfp8_fwd_default()),
            _ => None,
        }
    }

    /// Human-readable unit for throughput in this precision
    /// ("TFLOPS" for float formats, "TOPS" for fixed point).
    pub fn throughput_unit(&self) -> &'static str {
        if self.is_float() {
            "TFLOPS"
        } else {
            "TOPS"
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Precision::Fp32 => "fp32",
            Precision::Fp16 => "fp16",
            Precision::Hfp8 => "hfp8",
            Precision::Int4 => "int4",
            Precision::Int2 => "int2",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn storage_widths() {
        assert_eq!(Precision::Fp16.bytes(), 2.0);
        assert_eq!(Precision::Hfp8.bytes(), 1.0);
        assert_eq!(Precision::Int4.bytes(), 0.5);
        assert_eq!(Precision::Int2.bytes(), 0.25);
    }

    #[test]
    fn throughput_multipliers_match_paper() {
        assert_eq!(Precision::Fp16.mpe_throughput_multiplier(), 1);
        assert_eq!(Precision::Hfp8.mpe_throughput_multiplier(), 2);
        assert_eq!(Precision::Int4.mpe_throughput_multiplier(), 8);
        assert_eq!(Precision::Int2.mpe_throughput_multiplier(), 16);
    }

    #[test]
    #[should_panic(expected = "FP32 does not execute on the MPE array")]
    fn fp32_has_no_mpe_multiplier() {
        let _ = Precision::Fp32.mpe_throughput_multiplier();
    }

    #[test]
    fn pipelines() {
        assert_eq!(Precision::Fp16.pipeline(), Pipeline::Fpu);
        assert_eq!(Precision::Hfp8.pipeline(), Pipeline::Fpu);
        assert_eq!(Precision::Int4.pipeline(), Pipeline::Fxu);
        assert_eq!(Precision::Fp32.pipeline(), Pipeline::Sfu);
    }

    #[test]
    fn units() {
        assert_eq!(Precision::Hfp8.throughput_unit(), "TFLOPS");
        assert_eq!(Precision::Int4.throughput_unit(), "TOPS");
    }

    #[test]
    fn fma_modes() {
        assert!(Precision::Fp16.fma_mode().is_some());
        assert!(Precision::Hfp8.fma_mode().is_some());
        assert!(Precision::Int4.fma_mode().is_none());
    }
}
