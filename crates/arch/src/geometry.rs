//! Machine organization: MPE → corelet → core → chip → system.
//!
//! Defaults reproduce the fabricated 4-core chip (Fig 9/10) and the scaled
//! 32-core training chip (Fig 11). All capacities and bandwidths come from
//! the paper: 2 MB L1 per core, 128 B/cycle L1→corelet, 128 B/cycle/direction
//! ring, 200 GBps DDR for the inference chip, 400 GBps HBM + 128 GBps
//! chip-to-chip links for the training system.

use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// One Mixed-Precision Processing Element (Fig 4a): an 8-way SIMD FPU plus
/// an 8-way (double-pumped) FXU and a local register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MpeConfig {
    /// SIMD lanes per pipeline (8 in RaPiD).
    pub simd_lanes: u32,
    /// Local register file bytes available for stationary weights.
    pub lrf_bytes: u32,
}

impl Default for MpeConfig {
    fn default() -> Self {
        // 256 B of weight LRF: 8 Co lanes × 16 FP16 / 32 HFP8 / 64 INT4 /
        // 128 INT2 stationary input channels.
        Self { simd_lanes: 8, lrf_bytes: 256 }
    }
}

impl MpeConfig {
    /// MACs this MPE executes per cycle at a precision.
    pub fn macs_per_cycle(&self, p: Precision) -> u32 {
        self.simd_lanes * p.mpe_throughput_multiplier()
    }

    /// Number of stationary weights the LRF holds at a precision
    /// (`lrf_bytes / bytes_per_element`).
    pub fn lrf_weights(&self, p: Precision) -> u32 {
        (f64::from(self.lrf_bytes) / p.bytes()) as u32
    }

    /// Stationary input channels per LRF block (weights / Co lanes).
    pub fn lrf_ci_depth(&self, p: Precision) -> u32 {
        self.lrf_weights(p) / self.simd_lanes
    }
}

/// One corelet: an 8×8 systolic MPE array, the (doubled) SFU arrays and an
/// L0 scratchpad (Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreletConfig {
    /// MPE array rows (input channels map here).
    pub rows: u32,
    /// MPE array columns (output channels map here, together with SIMD).
    pub cols: u32,
    /// Per-MPE configuration.
    pub mpe: MpeConfig,
    /// FP16 SFU lanes. The ultra-low-precision core doubles the baseline
    /// SFU array (paper §III-B): 2 arrays × 8 SFUs × 8-way SIMD = 128.
    pub sfu_lanes: u32,
    /// L0 scratchpad capacity in bytes.
    pub l0_bytes: u64,
    /// L1→corelet bandwidth in bytes/cycle (each direction).
    pub l1_bw_bytes_per_cycle: u32,
}

impl Default for CoreletConfig {
    fn default() -> Self {
        Self {
            rows: 8,
            cols: 8,
            mpe: MpeConfig::default(),
            sfu_lanes: 128,
            l0_bytes: 64 * 1024,
            l1_bw_bytes_per_cycle: 128,
        }
    }
}

impl CoreletConfig {
    /// Total MPEs in the array.
    pub fn mpe_count(&self) -> u32 {
        self.rows * self.cols
    }

    /// MACs per cycle across the whole MPE array at a precision.
    pub fn macs_per_cycle(&self, p: Precision) -> u64 {
        u64::from(self.mpe_count()) * u64::from(self.mpe.macs_per_cycle(p))
    }

    /// Spatial output-channel tile: columns × SIMD lanes (Co granularity of
    /// the weight-stationary dataflow, Fig 5).
    pub fn co_tile(&self) -> u32 {
        self.cols * self.mpe.simd_lanes
    }

    /// Spatial input-channel granularity per cycle: rows × per-lane packing
    /// (1/2/8/16 for FP16/HFP8/INT4/INT2).
    pub fn ci_tile(&self, p: Precision) -> u32 {
        self.rows * p.mpe_throughput_multiplier()
    }

    /// Maximum stationary input channels per LRF block-load.
    pub fn ci_lrf_max(&self, p: Precision) -> u32 {
        self.rows * self.mpe.lrf_ci_depth(p)
    }

    /// Cycles to block-load every MPE's LRF through the L1 port.
    pub fn block_load_cycles(&self) -> u64 {
        let bytes = u64::from(self.mpe_count()) * u64::from(self.mpe.lrf_bytes);
        bytes.div_ceil(u64::from(self.l1_bw_bytes_per_cycle))
    }

    /// Pipeline fill/drain cycles for one pass through the systolic array
    /// (operands ripple across rows and partial sums down columns).
    pub fn pipeline_fill_cycles(&self) -> u64 {
        u64::from(self.rows + self.cols)
    }
}

/// One AI core: two corelets sharing a 2 MB L1 scratchpad, with an MNI to
/// the ring (Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Corelets per core (2 in RaPiD).
    pub corelets: u32,
    /// Per-corelet configuration.
    pub corelet: CoreletConfig,
    /// Shared L1 scratchpad bytes (2 MB).
    pub l1_bytes: u64,
    /// MNI↔ring bandwidth in bytes/cycle per direction.
    pub ring_bw_bytes_per_cycle: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            corelets: 2,
            corelet: CoreletConfig::default(),
            l1_bytes: 2 * 1024 * 1024,
            ring_bw_bytes_per_cycle: 128,
        }
    }
}

impl CoreConfig {
    /// MACs per cycle for the whole core.
    pub fn macs_per_cycle(&self, p: Precision) -> u64 {
        u64::from(self.corelets) * self.corelet.macs_per_cycle(p)
    }

    /// Ops (multiply + add counted separately) per cycle for the core.
    pub fn ops_per_cycle(&self, p: Precision) -> u64 {
        2 * self.macs_per_cycle(p)
    }

    /// FP16 SFU ops per cycle for the whole core.
    pub fn sfu_ops_per_cycle(&self) -> u64 {
        u64::from(self.corelets) * u64::from(self.corelet.sfu_lanes)
    }
}

/// A RaPiD chip: cores on a bidirectional ring, a chip-management unit and
/// an external memory interface (Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of cores (4 fabricated; 32 in the scaled training chip).
    pub cores: u32,
    /// Per-core configuration.
    pub core: CoreConfig,
    /// Nominal clock frequency in GHz.
    pub freq_ghz: f64,
    /// Minimum supported frequency in GHz (Fig 10: 1.0).
    pub freq_min_ghz: f64,
    /// Maximum supported frequency in GHz (Fig 10: 1.6).
    pub freq_max_ghz: f64,
    /// External memory bandwidth in GB/s (DDR 200 for the 4-core chip,
    /// HBM 400 for the scaled training chip).
    pub mem_bw_gbps: f64,
}

impl ChipConfig {
    /// The fabricated 4-core 36 mm² chip, 1.5 GHz nominal, DDR 200 GBps.
    pub fn rapid_4core() -> Self {
        Self {
            cores: 4,
            core: CoreConfig::default(),
            freq_ghz: 1.5,
            freq_min_ghz: 1.0,
            freq_max_ghz: 1.6,
            mem_bw_gbps: 200.0,
        }
    }

    /// The scaled-up 32-core training chip with HBM at 400 GBps (§IV-A).
    pub fn rapid_32core() -> Self {
        Self {
            cores: 32,
            core: CoreConfig::default(),
            freq_ghz: 1.5,
            freq_min_ghz: 1.0,
            freq_max_ghz: 1.6,
            mem_bw_gbps: 400.0,
        }
    }

    /// A copy with a different core count (scaling studies, Fig 18a).
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// A copy with a different external memory bandwidth.
    pub fn with_mem_bw_gbps(mut self, bw: f64) -> Self {
        self.mem_bw_gbps = bw;
        self
    }

    /// MACs per cycle for the whole chip.
    pub fn macs_per_cycle(&self, p: Precision) -> u64 {
        u64::from(self.cores) * self.core.macs_per_cycle(p)
    }

    /// Ops per cycle for the whole chip (2 × MACs).
    pub fn peak_ops_per_cycle(&self, p: Precision) -> u64 {
        2 * self.macs_per_cycle(p)
    }

    /// Peak throughput in T(FL)OPS at a frequency in GHz.
    pub fn peak_tops(&self, p: Precision, freq_ghz: f64) -> f64 {
        self.peak_ops_per_cycle(p) as f64 * freq_ghz * 1e9 / 1e12
    }

    /// Peak throughput at the nominal frequency.
    pub fn peak_tops_nominal(&self, p: Precision) -> f64 {
        self.peak_tops(p, self.freq_ghz)
    }

    /// External memory bandwidth in bytes/cycle at the nominal frequency.
    pub fn mem_bytes_per_cycle(&self) -> f64 {
        self.mem_bw_gbps * 1e9 / (self.freq_ghz * 1e9)
    }
}

/// A multi-chip system (Fig 11: 4 × 32-core chips for training).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of chips.
    pub chips: u32,
    /// Per-chip configuration.
    pub chip: ChipConfig,
    /// Chip-to-chip interconnect bandwidth in GB/s (128 in the paper).
    pub link_bw_gbps: f64,
}

impl SystemConfig {
    /// The paper's 768-T(FL)OPS training system: 4 chips × 32 cores at
    /// 1.5 GHz with 128 GBps links.
    pub fn training_4x32() -> Self {
        Self { chips: 4, chip: ChipConfig::rapid_32core(), link_bw_gbps: 128.0 }
    }

    /// The single-chip inference system.
    pub fn inference_1x4() -> Self {
        Self { chips: 1, chip: ChipConfig::rapid_4core(), link_bw_gbps: 0.0 }
    }

    /// A copy with a different chip count (scaling studies, Fig 18b).
    pub fn with_chips(mut self, chips: u32) -> Self {
        self.chips = chips;
        self
    }

    /// Peak system throughput in T(FL)OPS at the nominal frequency.
    pub fn peak_tops(&self, p: Precision) -> f64 {
        f64::from(self.chips) * self.chip.peak_tops_nominal(p)
    }

    /// Total cores in the system.
    pub fn total_cores(&self) -> u32 {
        self.chips * self.chip.cores
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fig10_peak_throughput_envelopes() {
        let chip = ChipConfig::rapid_4core();
        // 8 – 12.8 TFLOPS fp16
        assert_eq!(chip.peak_tops(Precision::Fp16, 1.0), 8.192);
        assert!((chip.peak_tops(Precision::Fp16, 1.6) - 13.1072).abs() < 1e-9);
        // 16 – 25.6 TFLOPS hfp8
        assert_eq!(chip.peak_tops(Precision::Hfp8, 1.0), 16.384);
        assert!((chip.peak_tops(Precision::Hfp8, 1.6) - 26.2144).abs() < 1e-9);
        // 64 – 102.4 TOPS int4
        assert_eq!(chip.peak_tops(Precision::Int4, 1.0), 65.536);
        assert!((chip.peak_tops(Precision::Int4, 1.6) - 104.8576).abs() < 1e-9);
    }

    #[test]
    fn abstract_numbers_at_nominal() {
        // "12/24/96 T(FL)OPS peak" for the 4-core chip at 1.5 GHz.
        let chip = ChipConfig::rapid_4core();
        assert!((chip.peak_tops_nominal(Precision::Fp16) - 12.288).abs() < 1e-9);
        assert!((chip.peak_tops_nominal(Precision::Hfp8) - 24.576).abs() < 1e-9);
        assert!((chip.peak_tops_nominal(Precision::Int4) - 98.304).abs() < 1e-9);
    }

    #[test]
    fn training_system_reaches_768_tops() {
        // "768 TFLOPs AI system comprising 4 32-core RAPID chips" (HFP8).
        let sys = SystemConfig::training_4x32();
        assert!((sys.peak_tops(Precision::Hfp8) - 786.432).abs() < 1e-6);
        assert_eq!(sys.total_cores(), 128);
    }

    #[test]
    fn lrf_depths_scale_with_precision() {
        let mpe = MpeConfig::default();
        assert_eq!(mpe.lrf_ci_depth(Precision::Fp16), 16);
        assert_eq!(mpe.lrf_ci_depth(Precision::Hfp8), 32);
        assert_eq!(mpe.lrf_ci_depth(Precision::Int4), 64);
        assert_eq!(mpe.lrf_ci_depth(Precision::Int2), 128);
    }

    #[test]
    fn spatial_tiles() {
        let c = CoreletConfig::default();
        assert_eq!(c.co_tile(), 64);
        assert_eq!(c.ci_tile(Precision::Fp16), 8);
        assert_eq!(c.ci_tile(Precision::Hfp8), 16);
        assert_eq!(c.ci_tile(Precision::Int4), 64);
        assert_eq!(c.ci_tile(Precision::Int2), 128);
    }

    #[test]
    fn block_load_cost() {
        let c = CoreletConfig::default();
        // 64 MPEs × 256 B = 16 KiB at 128 B/cycle = 128 cycles.
        assert_eq!(c.block_load_cycles(), 128);
    }

    #[test]
    fn int4_consumes_5_8ths_of_l1_bandwidth() {
        // Paper §III-D: "the INT4 computations of the MPE still consume
        // only 5/8th of the available L1 bandwidth of 128 bytes/cycle."
        // Inputs: 64 ci/cycle × 0.5 B = 32 B; outputs: 64 co partial sums
        // FP16 every ~16 cycles ≈ 8 B/cyc + weights ~ the remaining margin.
        let c = CoreletConfig::default();
        let in_bytes = f64::from(c.ci_tile(Precision::Int4)) * Precision::Int4.bytes();
        assert_eq!(in_bytes, 32.0);
        assert!(in_bytes < f64::from(c.l1_bw_bytes_per_cycle));
    }

    #[test]
    fn mem_bytes_per_cycle() {
        let chip = ChipConfig::rapid_4core();
        // 200 GB/s at 1.5 GHz ≈ 133 B/cycle.
        assert!((chip.mem_bytes_per_cycle() - 133.333).abs() < 0.01);
    }

    #[test]
    fn builders() {
        let chip = ChipConfig::rapid_4core().with_cores(16).with_mem_bw_gbps(400.0);
        assert_eq!(chip.cores, 16);
        assert_eq!(chip.mem_bw_gbps, 400.0);
        let sys = SystemConfig::training_4x32().with_chips(8);
        assert_eq!(sys.chips, 8);
    }
}
