//! Area/energy/bandwidth accounting for the end-to-end data-protection
//! machinery: SECDED scratchpads, CRC-protected ring flits, and ABFT
//! checksummed GEMM.
//!
//! The paper's chip targets datacenter training, where silent data
//! corruption is a first-order concern; this module carries the "tax" each
//! protection mechanism charges so `rapid-model` can report protected
//! throughput/efficiency honestly:
//!
//! | mechanism     | tax                                            |
//! |---------------|------------------------------------------------|
//! | SECDED(39,32) | +7 bits per 32-bit word of scratchpad storage, |
//! |               | encode/decode energy uplift per access         |
//! | CRC-8 / flit  | +1 byte per link chunk of payload              |
//! | ABFT GEMM     | +2(mk + kn + mn) MACs on an `m×k×n` GEMM       |
//! | Redundancy-r  | ×r compute (majority voting)                   |
//!
//! ABFT's overhead vanishes as matrices grow (O(m+n+k) per output tile vs
//! O(mkn) base work) — the reason it beats modular redundancy for GEMM —
//! while SECDED and CRC are flat rates on capacity and bandwidth.

use serde::{Deserialize, Serialize};

/// Parameters of the protection machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtectionParams {
    /// Extra scratchpad bits per data bit for SECDED(39,32): 7/32.
    pub secded_storage_overhead: f64,
    /// Energy uplift per protected scratchpad access (encode or
    /// decode+correct logic switching relative to the raw array access).
    pub secded_energy_uplift: f64,
    /// CRC bytes appended to each link chunk.
    pub crc_bytes_per_chunk: f64,
    /// Payload bytes per protected link chunk (the reliable-allreduce
    /// chunk the CRC covers).
    pub crc_chunk_payload_bytes: f64,
}

impl ProtectionParams {
    /// The RaPiD configuration: SECDED(39,32) on the L1 words, one CRC-8
    /// byte per 256-byte ring chunk, ~8% access-energy uplift for the
    /// ECC logic (representative of published 7 nm SRAM macro figures).
    pub fn rapid() -> Self {
        Self {
            secded_storage_overhead: 7.0 / 32.0,
            secded_energy_uplift: 0.08,
            crc_bytes_per_chunk: 1.0,
            crc_chunk_payload_bytes: 256.0,
        }
    }

    /// Physical scratchpad bytes needed to present `data_bytes` of
    /// protected capacity.
    pub fn protected_spad_bytes(&self, data_bytes: f64) -> f64 {
        data_bytes * (1.0 + self.secded_storage_overhead)
    }

    /// Effective link-bandwidth derate from the CRC byte: payload over
    /// payload+CRC (< 1.0).
    pub fn crc_bandwidth_factor(&self) -> f64 {
        self.crc_chunk_payload_bytes / (self.crc_chunk_payload_bytes + self.crc_bytes_per_chunk)
    }

    /// Checksum MACs ABFT adds to an `m×k×n` GEMM: one input-side row-sum
    /// and reference pass each (`2mk + 2kn`) plus the output row/col sums
    /// (`2mn`).
    pub fn abft_checksum_macs(&self, m: u64, k: u64, n: u64) -> f64 {
        2.0 * (m * k + k * n + m * n) as f64
    }

    /// ABFT compute overhead relative to the base GEMM's `mkn` MACs.
    pub fn abft_overhead_ratio(&self, m: u64, k: u64, n: u64) -> f64 {
        let base = (m * k * n) as f64;
        if base == 0.0 { 0.0 } else { self.abft_checksum_macs(m, k, n) / base }
    }

    /// Compute overhead of `r`-way modular redundancy relative to the
    /// unprotected run (`r - 1` extra executions).
    pub fn redundancy_overhead_ratio(&self, r: u32) -> f64 {
        f64::from(r.max(1)) - 1.0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn secded_storage_matches_codec_geometry() {
        let p = ProtectionParams::rapid();
        assert!((p.secded_storage_overhead - 7.0 / 32.0).abs() < 1e-12);
        let mb = 2.0 * 1024.0 * 1024.0;
        assert!((p.protected_spad_bytes(mb) / mb - 1.218_75).abs() < 1e-9);
    }

    #[test]
    fn crc_derate_is_under_half_a_percent() {
        let p = ProtectionParams::rapid();
        let f = p.crc_bandwidth_factor();
        assert!(f < 1.0 && f > 0.995, "factor {f}");
    }

    #[test]
    fn abft_overhead_shrinks_as_gemms_grow() {
        let p = ProtectionParams::rapid();
        let small = p.abft_overhead_ratio(16, 16, 16);
        let large = p.abft_overhead_ratio(1024, 1024, 1024);
        assert!(small > large, "{small} vs {large}");
        assert!(large < 0.01, "large-GEMM ABFT tax {large}");
        // And ABFT always beats triplication by a wide margin past toy sizes.
        assert!(small < p.redundancy_overhead_ratio(3));
        assert_eq!(p.abft_overhead_ratio(0, 5, 5), 0.0);
    }

    #[test]
    fn redundancy_is_linear_in_r() {
        let p = ProtectionParams::rapid();
        assert_eq!(p.redundancy_overhead_ratio(1), 0.0);
        assert_eq!(p.redundancy_overhead_ratio(3), 2.0);
        assert_eq!(p.redundancy_overhead_ratio(0), 0.0, "r clamps to 1");
    }
}
