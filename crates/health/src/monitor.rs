//! [`ChipHealthMonitor`]: one probe cycle end to end.
//!
//! A cycle probes every core of one chip (each core's kernels routed
//! through that core's own fault stream), feeds the outcomes through the
//! per-core quarantine machines, synchronizes the dynamic [`CoreMap`],
//! observes the quarantine SLO burn-rate rule, and — when telemetry is
//! attached — emits `health.*` counters plus a `probe_cycle` span with
//! `probe` and `remap` child stages on the virtual-time axis.
//!
//! Determinism contract: given the same config, the same per-core fault
//! plans, and the same cycle sequence, the full [`HealthEvent`] trace is
//! identical (`==`) across reruns — the replay assertion `health_sweep`
//! enforces per seed.

use rapid_fault::FaultPlan;
use rapid_telemetry::{health as names, derive_trace_id, SloConfig, SloMonitor, Telemetry};

use crate::map::CoreMap;
use crate::probe::{ProbeOutcome, ProbeSuite};
use crate::quarantine::{CoreState, CoreTracker, HealthEvent};
use crate::score::Evidence;
use crate::HealthConfig;

/// What one probe cycle found, for the caller's control flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeCycleReport {
    /// The cycle index just executed.
    pub cycle: u64,
    /// Probes run this cycle (cores × formats).
    pub probes: u32,
    /// Probes that failed this cycle.
    pub failures: u32,
    /// State transitions this cycle, in core order.
    pub events: Vec<HealthEvent>,
    /// Cores in service after the cycle.
    pub active: u32,
    /// Map epoch after the cycle (changed ⇒ consumers must re-derive).
    pub epoch: u64,
}

/// Online health monitor for one chip's cores.
pub struct ChipHealthMonitor {
    cfg: HealthConfig,
    suite: ProbeSuite,
    trackers: Vec<CoreTracker>,
    map: CoreMap,
    slo: SloMonitor,
    cycle: u64,
    events: Vec<HealthEvent>,
    first_fail: Vec<Option<u64>>,
    detect_latencies_us: Vec<u64>,
    probes_run: u64,
    probe_failures: u64,
    quarantines: u64,
    reinstatements: u64,
    suspects: u64,
    evidence: [u64; Evidence::ALL.len()],
}

impl ChipHealthMonitor {
    /// A monitor over `cores` cores with the given tuning.
    pub fn new(cores: u32, cfg: HealthConfig) -> Self {
        Self {
            suite: ProbeSuite::new(&cfg),
            trackers: (0..cores).map(CoreTracker::new).collect(),
            map: CoreMap::new(cores),
            slo: SloMonitor::new("quarantine", SloConfig::quarantine_default()),
            cycle: 0,
            events: Vec::new(),
            first_fail: vec![None; cores as usize],
            detect_latencies_us: Vec::new(),
            probes_run: 0,
            probe_failures: 0,
            quarantines: 0,
            reinstatements: 0,
            suspects: 0,
            evidence: [0; Evidence::ALL.len()],
            cfg,
        }
    }

    /// The live exclusion map consumers read between batches.
    pub fn map(&self) -> &CoreMap {
        &self.map
    }

    /// The tuning in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Per-core trackers, in core order.
    pub fn trackers(&self) -> &[CoreTracker] {
        self.trackers.as_slice()
    }

    /// Every state transition so far, in (cycle, core) order — the
    /// deterministic replay trace.
    pub fn events(&self) -> &[HealthEvent] {
        self.events.as_slice()
    }

    /// Probe cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Mean health score across all cores, in `[0, 1]`.
    pub fn chip_health(&self) -> f64 {
        if self.trackers.is_empty() {
            return 1.0;
        }
        self.trackers.iter().map(CoreTracker::score).sum::<f64>() / self.trackers.len() as f64
    }

    /// Detection latencies (first failed probe → quarantine entry), µs.
    pub fn detect_latencies_us(&self) -> &[u64] {
        self.detect_latencies_us.as_slice()
    }

    /// The quarantine SLO rule's monitor (alerts, burn state).
    pub fn slo(&self) -> &SloMonitor {
        &self.slo
    }

    /// Folds an in-band signal (ABFT repair, guard trip, ECC, CRC)
    /// attributed to `core` into its score. Cheap; callable per batch.
    pub fn note_evidence(&mut self, core: u32, ev: Evidence, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(t) = self.trackers.get_mut(core as usize) {
            t.note_evidence(ev, n);
            if let Some(slot) = Evidence::ALL.iter().position(|&e| e == ev) {
                self.evidence[slot] += n;
            }
        }
    }

    /// Runs one probe cycle. `faults[i]` is core `i`'s fault stream
    /// (`faults.len()` must equal the core count); pass the plans the
    /// production GEMMs use so probes sample the same defect process.
    ///
    /// # Panics
    ///
    /// Panics if `faults.len()` differs from the monitored core count.
    pub fn probe_cycle(
        &mut self,
        faults: &mut [FaultPlan],
        tele: Option<&mut Telemetry>,
    ) -> ProbeCycleReport {
        assert_eq!(
            faults.len(),
            self.trackers.len(),
            "one fault plan per monitored core"
        );
        let cycle = self.cycle;
        self.cycle += 1;
        let start_us = cycle * self.cfg.probe_period_us;
        let end_us = start_us + self.cfg.probe_period_us;
        // The cycle splits into a probe stage (kernel time) and a remap
        // stage (state machine + map sync) on the virtual-time axis.
        let remap_us = start_us + (self.cfg.probe_period_us * 9) / 10;

        let mut failures = 0u32;
        let mut probes = 0u32;
        let mut cycle_events = Vec::new();
        for (i, plan) in faults.iter_mut().enumerate() {
            let outcomes: Vec<ProbeOutcome> = self.suite.run(Some(plan));
            probes += outcomes.len() as u32;
            let failed = outcomes.iter().filter(|o| !o.passed).count() as u32;
            failures += failed;
            if failed > 0 && self.first_fail[i].is_none() {
                self.first_fail[i] = Some(cycle);
            }
            let tracker = &mut self.trackers[i];
            if let Some(ev) = tracker.observe_probe(cycle, failed == 0, &self.cfg) {
                match ev.to {
                    CoreState::Quarantined if ev.from.in_service() => {
                        self.quarantines += 1;
                        let first = self.first_fail[i].take().unwrap_or(cycle);
                        let latency = (cycle - first + 1) * self.cfg.probe_period_us;
                        self.detect_latencies_us.push(latency);
                    }
                    CoreState::Suspect => self.suspects += 1,
                    CoreState::Healthy if ev.from == CoreState::Probation => {
                        self.reinstatements += 1;
                        self.first_fail[i] = None;
                    }
                    _ => {}
                }
                cycle_events.push(ev);
            }
        }
        self.probes_run += u64::from(probes);
        self.probe_failures += u64::from(failures);

        // Remap stage: synchronize the exclusion map with tracker states
        // and feed the SLO rule one event per core.
        for t in &self.trackers {
            if t.state().in_service() {
                self.map.restore(t.core());
            } else {
                self.map.exclude(t.core());
            }
            self.slo.observe(end_us, !t.state().in_service());
        }
        self.events.extend_from_slice(&cycle_events);

        if let Some(tele) = tele {
            self.record_cycle(tele, probes, failures, start_us, remap_us, end_us, cycle);
        }
        ProbeCycleReport {
            cycle,
            probes,
            failures,
            events: cycle_events,
            active: self.map.active(),
            epoch: self.map.epoch(),
        }
    }

    #[allow(clippy::too_many_arguments)] // internal span bookkeeping
    fn record_cycle(
        &self,
        tele: &mut Telemetry,
        probes: u32,
        failures: u32,
        start_us: u64,
        remap_us: u64,
        end_us: u64,
        cycle: u64,
    ) {
        let reg = &mut tele.registry;
        reg.incr(names::PROBE_CYCLES);
        reg.add(names::PROBE_RUNS, u64::from(probes));
        reg.add(names::PROBE_FAILURES, u64::from(failures));
        reg.set_gauge(names::ACTIVE_CORES, f64::from(self.map.active()));
        reg.set_gauge(names::EXCLUDED_CORES, f64::from(self.map.excluded()));
        reg.set_gauge(names::CHIP_HEALTH_MILLI, (self.chip_health() * 1000.0).round());
        if let Some(sink) = tele.spans.as_mut() {
            let root = sink.open_root(derive_trace_id(self.cfg.probe_seed, cycle));
            sink.child(root, "probe", start_us, remap_us);
            sink.child(root, "remap", remap_us, end_us);
            sink.close_root(root, "probe_cycle", "health", start_us, end_us);
        }
    }

    /// Writes lifetime totals into a registry (call once at end of run;
    /// gauges and the latency histogram land here too).
    pub fn record_into(&self, reg: &mut rapid_telemetry::MetricsRegistry) {
        reg.add(names::PROBE_CYCLES, 0); // materialize keys even when idle
        reg.counter_max(names::PROBE_CYCLES, self.cycle);
        reg.counter_max(names::PROBE_RUNS, self.probes_run);
        reg.counter_max(names::PROBE_FAILURES, self.probe_failures);
        reg.counter_max(names::QUARANTINES, self.quarantines);
        reg.counter_max(names::REINSTATEMENTS, self.reinstatements);
        reg.counter_max(names::SUSPECTS, self.suspects);
        reg.counter_max(names::SLO_ALERTS, self.slo.alerts().len() as u64);
        reg.set_gauge(names::ACTIVE_CORES, f64::from(self.map.active()));
        reg.set_gauge(names::EXCLUDED_CORES, f64::from(self.map.excluded()));
        reg.set_gauge(names::CHIP_HEALTH_MILLI, (self.chip_health() * 1000.0).round());
        for &lat in &self.detect_latencies_us {
            reg.observe(names::DETECT_LATENCY_US, lat);
        }
        for (slot, ev) in Evidence::ALL.iter().enumerate() {
            if self.evidence[slot] > 0 {
                let key = format!("{}{}", names::EVIDENCE_PREFIX, ev.label());
                reg.counter_max(&key, self.evidence[slot]);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_fault::FaultConfig;
    use rapid_telemetry::HealthCounters;

    fn plans(cores: u32, bad: &[u32]) -> Vec<FaultPlan> {
        (0..cores)
            .map(|c| {
                let mut cfg = FaultConfig { seed: 1000 + u64::from(c), ..FaultConfig::default() };
                if bad.contains(&c) {
                    cfg.mac_burst_rate = 1e-2;
                    cfg.mac_burst_len = 128;
                    cfg.mac_burst_flip_rate = 0.5;
                }
                FaultPlan::new(cfg)
            })
            .collect()
    }

    #[test]
    fn mercurial_core_is_quarantined_and_clean_cores_stay_in_service() {
        let mut mon = ChipHealthMonitor::new(4, HealthConfig::default());
        let mut plans = plans(4, &[2]);
        let mut tele = Telemetry::with_spans();
        let mut detected_at = None;
        for _ in 0..40 {
            let rep = mon.probe_cycle(&mut plans, Some(&mut tele));
            if detected_at.is_none() && !mon.map().in_service(2) {
                detected_at = Some(rep.cycle);
            }
        }
        let at = detected_at.expect("mercurial core detected");
        assert!(at < 20, "detection took too long: cycle {at}");
        assert!(mon.map().in_service(0) && mon.map().in_service(1) && mon.map().in_service(3));
        assert!(!mon.detect_latencies_us().is_empty());
        let mut reg = rapid_telemetry::MetricsRegistry::new();
        mon.record_into(&mut reg);
        let c = HealthCounters::from_registry(&reg);
        assert!(c.quarantines >= 1);
        assert!(c.probe_failures >= 1);
        assert!(c.mean_detect_latency_us > 0.0);
        // Spans were emitted and form a valid forest.
        let spans = tele.spans.expect("span sink");
        assert!(rapid_telemetry::validate_forest(spans.spans()).is_ok());
    }

    #[test]
    fn same_seed_reruns_produce_identical_event_traces() {
        let run = || {
            let mut mon = ChipHealthMonitor::new(4, HealthConfig::default());
            let mut plans = plans(4, &[1, 3]);
            for _ in 0..60 {
                mon.probe_cycle(&mut plans, None);
            }
            mon.events().to_vec()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(a, b, "replay must be bit-identical");
    }

    #[test]
    fn all_clean_chip_never_transitions() {
        let mut mon = ChipHealthMonitor::new(8, HealthConfig::default());
        let mut plans = plans(8, &[]);
        for _ in 0..30 {
            let rep = mon.probe_cycle(&mut plans, None);
            assert_eq!(rep.failures, 0);
            assert!(rep.events.is_empty());
        }
        assert_eq!(mon.map().active(), 8);
        assert_eq!(mon.map().epoch(), 0);
        assert!((mon.chip_health() - 1.0).abs() < 1e-12);
        assert!(mon.slo().alerts().is_empty());
    }

    #[test]
    fn in_band_evidence_feeds_the_score() {
        let mut mon = ChipHealthMonitor::new(2, HealthConfig::default());
        mon.note_evidence(1, Evidence::EccDed, 2);
        mon.note_evidence(1, Evidence::AbftCorrection, 1);
        assert!(mon.trackers()[1].score() < mon.trackers()[0].score());
        let mut reg = rapid_telemetry::MetricsRegistry::new();
        mon.record_into(&mut reg);
        assert_eq!(reg.counter("health.evidence.ecc_ded"), 2);
        assert_eq!(reg.counter("health.evidence.abft"), 1);
    }
}
