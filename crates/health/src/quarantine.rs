//! The per-core quarantine state machine with hysteresis.
//!
//! ```text
//!            score < suspect_enter
//!   Healthy ───────────────────────▶ Suspect
//!      ▲                               │
//!      │ score ≥ resume_score          │ fail_streak consecutive probe
//!      │ (hysteresis band)             │ failures, or score <
//!      │                               │ quarantine_enter
//!      │                               ▼
//!   Probation ◀──────────────── Quarantined
//!      │        min_quarantine_probes cycles served
//!      │
//!      ├─ probation_probes consecutive passes → Healthy (reinstated)
//!      └─ any probation failure → Quarantined (cooldown restarts)
//! ```
//!
//! Two hysteresis mechanisms stop a mercurial core from flapping in and
//! out of service: the `suspect_enter < resume_score` band (a Suspect
//! core must climb *above* where it fell in), and the probation gauntlet
//! (one failed probe during probation sends the core back to the start
//! of its quarantine cooldown).

use crate::score::{Evidence, HealthScore};
use crate::HealthConfig;

/// Where a core sits in the quarantine lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreState {
    /// In service, no recent cause for doubt.
    #[default]
    Healthy,
    /// In service, but accumulating evidence; watched closely.
    Suspect,
    /// Out of service; work is remapped around it.
    Quarantined,
    /// Out of service, passing probes; must pass `probation_probes`
    /// consecutively to be reinstated.
    Probation,
}

impl CoreState {
    /// Whether a core in this state receives production work.
    pub fn in_service(self) -> bool {
        matches!(self, CoreState::Healthy | CoreState::Suspect)
    }

    /// Counter-name suffix for `health.state.*`.
    pub fn label(self) -> &'static str {
        match self {
            CoreState::Healthy => "healthy",
            CoreState::Suspect => "suspect",
            CoreState::Quarantined => "quarantined",
            CoreState::Probation => "probation",
        }
    }
}

/// One state transition, recorded for the deterministic event trace.
///
/// Scores are carried in integer milli-units so traces compare with `==`
/// across reruns — no float-tolerance ambiguity in the replay contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// Probe cycle at which the transition fired.
    pub cycle: u64,
    /// Core that transitioned.
    pub core: u32,
    /// State before the transition.
    pub from: CoreState,
    /// State after the transition.
    pub to: CoreState,
    /// Health score after the transition, in milli-units (0..=1000).
    pub score_milli: u32,
}

/// Tracks one core's score, state, and hysteresis counters.
#[derive(Debug, Clone)]
pub struct CoreTracker {
    core: u32,
    score: HealthScore,
    state: CoreState,
    fail_streak: u32,
    quarantine_cycles: u32,
    probation_passes: u32,
    quarantined_at: Option<u64>,
}

impl CoreTracker {
    /// A fresh, healthy tracker for core `core`.
    pub fn new(core: u32) -> Self {
        Self {
            core,
            score: HealthScore::new(),
            state: CoreState::Healthy,
            fail_streak: 0,
            quarantine_cycles: 0,
            probation_passes: 0,
            quarantined_at: None,
        }
    }

    /// The core index this tracker watches.
    pub fn core(&self) -> u32 {
        self.core
    }

    /// The current state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// The current health score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.score.value()
    }

    /// Cycle at which the core most recently entered quarantine.
    pub fn quarantined_at(&self) -> Option<u64> {
        self.quarantined_at
    }

    /// Folds in-band evidence (ABFT repairs, guard trips, ECC, CRC) into
    /// the score. Evidence alone never *enters* quarantine — that
    /// decision is made at probe time, where the state machine can pair
    /// the score with a definitive known-answer result — but it drags the
    /// score down so the next probe cycle sees it.
    pub fn note_evidence(&mut self, ev: Evidence, n: u64) {
        self.score.apply(ev, n);
    }

    /// Feeds one probe outcome through the state machine. Returns the
    /// transition if the state changed.
    pub fn observe_probe(
        &mut self,
        cycle: u64,
        passed: bool,
        cfg: &HealthConfig,
    ) -> Option<HealthEvent> {
        if passed {
            self.fail_streak = 0;
            self.score.recover(cfg.recovery);
        } else {
            self.fail_streak += 1;
            self.score.apply(Evidence::ProbeFail, 1);
        }
        let from = self.state;
        let to = match self.state {
            CoreState::Healthy | CoreState::Suspect => {
                if self.fail_streak >= cfg.fail_streak
                    || self.score.value() < cfg.quarantine_enter
                {
                    CoreState::Quarantined
                } else if self.score.value() < cfg.suspect_enter {
                    CoreState::Suspect
                } else if from == CoreState::Suspect && self.score.value() >= cfg.resume_score {
                    CoreState::Healthy
                } else {
                    from
                }
            }
            CoreState::Quarantined => {
                self.quarantine_cycles += 1;
                if !passed {
                    // A failing quarantined core restarts its cooldown:
                    // probation only begins after a clean stretch.
                    self.quarantine_cycles = 0;
                    CoreState::Quarantined
                } else if self.quarantine_cycles >= cfg.min_quarantine_probes {
                    CoreState::Probation
                } else {
                    CoreState::Quarantined
                }
            }
            CoreState::Probation => {
                if !passed {
                    CoreState::Quarantined
                } else {
                    self.probation_passes += 1;
                    if self.probation_passes >= cfg.probation_probes {
                        CoreState::Healthy
                    } else {
                        CoreState::Probation
                    }
                }
            }
        };
        if to == from {
            return None;
        }
        match to {
            CoreState::Quarantined => {
                self.quarantine_cycles = 0;
                self.probation_passes = 0;
                self.quarantined_at = Some(cycle);
            }
            CoreState::Probation => self.probation_passes = 0,
            CoreState::Healthy if from == CoreState::Probation => {
                // Reinstated: lift the score into the hysteresis-safe
                // band so one routine SEC event cannot re-demote it.
                self.score.raise_to(cfg.resume_score);
                self.fail_streak = 0;
                self.quarantined_at = None;
            }
            _ => {}
        }
        self.state = to;
        Some(HealthEvent {
            cycle,
            core: self.core,
            from,
            to,
            score_milli: self.score.milli(),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    #[test]
    fn fail_streak_quarantines_and_probation_reinstates() {
        let cfg = cfg();
        let mut t = CoreTracker::new(3);
        let mut cycle = 0u64;
        // Two consecutive failures hit the streak threshold.
        assert!(t.observe_probe(cycle, false, &cfg).is_none() || t.state() == CoreState::Suspect);
        cycle += 1;
        let ev = t.observe_probe(cycle, false, &cfg).expect("transition");
        assert_eq!(ev.to, CoreState::Quarantined);
        assert_eq!(t.quarantined_at(), Some(cycle));
        // Cooldown: min_quarantine_probes clean cycles before probation.
        let mut state = t.state();
        for _ in 0..cfg.min_quarantine_probes {
            cycle += 1;
            if let Some(e) = t.observe_probe(cycle, true, &cfg) {
                state = e.to;
            }
        }
        assert_eq!(state, CoreState::Probation);
        // Probation: N consecutive passes reinstate.
        for _ in 0..cfg.probation_probes {
            cycle += 1;
            if let Some(e) = t.observe_probe(cycle, true, &cfg) {
                state = e.to;
            }
        }
        assert_eq!(state, CoreState::Healthy);
        assert!(t.score() >= cfg.resume_score);
        assert_eq!(t.quarantined_at(), None);
    }

    #[test]
    fn probation_failure_restarts_cooldown() {
        let cfg = cfg();
        let mut t = CoreTracker::new(0);
        let mut cycle = 0;
        for _ in 0..cfg.fail_streak {
            t.observe_probe(cycle, false, &cfg);
            cycle += 1;
        }
        for _ in 0..cfg.min_quarantine_probes {
            t.observe_probe(cycle, true, &cfg);
            cycle += 1;
        }
        assert_eq!(t.state(), CoreState::Probation);
        let ev = t.observe_probe(cycle, false, &cfg).expect("demote");
        assert_eq!(ev.to, CoreState::Quarantined);
        cycle += 1;
        // One clean cycle is not enough to re-enter probation.
        assert!(t.observe_probe(cycle, true, &cfg).is_none());
        assert_eq!(t.state(), CoreState::Quarantined);
    }

    #[test]
    fn evidence_alone_marks_suspect_only_at_probe_time() {
        let cfg = cfg();
        let mut t = CoreTracker::new(1);
        t.note_evidence(Evidence::EccDed, 3);
        assert_eq!(t.state(), CoreState::Healthy, "evidence defers to probes");
        let ev = t.observe_probe(0, true, &cfg).expect("suspect");
        assert_eq!(ev.to, CoreState::Suspect);
        // Clean probes climb back above resume_score eventually.
        let mut last = CoreState::Suspect;
        for cycle in 1..=60 {
            if let Some(e) = t.observe_probe(cycle, true, &cfg) {
                last = e.to;
            }
        }
        assert_eq!(last, CoreState::Healthy);
    }
}
