//! The per-core health score: decaying evidence in `[0, 1]`.
//!
//! A score of 1.0 means "no reason to doubt this core"; 0.0 means "every
//! recent signal says it is broken". Evidence *subtracts* a weighted
//! amount; every clean probe restores a fraction of the remaining
//! headroom, so old evidence decays exponentially and a genuinely
//! recovered core climbs back. The weights encode how diagnostic each
//! signal is: a failed known-answer probe is near-conclusive, one ECC
//! single-bit correction is routine background noise.

/// One piece of evidence against a core's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evidence {
    /// A known-answer self-test probe failed on this core.
    ProbeFail,
    /// ABFT checksums flagged and repaired output of this core's GEMM.
    AbftCorrection,
    /// The numeric guard clamped a non-finite accumulator.
    GuardClamp,
    /// ECC corrected a single-bit scratchpad error (routine).
    EccSec,
    /// ECC detected an uncorrectable double-bit scratchpad error.
    EccDed,
    /// A CRC-protected link forced a retransmit to/from this core.
    CrcRetransmit,
}

impl Evidence {
    /// How much one occurrence subtracts from the score.
    pub fn weight(self) -> f64 {
        match self {
            Evidence::ProbeFail => 0.45,
            Evidence::AbftCorrection => 0.10,
            Evidence::GuardClamp => 0.06,
            Evidence::EccSec => 0.01,
            Evidence::EccDed => 0.12,
            Evidence::CrcRetransmit => 0.02,
        }
    }

    /// Counter-name suffix for `health.evidence.*`.
    pub fn label(self) -> &'static str {
        match self {
            Evidence::ProbeFail => "probe_fail",
            Evidence::AbftCorrection => "abft",
            Evidence::GuardClamp => "guard",
            Evidence::EccSec => "ecc_sec",
            Evidence::EccDed => "ecc_ded",
            Evidence::CrcRetransmit => "crc",
        }
    }

    /// Every evidence kind, for reports and tests.
    pub const ALL: [Evidence; 6] = [
        Evidence::ProbeFail,
        Evidence::AbftCorrection,
        Evidence::GuardClamp,
        Evidence::EccSec,
        Evidence::EccDed,
        Evidence::CrcRetransmit,
    ];
}

/// The decaying health score of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthScore {
    value: f64,
}

impl Default for HealthScore {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthScore {
    /// A pristine score (1.0).
    pub fn new() -> Self {
        Self { value: 1.0 }
    }

    /// The current score in `[0, 1]`.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The score in integer milli-units — the form events record, so
    /// trace comparisons are exact.
    pub fn milli(&self) -> u32 {
        (self.value * 1000.0).round() as u32
    }

    /// Applies `n` occurrences of one evidence kind.
    pub fn apply(&mut self, ev: Evidence, n: u64) {
        if n == 0 {
            return;
        }
        self.value = (self.value - ev.weight() * n as f64).max(0.0);
    }

    /// One clean probe: restores `recovery` of the remaining headroom.
    pub fn recover(&mut self, recovery: f64) {
        self.value = (self.value + (1.0 - self.value) * recovery.clamp(0.0, 1.0)).min(1.0);
    }

    /// Resets the score to at least `floor` (reinstatement).
    pub fn raise_to(&mut self, floor: f64) {
        self.value = self.value.max(floor.clamp(0.0, 1.0));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn evidence_decays_and_recovery_is_bounded() {
        let mut s = HealthScore::new();
        assert_eq!(s.value(), 1.0);
        s.apply(Evidence::ProbeFail, 1);
        assert!(s.value() < 0.6);
        for _ in 0..100 {
            s.recover(0.2);
        }
        assert!(s.value() > 0.99 && s.value() <= 1.0);
        s.apply(Evidence::ProbeFail, 1000);
        assert_eq!(s.value(), 0.0, "score saturates at zero");
    }

    #[test]
    fn probe_failures_dominate_background_noise() {
        // One probe failure outweighs dozens of routine SEC corrections.
        assert!(Evidence::ProbeFail.weight() > 20.0 * Evidence::EccSec.weight());
        // DED (uncorrectable) is stronger evidence than SEC (corrected).
        assert!(Evidence::EccDed.weight() > Evidence::EccSec.weight());
    }

    #[test]
    fn milli_is_deterministic_and_labels_distinct() {
        let mut s = HealthScore::new();
        s.apply(Evidence::AbftCorrection, 3);
        assert_eq!(s.milli(), 700);
        let labels: std::collections::BTreeSet<_> =
            Evidence::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), Evidence::ALL.len());
    }
}
