//! # rapid-health
//!
//! Online core-health monitoring for the RaPiD reproduction: known-answer
//! self-test probes, decaying per-core health scores, and the
//! mercurial-core quarantine state machine.
//!
//! The chip-level layers already survive *declared* failures (the static
//! degraded-core remap, the elastic ring's node-loss healing). What they
//! cannot see is a **mercurial core**: a unit that is intermittently
//! wrong and never announces itself — silently corrupting results that
//! ABFT only catches one GEMM at a time. This crate closes the loop:
//!
//! * [`probe`] — deterministic known-answer self-tests: small bit-exact
//!   GEMMs per arithmetic format, checked against the `*_scalar`
//!   references. A probe routed through a defective core's fault stream
//!   fails loudly; on a clean core it is bit-exact by construction.
//! * [`score`] — a per-core health score in `[0, 1]` with exponentially
//!   decaying evidence: probe failures plus the in-band signals the
//!   stack already emits (ABFT repairs, guard trips, ECC SEC/DED counts,
//!   CRC retransmits).
//! * [`quarantine`] — the Healthy → Suspect → Quarantined → Probation →
//!   Healthy state machine with hysteresis: entering quarantine takes a
//!   consecutive-failure streak or a score collapse, and *leaving* takes
//!   a cooldown plus N consecutive probation probe passes, so a flapping
//!   core cannot oscillate in and out of service.
//! * [`map`] — the dynamic [`CoreMap`]: the live exclusion mask the
//!   chip simulator and the serving layer consult per batch (the dynamic
//!   generalization of `try_run_chip_gemm_degraded`'s static mask).
//! * [`monitor`] — [`ChipHealthMonitor`] ties it together: one probe
//!   cycle runs one kernel on every core, updates scores and states,
//!   maintains the map, feeds a quarantine SLO burn-rate rule, and
//!   emits `health.*` counters and probe-cycle spans.
//!
//! Everything follows the workspace's zero-cost hook pattern: monitors
//! are passed as `Option<&mut ChipHealthMonitor>`; a `None` (or a run
//! with `RAPID_HEALTH=off`) executes bit-identically to a build without
//! this crate.

// unwrap/expect denial comes from [workspace.lints] in the root manifest.
#![warn(missing_docs)]

pub mod map;
pub mod monitor;
pub mod probe;
pub mod quarantine;
pub mod score;

pub use map::CoreMap;
pub use monitor::{ChipHealthMonitor, ProbeCycleReport};
pub use probe::{ProbeOutcome, ProbeSuite};
pub use quarantine::{CoreState, CoreTracker, HealthEvent};
pub use score::{Evidence, HealthScore};

/// Environment variable gating health monitoring in the benches:
/// `RAPID_HEALTH=off` (or `0` / `false`) disables probe scheduling and
/// quarantine entirely, leaving runs bit-identical to pre-health builds.
pub const HEALTH_ENV: &str = "RAPID_HEALTH";

/// Whether health monitoring is enabled per [`HEALTH_ENV`] (default on).
pub fn enabled_from_env() -> bool {
    match std::env::var(HEALTH_ENV) {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    }
}

/// Tuning knobs for probing, scoring, and quarantine hysteresis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Seed for the deterministic probe operand generation.
    pub probe_seed: u64,
    /// Probe GEMM dimension (m = n = `probe_dim`, k = 2·`probe_dim`) —
    /// small enough that a probe cycle is cheap, big enough that a
    /// burst-mode core is near-certain to corrupt at least one output.
    pub probe_dim: usize,
    /// Chunk length of the probe GEMMs (matches the datapath default).
    pub chunk_len: usize,
    /// Score below which a Healthy core becomes Suspect.
    pub suspect_enter: f64,
    /// Score a Suspect core must recover to before returning to Healthy
    /// (above `suspect_enter` — the anti-flap hysteresis band).
    pub resume_score: f64,
    /// Score below which a core is quarantined outright.
    pub quarantine_enter: f64,
    /// Consecutive probe failures that quarantine a core regardless of
    /// its score.
    pub fail_streak: u32,
    /// Fraction of the remaining headroom a clean probe restores
    /// (exponential recovery toward 1.0).
    pub recovery: f64,
    /// Probe cycles a quarantined core sits out before probation begins.
    pub min_quarantine_probes: u32,
    /// Consecutive probation probe passes required to reinstate a core.
    pub probation_probes: u32,
    /// Virtual microseconds one probe cycle occupies (the time base for
    /// the quarantine SLO rule and probe spans).
    pub probe_period_us: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            probe_seed: 0x4845_4C54, // "HELT"
            probe_dim: 4,
            chunk_len: 64,
            suspect_enter: 0.75,
            resume_score: 0.90,
            quarantine_enter: 0.45,
            fail_streak: 2,
            recovery: 0.2,
            min_quarantine_probes: 4,
            probation_probes: 5,
            probe_period_us: 500,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_config_thresholds_are_ordered() {
        let cfg = HealthConfig::default();
        assert!(cfg.quarantine_enter < cfg.suspect_enter);
        assert!(cfg.suspect_enter < cfg.resume_score);
        assert!(cfg.resume_score <= 1.0);
        assert!(cfg.fail_streak >= 1 && cfg.probation_probes >= 1);
    }
}
