//! Known-answer self-test probes: small bit-exact GEMMs per format.
//!
//! Each probe runs one of the chip's arithmetic formats (FP16, HFP8
//! forward, HFP8 backward, INT4) on a small deterministic operand pair
//! and compares the output *bit for bit* against the golden computed once
//! from the `*_scalar` reference datapath. On a clean core the guarded
//! kernels are bit-exact with the references by construction, so a probe
//! can only fail if the core's fault stream corrupted it — there are no
//! false positives, which is what lets a probe failure carry the heavy
//! [`Evidence::ProbeFail`](crate::Evidence::ProbeFail) weight.
//!
//! Operands are drawn once from the probe seed at suite construction and
//! reused every cycle, so the probe stream consumes no per-cycle
//! randomness and replay is trivially bit-identical.

use rapid_fault::FaultPlan;
use rapid_numerics::fma::FmaMode;
use rapid_numerics::gemm::{
    matmul_emulated_guarded, matmul_emulated_scalar, matmul_int_guarded, matmul_int_scalar,
};
use rapid_numerics::int::Signedness;
use rapid_numerics::{GuardPolicy, IntFormat, QuantParams, Tensor};

use crate::HealthConfig;

/// Which arithmetic format a probe exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// FP16 FMA datapath.
    Fp16,
    /// HFP8 forward-pass datapath ((1,4,3) × (1,4,3)).
    Hfp8Fwd,
    /// HFP8 backward-pass datapath ((1,4,3) × (1,5,2)).
    Hfp8Bwd,
    /// INT4 inference datapath.
    Int4,
}

impl ProbeKind {
    /// Every probe kind, in the fixed order a cycle runs them.
    pub const ALL: [ProbeKind; 4] =
        [ProbeKind::Fp16, ProbeKind::Hfp8Fwd, ProbeKind::Hfp8Bwd, ProbeKind::Int4];

    /// Counter-name suffix for `health.probe.*`.
    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::Fp16 => "fp16",
            ProbeKind::Hfp8Fwd => "hfp8_fwd",
            ProbeKind::Hfp8Bwd => "hfp8_bwd",
            ProbeKind::Int4 => "int4",
        }
    }
}

/// Result of one probe on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The format exercised.
    pub kind: ProbeKind,
    /// Whether the output matched the golden bit for bit.
    pub passed: bool,
    /// Output elements that differed from the golden (0 when passed).
    pub mismatches: u32,
}

struct FloatProbe {
    mode: FmaMode,
    kind: ProbeKind,
    a: Tensor,
    b: Tensor,
    golden: Vec<u32>,
}

struct IntProbe {
    a: Tensor,
    b: Tensor,
    qa: QuantParams,
    qb: QuantParams,
    golden: Vec<u32>,
}

/// The fixed suite of known-answer probes one cycle runs on one core.
pub struct ProbeSuite {
    floats: Vec<FloatProbe>,
    int: IntProbe,
    chunk_len: usize,
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn count_mismatches(out: &Tensor, golden: &[u32]) -> u32 {
    out.as_slice()
        .iter()
        .zip(golden)
        .filter(|(v, g)| v.to_bits() != **g)
        .count() as u32
}

impl ProbeSuite {
    /// Builds the suite: draws deterministic operands from
    /// `cfg.probe_seed` and computes every golden via the scalar
    /// reference datapaths.
    pub fn new(cfg: &HealthConfig) -> Self {
        let (m, k, n) = (cfg.probe_dim, 2 * cfg.probe_dim, cfg.probe_dim);
        let chunk_len = cfg.chunk_len;
        let modes = [
            (FmaMode::Fp16, ProbeKind::Fp16),
            (FmaMode::hfp8_fwd_default(), ProbeKind::Hfp8Fwd),
            (FmaMode::hfp8_bwd_default(), ProbeKind::Hfp8Bwd),
        ];
        let floats = modes
            .iter()
            .enumerate()
            .map(|(i, &(mode, kind))| {
                let sa = cfg.probe_seed.wrapping_add(2 * i as u64 + 1);
                let sb = cfg.probe_seed.wrapping_add(2 * i as u64 + 2);
                let a = Tensor::random_uniform(vec![m, k], -1.0, 1.0, sa);
                let b = Tensor::random_uniform(vec![k, n], -1.0, 1.0, sb);
                let (g, _) = matmul_emulated_scalar(mode, &a, &b, chunk_len);
                FloatProbe { mode, kind, golden: bits(&g), a, b }
            })
            .collect();
        let a = Tensor::random_uniform(vec![m, k], -1.0, 1.0, cfg.probe_seed.wrapping_add(7));
        let b = Tensor::random_uniform(vec![k, n], -1.0, 1.0, cfg.probe_seed.wrapping_add(8));
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        let qb = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        let (g, _) = matmul_int_scalar(&a, &b, qa, qb, chunk_len);
        let int = IntProbe { golden: bits(&g), a, b, qa, qb };
        Self { floats, int, chunk_len }
    }

    /// Number of probes one cycle runs per core.
    pub fn len(&self) -> usize {
        self.floats.len() + 1
    }

    /// Whether the suite is empty (it never is; symmetry with `len`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// MACs one full per-core cycle costs — the probe overhead the bench
    /// charges against goodput.
    pub fn macs_per_cycle(&self) -> u64 {
        let per = |a: &Tensor, b: &Tensor| {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let n = b.shape()[1];
            (m * k * n) as u64
        };
        self.floats.iter().map(|p| per(&p.a, &p.b)).sum::<u64>() + per(&self.int.a, &self.int.b)
    }

    /// Runs the full suite on one core, routing every kernel through that
    /// core's fault stream. `faults == None` models probing an ideal core
    /// (always passes).
    pub fn run(&self, mut faults: Option<&mut FaultPlan>) -> Vec<ProbeOutcome> {
        let mut outcomes = Vec::with_capacity(self.len());
        for p in &self.floats {
            let run = matmul_emulated_guarded(
                p.mode,
                &p.a,
                &p.b,
                self.chunk_len,
                GuardPolicy::Propagate,
                faults.as_deref_mut(),
            );
            let (passed, mismatches) = match run {
                Ok((out, _)) => {
                    let mm = count_mismatches(&out, &p.golden);
                    (mm == 0, mm)
                }
                Err(_) => (false, u32::MAX),
            };
            outcomes.push(ProbeOutcome { kind: p.kind, passed, mismatches });
        }
        let run = matmul_int_guarded(
            &self.int.a,
            &self.int.b,
            self.int.qa,
            self.int.qb,
            self.chunk_len,
            GuardPolicy::Propagate,
            faults,
        );
        let (passed, mismatches) = match run {
            Ok((out, _)) => {
                let mm = count_mismatches(&out, &self.int.golden);
                (mm == 0, mm)
            }
            Err(_) => (false, u32::MAX),
        };
        outcomes.push(ProbeOutcome { kind: ProbeKind::Int4, passed, mismatches });
        outcomes
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_fault::FaultConfig;

    #[test]
    fn clean_core_passes_every_probe() {
        let suite = ProbeSuite::new(&HealthConfig::default());
        assert_eq!(suite.len(), 4);
        assert!(suite.macs_per_cycle() > 0);
        for o in suite.run(None) {
            assert!(o.passed, "probe {:?} failed on a clean core", o.kind);
            assert_eq!(o.mismatches, 0);
        }
        // A disabled fault plan is bit-invisible: same verdicts.
        let mut plan = FaultPlan::new(FaultConfig::default());
        for o in suite.run(Some(&mut plan)) {
            assert!(o.passed);
        }
    }

    #[test]
    fn bursty_core_fails_within_a_few_cycles() {
        let suite = ProbeSuite::new(&HealthConfig::default());
        let cfg = FaultConfig {
            seed: 99,
            mac_burst_rate: 1e-2,
            mac_burst_len: 64,
            mac_burst_flip_rate: 0.5,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        let mut failed = false;
        for _ in 0..16 {
            if suite.run(Some(&mut plan)).iter().any(|o| !o.passed) {
                failed = true;
                break;
            }
        }
        assert!(failed, "a heavily bursty core must fail a probe quickly");
    }

    #[test]
    fn probe_goldens_are_deterministic_across_construction() {
        let cfg = HealthConfig::default();
        let a = ProbeSuite::new(&cfg);
        let b = ProbeSuite::new(&cfg);
        for (x, y) in a.floats.iter().zip(&b.floats) {
            assert_eq!(x.golden, y.golden);
        }
        assert_eq!(a.int.golden, b.int.golden);
    }
}
