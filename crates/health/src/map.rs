//! The dynamic [`CoreMap`]: the live per-chip exclusion mask.
//!
//! PR 3's `try_run_chip_gemm_degraded` takes a *static* failed-core mask
//! fixed at manufacturing test. The health monitor generalizes it: the
//! map starts all-healthy, cores drop out as the quarantine machine
//! demotes them and return on reinstatement, and every change bumps an
//! epoch so consumers (the chip simulator, the serving engine) can detect
//! staleness cheaply between batches.

/// A dynamic exclusion mask over up to 64 cores of one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMap {
    cores: u32,
    excluded: u64,
    epoch: u64,
}

impl CoreMap {
    /// An all-in-service map over `cores` cores (≤ 64).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or exceeds 64 (the mask width).
    pub fn new(cores: u32) -> Self {
        assert!((1..=64).contains(&cores), "core count must be in 1..=64");
        Self { cores, excluded: 0, epoch: 0 }
    }

    /// Total cores the map covers.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Cores currently in service.
    pub fn active(&self) -> u32 {
        self.cores - self.excluded.count_ones()
    }

    /// Cores currently excluded (quarantined or on probation).
    pub fn excluded(&self) -> u32 {
        self.excluded.count_ones()
    }

    /// The exclusion bitmask, bit `i` set ⇒ core `i` is out of service.
    /// This is the same encoding `try_run_chip_gemm_degraded` consumes.
    pub fn failed_mask(&self) -> u64 {
        self.excluded
    }

    /// Monotone epoch, bumped on every service change. Consumers cache
    /// derived structures keyed by this.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether core `core` is in service.
    pub fn in_service(&self, core: u32) -> bool {
        core < self.cores && self.excluded & (1 << core) == 0
    }

    /// Fraction of cores in service, in `(0, 1]` — the serving layer's
    /// capacity derate factor.
    pub fn capacity_factor(&self) -> f64 {
        f64::from(self.active()) / f64::from(self.cores)
    }

    /// Removes a core from service. Returns `true` if the map changed.
    pub fn exclude(&mut self, core: u32) -> bool {
        if core >= self.cores || self.excluded & (1 << core) != 0 {
            return false;
        }
        self.excluded |= 1 << core;
        self.epoch += 1;
        true
    }

    /// Returns a core to service. Returns `true` if the map changed.
    pub fn restore(&mut self, core: u32) -> bool {
        if core >= self.cores || self.excluded & (1 << core) == 0 {
            return false;
        }
        self.excluded &= !(1 << core);
        self.epoch += 1;
        true
    }

    /// Iterator over in-service core indices, ascending.
    pub fn in_service_cores(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.cores).filter(move |&c| self.in_service(c))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn exclusion_bumps_epoch_and_mask_round_trips() {
        let mut map = CoreMap::new(4);
        assert_eq!(map.active(), 4);
        assert_eq!(map.epoch(), 0);
        assert!(map.exclude(2));
        assert!(!map.exclude(2), "double-exclude is a no-op");
        assert_eq!(map.failed_mask(), 0b0100);
        assert_eq!(map.active(), 3);
        assert_eq!(map.epoch(), 1);
        assert!((map.capacity_factor() - 0.75).abs() < 1e-12);
        assert!(map.restore(2));
        assert_eq!(map.epoch(), 2);
        assert_eq!(map.failed_mask(), 0);
        assert!(!map.restore(2));
        assert!(!map.exclude(99), "out-of-range core is rejected");
        assert_eq!(map.in_service_cores().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }
}
