//! Property tests pinning the fast-path kernels to their scalar references.
//!
//! The contract (see `gemm` module docs) is *bit-exactness*: for any shape,
//! chunk length, format and data, the fast quantizer, GEMM and convolution
//! paths must produce the same output bits and the same `GemmStats` as the
//! scalar accumulator-driven references.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid_numerics::fma::FmaMode;
use rapid_numerics::format::FpFormat;
use rapid_numerics::gemm::{
    conv2d_emulated, conv2d_emulated_scalar, conv2d_emulated_with_simd, conv2d_int,
    conv2d_int_scalar, conv2d_int_with_simd, matmul_emulated, matmul_emulated_scalar,
    matmul_emulated_with_simd, matmul_int, matmul_int_scalar, matmul_int_with_simd, ConvScratch,
    ConvSpec,
};
use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::{SimdMode, Tensor};

/// Random tensor with roughly a third of the entries zeroed, so zero-gating
/// statistics are exercised alongside the numerics.
fn sparse_mat(shape: Vec<usize>, seed: u64, lo: f32, hi: f32) -> Tensor {
    let mut t = Tensor::random_uniform(shape, lo, hi, seed);
    for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    t
}

fn assert_bits_eq(fast: &Tensor, scalar: &Tensor) {
    assert_eq!(fast.shape(), scalar.shape());
    for (x, y) in fast.as_slice().iter().zip(scalar.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "fast {x} vs scalar {y}");
    }
}

fn mode_from(idx: u8, bias_a: i32, bias_b: i32) -> FmaMode {
    match idx % 4 {
        0 => FmaMode::Fp16,
        1 => FmaMode::hfp8_fwd_default(),
        2 => FmaMode::Hfp8Fwd { bias_a, bias_b },
        _ => FmaMode::Hfp8Bwd { bias_a },
    }
}

fn int_params_from(idx: u8, abs_max: f32) -> QuantParams {
    let (fmt, signedness) = match idx % 4 {
        0 => (IntFormat::Int4, Signedness::Signed),
        1 => (IntFormat::Int4, Signedness::Unsigned),
        2 => (IntFormat::Int2, Signedness::Signed),
        _ => (IntFormat::Int2, Signedness::Unsigned),
    };
    QuantParams::from_abs_max(fmt, signedness, abs_max)
}

proptest! {
    /// The dispatching quantizer and the f64-arithmetic reference agree to
    /// the bit on arbitrary f32 payloads, for every RaPiD format including
    /// programmable biases.
    #[test]
    fn quantize_matches_reference_on_arbitrary_bits(
        bits in 0u32..=u32::MAX,
        bias in 2i32..=12,
    ) {
        let x = f32::from_bits(bits);
        for fmt in [
            FpFormat::fp16(),
            FpFormat::fp8_e4m3(),
            FpFormat::fp8_e5m2(),
            FpFormat::fp9(),
            FpFormat::fp8_e4m3_with_bias(bias).unwrap(),
        ] {
            let fast = fmt.quantize(x);
            let reference = fmt.quantize_reference(x);
            prop_assert!(
                fast.to_bits() == reference.to_bits() || (fast.is_nan() && reference.is_nan()),
                "{}: quantize({:e}) fast {:e} != reference {:e}", fmt, x, fast, reference
            );
        }
    }

    /// Float GEMM: fast path (LUT or FP16-value kernel, tiled and
    /// register-blocked) is bit-exact against the ChunkAccumulator loop for
    /// every mode, random shapes and chunk lengths.
    #[test]
    fn float_gemm_bit_exact(
        (m, k, n) in (1usize..12, 1usize..40, 1usize..12),
        mode_idx in 0u8..4,
        bias_a in 4i32..=10,
        bias_b in 4i32..=10,
        chunk_len in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        let mode = mode_from(mode_idx, bias_a, bias_b);
        // Span well past every format's saturation point.
        let a = sparse_mat(vec![m, k], seed, -600.0, 600.0);
        let b = sparse_mat(vec![k, n], seed.wrapping_add(1), -600.0, 600.0);
        let (fast, fast_stats) = matmul_emulated(mode, &a, &b, chunk_len);
        let (scalar, scalar_stats) = matmul_emulated_scalar(mode, &a, &b, chunk_len);
        assert_bits_eq(&fast, &scalar);
        prop_assert_eq!(fast_stats, scalar_stats);
    }

    /// Integer GEMM: packed-nibble fast path (and its saturating-chunk
    /// fallback) is bit-exact against the IntAccumulator loop, including
    /// chunk lengths long enough that INT16 saturation is possible.
    #[test]
    fn int_gemm_bit_exact(
        (m, k, n) in (1usize..10, 1usize..48, 1usize..10),
        fmt_a in 0u8..4,
        fmt_b in 0u8..4,
        chunk_len in 1usize..1500,
        seed in 0u64..1_000_000,
    ) {
        let a = sparse_mat(vec![m, k], seed, -2.0, 2.0);
        let b = sparse_mat(vec![k, n], seed.wrapping_add(1), -2.0, 2.0);
        let qa = int_params_from(fmt_a, a.max_abs());
        let qb = int_params_from(fmt_b, b.max_abs());
        let (fast, fast_stats) = matmul_int(&a, &b, qa, qb, chunk_len);
        let (scalar, scalar_stats) = matmul_int_scalar(&a, &b, qa, qb, chunk_len);
        assert_bits_eq(&fast, &scalar);
        prop_assert_eq!(fast_stats, scalar_stats);
    }

    /// Float GEMM under every explicit backend pin. `SimdMode::Force`
    /// engages the AVX2 kernels even below the auto threshold, so the
    /// column range spans the 64-column wide kernel, the 16-column cleanup
    /// kernel and the scalar column tail in a single shape; `SimdMode::Off`
    /// pins the portable tiled path. All float modes (FP16, HFP8 fwd with
    /// programmable biases, HFP8 bwd), depths away from lane multiples, and
    /// a B operand materialized from a transpose so panel packing sees
    /// transposed data.
    #[test]
    fn float_gemm_bit_exact_across_backends(
        (m, k, n) in (1usize..5, 1usize..70, 1usize..100),
        mode_idx in 0u8..4,
        bias_a in 4i32..=10,
        bias_b in 4i32..=10,
        chunk_len in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        let mode = mode_from(mode_idx, bias_a, bias_b);
        let a = sparse_mat(vec![m, k], seed, -600.0, 600.0);
        let b = sparse_mat(vec![n, k], seed.wrapping_add(1), -600.0, 600.0).transposed();
        let (scalar, scalar_stats) = matmul_emulated_scalar(mode, &a, &b, chunk_len);
        for simd in [SimdMode::Force, SimdMode::Off] {
            let (fast, fast_stats) =
                matmul_emulated_with_simd(mode, &a, &b, chunk_len, simd).unwrap();
            assert_bits_eq(&fast, &scalar);
            prop_assert_eq!(fast_stats, scalar_stats, "{:?}", simd);
        }
    }

    /// Integer GEMM under every explicit backend pin: bit-sliced popcount
    /// (INT2×INT2), widening madd (other pairs) and the tiled windowed
    /// path must all reproduce the IntAccumulator reference, including
    /// chunk lengths long enough that the saturation guard forces the
    /// scalar accumulator regardless of the pin.
    #[test]
    fn int_gemm_bit_exact_across_backends(
        (m, k, n) in (1usize..4, 1usize..80, 1usize..100),
        fmt_a in 0u8..4,
        fmt_b in 0u8..4,
        chunk_len in 1usize..1500,
        seed in 0u64..1_000_000,
    ) {
        let a = sparse_mat(vec![m, k], seed, -2.0, 2.0);
        let b = sparse_mat(vec![n, k], seed.wrapping_add(1), -2.0, 2.0).transposed();
        let qa = int_params_from(fmt_a, a.max_abs());
        let qb = int_params_from(fmt_b, b.max_abs());
        let (scalar, scalar_stats) = matmul_int_scalar(&a, &b, qa, qb, chunk_len);
        for simd in [SimdMode::Force, SimdMode::Off] {
            let (fast, fast_stats) = matmul_int_with_simd(&a, &b, qa, qb, chunk_len, simd).unwrap();
            assert_bits_eq(&fast, &scalar);
            prop_assert_eq!(fast_stats, scalar_stats, "{:?}", simd);
        }
    }

    /// Convolution under every explicit backend pin: the panel-packed
    /// float and integer convolutions (spatial sizes crossing the 16- and
    /// 64-column kernel widths) match the scalar convolution bit-for-bit
    /// with SIMD forced and with it pinned off.
    #[test]
    fn conv_bit_exact_across_backends(
        (ni, ci, co) in (1usize..3, 1usize..4, 1usize..5),
        (h, w) in (4usize..11, 4usize..11),
        (kh, kw) in (1usize..4, 1usize..4),
        stride in 1usize..3,
        pad in 0usize..2,
        mode_idx in 0u8..4,
        seed in 0u64..1_000_000,
    ) {
        let spec = ConvSpec { stride, pad };
        let input = sparse_mat(vec![ni, ci, h, w], seed, -2.0, 2.0);
        let weight = sparse_mat(vec![co, ci, kh, kw], seed.wrapping_add(1), -1.0, 1.0);
        let mode = mode_from(mode_idx, 7, 7);
        let (scalar, scalar_stats) = conv2d_emulated_scalar(&input, &weight, spec, mode, 16);
        let qa = int_params_from(mode_idx, input.max_abs());
        let qw = int_params_from(mode_idx.wrapping_add(1), weight.max_abs());
        let (iscalar, iscalar_stats) = conv2d_int_scalar(&input, &weight, spec, qa, qw, 16);
        for simd in [SimdMode::Force, SimdMode::Off] {
            let mut scratch = ConvScratch::default();
            let (fast, fast_stats) =
                conv2d_emulated_with_simd(&input, &weight, spec, mode, 16, &mut scratch, simd)
                    .unwrap();
            assert_bits_eq(&fast, &scalar);
            prop_assert_eq!(fast_stats, scalar_stats, "{:?}", simd);
            let (ifast, ifast_stats) =
                conv2d_int_with_simd(&input, &weight, spec, qa, qw, 16, &mut scratch, simd)
                    .unwrap();
            assert_bits_eq(&ifast, &iscalar);
            prop_assert_eq!(ifast_stats, iscalar_stats, "{:?}", simd);
        }
    }

    /// Convolution: im2col scratch reuse + fast GEMM is bit-exact against
    /// the scalar convolution for random geometries, float and int.
    #[test]
    fn conv_bit_exact(
        (ni, ci, co) in (1usize..3, 1usize..4, 1usize..5),
        (h, w) in (3usize..8, 3usize..8),
        (kh, kw) in (1usize..4, 1usize..4),
        stride in 1usize..3,
        pad in 0usize..2,
        mode_idx in 0u8..4,
        seed in 0u64..1_000_000,
    ) {
        let spec = ConvSpec { stride, pad };
        let input = sparse_mat(vec![ni, ci, h, w], seed, -2.0, 2.0);
        let weight = sparse_mat(vec![co, ci, kh, kw], seed.wrapping_add(1), -1.0, 1.0);
        let mode = mode_from(mode_idx, 7, 7);
        let (fast, fast_stats) = conv2d_emulated(&input, &weight, spec, mode, 16);
        let (scalar, scalar_stats) = conv2d_emulated_scalar(&input, &weight, spec, mode, 16);
        assert_bits_eq(&fast, &scalar);
        prop_assert_eq!(fast_stats, scalar_stats);

        let qa = int_params_from(mode_idx, input.max_abs());
        let qw = int_params_from(mode_idx.wrapping_add(1), weight.max_abs());
        let (ifast, ifast_stats) = conv2d_int(&input, &weight, spec, qa, qw, 16);
        let (iscalar, iscalar_stats) = conv2d_int_scalar(&input, &weight, spec, qa, qw, 16);
        assert_bits_eq(&ifast, &iscalar);
        prop_assert_eq!(ifast_stats, iscalar_stats);
    }
}
