//! Concrete newtypes for RaPiD's floating-point formats.
//!
//! Each type stores the raw encoded bits of one value, giving the storage
//! cost the hardware pays (1/2 bytes) while delegating arithmetic semantics
//! to [`FpFormat`]. These types are what the cycle simulator moves through
//! scratchpads and links.

use crate::format::FpFormat;

macro_rules! fp_newtype {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $fmt:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name($repr);

        impl $name {
            /// The format this type encodes.
            pub fn format() -> FpFormat {
                $fmt
            }

            /// Quantizes `x` to this format and stores the encoded bits.
            pub fn from_f32(x: f32) -> Self {
                Self(Self::format().encode(x) as $repr)
            }

            /// Decodes back to `f32` (always exact).
            pub fn to_f32(self) -> f32 {
                Self::format().decode(self.0 as u32)
            }

            /// Raw encoded bits.
            pub fn to_bits(self) -> $repr {
                self.0
            }

            /// Constructs from raw encoded bits.
            pub fn from_bits(bits: $repr) -> Self {
                Self(bits)
            }

            /// Whether the stored value is zero (either sign) — the
            /// condition the MPE zero-gating logic tests.
            pub fn is_zero(self) -> bool {
                self.to_f32() == 0.0
            }
        }

        impl From<f32> for $name {
            fn from(x: f32) -> Self {
                Self::from_f32(x)
            }
        }

        impl From<$name> for f32 {
            fn from(v: $name) -> f32 {
                v.to_f32()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.to_f32())
            }
        }
    };
}

fp_newtype!(
    /// IBM DLFloat16 (1,6,9): the PE-array native format; all lower-precision
    /// pipelines produce FP16 results so auxiliary ops keep accuracy.
    ///
    /// ```
    /// use rapid_numerics::Fp16;
    /// let x = Fp16::from_f32(0.1);
    /// assert!((x.to_f32() - 0.1).abs() < 1e-3);
    /// ```
    Fp16,
    u16,
    FpFormat::fp16()
);

fp_newtype!(
    /// HFP8 forward-pass format FP8 (1,4,3) with the default bias.
    ///
    /// For a layer-specific programmable bias, operate through
    /// [`FpFormat::fp8_e4m3_with_bias`] instead.
    ///
    /// ```
    /// use rapid_numerics::Fp8E4M3;
    /// assert_eq!(Fp8E4M3::from_f32(3.14).to_f32(), 3.25);
    /// ```
    Fp8E4M3,
    u8,
    FpFormat::fp8_e4m3()
);

fp_newtype!(
    /// HFP8 backward-pass format FP8 (1,5,2), used for error tensors that
    /// need a larger dynamic range.
    ///
    /// ```
    /// use rapid_numerics::Fp8E5M2;
    /// assert_eq!(Fp8E5M2::from_f32(6.1).to_f32(), 6.0);
    /// ```
    Fp8E5M2,
    u8,
    FpFormat::fp8_e5m2()
);

fp_newtype!(
    /// The internal 9-bit (1,5,3) representation both FP8 flavours are
    /// converted to on the fly inside the FPU datapath (paper §III-A).
    ///
    /// ```
    /// use rapid_numerics::{Fp8E4M3, Fp8E5M2, Fp9};
    /// // Both FP8 formats convert to FP9 losslessly.
    /// let a = Fp8E4M3::from_f32(1.75);
    /// assert_eq!(Fp9::from_f32(a.to_f32()).to_f32(), a.to_f32());
    /// let b = Fp8E5M2::from_f32(1.5);
    /// assert_eq!(Fp9::from_f32(b.to_f32()).to_f32(), b.to_f32());
    /// ```
    Fp9,
    u16,
    FpFormat::fp9()
);

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact_for_representable_values() {
        for v in Fp8E4M3::format().positive_values() {
            assert_eq!(Fp8E4M3::from_f32(v).to_f32(), v);
        }
        for v in Fp8E5M2::format().positive_values() {
            assert_eq!(Fp8E5M2::from_f32(v).to_f32(), v);
        }
    }

    /// The paper's on-the-fly conversion claim: (1,5,3) can hold any
    /// (1,4,3)-default-bias or (1,5,2) value exactly — that is why a single
    /// FP9 datapath suffices for both HFP8 operand flavours.
    #[test]
    fn fp9_exactly_contains_both_fp8_formats() {
        let fp9 = FpFormat::fp9();
        for v in FpFormat::fp8_e4m3().positive_values() {
            assert_eq!(fp9.quantize(v), v, "e4m3 value {v} not exact in fp9");
        }
        for v in FpFormat::fp8_e5m2().positive_values() {
            assert_eq!(fp9.quantize(v), v, "e5m2 value {v} not exact in fp9");
        }
    }

    /// Programmable bias shifts the e4m3 value set by powers of two; FP9
    /// with its wider exponent absorbs biases near the default exactly.
    #[test]
    fn fp9_contains_biased_e4m3_within_exponent_budget() {
        for bias in 4..=10 {
            let fmt = FpFormat::fp8_e4m3_with_bias(bias).unwrap();
            let fp9 = FpFormat::fp9();
            let mut contained = 0usize;
            let vals = fmt.positive_values();
            for v in &vals {
                if fp9.quantize(*v) == *v {
                    contained += 1;
                }
            }
            // All values inside FP9's range are exact; extreme biases push
            // part of the range outside, which the hardware handles by
            // configuring the accumulation scaling.
            assert!(contained as f32 / vals.len() as f32 > 0.9, "bias {bias}");
        }
    }

    #[test]
    fn is_zero_matches_value() {
        assert!(Fp8E4M3::from_f32(0.0).is_zero());
        assert!(!Fp8E4M3::from_f32(0.5).is_zero());
        // Values that quantize to zero are gated too.
        assert!(Fp8E4M3::from_f32(1e-9).is_zero());
    }

    #[test]
    fn storage_width_matches_hardware() {
        assert_eq!(std::mem::size_of::<Fp16>(), 2);
        assert_eq!(std::mem::size_of::<Fp8E4M3>(), 1);
        assert_eq!(std::mem::size_of::<Fp8E5M2>(), 1);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Fp16::from_f32(1.5).to_string(), "1.5");
    }
}
