//! AVX2 vector kernels for the emulated GEMM fast paths.
//!
//! Two inner-loop families, selected by [`crate::dispatch`]:
//!
//! * [`dot_fp16_groups_wide`] / [`dot_fp16_group16`] — the float MAC loop
//!   over interleaved 16-column B panels: broadcast the A value,
//!   multiply against the contiguous panel, remap exact-zero products to
//!   `-0.0` (the IEEE additive identity the scalar kernel's gate uses),
//!   then run the DLFloat16 chunk rounding entirely in integer lanes.
//!   The same kernel serves both float modes: FP16 runs on lattice
//!   values directly, and the HFP8 LUT path feeds it **pre-decoded FP9
//!   operand values** — `ProductLut::product(ca, cb)` factors bit-exactly
//!   into `a_operands[ca] * b_operands[cb]` (the table entry *is* that
//!   f32 multiply), so one `vmulps` replaces a `vpgatherdps` from the 64K
//!   table. A gather variant was tried first; at ~3 cycles per 8-lane
//!   gather (the per-step index row is only 1 KiB, L1-resident) it was
//!   strictly slower than the multiply it replaces.
//! * [`dot_int_madd_rows`] / [`dot_int_madd`] — whole-k integer dot
//!   products over `i8` codes: sign-extend 16 codes to i16, `vpmaddwd`
//!   pairs into i32 lanes, horizontal-reduce to i64. Only called when the
//!   chunk guard rules out INT16 saturation, where the windowed tiled sum
//!   equals the plain dot product exactly (order-independent integer
//!   addition), so the result is bit-identical.
//!
//! The float kernels are **latency-bound**, not throughput-bound: each
//! chunk register advances through `vaddps` + the ~12-op rounding sequence
//! serially per k step (the order is the bit-exactness contract, so it
//! cannot be reassociated). The `_wide` variants therefore walk
//! [`WIDE_GROUPS`] column groups per k sweep — 8 independent accumulation
//! chains — hiding that chain latency behind instruction-level
//! parallelism; the 16-column variants clean up the remainder. k steps
//! whose broadcast A value is exactly zero skip the whole multiply+round
//! sweep: every product would be `-0.0` after the remap, and `round8` is
//! idempotent on its own outputs (a non-saturated input always rounds to
//! magnitude ≤ `MAX_BITS` with zero low-14 bits, and re-rounding such a
//! value — or `0`, `±MIN_NORMAL` — returns it unchanged), so the chunk
//! registers would come back bit-identical. The integer kernels amortize
//! per-call overhead (and the `#[target_feature]` call boundary) by
//! computing a whole output row per call.
//!
//! Bit-exactness of the float kernels rests on two facts: `vaddps` /
//! `vmulps` are IEEE single ops identical to scalar `f32` arithmetic, and
//! `round8` performs lane-wise exactly the integer-bit computation of
//! the scalar `fp16_round_sum_sel` (unsigned compares emulated by biasing
//! both sides with the sign bit). `vector_rounder_matches_scalar` pins the
//! lane rounder to the scalar one across the magnitude range. Chain count
//! never changes results: each column's accumulator chain is independent
//! in every variant, exactly as in the scalar reference.
//!
//! On non-`x86_64` targets the dispatcher never selects these kernels;
//! the stubs here only satisfy the type checker.

#![allow(clippy::inline_always)] // rounding helpers must fuse into the k-loop

/// Columns per interleaved group — two AVX2 f32 vectors, matching the
/// tiled path's register-block width `JR`.
pub(crate) const GROUP: usize = 16;

/// Column groups the wide float kernels process per k sweep. Four groups
/// give 8 concurrent add+round chains, enough to saturate the vector
/// ports; more would spill the accumulator registers.
pub(crate) const WIDE_GROUPS: usize = 4;

/// Columns per wide-kernel call.
pub(crate) const WIDE: usize = GROUP * WIDE_GROUPS;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{GROUP, WIDE, WIDE_GROUPS};
    use crate::gemm::fp16_round_sum;
    use std::arch::x86_64::*;

    /// Lane-wise `fp16_round_sum_sel` (see `gemm`): DLFloat16 RNE with
    /// underflow-flush and saturation handled by selects on the raw bits.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn round8(x: __m256) -> __m256 {
        // FP16 (1,6,9), bias 31 — same constants as the scalar rounder.
        const MIN_NORMAL: u32 = ((-30 + 127) as u32) << 23;
        const HALF_MIN: u32 = ((-31 + 127) as u32) << 23;
        const MAX_BITS: u32 = ((32 + 127) as u32) << 23 | (((1u32 << 9) - 1) << 14);
        const SHIFT: i32 = 23 - 9;
        // Unsigned thresholds pre-biased by 0x8000_0000 so the unsigned
        // compares of the scalar rounder become signed `vpcmpgtd`.
        const BIAS: i32 = i32::MIN;
        let bits = _mm256_castps_si256(x);
        let sign = _mm256_and_si256(bits, _mm256_set1_epi32(i32::MIN));
        let mag2 = _mm256_slli_epi32::<1>(bits);
        let mag2b = _mm256_xor_si256(mag2, _mm256_set1_epi32(BIAS));
        // rounded = (bits + (LSB/2 - 1) + odd) & !(LSB - 1), LSB = 1<<14.
        let odd = _mm256_and_si256(_mm256_srli_epi32::<SHIFT>(bits), _mm256_set1_epi32(1));
        let rounded = _mm256_and_si256(
            _mm256_add_epi32(bits, _mm256_add_epi32(_mm256_set1_epi32(0x1FFF), odd)),
            _mm256_set1_epi32(!0x3FFF),
        );
        let rmag = _mm256_and_si256(rounded, _mm256_set1_epi32(0x7fff_ffff));
        // small = (mag2 >u HALF_MIN<<1) ? MIN_NORMAL : 0
        let gt_half =
            _mm256_cmpgt_epi32(mag2b, _mm256_set1_epi32(((HALF_MIN << 1) as i32) ^ BIAS));
        let small = _mm256_and_si256(gt_half, _mm256_set1_epi32(MIN_NORMAL as i32));
        // r = (mag2 <u MIN_NORMAL<<1) ? small : rmag
        let lt_min =
            _mm256_cmpgt_epi32(_mm256_set1_epi32(((MIN_NORMAL << 1) as i32) ^ BIAS), mag2b);
        let r = _mm256_blendv_epi8(rmag, small, lt_min);
        // r = (mag2 >u MAX_BITS<<1) ? MAX_BITS : r   (saturate)
        let gt_max =
            _mm256_cmpgt_epi32(mag2b, _mm256_set1_epi32(((MAX_BITS << 1) as i32) ^ BIAS));
        let r = _mm256_blendv_epi8(r, _mm256_set1_epi32(MAX_BITS as i32), gt_max);
        _mm256_castsi256_ps(_mm256_or_si256(sign, r))
    }

    /// The float MAC loop over `G` interleaved 16-column groups laid out
    /// back to back in `bgroups` (`G * k * 16` values). `2G` independent
    /// accumulation chains advance per k step; each column's chain
    /// performs exactly the scalar kernel's op sequence, so `G` is
    /// performance-only. Steps with a zero A value are skipped whole —
    /// bit-exact by `round8` idempotence (module docs).
    ///
    /// # Safety
    ///
    /// Requires AVX2; `bgroups.len() == G * arow.len() * GROUP`,
    /// `out.len() == G * GROUP`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn fp16_groups<const G: usize>(
        arow: &[f32],
        bgroups: &[f32],
        chunk_len: usize,
        out: &mut [f32],
    ) {
        let gsz = arow.len() * GROUP;
        let signbit = _mm256_castsi256_ps(_mm256_set1_epi32(i32::MIN));
        let zero = _mm256_setzero_ps();
        let mut outer_lo = [zero; G];
        let mut outer_hi = [zero; G];
        let mut chunk_lo = [zero; G];
        let mut chunk_hi = [zero; G];
        let mut in_chunk = 0usize;
        for (p, &x) in arow.iter().enumerate() {
            // A zero broadcast value makes every product ±0, remapped to
            // -0.0, and `round8(chunk + -0.0) == chunk` (idempotence), so
            // the whole sweep is skipped; only the chunk-boundary
            // bookkeeping below still runs.
            if x != 0.0 {
                let xa = _mm256_set1_ps(x);
                for t in 0..G {
                    let b0 = _mm256_loadu_ps(bgroups.as_ptr().add(t * gsz + p * GROUP));
                    let b1 = _mm256_loadu_ps(bgroups.as_ptr().add(t * gsz + p * GROUP + 8));
                    let mut prod0 = _mm256_mul_ps(xa, b0);
                    let mut prod1 = _mm256_mul_ps(xa, b1);
                    // Exact-zero products (lattice products never underflow)
                    // become -0.0, the additive identity — the scalar gate.
                    let z0 = _mm256_cmp_ps::<_CMP_EQ_OQ>(prod0, zero);
                    let z1 = _mm256_cmp_ps::<_CMP_EQ_OQ>(prod1, zero);
                    prod0 = _mm256_or_ps(prod0, _mm256_and_ps(z0, signbit));
                    prod1 = _mm256_or_ps(prod1, _mm256_and_ps(z1, signbit));
                    chunk_lo[t] = round8(_mm256_add_ps(chunk_lo[t], prod0));
                    chunk_hi[t] = round8(_mm256_add_ps(chunk_hi[t], prod1));
                }
            }
            in_chunk += 1;
            if in_chunk == chunk_len {
                for t in 0..G {
                    outer_lo[t] = _mm256_add_ps(outer_lo[t], chunk_lo[t]);
                    outer_hi[t] = _mm256_add_ps(outer_hi[t], chunk_hi[t]);
                    chunk_lo[t] = zero;
                    chunk_hi[t] = zero;
                }
                in_chunk = 0;
            }
        }
        finish_groups::<G>(&outer_lo, &outer_hi, &chunk_lo, &chunk_hi, out);
    }

    /// Reduces the (outer, chunk) register pairs exactly as the scalar
    /// kernels' epilogue: `fp16_round_sum(outer[t] + chunk[t])` per lane.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `out.len() == G * GROUP`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn finish_groups<const G: usize>(
        outer_lo: &[__m256; G],
        outer_hi: &[__m256; G],
        chunk_lo: &[__m256; G],
        chunk_hi: &[__m256; G],
        out: &mut [f32],
    ) {
        let mut sums = [0.0f32; GROUP];
        for t in 0..G {
            _mm256_storeu_ps(sums.as_mut_ptr(), _mm256_add_ps(outer_lo[t], chunk_lo[t]));
            _mm256_storeu_ps(sums.as_mut_ptr().add(8), _mm256_add_ps(outer_hi[t], chunk_hi[t]));
            for (o, &s) in out[t * GROUP..(t + 1) * GROUP].iter_mut().zip(&sums) {
                *o = fp16_round_sum(s);
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2; `a.len() == b.len()`, with the caller's chunk guard
    /// bounding `k` so the i32 lane accumulators cannot overflow.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn int_madd(a: &[i8], b: &[i8]) -> i64 {
        let k = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut p = 0usize;
        while p + 16 <= k {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p).cast()));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            p += 16;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut sum: i64 = lanes.iter().map(|&v| i64::from(v)).sum();
        while p < k {
            sum += i64::from(a[p]) * i64::from(b[p]);
            p += 1;
        }
        sum
    }

    /// Whole output row of madd dot products: one `#[target_feature]`
    /// call per A row instead of per element, so [`int_madd`] inlines
    /// into the column loop.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `cbt.len() == orow.len() * arow.len()` and the
    /// caller's chunk guard as in [`int_madd`].
    #[target_feature(enable = "avx2")]
    unsafe fn int_madd_rows(arow: &[i8], cbt: &[i8], out_scale: f32, orow: &mut [f32]) {
        let k = arow.len();
        for (j, o) in orow.iter_mut().enumerate() {
            let dot = int_madd(arow, &cbt[j * k..(j + 1) * k]);
            *o = dot as f32 * out_scale;
        }
    }

    /// Test-only window into the lane rounder so the unit test can pin it
    /// to the scalar rounder directly.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[cfg(test)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn round8_for_test(x: __m256) -> __m256 {
        round8(x)
    }

    /// Safe wrapper: chunk-accumulated FP16 lattice dot products of one
    /// A-row against [`WIDE_GROUPS`] consecutive interleaved panels.
    pub(crate) fn dot_fp16_groups_wide(
        arow: &[f32],
        bgroups: &[f32],
        chunk_len: usize,
        out: &mut [f32; WIDE],
    ) {
        assert!(crate::dispatch::simd_available(), "SIMD kernel selected without AVX2");
        assert_eq!(bgroups.len(), WIDE_GROUPS * arow.len() * GROUP);
        // SAFETY: AVX2 presence and slice extents asserted above.
        unsafe { fp16_groups::<WIDE_GROUPS>(arow, bgroups, chunk_len, out) }
    }

    /// Safe wrapper: chunk-accumulated FP16 lattice dot products of one
    /// A-row against a single 16-column interleaved B panel.
    pub(crate) fn dot_fp16_group16(
        arow: &[f32],
        bgroup: &[f32],
        chunk_len: usize,
        out: &mut [f32; GROUP],
    ) {
        assert!(crate::dispatch::simd_available(), "SIMD kernel selected without AVX2");
        assert_eq!(bgroup.len(), arow.len() * GROUP);
        // SAFETY: AVX2 presence and slice extents asserted above.
        unsafe { fp16_groups::<1>(arow, bgroup, chunk_len, out) }
    }

    /// Safe wrapper: exact whole-k integer dot product over i8 codes
    /// (test-only pin for the row-level kernel).
    #[cfg(test)]
    pub(crate) fn dot_int_madd(a: &[i8], b: &[i8]) -> i64 {
        assert!(crate::dispatch::simd_available(), "SIMD kernel selected without AVX2");
        assert_eq!(a.len(), b.len());
        // SAFETY: AVX2 presence and slice extents asserted above.
        unsafe { int_madd(a, b) }
    }

    /// Safe wrapper: one full output row of scaled madd dot products
    /// (`orow[j] = dot(arow, cbt[j]) * out_scale`).
    pub(crate) fn dot_int_madd_rows(arow: &[i8], cbt: &[i8], out_scale: f32, orow: &mut [f32]) {
        assert!(crate::dispatch::simd_available(), "SIMD kernel selected without AVX2");
        assert_eq!(cbt.len(), orow.len() * arow.len());
        // SAFETY: AVX2 presence and slice extents asserted above.
        unsafe { int_madd_rows(arow, cbt, out_scale, orow) }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::{dot_fp16_group16, dot_fp16_groups_wide, dot_int_madd_rows};
#[cfg(all(test, target_arch = "x86_64"))]
pub(crate) use avx2::dot_int_madd;

#[cfg(not(target_arch = "x86_64"))]
mod fallback {
    use super::{GROUP, WIDE};

    /// Unreachable on this target: the dispatcher reports
    /// `simd_available() == false` and never selects the AVX2 kernels.
    pub(crate) fn dot_fp16_groups_wide(
        _arow: &[f32],
        _bgroups: &[f32],
        _chunk_len: usize,
        _out: &mut [f32; WIDE],
    ) {
        unreachable!("SIMD kernel selected on a non-x86_64 target");
    }

    /// Unreachable on this target (see [`dot_fp16_groups_wide`]).
    pub(crate) fn dot_fp16_group16(
        _arow: &[f32],
        _bgroup: &[f32],
        _chunk_len: usize,
        _out: &mut [f32; GROUP],
    ) {
        unreachable!("SIMD kernel selected on a non-x86_64 target");
    }

    /// Unreachable on this target (see [`dot_fp16_groups_wide`]).
    pub(crate) fn dot_int_madd_rows(_arow: &[i8], _cbt: &[i8], _out_scale: f32, _orow: &mut [f32]) {
        unreachable!("SIMD kernel selected on a non-x86_64 target");
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) use fallback::{dot_fp16_group16, dot_fp16_groups_wide, dot_int_madd_rows};

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::gemm::fp16_round_sum_sel;
    use std::arch::x86_64::*;

    /// The vector rounder must agree with the scalar branch-free rounder
    /// on every magnitude band: zeros, flush-to-zero range, round-to-min,
    /// normals (both RNE tie directions), saturation, both signs.
    #[test]
    fn vector_rounder_matches_scalar() {
        if !crate::dispatch::simd_available() {
            return;
        }
        #[target_feature(enable = "avx2")]
        unsafe fn via_round8(vals: &[f32; 8]) -> [f32; 8] {
            // Route through the public kernel path: a 1-element chunk of a
            // single k step with products equal to `vals` would need a LUT;
            // call the rounder via an add with 0.0 instead.
            let v = _mm256_loadu_ps(vals.as_ptr());
            let r = super::avx2::round8_for_test(v);
            let mut out = [0.0f32; 8];
            _mm256_storeu_ps(out.as_mut_ptr(), r);
            out
        }
        let mut cases: Vec<f32> = vec![0.0, -0.0];
        // Dense sweep across the exponent range, both signs, plus tie bits.
        for exp in -40i32..=40 {
            for frac in [0.0f32, 0.25, 0.5, 0.4999, 0.7501, 0.999_999] {
                let v = (1.0 + frac) * (exp as f32).exp2();
                cases.push(v);
                cases.push(-v);
            }
        }
        // Exact grid points and half-LSB ties around the FP16 lattice.
        for bits in (0x3080_0000u32..0x3081_0000).step_by(0x1000) {
            cases.push(f32::from_bits(bits));
            cases.push(f32::from_bits(bits | 0x2000)); // half-LSB tie
        }
        for chunk in cases.chunks(8) {
            let mut vals = [0.0f32; 8];
            vals[..chunk.len()].copy_from_slice(chunk);
            // SAFETY: AVX2 checked at function entry.
            let got = unsafe { via_round8(&vals) };
            for (g, v) in got.iter().zip(vals) {
                let want = fp16_round_sum_sel(v);
                assert_eq!(
                    g.to_bits(),
                    want.to_bits(),
                    "round8({v:e}): vector {g:e} != scalar {want:e}"
                );
            }
        }
    }

    #[test]
    fn int_madd_matches_reference() {
        if !crate::dispatch::simd_available() {
            return;
        }
        for k in [0usize, 1, 15, 16, 17, 31, 32, 100, 257] {
            let a: Vec<i8> = (0..k).map(|i| ((i * 7 + 3) % 31) as i8 - 15).collect();
            let b: Vec<i8> = (0..k).map(|i| ((i * 13 + 5) % 31) as i8 - 15).collect();
            let want: i64 = a.iter().zip(&b).map(|(&x, &y)| i64::from(x) * i64::from(y)).sum();
            assert_eq!(dot_int_madd(&a, &b), want, "k={k}");
        }
    }

    /// The row-level madd kernel must agree with per-element calls.
    #[test]
    fn int_madd_rows_matches_single() {
        if !crate::dispatch::simd_available() {
            return;
        }
        let (k, n) = (37usize, 9usize);
        let a: Vec<i8> = (0..k).map(|i| ((i * 11 + 2) % 15) as i8 - 7).collect();
        let bt: Vec<i8> = (0..k * n).map(|i| ((i * 5 + 1) % 15) as i8 - 7).collect();
        let scale = 0.125f32;
        let mut rows = vec![0.0f32; n];
        dot_int_madd_rows(&a, &bt, scale, &mut rows);
        for j in 0..n {
            let want = dot_int_madd(&a, &bt[j * k..(j + 1) * k]) as f32 * scale;
            assert_eq!(rows[j].to_bits(), want.to_bits(), "column {j}");
        }
    }
}
