//! Special Function Unit arithmetic (paper §III-B): the SFU provides both
//! *accurate* and *fast* versions of a spectrum of non-linear functions —
//! `sqrt`, `exp`, `ln`, `tanh`, `sigmoid` and `reciprocal` are "realized
//! using approximations".
//!
//! The fast variants here use the classic hardware recipes (bit-twiddled
//! initial guesses plus one or two Newton–Raphson steps, range-reduced
//! polynomial exponentials); the accurate variants add refinement
//! iterations. Results land in FP16 either way — the tests bound the
//! relative error of each variant and verify the accurate one is at least
//! as good.

use crate::format::FpFormat;

/// Which SFU pipeline variant executes the function (fast = fewer
/// iterations, 1 result/lane/cycle; accurate = refined, lower throughput).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuAccuracy {
    /// Single-pass approximation.
    Fast,
    /// Refined approximation (extra Newton / polynomial terms).
    Accurate,
}

fn to_fp16(x: f32) -> f32 {
    FpFormat::fp16().quantize(x)
}

/// Fast inverse via the exponent-negation initial guess plus
/// Newton–Raphson steps: `r ← r (2 − x r)`.
pub fn reciprocal(x: f32, acc: SfuAccuracy) -> f32 {
    if x == 0.0 {
        return f32::INFINITY.copysign(x);
    }
    // Initial guess from the floating-point encoding (classic hack).
    let i = 0x7EEF_1AA0u32.wrapping_sub(x.abs().to_bits());
    let mut r = f32::from_bits(i).copysign(x);
    let steps = match acc {
        SfuAccuracy::Fast => 2,
        SfuAccuracy::Accurate => 4,
    };
    for _ in 0..steps {
        r = r * (2.0 - x * r);
    }
    to_fp16(r)
}

/// Square root via the inverse-square-root initial guess and Newton steps
/// on `y ← y (1.5 − 0.5 x y²)`, then `√x = x · rsqrt(x)`.
pub fn sqrt(x: f32, acc: SfuAccuracy) -> f32 {
    if x < 0.0 {
        return f32::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    let i = 0x5F37_59DFu32.wrapping_sub(x.to_bits() >> 1);
    let mut y = f32::from_bits(i);
    let steps = match acc {
        SfuAccuracy::Fast => 2,
        SfuAccuracy::Accurate => 4,
    };
    for _ in 0..steps {
        y *= 1.5 - 0.5 * x * y * y;
    }
    to_fp16(x * y)
}

/// Exponential via range reduction `x = k·ln2 + r` and a short polynomial
/// in `r ∈ [−ln2/2, ln2/2]`.
pub fn exp(x: f32, acc: SfuAccuracy) -> f32 {
    const LN2: f32 = std::f32::consts::LN_2;
    // Clamp to the FP16-representable exponent range.
    let x = x.clamp(-24.0 * LN2, 24.0 * LN2);
    let k = (x / LN2).round();
    let r = x - k * LN2;
    // Polynomial for e^r: fast = degree 3, accurate = degree 5.
    let p = match acc {
        SfuAccuracy::Fast => 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0))),
        SfuAccuracy::Accurate => {
            1.0 + r
                * (1.0
                    + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r * (1.0 / 120.0)))))
        }
    };
    to_fp16(p * (k).exp2())
}

/// Natural logarithm via the exponent split `x = 2^e · m, m ∈ [1, 2)` and
/// an atanh-based polynomial in `s = (m−1)/(m+1)`.
pub fn ln(x: f32, acc: SfuAccuracy) -> f32 {
    if x < 0.0 {
        return f32::NAN;
    }
    if x == 0.0 {
        return f32::NEG_INFINITY;
    }
    let bits = x.to_bits();
    let e = ((bits >> 23) as i32 - 127) as f32;
    let m = f32::from_bits((bits & 0x007F_FFFF) | 0x3F80_0000); // [1, 2)
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let poly = match acc {
        SfuAccuracy::Fast => 2.0 * s * (1.0 + s2 / 3.0),
        SfuAccuracy::Accurate => 2.0 * s * (1.0 + s2 * (1.0 / 3.0 + s2 * (0.2 + s2 / 7.0))),
    };
    to_fp16(e * std::f32::consts::LN_2 + poly)
}

/// Sigmoid via the exponential: `1 / (1 + e^-x)` with a hard clamp where
/// FP16 saturates anyway.
pub fn sigmoid(x: f32, acc: SfuAccuracy) -> f32 {
    if x > 12.0 {
        return 1.0;
    }
    if x < -12.0 {
        return 0.0;
    }
    let e = exp(-x, acc);
    reciprocal_exact_enough(1.0 + e, acc)
}

/// Tanh via the sigmoid identity `tanh(x) = 2σ(2x) − 1`.
pub fn tanh(x: f32, acc: SfuAccuracy) -> f32 {
    to_fp16(2.0 * sigmoid(2.0 * x, acc) - 1.0)
}

fn reciprocal_exact_enough(x: f32, acc: SfuAccuracy) -> f32 {
    reciprocal(x, acc)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn max_rel_err(f: impl Fn(f32) -> f32, g: impl Fn(f32) -> f32, xs: &[f32]) -> f64 {
        xs.iter()
            .map(|&x| {
                let (a, b) = (f64::from(f(x)), f64::from(g(x)));
                if b.abs() < 1e-6 {
                    (a - b).abs()
                } else {
                    ((a - b) / b).abs()
                }
            })
            .fold(0.0, f64::max)
    }

    fn grid(lo: f32, hi: f32, n: usize) -> Vec<f32> {
        (0..n).map(|i| lo + (hi - lo) * i as f32 / (n - 1) as f32).collect()
    }

    #[test]
    fn reciprocal_error_bounds() {
        let xs = grid(0.05, 50.0, 500);
        let fast = max_rel_err(|x| reciprocal(x, SfuAccuracy::Fast), |x| 1.0 / x, &xs);
        let accu = max_rel_err(|x| reciprocal(x, SfuAccuracy::Accurate), |x| 1.0 / x, &xs);
        assert!(fast < 0.02, "fast reciprocal err {fast}");
        assert!(accu < 0.002, "accurate reciprocal err {accu}");
        assert!(accu <= fast);
    }

    #[test]
    fn reciprocal_handles_negatives_and_zero() {
        assert!((reciprocal(-4.0, SfuAccuracy::Accurate) + 0.25).abs() < 1e-3);
        assert_eq!(reciprocal(0.0, SfuAccuracy::Fast), f32::INFINITY);
    }

    #[test]
    fn sqrt_error_bounds() {
        let xs = grid(0.01, 100.0, 500);
        let fast = max_rel_err(|x| sqrt(x, SfuAccuracy::Fast), |x| x.sqrt(), &xs);
        let accu = max_rel_err(|x| sqrt(x, SfuAccuracy::Accurate), |x| x.sqrt(), &xs);
        assert!(fast < 0.01, "fast sqrt err {fast}");
        assert!(accu < 0.002, "accurate sqrt err {accu}");
        assert!(sqrt(-1.0, SfuAccuracy::Fast).is_nan());
        assert_eq!(sqrt(0.0, SfuAccuracy::Fast), 0.0);
    }

    #[test]
    fn exp_error_bounds() {
        let xs = grid(-8.0, 8.0, 500);
        let fast = max_rel_err(|x| exp(x, SfuAccuracy::Fast), |x| x.exp(), &xs);
        let accu = max_rel_err(|x| exp(x, SfuAccuracy::Accurate), |x| x.exp(), &xs);
        assert!(fast < 0.01, "fast exp err {fast}");
        assert!(accu < 0.002, "accurate exp err {accu}");
    }

    #[test]
    fn ln_error_bounds() {
        let xs = grid(0.05, 100.0, 500);
        let fast = max_rel_err(|x| ln(x, SfuAccuracy::Fast), |x| x.ln(), &xs);
        let accu = max_rel_err(|x| ln(x, SfuAccuracy::Accurate), |x| x.ln(), &xs);
        assert!(fast < 0.02, "fast ln err {fast}");
        assert!(accu < 0.003, "accurate ln err {accu}");
        assert!(ln(-1.0, SfuAccuracy::Fast).is_nan());
    }

    #[test]
    fn sigmoid_and_tanh_shape() {
        for acc in [SfuAccuracy::Fast, SfuAccuracy::Accurate] {
            assert!((sigmoid(0.0, acc) - 0.5).abs() < 2e-3);
            assert_eq!(sigmoid(20.0, acc), 1.0);
            assert_eq!(sigmoid(-20.0, acc), 0.0);
            assert!((tanh(0.0, acc)).abs() < 4e-3);
            assert!((tanh(1.0, acc) - 0.7616).abs() < 0.01);
            // Monotone on a grid.
            let mut prev = -1.0f32;
            for x in grid(-6.0, 6.0, 100) {
                let y = tanh(x, acc);
                assert!(y >= prev - 2e-3, "tanh not monotone at {x}");
                prev = y;
            }
        }
    }

    #[test]
    fn results_are_fp16_representable() {
        let fmt = FpFormat::fp16();
        for x in grid(0.1, 10.0, 50) {
            for v in [
                reciprocal(x, SfuAccuracy::Fast),
                sqrt(x, SfuAccuracy::Accurate),
                exp(x * 0.3, SfuAccuracy::Fast),
                ln(x, SfuAccuracy::Accurate),
                sigmoid(x, SfuAccuracy::Fast),
                tanh(x, SfuAccuracy::Accurate),
            ] {
                assert!(fmt.is_representable(v), "{v} not fp16");
            }
        }
    }
}
