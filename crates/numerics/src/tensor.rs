//! A minimal row-major `f32` tensor shared across the workspace.
//!
//! Functional emulation works on `f32` values that are exact members of the
//! emulated format's value set (see [`crate::format::FpFormat`]); this type
//! is the container those values live in.

use crate::NumericsError;

/// Dense row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use rapid_numerics::Tensor;
///
/// let mut t = Tensor::zeros(vec![2, 3]);
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension product overflow.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape {shape:?} does not match data length {}", data.len());
        Self { shape, data }
    }

    /// Creates a tensor filled by `f(flat_index)`.
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(usize) -> f32) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(&mut f).collect();
        Self { shape, data }
    }

    /// Uniform random tensor in `[lo, hi)` from a deterministic seed.
    pub fn random_uniform(shape: Vec<usize>, lo: f32, hi: f32, seed: u64) -> Self {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_fn(shape, |_| rng.gen_range(lo..hi))
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes in place to `shape`, zero-filling all elements. Existing
    /// contents are discarded but the backing allocation is kept, so scratch
    /// tensors (e.g. im2col buffers) can be reused across calls without
    /// reallocating.
    pub fn reset(&mut self, shape: Vec<usize>) {
        let n: usize = shape.iter().product();
        self.data.clear();
        self.data.resize(n, 0.0);
        self.shape = shape;
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            idx.len(),
            self.shape.len()
        );
        let mut flat = 0usize;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of bounds for dim {i} of size {dim}");
            flat = flat * dim + ix;
        }
        flat
    }

    /// Element at a multidimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Sets the element at a multidimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let i = self.flat_index(idx);
        self.data[i] = v;
    }

    /// Returns a tensor with every element mapped through `f`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Reshapes without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self, NumericsError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                actual: format!("shape {shape:?} = {n} elements"),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Largest absolute value (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Arithmetic mean (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|&x| f64::from(x)).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Mean and standard deviation (population), used by SaWB.
    pub fn mean_std(&self) -> (f32, f32) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mean = f64::from(self.mean());
        let var = self
            .data
            .iter()
            .map(|&x| {
                let d = f64::from(x) - mean;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        (mean as f32, var.sqrt() as f32)
    }

    /// Fraction of exactly-zero elements (drives the sparsity/throttling
    /// model).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&x| x == 0.0).count() as f64 / self.data.len() as f64
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transposed(&self) -> Self {
        assert_eq!(self.shape.len(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(vec![c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Maximum relative element-wise difference against `other`, normalized
    /// by `other`'s max magnitude (useful for accuracy comparisons).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_rel_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_rel_diff");
        let denom = other.max_abs().max(1e-12);
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs() / denom))
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Self { shape: vec![data.len()], data }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec(vec![2, 3], vec![0., 1., 2., 3., 4., 5.]);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(vec![2, 3]);
        t.get(&[0, 3]);
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::zeros(vec![2, 3]);
        assert!(t.clone().reshape(vec![3, 2]).is_ok());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::random_uniform(vec![3, 5], -1.0, 1.0, 42);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed().get(&[4, 2]), t.get(&[2, 4]));
    }

    #[test]
    fn stats() {
        let t = Tensor::from_vec(vec![4], vec![0.0, 0.0, 2.0, -4.0]);
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.sparsity(), 0.5);
        assert_eq!(t.mean(), -0.5);
        let (m, s) = Tensor::from_vec(vec![2], vec![1.0, 3.0]).mean_std();
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random_uniform(vec![10], 0.0, 1.0, 9);
        let b = Tensor::random_uniform(vec![10], 0.0, 1.0, 9);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn collect_makes_rank1() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape(), &[4]);
    }
}
