//! Chunk-based hierarchical accumulation (Sakr et al., ICLR 2019 \[51\]).
//!
//! Accumulating thousands of low-precision products into a single FP16
//! register suffers *swamping*: once the running sum is much larger than an
//! addend, the addend is rounded away entirely. RaPiD avoids this by
//! accumulating fixed-size chunks in the MPE (FP16 or INT16 partial sums)
//! and summing the chunk results hierarchically in the SFU at higher
//! precision (paper §III-A: "HFP8 training also uses chunk-based
//! accumulation to accumulate partial sums in a hierarchical fashion").

use crate::fma::{fma_prequantized, FmaMode, FmaResult};
use crate::format::FpFormat;

/// A two-level accumulator: products are accumulated into an FP16 chunk
/// register inside the MPE; every `chunk_len` terms the chunk total is
/// handed to a higher-precision (FP32-modeled) SFU accumulator.
///
/// # Example
///
/// ```
/// use rapid_numerics::accumulate::ChunkAccumulator;
/// use rapid_numerics::fma::FmaMode;
///
/// let mut acc = ChunkAccumulator::new(FmaMode::hfp8_fwd_default(), 64);
/// for _ in 0..1000 {
///     acc.mac(1.0, 0.25);
/// }
/// assert_eq!(acc.finish(), 250.0);
/// ```
#[derive(Debug, Clone)]
pub struct ChunkAccumulator {
    mode: FmaMode,
    chunk_len: usize,
    in_chunk: usize,
    chunk_acc: f32,
    outer_acc: f32,
    macs: u64,
    zero_gated: u64,
}

impl ChunkAccumulator {
    /// Creates an accumulator that flushes the FP16 chunk register every
    /// `chunk_len` MACs. RaPiD's dataflow flushes at LRF-reload boundaries;
    /// 64 is a representative chunk length.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    pub fn new(mode: FmaMode, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        Self {
            mode,
            chunk_len,
            in_chunk: 0,
            chunk_acc: 0.0,
            outer_acc: 0.0,
            macs: 0,
            zero_gated: 0,
        }
    }

    /// The FMA mode in use.
    pub fn mode(&self) -> FmaMode {
        self.mode
    }

    /// Multiply-accumulate one pair of *pre-quantized* operands.
    pub fn mac(&mut self, a: f32, b: f32) {
        let FmaResult { acc, zero_gated } =
            fma_prequantized(self.mode, self.chunk_acc, a, b);
        self.chunk_acc = acc;
        self.macs += 1;
        if zero_gated {
            self.zero_gated += 1;
        }
        self.in_chunk += 1;
        if self.in_chunk == self.chunk_len {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        // The SFU accumulates chunk sums in higher precision (FP32).
        self.outer_acc += self.chunk_acc;
        self.chunk_acc = 0.0;
        self.in_chunk = 0;
    }

    /// Current value of the FP16 chunk register (fault-injection hooks and
    /// numeric guards inspect it between MACs).
    pub fn chunk_value(&self) -> f32 {
        self.chunk_acc
    }

    /// Applies `f` to the chunk register in place — the entry point for
    /// injected accumulator upsets and for guard-policy clamping. Leaves
    /// every statistic untouched: a corrupted register is not a MAC.
    pub fn corrupt_chunk(&mut self, f: impl FnOnce(f32) -> f32) {
        self.chunk_acc = f(self.chunk_acc);
    }

    /// Total MACs issued so far.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// MACs that were bypassed by zero-gating.
    pub fn zero_gated(&self) -> u64 {
        self.zero_gated
    }

    /// Flushes the open chunk and returns the final sum, rounded to FP16 as
    /// it is written back toward the scratchpad.
    pub fn finish(mut self) -> f32 {
        self.flush_chunk();
        FpFormat::fp16().quantize(self.outer_acc)
    }

    /// Like [`ChunkAccumulator::finish`] but keeps the full FP32 sum
    /// (the SFU can retain FP32 for selected operations).
    pub fn finish_fp32(mut self) -> f32 {
        self.flush_chunk();
        self.outer_acc
    }
}

/// Accumulates a dot product *without* chunking: a single FP16 register,
/// as a baseline to demonstrate the swamping problem chunking solves.
pub fn dot_flat_fp16(mode: FmaMode, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc = fma_prequantized(mode, acc, x, y).acc;
    }
    acc
}

/// Chunked dot product of pre-quantized operands.
pub fn dot_chunked(mode: FmaMode, a: &[f32], b: &[f32], chunk_len: usize) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut acc = ChunkAccumulator::new(mode, chunk_len);
    for (&x, &y) in a.iter().zip(b) {
        acc.mac(x, y);
    }
    acc.finish()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn chunked_equals_flat_for_short_sums() {
        let a: Vec<f32> = (0..16).map(|i| (i as f32) * 0.125).collect();
        let b: Vec<f32> = (0..16).map(|i| 1.0 - (i as f32) * 0.0625).collect();
        let fp16 = FpFormat::fp16();
        let qa: Vec<f32> = a.iter().map(|&x| fp16.quantize(x)).collect();
        let qb: Vec<f32> = b.iter().map(|&x| fp16.quantize(x)).collect();
        let flat = dot_flat_fp16(FmaMode::Fp16, &qa, &qb);
        let chunked = dot_chunked(FmaMode::Fp16, &qa, &qb, 64);
        assert_eq!(flat, chunked);
    }

    /// The headline property from [51]: for long reductions, flat FP16
    /// accumulation swamps small addends while chunked accumulation stays
    /// close to the exact sum.
    #[test]
    fn chunking_fixes_swamping_on_long_sums() {
        let n = 8192;
        let a = vec![1.0f32; n];
        let b = vec![0.25f32; n]; // exact in every format
        let exact = 0.25 * n as f32; // 2048
        let flat = dot_flat_fp16(FmaMode::Fp16, &a, &b);
        let chunked = dot_chunked(FmaMode::Fp16, &a, &b, 64);
        // Flat: once the sum reaches 1024, +0.25 is below half an ulp
        // (ulp at 1024 with 9 mantissa bits is 2) and is rounded away.
        assert!(flat < exact * 0.6, "flat={flat} should swamp well below {exact}");
        assert_eq!(chunked, exact);
    }

    #[test]
    fn chunked_hfp8_dot_matches_fp32_within_tolerance() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4096;
        let fa = FpFormat::fp8_e4m3();
        let a: Vec<f32> = (0..n).map(|_| fa.quantize(rng.gen_range(-1.0..1.0))).collect();
        let b: Vec<f32> = (0..n).map(|_| fa.quantize(rng.gen_range(-1.0..1.0))).collect();
        let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
        let got = dot_chunked(FmaMode::hfp8_fwd_default(), &a, &b, 64);
        let denom: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x * y).abs()).sum();
        let rel = (f64::from(got) - exact).abs() / denom.max(1.0);
        assert!(rel < 0.01, "relative error {rel} too large (got {got}, exact {exact})");
    }

    #[test]
    fn stats_count_macs_and_gating() {
        let mut acc = ChunkAccumulator::new(FmaMode::Fp16, 8);
        for i in 0..20 {
            acc.mac(if i % 2 == 0 { 1.0 } else { 0.0 }, 1.0);
        }
        assert_eq!(acc.macs(), 20);
        assert_eq!(acc.zero_gated(), 10);
        assert_eq!(acc.finish(), 10.0);
    }

    #[test]
    #[should_panic(expected = "chunk length must be positive")]
    fn zero_chunk_len_panics() {
        let _ = ChunkAccumulator::new(FmaMode::Fp16, 0);
    }

    #[test]
    fn finish_flushes_partial_chunk() {
        let mut acc = ChunkAccumulator::new(FmaMode::Fp16, 64);
        acc.mac(2.0, 3.0); // single MAC, chunk not full
        assert_eq!(acc.finish(), 6.0);
    }
}
