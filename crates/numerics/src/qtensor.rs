//! Quantize-once tensor representation.
//!
//! The emulated kernels used to re-derive operand lattice values on every
//! inner-loop FMA. A [`QTensor`] snaps a tensor onto its format's value
//! lattice exactly once per kernel call and — for 8-bit formats — also
//! materializes the raw operand codes, which index the exhaustive product
//! tables in [`crate::lut`].

use crate::format::FpFormat;
use crate::tensor::Tensor;

/// A tensor whose elements are exact members of a float format's value set,
/// with the raw 8-bit codes alongside when the format fits in a byte.
///
/// # Example
///
/// ```
/// use rapid_numerics::format::FpFormat;
/// use rapid_numerics::qtensor::QTensor;
/// use rapid_numerics::Tensor;
///
/// let t = Tensor::from_vec(vec![2], vec![1.06, -3.2]);
/// let q = QTensor::quantize(&t, FpFormat::fp8_e4m3());
/// assert_eq!(q.values().as_slice(), &[1.0, -3.25]);
/// assert!(q.codes().is_some()); // 8-bit format -> codes available
/// ```
#[derive(Debug, Clone)]
pub struct QTensor {
    format: FpFormat,
    values: Tensor,
    codes: Option<Vec<u8>>,
}

impl QTensor {
    /// Quantizes every element of `t` to `format` (round-to-nearest-even,
    /// saturating per the format), computing raw codes for 8-bit formats.
    pub fn quantize(t: &Tensor, format: FpFormat) -> Self {
        let values = t.map(|v| format.quantize(v));
        let codes = (format.total_bits() == 8 && !format.has_subnormals())
            .then(|| values.as_slice().iter().map(|&v| lattice_code8(format, v)).collect());
        Self { format, values, codes }
    }

    /// The format the elements live on.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        self.values.shape()
    }

    /// The quantized values (each exactly representable in `format()`).
    pub fn values(&self) -> &Tensor {
        &self.values
    }

    /// Consumes the wrapper, returning the quantized value tensor.
    pub fn into_values(self) -> Tensor {
        self.values
    }

    /// Raw operand codes, available when `format()` is an 8-bit format.
    pub fn codes(&self) -> Option<&[u8]> {
        self.codes.as_deref()
    }
}

/// Extracts the 8-bit operand code of a value already on `fmt`'s lattice by
/// bit manipulation (equivalent to `fmt.encode(v) as u8`, without the f64
/// round-trip `encode` performs — this runs once per operand element).
fn lattice_code8(fmt: FpFormat, v: f32) -> u8 {
    let bits = v.to_bits();
    let sign = ((bits >> 31) as u8) << 7;
    let mag = bits & 0x7fff_ffff;
    if mag == 0 {
        return sign;
    }
    // Lattice members of a constructible subnormal-free format are f32
    // normals, so exponent/mantissa extraction is direct.
    let e_unbiased = ((mag >> 23) as i32) - 127;
    let e_code = (e_unbiased + fmt.bias()) as u32;
    let man = (mag >> (23 - fmt.man_bits())) & ((1 << fmt.man_bits()) - 1);
    sign | ((e_code << fmt.man_bits()) | man) as u8
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn formats() -> Vec<FpFormat> {
        vec![
            FpFormat::fp8_e4m3(),
            FpFormat::fp8_e5m2(),
            FpFormat::fp8_e4m3_with_bias(-3).unwrap(),
            FpFormat::fp8_e4m3_with_bias(11).unwrap(),
        ]
    }

    #[test]
    fn lattice_code_matches_encode_exhaustively() {
        for fmt in formats() {
            for v in fmt.positive_values() {
                assert_eq!(u32::from(lattice_code8(fmt, v)), fmt.encode(v), "{fmt}: {v}");
                if v != 0.0 {
                    assert_eq!(u32::from(lattice_code8(fmt, -v)), fmt.encode(-v), "{fmt}: -{v}");
                }
            }
            // Negative zero keeps its sign bit, as encode does.
            assert_eq!(u32::from(lattice_code8(fmt, -0.0)), fmt.encode(-0.0));
        }
    }

    #[test]
    fn quantize_once_matches_elementwise_quantize() {
        let t = Tensor::random_uniform(vec![4, 9], -600.0, 600.0, 21);
        for fmt in formats() {
            let q = QTensor::quantize(&t, fmt);
            assert_eq!(q.shape(), t.shape());
            for (&qv, &x) in q.values().as_slice().iter().zip(t.as_slice()) {
                assert_eq!(qv.to_bits(), fmt.quantize(x).to_bits());
            }
            let codes = q.codes().expect("8-bit format has codes");
            for (&c, &qv) in codes.iter().zip(q.values().as_slice()) {
                assert_eq!(fmt.decode(u32::from(c)).to_bits(), qv.to_bits());
            }
        }
    }

    #[test]
    fn fp16_has_values_but_no_codes() {
        let t = Tensor::random_uniform(vec![8], -2.0, 2.0, 22);
        let q = QTensor::quantize(&t, FpFormat::fp16());
        assert!(q.codes().is_none());
        assert_eq!(q.format(), FpFormat::fp16());
        assert_eq!(q.clone().into_values(), *q.values());
    }
}
