//! Emulated GEMM and convolution kernels for every RaPiD precision.
//!
//! These kernels compute what the MPE array computes — including input
//! quantization, on-the-fly operand conversion, chunked accumulation and
//! zero-gating — and report datapath statistics used by the power model.
//! They are *functional* models; timing lives in `rapid-model` (analytical)
//! and `rapid-sim` (cycle-approximate).
//!
//! # Fast path vs. scalar reference
//!
//! Each emulated kernel exists twice: a fast path (the default entry
//! points) and a scalar reference (`matmul_emulated_scalar`,
//! `matmul_int_scalar`, …) that drives the accumulator structs one FMA at a
//! time. The fast path quantizes operands once ([`crate::qtensor::QTensor`]),
//! replaces the HFP8 pipeline's per-FMA format conversions with exhaustive
//! product tables ([`crate::lut`]), walks B through transposed k-panels,
//! register-blocks columns to overlap the serial FP16 rounding chains, and
//! fans rows out across threads. It is required to be *bit-exact* against
//! the scalar reference — same output bits, same [`GemmStats`] — which
//! `tests/fastpath_bitexact.rs` verifies property-style; the merge of
//! per-band statistics is deterministic regardless of thread count.

use crate::accumulate::ChunkAccumulator;
use crate::bitslice;
use crate::dispatch::{self, SimdMode};
use crate::fma::FmaMode;
use crate::guard::{saturate_f32, GuardPolicy};
use crate::int::{IntAccumulator, IntFormat, QuantParams, Signedness};
use crate::simd;
use crate::lut::{is_zero_code, product_lut};
use crate::qtensor::QTensor;
use crate::tensor::Tensor;
use crate::NumericsError;
use rapid_fault::FaultPlan;

/// Datapath statistics gathered while executing an emulated kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemmStats {
    /// Total multiply-accumulate operations issued.
    pub macs: u64,
    /// MACs bypassed by the zero-gating logic.
    pub zero_gated: u64,
    /// INT16 chunk-register saturations (integer modes only; zero for
    /// hardware-legal chunk lengths).
    pub saturations: u64,
    /// Accumulators clamped by [`GuardPolicy::Saturate`]: corrupted chunk
    /// values (non-finite floats, out-of-bound integer chunks) replaced at
    /// the guard stage instead of propagating. Zero under every other
    /// policy — the count is how much bounded damage training absorbed.
    pub guard_clamps: u64,
}

impl GemmStats {
    /// Fraction of MACs that were zero-gated.
    pub fn gated_fraction(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.zero_gated as f64 / self.macs as f64
        }
    }

    /// Merges statistics from another kernel invocation.
    pub fn merge(&mut self, other: GemmStats) {
        self.macs += other.macs;
        self.zero_gated += other.zero_gated;
        self.saturations += other.saturations;
        self.guard_clamps += other.guard_clamps;
    }

    /// Accumulates these statistics into a metrics registry under
    /// `<prefix>.{macs, zero_gated, saturations, guard_clamps}` — the
    /// unified-telemetry form of this struct.
    pub fn record_into(&self, reg: &mut rapid_telemetry::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.macs"), self.macs);
        reg.add(&format!("{prefix}.zero_gated"), self.zero_gated);
        reg.add(&format!("{prefix}.saturations"), self.saturations);
        reg.add(&format!("{prefix}.guard_clamps"), self.guard_clamps);
    }

    /// Reconstructs the struct as a thin view over registry counters
    /// written by [`GemmStats::record_into`] with the same prefix.
    pub fn from_registry(reg: &rapid_telemetry::MetricsRegistry, prefix: &str) -> Self {
        Self {
            macs: reg.counter(&format!("{prefix}.macs")),
            zero_gated: reg.counter(&format!("{prefix}.zero_gated")),
            saturations: reg.counter(&format!("{prefix}.saturations")),
            guard_clamps: reg.counter(&format!("{prefix}.guard_clamps")),
        }
    }
}

fn check_matmul_shapes(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize), NumericsError> {
    if a.shape().len() != 2 || b.shape().len() != 2 || a.shape()[1] != b.shape()[0] {
        return Err(NumericsError::ShapeMismatch {
            expected: "a [m,k] × b [k,n]".to_string(),
            actual: format!("a {:?} × b {:?}", a.shape(), b.shape()),
        });
    }
    Ok((a.shape()[0], a.shape()[1], b.shape()[1]))
}

/// Number of worker threads the row-parallel kernels fan out across.
///
/// Reads the `RAPID_THREADS` environment variable (any integer ≥ 1);
/// otherwise uses the machine's available parallelism. Results are
/// bit-identical for every thread count — threading only partitions output
/// rows.
pub fn num_threads() -> usize {
    std::env::var("RAPID_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Kernels stay single-threaded below this many MACs; thread spawn latency
/// would dominate smaller problems.
const PAR_MIN_MACS: usize = 1 << 18;

/// Columns per register block in the float inner kernels. The FP16 chunk
/// update is a serial rounding chain; blocking this many independent output
/// columns per A-row pass lets the chains overlap.
const JR: usize = 16;

/// FP16 (DLFloat) rounding of an in-kernel accumulation sum, specialized
/// for the value domain the dot-product kernels produce: `x` is the f32 sum
/// of an FP16-lattice register and an exact operand product, so it is
/// always finite (far below f32 overflow) and is `-0.0` only when the
/// lattice register already was. That removes the NaN/infinity/signed-zero
/// branches of the general [`fp16_round`]; agreement with it over the whole
/// domain is pinned by `fast_rounder_matches_general_quantizer`.
#[inline(always)]
pub(crate) fn fp16_round_sum(x: f32) -> f32 {
    // FP16 (1,6,9), bias 31: e_min = -30, e_max = 32.
    const MIN_NORMAL: u32 = ((-30 + 127) as u32) << 23;
    const HALF_MIN: u32 = ((-31 + 127) as u32) << 23;
    const MAX_BITS: u32 = ((32 + 127) as u32) << 23 | (((1u32 << 9) - 1) << 14);
    let bits = x.to_bits();
    // `b << 1` orders f32 bit patterns by |x| regardless of sign, so the
    // range checks work on the raw pattern without masking the sign out.
    // One compare fences off both rare cases (underflow-flush, saturate);
    // in-range, RNE can neither overflow `MAX_BITS` (it lies on the 9-bit
    // grid, so rounding overflows it iff the unrounded magnitude does) nor
    // carry into the sign bit.
    let mag2 = bits << 1;
    if mag2.wrapping_sub(MIN_NORMAL << 1) > (MAX_BITS << 1) - (MIN_NORMAL << 1) {
        let sign = bits & 0x8000_0000;
        if mag2 < MIN_NORMAL << 1 {
            // No subnormals: nearest of {0, min_normal}, ties to zero.
            let r = if mag2 > HALF_MIN << 1 { MIN_NORMAL } else { 0 };
            return f32::from_bits(sign | r);
        }
        return f32::from_bits(sign | MAX_BITS); // saturate
    }
    // RNE of the 23-bit mantissa down to 9 bits, on the signed pattern.
    const SHIFT: u32 = 23 - 9;
    const LSB: u32 = 1 << SHIFT;
    f32::from_bits((bits + ((LSB >> 1) - 1 + ((bits >> SHIFT) & 1))) & !(LSB - 1))
}

/// [`fp16_round_sum`] with the rare cases handled by selects instead of
/// branches, for the register-blocked accumulation loops: a branch-free
/// body (together with hoisting the LUT loads into a separate pass) is what
/// lets the compiler vectorize the per-column rounding lanes. Agreement
/// with the general quantizer is pinned by the same test.
#[inline(always)]
pub(crate) fn fp16_round_sum_sel(x: f32) -> f32 {
    const MIN_NORMAL: u32 = ((-30 + 127) as u32) << 23;
    const HALF_MIN: u32 = ((-31 + 127) as u32) << 23;
    const MAX_BITS: u32 = ((32 + 127) as u32) << 23 | (((1u32 << 9) - 1) << 14);
    const SHIFT: u32 = 23 - 9;
    const LSB: u32 = 1 << SHIFT;
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let mag2 = bits << 1;
    let rounded = (bits + ((LSB >> 1) - 1 + ((bits >> SHIFT) & 1))) & !(LSB - 1);
    let small = if mag2 > HALF_MIN << 1 { MIN_NORMAL } else { 0 };
    let r = if mag2 < MIN_NORMAL << 1 { small } else { rounded & 0x7fff_ffff };
    let r = if mag2 > MAX_BITS << 1 { MAX_BITS } else { r };
    f32::from_bits(sign | r)
}

/// Bitmask of zero positions, one bit per element (LSB-first within each
/// word). Zero-gating statistics become word-level popcounts instead of a
/// test per MAC in the hot loops.
fn zero_mask_into(words: &mut [u64], is_zero: impl Fn(usize) -> bool, len: usize) {
    words.fill(0);
    for i in 0..len {
        if is_zero(i) {
            words[i / 64] |= 1 << (i % 64);
        }
    }
}

/// Number of MACs gated in a dot product: positions where either operand is
/// zero, counted as the popcount of the union of the zero masks.
fn gated_count(za: &[u64], zb: &[u64]) -> u64 {
    za.iter().zip(zb).map(|(&x, &y)| u64::from((x | y).count_ones())).sum()
}

/// Runs `work` over horizontal bands of the row-major `m × n` output in
/// parallel. `work(row0, band)` fills rows `row0 ..` and returns its
/// statistics; bands merge in row order so the total is deterministic.
fn par_rows(
    od: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    work: &(impl Fn(usize, &mut [f32]) -> GemmStats + Sync),
) -> GemmStats {
    let threads = num_threads().min(m);
    if threads <= 1 || m.saturating_mul(n).saturating_mul(k) < PAR_MIN_MACS {
        return work(0, od);
    }
    let rows_per = m.div_ceil(threads);
    let mut stats = GemmStats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = od
            .chunks_mut(rows_per * n)
            .enumerate()
            .map(|(t, band)| s.spawn(move || work(t * rows_per, band)))
            .collect();
        for h in handles {
            #[allow(clippy::expect_used)] // re-raise a worker panic on the caller
            stats.merge(h.join().expect("gemm worker thread panicked"));
        }
    });
    stats
}

/// Transposes a row-major `[rows, cols]` slice into `[cols, rows]` panels so
/// dot products walk both operands contiguously.
fn transposed_panels<T: Copy + Default>(src: &[T], rows: usize, cols: usize) -> Vec<T> {
    let mut dst = vec![T::default(); src.len()];
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
    dst
}

/// Reference FP32 matrix multiply `[m,k] × [k,n] → [m,n]`.
///
/// # Panics
///
/// Panics if the shapes are not compatible rank-2 matrices.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn matmul_f32(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_f32_checked(a, b).expect("incompatible matmul shapes")
}

/// Reference FP32 matrix multiply, returning an error on bad shapes.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] if the operands are not
/// `[m,k]` and `[k,n]` matrices.
pub fn matmul_f32_checked(a: &Tensor, b: &Tensor) -> Result<Tensor, NumericsError> {
    let (m, k, n) = check_matmul_shapes(a, b)?;
    let mut out = Tensor::zeros(vec![m, n]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let ad = a.as_slice();
    let bt = transposed_panels(b.as_slice(), k, n);
    let work = |row0: usize, band: &mut [f32]| -> GemmStats {
        let rows = band.len() / n;
        for r in 0..rows {
            let arow = &ad[(row0 + r) * k..(row0 + r + 1) * k];
            for j in 0..n {
                let bcol = &bt[j * k..(j + 1) * k];
                let mut acc = 0.0f64;
                for (&x, &y) in arow.iter().zip(bcol) {
                    acc += f64::from(x) * f64::from(y);
                }
                band[r * n + j] = acc as f32;
            }
        }
        GemmStats::default()
    };
    par_rows(out.as_mut_slice(), m, n, k, &work);
    Ok(out)
}

/// Emulated floating-point matrix multiply through the MPE FPU pipeline:
/// inputs are quantized to the mode's operand formats, multiplied through
/// the internal representation, and chunk-accumulated.
///
/// `chunk_len` is the MPE-level accumulation chunk (64 matches the
/// dataflow's LRF reload interval).
///
/// # Panics
///
/// Panics if the shapes are not compatible or `chunk_len == 0`.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn matmul_emulated(mode: FmaMode, a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    matmul_emulated_checked(mode, a, b, chunk_len).expect("incompatible matmul shapes")
}

/// [`matmul_emulated`], returning an error instead of panicking on
/// incompatible shapes.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] if the operands are not
/// `[m,k]` and `[k,n]` matrices.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
pub fn matmul_emulated_checked(
    mode: FmaMode,
    a: &Tensor,
    b: &Tensor,
    chunk_len: usize,
) -> Result<(Tensor, GemmStats), NumericsError> {
    matmul_emulated_with_simd(mode, a, b, chunk_len, SimdMode::from_env())
}

/// [`matmul_emulated_checked`] under an explicit vectorization policy
/// instead of the `RAPID_SIMD` environment knob — the entry point tests
/// and benches use to pin a backend regardless of the environment.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] if the operands are not
/// `[m,k]` and `[k,n]` matrices.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
pub fn matmul_emulated_with_simd(
    mode: FmaMode,
    a: &Tensor,
    b: &Tensor,
    chunk_len: usize,
    simd_mode: SimdMode,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let (m, k, n) = check_matmul_shapes(a, b)?;
    assert!(chunk_len > 0, "chunk length must be positive");
    let (fa, fb) = mode.operand_formats();
    let qa = QTensor::quantize(a, fa);
    let qb = QTensor::quantize(b, fb);
    let mut out = Tensor::zeros(vec![m, n]);
    if m == 0 || n == 0 {
        return Ok((out, GemmStats::default()));
    }
    let use_simd = dispatch::float_use_simd(simd_mode, (m * n * k) as u64);
    let stats = match (qa.codes(), qb.codes()) {
        (Some(ac), Some(bc)) => {
            // 8-bit operands: every FP9 conversion and operand product is
            // precomputed in a 64K-entry table indexed by the code pair.
            let lut = product_lut(fa, fb);
            // Rewrite zero products as -0.0: IEEE `x + (-0.0)` is the
            // identity on every f32 (both zero signs included), so the MAC
            // loop can add unconditionally instead of branching on gated
            // products — bit-exactly.
            let products: Vec<f32> =
                lut.products().iter().map(|&p| if p == 0.0 { -0.0 } else { p }).collect();
            let bt = transposed_panels(bc, k, n);
            // The SIMD path decodes both operands to their FP9 values up
            // front: the table factors bit-exactly into the operand tables
            // (`product(ca, cb) == a_operands[ca] * b_operands[cb]`), so
            // the vector kernel's runtime multiply reproduces every table
            // entry and the per-step gather disappears.
            let fdec = (use_simd && n >= simd::GROUP).then(|| {
                let ia = lut.a_operands();
                let ib = lut.b_operands();
                let av: Vec<f32> = ac.iter().map(|&c| ia[usize::from(c)]).collect();
                let btv: Vec<f32> = bt.iter().map(|&c| ib[usize::from(c)]).collect();
                (av, interleave_groups(&btv, k, n))
            });
            let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                let fdec = fdec.as_ref().map(|(av, bi)| (av.as_slice(), bi.as_slice()));
                lut_band(ac, &bt, fdec, &products, row0, k, n, chunk_len, band)
            };
            par_rows(out.as_mut_slice(), m, n, k, &work)
        }
        _ => {
            // FP16 operands: the product of two quantized values is exact in
            // f32, so the kernel works on lattice values directly.
            let bt = transposed_panels(qb.values().as_slice(), k, n);
            let binter =
                (use_simd && n >= simd::GROUP).then(|| interleave_groups(&bt, k, n));
            let av = qa.values().as_slice();
            let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                fp16_band(av, &bt, binter.as_deref(), row0, k, n, chunk_len, band)
            };
            par_rows(out.as_mut_slice(), m, n, k, &work)
        }
    };
    Ok((out, stats))
}

/// Interleaves `[n, k]` column panels into 16-wide groups for the AVX2
/// kernels: group `g` stores, for each k-position `p`, the 16 consecutive
/// column values `bt[(16g + t) * k + p]` contiguously, so each SIMD step
/// is one (or two) straight vector loads instead of 16 strided ones.
/// Trailing columns (`n % 16`) stay on the scalar block path.
fn interleave_groups<T: Copy + Default>(bt: &[T], k: usize, n: usize) -> Vec<T> {
    let groups = n / simd::GROUP;
    let mut out = vec![T::default(); groups * k * simd::GROUP];
    for g in 0..groups {
        let dst = &mut out[g * k * simd::GROUP..(g + 1) * k * simd::GROUP];
        for t in 0..simd::GROUP {
            let col = &bt[(g * simd::GROUP + t) * k..(g * simd::GROUP + t + 1) * k];
            for (p, &v) in col.iter().enumerate() {
                dst[p * simd::GROUP + t] = v;
            }
        }
    }
    out
}

/// Fills one row band of an 8-bit-operand GEMM from the product LUT.
///
/// Zero-gating statistics come from per-row/per-column zero bitmasks
/// (popcounts of their unions), keeping the MAC loop free of counting.
#[allow(clippy::too_many_arguments)]
fn lut_band(
    ac: &[u8],
    bt: &[u8],
    fdec: Option<(&[f32], &[f32])>,
    products: &[f32],
    row0: usize,
    k: usize,
    n: usize,
    chunk_len: usize,
    band: &mut [f32],
) -> GemmStats {
    #[allow(clippy::expect_used)] // LUT size is a construction invariant
    let products: &[f32; 1 << 16] = products.try_into().expect("product LUT is 64K entries");
    let rows = band.len() / n;
    let words = k.div_ceil(64);
    let mut zb = vec![0u64; n * words];
    for j in 0..n {
        let col = &bt[j * k..(j + 1) * k];
        zero_mask_into(&mut zb[j * words..(j + 1) * words], |p| is_zero_code(col[p]), k);
    }
    let mut za = vec![0u64; words];
    let mut gated = 0u64;
    for r in 0..rows {
        let arow = &ac[(row0 + r) * k..(row0 + r + 1) * k];
        zero_mask_into(&mut za, |p| is_zero_code(arow[p]), k);
        for j in 0..n {
            gated += gated_count(&za, &zb[j * words..(j + 1) * words]);
        }
        let orow = &mut band[r * n..(r + 1) * n];
        let mut j = 0;
        if let Some((av, bi)) = fdec {
            // AVX2 float kernel over the interleaved 16-column groups of
            // pre-decoded FP9 operand values: four groups at a time (8
            // independent accumulation chains to hide the add+round
            // latency), single groups as cleanup. A group starting at
            // column j begins at element j*k. The kernel's multiply
            // reproduces each table entry bit-exactly and its zero-product
            // remap to -0.0 matches the table's gated entries.
            let arv = &av[(row0 + r) * k..(row0 + r + 1) * k];
            let gsz = k * simd::GROUP;
            let mut wres = [0.0f32; simd::WIDE];
            while j + simd::WIDE <= n {
                let bw = &bi[j * k..j * k + simd::WIDE_GROUPS * gsz];
                simd::dot_fp16_groups_wide(arv, bw, chunk_len, &mut wres);
                orow[j..j + simd::WIDE].copy_from_slice(&wres);
                j += simd::WIDE;
            }
            let mut res = [0.0f32; simd::GROUP];
            while j + simd::GROUP <= n {
                simd::dot_fp16_group16(arv, &bi[j * k..j * k + gsz], chunk_len, &mut res);
                orow[j..j + simd::GROUP].copy_from_slice(&res);
                j += simd::GROUP;
            }
        } else {
            while j + JR <= n {
                let bcols = std::array::from_fn(|t| &bt[(j + t) * k..(j + t + 1) * k]);
                let res = dot_lut_block::<JR>(arow, bcols, products, chunk_len);
                orow[j..j + JR].copy_from_slice(&res);
                j += JR;
            }
        }
        while j < n {
            let res = dot_lut_block::<1>(arow, [&bt[j * k..(j + 1) * k]], products, chunk_len);
            orow[j] = res[0];
            j += 1;
        }
    }
    GemmStats { macs: (rows * n * k) as u64, zero_gated: gated, saturations: 0, guard_clamps: 0 }
}

/// Chunk-accumulated dot products of one A-row of codes against `B`
/// columns, all walking the same k-panel positions so the per-column FP16
/// rounding chains execute independently.
///
/// The chunk update uses a plain f32 add where the scalar reference
/// computes `(f64(acc) + f64(prod)) as f32`: double rounding through f64 is
/// innocuous for the sum of two f32 values (53 ≥ 2·24 + 2), so the results
/// are bit-identical.
#[inline]
fn dot_lut_block<const B: usize>(
    arow: &[u8],
    bcols: [&[u8]; B],
    products: &[f32; 1 << 16],
    chunk_len: usize,
) -> [f32; B] {
    let k = arow.len();
    let bcols: [&[u8]; B] = std::array::from_fn(|t| &bcols[t][..k]);
    let mut outer = [0.0f32; B];
    let mut chunk = [0.0f32; B];
    let mut in_chunk = 0usize;
    let mut prods = [0.0f32; B];
    for (p, &ca) in arow.iter().enumerate() {
        let base = usize::from(ca) << 8;
        #[allow(clippy::expect_used)] // row stride is a construction invariant
        let prow: &[f32; 256] =
            products[base..base + 256].try_into().expect("256-entry LUT row");
        // Zero products (gated, or FP9 underflow under extreme biases) are
        // stored as -0.0 — the IEEE additive identity — so the add and the
        // re-round leave an FP16-lattice chunk register unchanged without a
        // branch. Gathering into a register array first leaves the
        // accumulation pass load- and branch-free, so it vectorizes.
        for t in 0..B {
            prods[t] = prow[usize::from(bcols[t][p])];
        }
        for t in 0..B {
            chunk[t] = fp16_round_sum_sel(chunk[t] + prods[t]);
        }
        in_chunk += 1;
        if in_chunk == chunk_len {
            for t in 0..B {
                outer[t] += chunk[t];
                chunk[t] = 0.0;
            }
            in_chunk = 0;
        }
    }
    std::array::from_fn(|t| fp16_round_sum(outer[t] + chunk[t]))
}

/// Fills one row band of an FP16-operand GEMM on lattice values, with the
/// same popcount-based gating statistics as [`lut_band`].
#[allow(clippy::too_many_arguments)]
fn fp16_band(
    av: &[f32],
    bt: &[f32],
    binter: Option<&[f32]>,
    row0: usize,
    k: usize,
    n: usize,
    chunk_len: usize,
    band: &mut [f32],
) -> GemmStats {
    let rows = band.len() / n;
    let words = k.div_ceil(64);
    let mut zb = vec![0u64; n * words];
    for j in 0..n {
        let col = &bt[j * k..(j + 1) * k];
        zero_mask_into(&mut zb[j * words..(j + 1) * words], |p| col[p] == 0.0, k);
    }
    let mut za = vec![0u64; words];
    let mut gated = 0u64;
    for r in 0..rows {
        let arow = &av[(row0 + r) * k..(row0 + r + 1) * k];
        zero_mask_into(&mut za, |p| arow[p] == 0.0, k);
        for j in 0..n {
            gated += gated_count(&za, &zb[j * words..(j + 1) * words]);
        }
        let orow = &mut band[r * n..(r + 1) * n];
        let mut j = 0;
        if let Some(bi) = binter {
            // AVX2 lattice-value kernel over the interleaved groups, wide
            // first then single-group cleanup (see `lut_band`).
            let gsz = k * simd::GROUP;
            let mut wres = [0.0f32; simd::WIDE];
            while j + simd::WIDE <= n {
                let bw = &bi[j * k..j * k + simd::WIDE_GROUPS * gsz];
                simd::dot_fp16_groups_wide(arow, bw, chunk_len, &mut wres);
                orow[j..j + simd::WIDE].copy_from_slice(&wres);
                j += simd::WIDE;
            }
            let mut res = [0.0f32; simd::GROUP];
            while j + simd::GROUP <= n {
                simd::dot_fp16_group16(arow, &bi[j * k..j * k + gsz], chunk_len, &mut res);
                orow[j..j + simd::GROUP].copy_from_slice(&res);
                j += simd::GROUP;
            }
        } else {
            while j + JR <= n {
                let bcols = std::array::from_fn(|t| &bt[(j + t) * k..(j + t + 1) * k]);
                let res = dot_fp16_block::<JR>(arow, bcols, chunk_len);
                orow[j..j + JR].copy_from_slice(&res);
                j += JR;
            }
        }
        while j < n {
            let res = dot_fp16_block::<1>(arow, [&bt[j * k..(j + 1) * k]], chunk_len);
            orow[j] = res[0];
            j += 1;
        }
    }
    GemmStats { macs: (rows * n * k) as u64, zero_gated: gated, saturations: 0, guard_clamps: 0 }
}

/// FP16-mode analogue of [`dot_lut_block`]: products of two FP16 lattice
/// values are exact in f32 and never underflow, so a product is zero
/// exactly when a gated FMA would have skipped it.
#[inline]
fn dot_fp16_block<const B: usize>(
    arow: &[f32],
    bcols: [&[f32]; B],
    chunk_len: usize,
) -> [f32; B] {
    let k = arow.len();
    let bcols: [&[f32]; B] = std::array::from_fn(|t| &bcols[t][..k]);
    let mut outer = [0.0f32; B];
    let mut chunk = [0.0f32; B];
    let mut in_chunk = 0usize;
    let mut bvals = [0.0f32; B];
    for (p, &x) in arow.iter().enumerate() {
        // Strided column loads first; the accumulation pass is then pure
        // vertical arithmetic and vectorizes. A zero product (operands are
        // lattice values, whose products never underflow) is remapped to
        // -0.0 — the IEEE additive identity — which preserves the chunk
        // register through the re-round exactly like the scalar
        // reference's zero-gate skip.
        for t in 0..B {
            bvals[t] = bcols[t][p];
        }
        for t in 0..B {
            let prod = x * bvals[t];
            let gated = f32::from_bits(prod.to_bits() | 0x8000_0000);
            let prod = if prod == 0.0 { gated } else { prod };
            chunk[t] = fp16_round_sum_sel(chunk[t] + prod);
        }
        in_chunk += 1;
        if in_chunk == chunk_len {
            for t in 0..B {
                outer[t] += chunk[t];
                chunk[t] = 0.0;
            }
            in_chunk = 0;
        }
    }
    std::array::from_fn(|t| fp16_round_sum(outer[t] + chunk[t]))
}

/// Scalar reference for [`matmul_emulated`]: drives a [`ChunkAccumulator`]
/// one FMA at a time, exactly as the MPE datapath model does. The fast path
/// must reproduce its output and statistics bit-for-bit.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn matmul_emulated_scalar(
    mode: FmaMode,
    a: &Tensor,
    b: &Tensor,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    let (m, k, n) = check_matmul_shapes(a, b).expect("incompatible matmul shapes");
    let (fa, fb) = mode.operand_formats();
    let qa: Vec<f32> = a.as_slice().iter().map(|&x| fa.quantize(x)).collect();
    let qb: Vec<f32> = b.as_slice().iter().map(|&x| fb.quantize(x)).collect();
    let mut out = Tensor::zeros(vec![m, n]);
    let od = out.as_mut_slice();
    let mut stats = GemmStats::default();
    for i in 0..m {
        for j in 0..n {
            let mut acc = ChunkAccumulator::new(mode, chunk_len);
            for p in 0..k {
                acc.mac(qa[i * k + p], qb[p * n + j]);
            }
            stats.macs += acc.macs();
            stats.zero_gated += acc.zero_gated();
            od[i * n + j] = acc.finish();
        }
    }
    (out, stats)
}

/// [`matmul_emulated`] with fault injection and a numeric guard.
///
/// With `faults == None` (or a plan whose MAC injectors are disabled) this
/// delegates to the bit-exact fast path — the hook costs nothing when off.
/// With an active plan it drives the scalar datapath model one FMA at a
/// time, corrupting operands and the chunk register per the plan, and
/// applies `policy` whenever the chunk register goes non-finite.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on incompatible operands, and
/// [`NumericsError::NonFinite`] under [`GuardPolicy::Error`] when a
/// corrupted accumulator is detected.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
pub fn matmul_emulated_guarded(
    mode: FmaMode,
    a: &Tensor,
    b: &Tensor,
    chunk_len: usize,
    policy: GuardPolicy,
    faults: Option<&mut FaultPlan>,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let plan = faults.filter(|p| p.mac_enabled());
    let Some(plan) = plan else {
        let (out, stats) = matmul_emulated_checked(mode, a, b, chunk_len)?;
        // The clean kernels saturate at FP16 write-back and cannot emit
        // non-finite values; the scan is defense in depth for checking
        // policies and costs O(m·n) only when asked for.
        if policy.checks() {
            let n = out.shape()[1];
            for (idx, &v) in out.as_slice().iter().enumerate() {
                if !v.is_finite() {
                    return Err(NumericsError::NonFinite {
                        row: idx / n,
                        col: idx % n,
                        bits: v.to_bits(),
                    });
                }
            }
        }
        return Ok((out, stats));
    };
    let (m, k, n) = check_matmul_shapes(a, b)?;
    assert!(chunk_len > 0, "chunk length must be positive");
    let (fa, fb) = mode.operand_formats();
    let qa: Vec<f32> = a.as_slice().iter().map(|&x| fa.quantize(x)).collect();
    let qb: Vec<f32> = b.as_slice().iter().map(|&x| fb.quantize(x)).collect();
    let mut out = Tensor::zeros(vec![m, n]);
    let od = out.as_mut_slice();
    let mut stats = GemmStats::default();
    for i in 0..m {
        for j in 0..n {
            let mut acc = ChunkAccumulator::new(mode, chunk_len);
            for p in 0..k {
                let x = plan.mac_operand(qa[i * k + p]);
                let y = plan.mac_operand(qb[p * n + j]);
                acc.mac(x, y);
                acc.corrupt_chunk(|v| plan.mac_accumulator(v));
                if policy.checks() && !acc.chunk_value().is_finite() {
                    match policy {
                        GuardPolicy::Saturate => {
                            stats.guard_clamps += 1;
                            acc.corrupt_chunk(saturate_f32);
                        }
                        _ => {
                            return Err(NumericsError::NonFinite {
                                row: i,
                                col: j,
                                bits: acc.chunk_value().to_bits(),
                            })
                        }
                    }
                }
            }
            stats.macs += acc.macs();
            stats.zero_gated += acc.zero_gated();
            let mut v = acc.finish();
            if policy.checks() && !v.is_finite() {
                match policy {
                    GuardPolicy::Saturate => {
                        stats.guard_clamps += 1;
                        v = saturate_f32(v);
                    }
                    _ => {
                        return Err(NumericsError::NonFinite {
                            row: i,
                            col: j,
                            bits: v.to_bits(),
                        })
                    }
                }
            }
            od[i * n + j] = v;
        }
    }
    Ok((out, stats))
}

/// FP16 (DLFloat) matrix multiply with chunked accumulation.
pub fn matmul_fp16(a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    matmul_emulated(FmaMode::Fp16, a, b, chunk_len)
}

/// HFP8 forward-pass matrix multiply: both operands FP8 (1,4,3), default
/// bias.
pub fn matmul_hfp8_fwd(a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    matmul_emulated(FmaMode::hfp8_fwd_default(), a, b, chunk_len)
}

/// HFP8 backward-pass matrix multiply: operand `a` FP8 (1,4,3), operand `b`
/// FP8 (1,5,2).
pub fn matmul_hfp8_bwd(a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    matmul_emulated(FmaMode::hfp8_bwd_default(), a, b, chunk_len)
}

/// Quantized integer matrix multiply through the FXU pipeline: inputs are
/// quantized with the given per-tensor parameters, multiplied as integer
/// codes with INT16-chunk/INT32 accumulation, and the result dequantized by
/// the product of scales.
///
/// # Panics
///
/// Panics if the shapes are not compatible or `chunk_len == 0`.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn matmul_int(
    a: &Tensor,
    b: &Tensor,
    qa: QuantParams,
    qb: QuantParams,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    matmul_int_checked(a, b, qa, qb, chunk_len).expect("incompatible matmul shapes")
}

/// [`matmul_int`], returning an error instead of panicking on incompatible
/// shapes.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] if the operands are not
/// `[m,k]` and `[k,n]` matrices.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
pub fn matmul_int_checked(
    a: &Tensor,
    b: &Tensor,
    qa: QuantParams,
    qb: QuantParams,
    chunk_len: usize,
) -> Result<(Tensor, GemmStats), NumericsError> {
    matmul_int_with_simd(a, b, qa, qb, chunk_len, SimdMode::from_env())
}

/// Whether an INT16 chunk register could saturate for these quantization
/// parameters at reduction depth `k`: the worst-case magnitude of a chunk
/// window exceeds `i16::MAX`. When it cannot, the windowed tiled sum
/// equals the plain exact dot product (order-independent integer
/// addition), which is what licenses the whole-k madd and bit-sliced
/// kernels to ignore chunk boundaries while staying bit-exact.
pub(crate) fn int_saturation_possible(
    qa: QuantParams,
    qb: QuantParams,
    k: usize,
    chunk_len: usize,
) -> bool {
    let worst = |p: QuantParams| {
        let (lo, hi) = p.code_range();
        i64::from(lo.unsigned_abs().max(hi.unsigned_abs()))
    };
    let window = chunk_len.min(k.max(1)) as i64;
    window * worst(qa) * worst(qb) > i64::from(i16::MAX)
}

/// [`matmul_int_checked`] under an explicit vectorization policy instead
/// of the `RAPID_SIMD` environment knob.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] if the operands are not
/// `[m,k]` and `[k,n]` matrices.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
pub fn matmul_int_with_simd(
    a: &Tensor,
    b: &Tensor,
    qa: QuantParams,
    qb: QuantParams,
    chunk_len: usize,
    simd_mode: SimdMode,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let (m, k, n) = check_matmul_shapes(a, b)?;
    assert!(chunk_len > 0, "chunk length must be positive");
    let mut ca = Vec::new();
    let mut cb = Vec::new();
    qa.quantize_slice_into(a.as_slice(), &mut ca);
    qb.quantize_slice_into(b.as_slice(), &mut cb);
    let out_scale = qa.scale() * qb.scale();
    let mut out = Tensor::zeros(vec![m, n]);
    if m == 0 || n == 0 {
        return Ok((out, GemmStats::default()));
    }
    // The INT16 chunk register cannot saturate when the worst-case chunk
    // magnitude fits; then exact integer sums are bit-exact and the fast
    // paths apply. Otherwise (illegally long chunks) fall back to the
    // saturating scalar accumulator.
    if int_saturation_possible(qa, qb, k, chunk_len) {
        let stats =
            matmul_int_codes_scalar(&ca, &cb, m, k, n, chunk_len, out_scale, out.as_mut_slice());
        return Ok((out, stats));
    }
    let macs = (m * n * k) as u64;
    let both_int2 = qa.format() == IntFormat::Int2 && qb.format() == IntFormat::Int2;
    let stats = match dispatch::int_kernel(simd_mode, macs, k, both_int2) {
        dispatch::IntKernel::Tiled => {
            let cbt = transposed_panels(&cb, k, n);
            let pa = PackedPanel::pack(&ca, m, k, qa);
            let pb = PackedPanel::pack(&cbt, n, k, qb);
            let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                int_band(&pa, &pb, row0, k, n, chunk_len, out_scale, band)
            };
            par_rows(out.as_mut_slice(), m, n, k, &work)
        }
        dispatch::IntKernel::Madd => {
            let cbt = transposed_panels(&cb, k, n);
            let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                madd_band(&ca, &cbt, row0, k, n, out_scale, band)
            };
            par_rows(out.as_mut_slice(), m, n, k, &work)
        }
        dispatch::IntKernel::BitSliced => {
            let cbt = transposed_panels(&cb, k, n);
            let pa = bitslice::BitPlanes::pack(&ca, m, k, qa.signedness());
            let pb = bitslice::BitPlanes::pack(&cbt, n, k, qb.signedness());
            let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                bitslice_band(&pa, &pb, row0, k, n, out_scale, band)
            };
            par_rows(out.as_mut_slice(), m, n, k, &work)
        }
    };
    Ok((out, stats))
}

/// Scalar reference for [`matmul_int`]: drives an [`IntAccumulator`] per
/// output element, including its saturating INT16 chunk register.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn matmul_int_scalar(
    a: &Tensor,
    b: &Tensor,
    qa: QuantParams,
    qb: QuantParams,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    let (m, k, n) = check_matmul_shapes(a, b).expect("incompatible matmul shapes");
    let ca: Vec<i8> = a.as_slice().iter().map(|&x| qa.quantize(x)).collect();
    let cb: Vec<i8> = b.as_slice().iter().map(|&x| qb.quantize(x)).collect();
    let mut out = Tensor::zeros(vec![m, n]);
    let out_scale = qa.scale() * qb.scale();
    let stats = matmul_int_codes_scalar(&ca, &cb, m, k, n, chunk_len, out_scale, out.as_mut_slice());
    (out, stats)
}

/// [`matmul_int`] with fault injection and a numeric guard.
///
/// With `faults == None` (or a plan whose MAC injectors are disabled) this
/// delegates to the bit-exact fast path, except that
/// [`GuardPolicy::Error`] forces the scalar datapath model whenever INT16
/// saturation is possible for the requested chunk length, so the first
/// overflow can be located. With an active plan it corrupts integer codes
/// and the chunk register per the plan and applies `policy` when the chunk
/// register saturates or is pushed past the legal worst-case bound.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on incompatible operands, and
/// [`NumericsError::Overflow`] under [`GuardPolicy::Error`] when the chunk
/// register overflows.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
pub fn matmul_int_guarded(
    a: &Tensor,
    b: &Tensor,
    qa: QuantParams,
    qb: QuantParams,
    chunk_len: usize,
    policy: GuardPolicy,
    faults: Option<&mut FaultPlan>,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let (m, k, n) = check_matmul_shapes(a, b)?;
    assert!(chunk_len > 0, "chunk length must be positive");
    let worst = |p: QuantParams| {
        let (lo, hi) = p.code_range();
        i64::from(lo.unsigned_abs().max(hi.unsigned_abs()))
    };
    let window = chunk_len.min(k.max(1)) as i64;
    let legal_bound = window * worst(qa) * worst(qb);
    let mut plan = faults.filter(|p| p.mac_enabled());
    let saturation_possible = legal_bound > i64::from(i16::MAX);
    if plan.is_none() && !(policy == GuardPolicy::Error && saturation_possible) {
        return matmul_int_checked(a, b, qa, qb, chunk_len);
    }
    let ca: Vec<i8> = a.as_slice().iter().map(|&x| qa.quantize(x)).collect();
    let cb: Vec<i8> = b.as_slice().iter().map(|&x| qb.quantize(x)).collect();
    let out_scale = qa.scale() * qb.scale();
    let bound = legal_bound.min(i64::from(i16::MAX)) as i16;
    let (bits_a, bits_b) = (qa.format().bits(), qb.format().bits());
    let mut out = Tensor::zeros(vec![m, n]);
    let od = out.as_mut_slice();
    let mut stats = GemmStats::default();
    for i in 0..m {
        for j in 0..n {
            let mut acc = IntAccumulator::new(chunk_len);
            let mut sats_seen = 0u64;
            for p in 0..k {
                let (mut x, mut y) = (ca[i * k + p], cb[p * n + j]);
                if let Some(plan) = plan.as_deref_mut() {
                    x = plan.int_code(x, bits_a);
                    y = plan.int_code(y, bits_b);
                }
                acc.mac(x, y);
                if let Some(plan) = plan.as_deref_mut() {
                    acc.corrupt_chunk(|v| plan.int_chunk(v));
                }
                if policy.checks() {
                    let breached = acc.saturations() > sats_seen
                        || acc.chunk_value().unsigned_abs() > bound.unsigned_abs();
                    sats_seen = acc.saturations();
                    if breached {
                        match policy {
                            GuardPolicy::Saturate => {
                                stats.guard_clamps += 1;
                                acc.corrupt_chunk(|v| v.clamp(-bound, bound));
                            }
                            _ => {
                                return Err(NumericsError::Overflow {
                                    row: i,
                                    col: j,
                                    saturations: acc.saturations(),
                                })
                            }
                        }
                    }
                }
            }
            stats.macs += acc.macs();
            stats.zero_gated += acc.zero_gated();
            stats.saturations += acc.saturations();
            od[i * n + j] = acc.finish() as f32 * out_scale;
        }
    }
    Ok((out, stats))
}

#[allow(clippy::too_many_arguments)]
fn matmul_int_codes_scalar(
    ca: &[i8],
    cb: &[i8],
    m: usize,
    k: usize,
    n: usize,
    chunk_len: usize,
    out_scale: f32,
    od: &mut [f32],
) -> GemmStats {
    let mut stats = GemmStats::default();
    for i in 0..m {
        for j in 0..n {
            let mut acc = IntAccumulator::new(chunk_len);
            for p in 0..k {
                acc.mac(ca[i * k + p], cb[p * n + j]);
            }
            stats.macs += acc.macs();
            stats.zero_gated += acc.zero_gated();
            stats.saturations += acc.saturations();
            od[i * n + j] = acc.finish() as f32 * out_scale;
        }
    }
    stats
}

/// Integer codes packed at the format's sub-byte density, row-major with
/// byte-aligned rows (A rows and Bᵀ columns both become contiguous packed
/// k-panels).
struct PackedPanel {
    bytes: Vec<u8>,
    /// Bytes per packed row.
    stride: usize,
    bits: u32,
    /// Codes per byte.
    per: usize,
    signed: bool,
}

impl PackedPanel {
    fn pack(codes: &[i8], rows: usize, cols: usize, params: QuantParams) -> Self {
        let bits = params.format().bits();
        let per = params.format().per_byte();
        let stride = cols.div_ceil(per);
        let mask = (1u16 << bits) - 1;
        let mut bytes = vec![0u8; rows * stride];
        for r in 0..rows {
            for c in 0..cols {
                let code = codes[r * cols + c];
                bytes[r * stride + c / per] |=
                    (((code as u16) & mask) << ((c % per) as u32 * bits)) as u8;
            }
        }
        let signed = params.signedness() == Signedness::Signed;
        Self { bytes, stride, bits, per, signed }
    }

    fn row(&self, r: usize) -> &[u8] {
        &self.bytes[r * self.stride..(r + 1) * self.stride]
    }

    /// Decodes packed row `r` into `out` (length = the panel's column
    /// count), sign- or zero-extending according to the panel's signedness.
    /// Decoding is O(row) and amortized across all the dot products that
    /// reuse the row, so the MAC loops run on plain `i8` codes.
    fn decode_row_into(&self, r: usize, out: &mut [i8]) {
        let row = self.row(r);
        let mask = ((1u16 << self.bits) - 1) as u8;
        let ext = 8 - self.bits;
        let per_shift = self.per.trailing_zeros();
        let per_mask = self.per - 1;
        for (c, o) in out.iter_mut().enumerate() {
            let raw = (row[c >> per_shift] >> ((c & per_mask) as u32 * self.bits)) & mask;
            *o = if self.signed { ((raw << ext) as i8) >> ext } else { raw as i8 };
        }
    }
}

/// Fills one row band of an integer GEMM from packed panels. Only called
/// when the chunk guard in [`matmul_int_checked`] rules out INT16
/// saturation, so i32 window sums match the hardware accumulator exactly.
///
/// The packed B panel is decoded once per band and each packed A row once
/// per row; the dot products then run branch-free over `i8` codes (a gated
/// MAC contributes a zero product, so only the statistics need the gate,
/// and those come from zero-mask popcounts).
#[allow(clippy::too_many_arguments)]
fn int_band(
    pa: &PackedPanel,
    pb: &PackedPanel,
    row0: usize,
    k: usize,
    n: usize,
    chunk_len: usize,
    out_scale: f32,
    band: &mut [f32],
) -> GemmStats {
    let rows = band.len() / n;
    let words = k.div_ceil(64);
    let mut bdec = vec![0i8; n * k];
    let mut zb = vec![0u64; n * words];
    for j in 0..n {
        let col = &mut bdec[j * k..(j + 1) * k];
        pb.decode_row_into(j, col);
        zero_mask_into(&mut zb[j * words..(j + 1) * words], |p| col[p] == 0, k);
    }
    let mut adec = vec![0i8; k];
    let mut za = vec![0u64; words];
    let mut gated = 0u64;
    for r in 0..rows {
        pa.decode_row_into(row0 + r, &mut adec);
        zero_mask_into(&mut za, |p| adec[p] == 0, k);
        let orow = &mut band[r * n..(r + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            gated += gated_count(&za, &zb[j * words..(j + 1) * words]);
            let dot = dot_int_windows(&adec, &bdec[j * k..(j + 1) * k], chunk_len);
            *o = dot as f32 * out_scale;
        }
    }
    GemmStats { macs: (rows * n * k) as u64, zero_gated: gated, saturations: 0, guard_clamps: 0 }
}

/// Fills one row band of an integer GEMM with the AVX2 widening-madd
/// kernel. Only called when the chunk guard rules out INT16 saturation,
/// where the windowed sum equals the plain dot product, so the whole-k
/// vector sum is bit-exact. Operands are unpacked `i8` codes — the madd
/// kernel reads them directly, so no panel packing/decoding is needed.
fn madd_band(
    ca: &[i8],
    cbt: &[i8],
    row0: usize,
    k: usize,
    n: usize,
    out_scale: f32,
    band: &mut [f32],
) -> GemmStats {
    let rows = band.len() / n;
    let words = k.div_ceil(64);
    let mut zb = vec![0u64; n * words];
    for j in 0..n {
        let col = &cbt[j * k..(j + 1) * k];
        zero_mask_into(&mut zb[j * words..(j + 1) * words], |p| col[p] == 0, k);
    }
    let mut za = vec![0u64; words];
    let mut gated = 0u64;
    for r in 0..rows {
        let arow = &ca[(row0 + r) * k..(row0 + r + 1) * k];
        zero_mask_into(&mut za, |p| arow[p] == 0, k);
        for j in 0..n {
            gated += gated_count(&za, &zb[j * words..(j + 1) * words]);
        }
        simd::dot_int_madd_rows(arow, &cbt[..n * k], out_scale, &mut band[r * n..(r + 1) * n]);
    }
    GemmStats { macs: (rows * n * k) as u64, zero_gated: gated, saturations: 0, guard_clamps: 0 }
}

/// Fills one row band of an INT2×INT2 GEMM from packed bit-planes: each
/// dot product is four AND+popcount passes over `u64` words
/// ([`crate::bitslice`]), and the zero-gating masks fall out of the planes
/// for free. Same saturation-free-guard contract as [`madd_band`].
fn bitslice_band(
    pa: &bitslice::BitPlanes,
    pb: &bitslice::BitPlanes,
    row0: usize,
    k: usize,
    n: usize,
    out_scale: f32,
    band: &mut [f32],
) -> GemmStats {
    let rows = band.len() / n;
    let words = k.div_ceil(64);
    let mut zb = vec![0u64; n * words];
    for j in 0..n {
        pb.zero_mask_into(j, k, &mut zb[j * words..(j + 1) * words]);
    }
    let mut za = vec![0u64; words];
    let mut gated = 0u64;
    for r in 0..rows {
        pa.zero_mask_into(row0 + r, k, &mut za);
        for j in 0..n {
            gated += gated_count(&za, &zb[j * words..(j + 1) * words]);
        }
        bitslice::dot_planes_row(pa, row0 + r, pb, out_scale, &mut band[r * n..(r + 1) * n]);
    }
    GemmStats { macs: (rows * n * k) as u64, zero_gated: gated, saturations: 0, guard_clamps: 0 }
}

/// Chunk-windowed integer dot product over decoded codes: i32 sums per
/// chunk window (saturation-free by the caller's guard), i64 outer
/// accumulation. The window sums are plain multiply-adds the compiler can
/// vectorize.
#[inline]
fn dot_int_windows(a: &[i8], b: &[i8], chunk_len: usize) -> i64 {
    let mut outer = 0i64;
    let mut p0 = 0usize;
    let k = a.len();
    while p0 < k {
        let len = chunk_len.min(k - p0);
        let sum: i32 = a[p0..p0 + len]
            .iter()
            .zip(&b[p0..p0 + len])
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        outer += i64::from(sum);
        p0 += len;
    }
    outer
}

/// Convolution geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub pad: usize,
}

impl ConvSpec {
    /// Unit-stride, zero-pad convolution.
    pub fn unit() -> Self {
        Self { stride: 1, pad: 0 }
    }

    /// Output spatial size for an input of size `h` and kernel `k`.
    pub fn out_dim(&self, h: usize, k: usize) -> usize {
        (h + 2 * self.pad).saturating_sub(k) / self.stride + 1
    }
}

/// Lowers an `[n, ci, h, w]` input into the `[n*ho*wo, ci*kh*kw]` im2col
/// matrix for a `[co, ci, kh, kw]` kernel — the transformation RaPiD's
/// dataflow performs implicitly when streaming H×W innermost (Fig 5).
///
/// # Panics
///
/// Panics if `input` is not rank 4.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Tensor {
    let mut out = Tensor::default();
    im2col_into(input, kh, kw, spec, &mut out);
    out
}

/// [`im2col`] into a caller-provided tensor, reusing its allocation. `out`
/// is resized and fully overwritten; layer loops can pass the same scratch
/// tensor every iteration to avoid the per-call allocation.
///
/// # Panics
///
/// Panics if `input` is not rank 4.
pub fn im2col_into(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec, out: &mut Tensor) {
    assert_eq!(input.shape().len(), 4, "im2col expects [n, c, h, w]");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let ho = spec.out_dim(h, kh);
    let wo = spec.out_dim(w, kw);
    let cols = c * kh * kw;
    out.reset(vec![n * ho * wo, cols]);
    let id = input.as_slice();
    let od = out.as_mut_slice();
    for ni in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                let rb = ((ni * ho + oy) * wo + ox) * cols;
                for ci in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue; // padding rows stay zero from reset
                        }
                        let irow = (((ni * c) + ci) * h + iy as usize) * w;
                        let ob = rb + (ci * kh + ky) * kw;
                        for kx in 0..kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix >= 0 && (ix as usize) < w {
                                od[ob + kx] = id[irow + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Cache key for one im2col buffer: the full input geometry. Two layers
/// with different shapes hash to different slots, so alternating layers in
/// a network no longer thrash a single buffer's reallocation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConvKey {
    in_shape: [usize; 4],
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
}

/// Reusable scratch buffers for the convolution kernels: holds im2col
/// matrices keyed by input geometry so repeated forward passes (training
/// loops, sweeps, networks with alternating layer shapes) stop paying a
/// fresh allocation per call.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    /// MRU-ordered `(key, buffer)` slots, at most [`Self::MAX_SLOTS`].
    slots: Vec<(ConvKey, Tensor)>,
}

impl ConvScratch {
    /// Distinct geometries cached before the least-recently-used buffer is
    /// evicted; generously above any real network's distinct layer shapes.
    const MAX_SLOTS: usize = 16;

    /// Number of distinct conv geometries currently cached.
    pub fn cached_shapes(&self) -> usize {
        self.slots.len()
    }

    /// The im2col buffer for this geometry, moved to the front (MRU). A
    /// new, empty slot is created on first sight; beyond
    /// [`Self::MAX_SLOTS`] the least-recently-used buffer is evicted.
    fn cols_slot(&mut self, input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> &mut Tensor {
        let s = input.shape();
        let key = ConvKey {
            in_shape: [s[0], s[1], s[2], s[3]],
            kh,
            kw,
            stride: spec.stride,
            pad: spec.pad,
        };
        if let Some(pos) = self.slots.iter().position(|(k, _)| *k == key) {
            let slot = self.slots.remove(pos);
            self.slots.insert(0, slot);
        } else {
            self.slots.insert(0, (key, Tensor::default()));
            self.slots.truncate(Self::MAX_SLOTS);
        }
        &mut self.slots[0].1
    }
}

/// Validated conv operand geometry.
#[derive(Debug, Clone, Copy)]
struct ConvGeom {
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    co: usize,
    kh: usize,
    kw: usize,
}

fn check_conv_shapes(input: &Tensor, weight: &Tensor) -> Result<ConvGeom, NumericsError> {
    if input.shape().len() != 4
        || weight.shape().len() != 4
        || input.shape()[1] != weight.shape()[1]
    {
        return Err(NumericsError::ShapeMismatch {
            expected: "input [n,ci,h,w] × weight [co,ci,kh,kw]".to_string(),
            actual: format!("input {:?} × weight {:?}", input.shape(), weight.shape()),
        });
    }
    Ok(ConvGeom {
        n: input.shape()[0],
        ci: input.shape()[1],
        h: input.shape()[2],
        w: input.shape()[3],
        co: weight.shape()[0],
        kh: weight.shape()[2],
        kw: weight.shape()[3],
    })
}

/// Reference FP32 convolution: input `[n, ci, h, w]`, weight
/// `[co, ci, kh, kw]` → output `[n, co, ho, wo]`.
///
/// # Panics
///
/// Panics if the operand ranks or channel counts are inconsistent.
pub fn conv2d_f32(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    conv2d_f32_with_scratch(input, weight, spec, &mut ConvScratch::default())
}

/// [`conv2d_f32`] reusing caller-provided scratch buffers.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn conv2d_f32_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut ConvScratch,
) -> Tensor {
    conv2d_via_gemm(input, weight, spec, scratch, |cols, wmat| {
        Ok((matmul_f32(cols, wmat), GemmStats::default()))
    })
    .expect("inconsistent conv operand shapes")
    .0
}

/// Emulated floating-point convolution through the FPU pipeline.
pub fn conv2d_emulated(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    mode: FmaMode,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    conv2d_emulated_with_scratch(input, weight, spec, mode, chunk_len, &mut ConvScratch::default())
}

/// [`conv2d_emulated`] reusing caller-provided scratch buffers.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn conv2d_emulated_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    mode: FmaMode,
    chunk_len: usize,
    scratch: &mut ConvScratch,
) -> (Tensor, GemmStats) {
    conv2d_emulated_with_simd(input, weight, spec, mode, chunk_len, scratch, SimdMode::from_env())
        .expect("inconsistent conv operand shapes")
}

/// [`conv2d_emulated_with_scratch`] under an explicit vectorization
/// policy. In the SIMD regime the convolution runs panel-packed: the GEMM
/// is restated per image as `weights [co, ci·kh·kw] × im2col-rowsᵀ`, whose
/// Bᵀ k-panels *are* the im2col rows, and output panels land directly in
/// the `[n, co, ho, wo]` layout — no weight transpose, no column-panel
/// copy, no output rearrange pass. Operand order commutes bit-exactly
/// (the FP9 product table and lattice products are exact f32 values, and
/// the chunked accumulation walks the same k order), which the
/// `fastpath_bitexact` proptests pin against the scalar reference.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on inconsistent operands.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_emulated_with_simd(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    mode: FmaMode,
    chunk_len: usize,
    scratch: &mut ConvScratch,
    simd_mode: SimdMode,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let g = check_conv_shapes(input, weight)?;
    let hw = spec.out_dim(g.h, g.kh) * spec.out_dim(g.w, g.kw);
    let macs = (g.n * hw * g.co * g.ci * g.kh * g.kw) as u64;
    if dispatch::float_use_simd(simd_mode, macs) {
        conv2d_panels_emulated(input, weight, spec, mode, chunk_len, scratch, simd_mode)
    } else {
        conv2d_via_gemm(input, weight, spec, scratch, |cols, wmat| {
            matmul_emulated_with_simd(mode, cols, wmat, chunk_len, simd_mode)
        })
    }
}

/// Scalar reference for [`conv2d_emulated`] (scalar GEMM underneath); the
/// fast convolution must match it bit-for-bit.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn conv2d_emulated_scalar(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    mode: FmaMode,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    conv2d_via_gemm(input, weight, spec, &mut ConvScratch::default(), |cols, wmat| {
        Ok(matmul_emulated_scalar(mode, cols, wmat, chunk_len))
    })
    .expect("inconsistent conv operand shapes")
}

/// Emulated integer convolution through the FXU pipeline.
pub fn conv2d_int(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    qa: QuantParams,
    qw: QuantParams,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    conv2d_int_with_scratch(input, weight, spec, qa, qw, chunk_len, &mut ConvScratch::default())
}

/// [`conv2d_int`] reusing caller-provided scratch buffers.
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn conv2d_int_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    qa: QuantParams,
    qw: QuantParams,
    chunk_len: usize,
    scratch: &mut ConvScratch,
) -> (Tensor, GemmStats) {
    conv2d_int_with_simd(input, weight, spec, qa, qw, chunk_len, scratch, SimdMode::from_env())
        .expect("inconsistent conv operand shapes")
}

/// [`conv2d_int_with_scratch`] under an explicit vectorization policy,
/// panel-packed in the SIMD regime like [`conv2d_emulated_with_simd`].
/// Falls back to the flat GEMM path whenever the chunk guard makes INT16
/// saturation possible (the saturating accumulator must then be modeled).
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on inconsistent operands.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_int_with_simd(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    qa: QuantParams,
    qw: QuantParams,
    chunk_len: usize,
    scratch: &mut ConvScratch,
    simd_mode: SimdMode,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let g = check_conv_shapes(input, weight)?;
    let hw = spec.out_dim(g.h, g.kh) * spec.out_dim(g.w, g.kw);
    let kcols = g.ci * g.kh * g.kw;
    let macs = (g.n * hw * g.co * kcols) as u64;
    let both_int2 = qa.format() == IntFormat::Int2 && qw.format() == IntFormat::Int2;
    let kernel = if int_saturation_possible(qa, qw, kcols, chunk_len) {
        dispatch::IntKernel::Tiled
    } else {
        dispatch::int_kernel(simd_mode, macs, kcols, both_int2)
    };
    match kernel {
        dispatch::IntKernel::Tiled => conv2d_via_gemm(input, weight, spec, scratch, |cols, wmat| {
            matmul_int_with_simd(cols, wmat, qa, qw, chunk_len, simd_mode)
        }),
        kernel => conv2d_panels_int(input, weight, spec, qa, qw, scratch, kernel),
    }
}

/// Scalar reference for [`conv2d_int`] (scalar GEMM underneath).
#[allow(clippy::expect_used)] // documented panic on bad shapes
pub fn conv2d_int_scalar(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    qa: QuantParams,
    qw: QuantParams,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    conv2d_via_gemm(input, weight, spec, &mut ConvScratch::default(), |cols, wmat| {
        Ok(matmul_int_scalar(cols, wmat, qa, qw, chunk_len))
    })
    .expect("inconsistent conv operand shapes")
}

fn conv2d_via_gemm(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut ConvScratch,
    mm: impl Fn(&Tensor, &Tensor) -> Result<(Tensor, GemmStats), NumericsError>,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let g = check_conv_shapes(input, weight)?;
    let (n, ci, co, kh, kw) = (g.n, g.ci, g.co, g.kh, g.kw);
    let ho = spec.out_dim(g.h, kh);
    let wo = spec.out_dim(g.w, kw);
    let cols = scratch.cols_slot(input, kh, kw, spec);
    im2col_into(input, kh, kw, spec, cols);
    #[allow(clippy::expect_used)] // reshape cannot fail: same element count
    let wmat = weight
        .clone()
        .reshape(vec![co, ci * kh * kw])
        .expect("weight reshape is size-preserving")
        .transposed();
    let (flat, stats) = mm(cols, &wmat)?; // [n*ho*wo, co]
    // Rearrange [n*ho*wo, co] -> [n, co, ho, wo] with flat indexing.
    let mut out = Tensor::zeros(vec![n, co, ho, wo]);
    let od = out.as_mut_slice();
    let fd = flat.as_slice();
    let hw = ho * wo;
    for ni in 0..n {
        for c in 0..co {
            let dst = (ni * co + c) * hw;
            let src = ni * hw;
            for s in 0..hw {
                od[dst + s] = fd[(src + s) * co + c];
            }
        }
    }
    Ok((out, stats))
}

/// Panel-packed emulated float convolution (see
/// [`conv2d_emulated_with_simd`]): per image `i`,
/// `out[i] = weights [co, K'] × cols_rows(i)ᵀ` computed band-parallel over
/// output channels, writing straight into the `[n, co, ho, wo]` buffer.
/// The product LUT is built as `(fb, fa)` because the weight code now
/// indexes the high byte; FP9 products commute exactly, so the result is
/// bit-identical to the flat-GEMM orientation.
#[allow(clippy::too_many_arguments)]
fn conv2d_panels_emulated(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    mode: FmaMode,
    chunk_len: usize,
    scratch: &mut ConvScratch,
    simd_mode: SimdMode,
) -> Result<(Tensor, GemmStats), NumericsError> {
    assert!(chunk_len > 0, "chunk length must be positive");
    let g = check_conv_shapes(input, weight)?;
    let ho = spec.out_dim(g.h, g.kh);
    let wo = spec.out_dim(g.w, g.kw);
    let hw = ho * wo;
    let kcols = g.ci * g.kh * g.kw;
    let cols = scratch.cols_slot(input, g.kh, g.kw, spec);
    im2col_into(input, g.kh, g.kw, spec, cols);
    let (fa, fb) = mode.operand_formats();
    let wmat = weight.clone().reshape(vec![g.co, kcols])?;
    let qw = QTensor::quantize(&wmat, fb);
    let qc = QTensor::quantize(cols, fa);
    let mut out = Tensor::zeros(vec![g.n, g.co, ho, wo]);
    if out.as_slice().is_empty() {
        return Ok((out, GemmStats::default()));
    }
    let use_simd = dispatch::float_use_simd(simd_mode, (g.n * hw * g.co * kcols) as u64);
    let mut stats = GemmStats::default();
    let od = out.as_mut_slice();
    match (qw.codes(), qc.codes()) {
        (Some(wc), Some(cc)) => {
            let lut = product_lut(fb, fa);
            let products: Vec<f32> =
                lut.products().iter().map(|&p| if p == 0.0 { -0.0 } else { p }).collect();
            // Decoded FP9 weight values for the SIMD kernel (see the GEMM
            // LUT branch); the per-image column panels are decoded inside
            // the loop as they are interleaved.
            let wv: Option<Vec<f32>> = (use_simd && hw >= simd::GROUP).then(|| {
                let ia = lut.a_operands();
                wc.iter().map(|&c| ia[usize::from(c)]).collect()
            });
            for i in 0..g.n {
                let bt = &cc[i * hw * kcols..(i + 1) * hw * kcols];
                let binter = wv.as_ref().map(|_| {
                    let ib = lut.b_operands();
                    let btv: Vec<f32> = bt.iter().map(|&c| ib[usize::from(c)]).collect();
                    interleave_groups(&btv, kcols, hw)
                });
                let band_out = &mut od[i * g.co * hw..(i + 1) * g.co * hw];
                let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                    let fdec = wv
                        .as_ref()
                        .zip(binter.as_ref())
                        .map(|(av, bi)| (av.as_slice(), bi.as_slice()));
                    lut_band(wc, bt, fdec, &products, row0, kcols, hw, chunk_len, band)
                };
                stats.merge(par_rows(band_out, g.co, hw, kcols, &work));
            }
        }
        _ => {
            let wv = qw.values().as_slice();
            let cv = qc.values().as_slice();
            for i in 0..g.n {
                let bt = &cv[i * hw * kcols..(i + 1) * hw * kcols];
                let binter =
                    (use_simd && hw >= simd::GROUP).then(|| interleave_groups(bt, kcols, hw));
                let band_out = &mut od[i * g.co * hw..(i + 1) * g.co * hw];
                let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                    fp16_band(wv, bt, binter.as_deref(), row0, kcols, hw, chunk_len, band)
                };
                stats.merge(par_rows(band_out, g.co, hw, kcols, &work));
            }
        }
    }
    Ok((out, stats))
}

/// Panel-packed integer convolution: same orientation as
/// [`conv2d_panels_emulated`], with whole-k madd or bit-sliced dot
/// products. Only called when the chunk guard rules out INT16 saturation,
/// so `kernel` is never [`dispatch::IntKernel::Tiled`].
fn conv2d_panels_int(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    qa: QuantParams,
    qw: QuantParams,
    scratch: &mut ConvScratch,
    kernel: dispatch::IntKernel,
) -> Result<(Tensor, GemmStats), NumericsError> {
    let g = check_conv_shapes(input, weight)?;
    let ho = spec.out_dim(g.h, g.kh);
    let wo = spec.out_dim(g.w, g.kw);
    let hw = ho * wo;
    let kcols = g.ci * g.kh * g.kw;
    let cols = scratch.cols_slot(input, g.kh, g.kw, spec);
    im2col_into(input, g.kh, g.kw, spec, cols);
    // Weight is already [co][ci·kh·kw] row-major; quantize both flat.
    let mut cw = Vec::new();
    let mut cc = Vec::new();
    qw.quantize_slice_into(weight.as_slice(), &mut cw);
    qa.quantize_slice_into(cols.as_slice(), &mut cc);
    // Same expression (and f32 rounding) as the flat path's
    // `qa.scale() * qb.scale()` with A = cols, B = weights.
    let out_scale = qa.scale() * qw.scale();
    let mut out = Tensor::zeros(vec![g.n, g.co, ho, wo]);
    if out.as_slice().is_empty() {
        return Ok((out, GemmStats::default()));
    }
    let mut stats = GemmStats::default();
    let od = out.as_mut_slice();
    if kernel == dispatch::IntKernel::BitSliced {
        let pw = bitslice::BitPlanes::pack(&cw, g.co, kcols, qw.signedness());
        for i in 0..g.n {
            let pc = bitslice::BitPlanes::pack(
                &cc[i * hw * kcols..(i + 1) * hw * kcols],
                hw,
                kcols,
                qa.signedness(),
            );
            let band_out = &mut od[i * g.co * hw..(i + 1) * g.co * hw];
            let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                bitslice_band(&pw, &pc, row0, kcols, hw, out_scale, band)
            };
            stats.merge(par_rows(band_out, g.co, hw, kcols, &work));
        }
    } else {
        for i in 0..g.n {
            let bt = &cc[i * hw * kcols..(i + 1) * hw * kcols];
            let band_out = &mut od[i * g.co * hw..(i + 1) * g.co * hw];
            let work = |row0: usize, band: &mut [f32]| -> GemmStats {
                madd_band(&cw, bt, row0, kcols, hw, out_scale, band)
            };
            stats.merge(par_rows(band_out, g.co, hw, kcols, &work));
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::format::fp16_round;
    use crate::int::IntFormat;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Tensor {
        Tensor::random_uniform(vec![m, n], -1.0, 1.0, seed)
    }

    #[test]
    fn f32_matmul_identity() {
        let a = rand_mat(4, 4, 1);
        let eye = Tensor::from_fn(vec![4, 4], |i| if i % 5 == 0 { 1.0 } else { 0.0 });
        assert_eq!(matmul_f32(&a, &eye), a);
    }

    #[test]
    fn emulated_fp16_close_to_f32() {
        let a = rand_mat(8, 32, 2);
        let b = rand_mat(32, 8, 3);
        let exact = matmul_f32(&a, &b);
        let (got, stats) = matmul_fp16(&a, &b, 64);
        assert_eq!(stats.macs, 8 * 32 * 8);
        assert!(got.max_rel_diff(&exact) < 5e-3, "diff {}", got.max_rel_diff(&exact));
    }

    #[test]
    fn emulated_hfp8_close_to_f32() {
        let a = rand_mat(8, 64, 4);
        let b = rand_mat(64, 8, 5);
        let exact = matmul_f32(&a, &b);
        let (fwd, _) = matmul_hfp8_fwd(&a, &b, 64);
        let (bwd, _) = matmul_hfp8_bwd(&a, &b, 64);
        // 3-bit / 2-bit mantissas: coarse but correlated.
        assert!(fwd.max_rel_diff(&exact) < 0.08, "fwd diff {}", fwd.max_rel_diff(&exact));
        assert!(bwd.max_rel_diff(&exact) < 0.15, "bwd diff {}", bwd.max_rel_diff(&exact));
    }

    #[test]
    fn int4_matmul_close_to_f32_for_uniform_data() {
        let a = rand_mat(8, 64, 6);
        let b = rand_mat(64, 8, 7);
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, a.max_abs());
        let qb = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, b.max_abs());
        let exact = matmul_f32(&a, &b);
        let (got, stats) = matmul_int(&a, &b, qa, qb, 64);
        assert_eq!(stats.saturations, 0);
        assert!(got.max_rel_diff(&exact) < 0.25, "diff {}", got.max_rel_diff(&exact));
    }

    #[test]
    fn zero_gating_stats_reflect_sparsity() {
        let mut a = rand_mat(4, 32, 8);
        // Zero half of A's entries.
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let b = rand_mat(32, 4, 9);
        let (_, stats) = matmul_fp16(&a, &b, 64);
        let frac = stats.gated_fraction();
        assert!((frac - 0.5).abs() < 0.05, "gated fraction {frac}");
    }

    #[test]
    fn checked_matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 5]);
        assert!(matmul_f32_checked(&a, &b).is_err());
        assert!(matmul_emulated_checked(FmaMode::Fp16, &a, &b, 64).is_err());
        let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        assert!(matmul_int_checked(&a, &b, q, q, 64).is_err());
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn fast_rounder_matches_general_quantizer() {
        // The specialized kernel rounder must agree with FpFormat::fp16()
        // quantization on every finite f32 (its full input domain) —
        // sampled densely across the exponent range plus edge cases.
        let check = |x: f32| {
            let general = fp16_round(x);
            assert_eq!(fp16_round_sum(x).to_bits(), general.to_bits(), "x = {x:e}");
            assert_eq!(fp16_round_sum_sel(x).to_bits(), general.to_bits(), "sel x = {x:e}");
        };
        for exp in 0u32..=254 {
            for man in [0u32, 1, 0x1fff, 0x2000, 0x2001, 0x3fff, 0x7fffff] {
                let bits = (exp << 23) | man;
                check(f32::from_bits(bits));
                check(f32::from_bits(bits | 0x8000_0000));
            }
        }
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..1_000_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = f32::from_bits((state >> 32) as u32);
            if x.is_finite() {
                check(x);
            }
        }
    }

    #[test]
    fn fast_path_matches_scalar_all_float_modes() {
        // Shapes chosen to exercise the JR remainder columns and partial
        // final chunks; sparsity exercises gating counts.
        let mut a = rand_mat(7, 35, 30);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = rand_mat(35, 11, 31);
        for mode in [
            FmaMode::Fp16,
            FmaMode::hfp8_fwd_default(),
            FmaMode::hfp8_bwd_default(),
            FmaMode::Hfp8Fwd { bias_a: 5, bias_b: 9 },
        ] {
            for chunk_len in [1, 3, 35, 64] {
                let (fast, fs) = matmul_emulated(mode, &a, &b, chunk_len);
                let (scalar, ss) = matmul_emulated_scalar(mode, &a, &b, chunk_len);
                assert_bits_eq(&fast, &scalar);
                assert_eq!(fs, ss, "{mode:?} chunk {chunk_len}");
            }
        }
    }

    #[test]
    fn fast_int_matches_scalar_across_formats() {
        let a = rand_mat(6, 40, 32);
        let b = rand_mat(40, 9, 33);
        for (fmt, signedness) in [
            (IntFormat::Int4, Signedness::Signed),
            (IntFormat::Int4, Signedness::Unsigned),
            (IntFormat::Int2, Signedness::Signed),
            (IntFormat::Int2, Signedness::Unsigned),
        ] {
            let qa = QuantParams::from_abs_max(fmt, signedness, a.max_abs());
            let qb = QuantParams::from_abs_max(fmt, Signedness::Signed, b.max_abs());
            for chunk_len in [1, 7, 64] {
                let (fast, fs) = matmul_int(&a, &b, qa, qb, chunk_len);
                let (scalar, ss) = matmul_int_scalar(&a, &b, qa, qb, chunk_len);
                assert_bits_eq(&fast, &scalar);
                assert_eq!(fs, ss, "{fmt:?} {signedness:?} chunk {chunk_len}");
            }
        }
    }

    #[test]
    fn saturating_chunk_lengths_fall_back_to_scalar_semantics() {
        // chunk_len 1024 × worst product 49 exceeds i16::MAX: saturation is
        // possible, so the fast path must defer to the saturating reference.
        let a = Tensor::from_fn(vec![2, 2048], |_| 1.0);
        let b = Tensor::from_fn(vec![2048, 2], |_| 1.0);
        let qa = QuantParams::with_scale(IntFormat::Int4, Signedness::Signed, 1.0 / 7.0).unwrap();
        let (fast, fs) = matmul_int(&a, &b, qa, qa, 1024);
        let (scalar, ss) = matmul_int_scalar(&a, &b, qa, qa, 1024);
        assert!(ss.saturations > 0, "test should exercise saturation");
        assert_bits_eq(&fast, &scalar);
        assert_eq!(fs, ss);
    }

    #[test]
    fn conv_matches_direct_computation() {
        // 1x1x3x3 input, 1x1x2x2 kernel, stride 1 pad 0.
        let input = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|x| x as f32).collect());
        let weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let out = conv2d_f32(&input, &weight, ConvSpec::unit());
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        // out[y][x] = in[y][x] + in[y+1][x+1]
        assert_eq!(out.get(&[0, 0, 0, 0]), 1.0 + 5.0);
        assert_eq!(out.get(&[0, 0, 0, 1]), 2.0 + 6.0);
        assert_eq!(out.get(&[0, 0, 1, 0]), 4.0 + 8.0);
        assert_eq!(out.get(&[0, 0, 1, 1]), 5.0 + 9.0);
    }

    #[test]
    fn conv_with_padding_and_stride() {
        let input = Tensor::random_uniform(vec![2, 3, 8, 8], -1.0, 1.0, 10);
        let weight = Tensor::random_uniform(vec![4, 3, 3, 3], -0.5, 0.5, 11);
        let spec = ConvSpec { stride: 2, pad: 1 };
        let out = conv2d_f32(&input, &weight, spec);
        assert_eq!(out.shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn emulated_conv_tracks_reference() {
        let input = Tensor::random_uniform(vec![1, 4, 6, 6], -1.0, 1.0, 12);
        let weight = Tensor::random_uniform(vec![8, 4, 3, 3], -0.5, 0.5, 13);
        let exact = conv2d_f32(&input, &weight, ConvSpec::unit());
        let (fp16, stats) = conv2d_emulated(&input, &weight, ConvSpec::unit(), FmaMode::Fp16, 64);
        assert_eq!(stats.macs as usize, 8 * 4 * 4 * 3 * 3 * 4);
        assert!(fp16.max_rel_diff(&exact) < 1e-2);
    }

    #[test]
    fn int_conv_runs_without_saturation() {
        let input = Tensor::random_uniform(vec![1, 8, 6, 6], 0.0, 1.0, 14);
        let weight = Tensor::random_uniform(vec![8, 8, 3, 3], -0.5, 0.5, 15);
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Unsigned, 1.0);
        let qw = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 0.5);
        let (out, stats) = conv2d_int(&input, &weight, ConvSpec::unit(), qa, qw, 64);
        assert_eq!(out.shape(), &[1, 8, 4, 4]);
        assert_eq!(stats.saturations, 0);
        let exact = conv2d_f32(&input, &weight, ConvSpec::unit());
        assert!(out.max_rel_diff(&exact) < 0.3);
    }

    #[test]
    fn conv_scratch_reuse_is_bit_exact() {
        let input = Tensor::random_uniform(vec![2, 3, 7, 7], -1.0, 1.0, 40);
        let weight = Tensor::random_uniform(vec![5, 3, 3, 3], -0.5, 0.5, 41);
        let spec = ConvSpec { stride: 2, pad: 1 };
        let mode = FmaMode::hfp8_fwd_default();
        let (fresh, fresh_stats) = conv2d_emulated(&input, &weight, spec, mode, 64);
        let mut scratch = ConvScratch::default();
        // Dirty the scratch with a differently-shaped problem first.
        let small = Tensor::random_uniform(vec![1, 3, 4, 4], -1.0, 1.0, 42);
        let _ = conv2d_emulated_with_scratch(&small, &weight, ConvSpec::unit(), mode, 64, &mut scratch);
        let (reused, reused_stats) =
            conv2d_emulated_with_scratch(&input, &weight, spec, mode, 64, &mut scratch);
        assert_bits_eq(&fresh, &reused);
        assert_eq!(fresh_stats, reused_stats);
    }

    /// Alternating layer geometries each keep their own im2col slot (no
    /// reallocation thrash), and the slot count is bounded by the LRU cap.
    #[test]
    fn conv_scratch_caches_per_shape_and_evicts_lru() {
        let weight = Tensor::random_uniform(vec![2, 3, 3, 3], -0.5, 0.5, 60);
        let mode = FmaMode::Fp16;
        let mut scratch = ConvScratch::default();
        let big = Tensor::random_uniform(vec![1, 3, 8, 8], -1.0, 1.0, 61);
        let small = Tensor::random_uniform(vec![1, 3, 5, 5], -1.0, 1.0, 62);
        for _ in 0..3 {
            let _ = conv2d_emulated_with_scratch(&big, &weight, ConvSpec::unit(), mode, 64, &mut scratch);
            let _ =
                conv2d_emulated_with_scratch(&small, &weight, ConvSpec::unit(), mode, 64, &mut scratch);
        }
        // Two geometries, two slots — revisits hit their cached buffers.
        assert_eq!(scratch.cached_shapes(), 2);
        // A distinct pad makes a distinct key even at the same input shape.
        let _ = conv2d_emulated_with_scratch(
            &small,
            &weight,
            ConvSpec { stride: 1, pad: 1 },
            mode,
            64,
            &mut scratch,
        );
        assert_eq!(scratch.cached_shapes(), 3);
        // Flooding with fresh geometries caps the cache at the LRU bound.
        for h in 0..24 {
            let input = Tensor::random_uniform(vec![1, 3, 9 + h, 9], -1.0, 1.0, 63);
            let _ =
                conv2d_emulated_with_scratch(&input, &weight, ConvSpec::unit(), mode, 64, &mut scratch);
        }
        assert_eq!(scratch.cached_shapes(), ConvScratch::MAX_SLOTS);
    }

    #[test]
    fn fast_conv_matches_scalar_conv() {
        let input = Tensor::random_uniform(vec![1, 3, 6, 6], -1.0, 1.0, 50);
        let weight = Tensor::random_uniform(vec![4, 3, 3, 3], -0.5, 0.5, 51);
        let spec = ConvSpec { stride: 1, pad: 1 };
        let mode = FmaMode::hfp8_bwd_default();
        let (fast, fs) = conv2d_emulated(&input, &weight, spec, mode, 16);
        let (scalar, ss) = conv2d_emulated_scalar(&input, &weight, spec, mode, 16);
        assert_bits_eq(&fast, &scalar);
        assert_eq!(fs, ss);
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        let (ifast, ifs) = conv2d_int(&input, &weight, spec, qa, qa, 16);
        let (iscalar, iss) = conv2d_int_scalar(&input, &weight, spec, qa, qa, 16);
        assert_bits_eq(&ifast, &iscalar);
        assert_eq!(ifs, iss);
    }

    #[test]
    fn guarded_kernels_without_active_faults_are_bit_exact() {
        use rapid_fault::FaultPlan;
        let a = rand_mat(5, 33, 70);
        let b = rand_mat(33, 6, 71);
        let mode = FmaMode::hfp8_fwd_default();
        let (base, bs) = matmul_emulated(mode, &a, &b, 64);
        for faults in [None, Some(&mut FaultPlan::disabled())] {
            let (got, gs) =
                matmul_emulated_guarded(mode, &a, &b, 64, GuardPolicy::Error, faults).unwrap();
            assert_bits_eq(&base, &got);
            assert_eq!(bs, gs);
        }
        let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        let (bi, bis) = matmul_int(&a, &b, q, q, 64);
        let (gi, gis) =
            matmul_int_guarded(&a, &b, q, q, 64, GuardPolicy::Error, Some(&mut FaultPlan::disabled()))
                .unwrap();
        assert_bits_eq(&bi, &gi);
        assert_eq!(bis, gis);
    }

    #[test]
    fn error_policy_catches_injected_exponent_upsets() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let a = rand_mat(4, 256, 72);
        let b = rand_mat(256, 4, 73);
        let mut caught = 0;
        for seed in 0..8 {
            let cfg = FaultConfig {
                seed,
                mac_acc_rate: 0.02,
                exponent_share: 1.0,
                ..FaultConfig::default()
            };
            let mut plan = FaultPlan::new(cfg);
            let r = matmul_emulated_guarded(
                FmaMode::Fp16,
                &a,
                &b,
                64,
                GuardPolicy::Error,
                Some(&mut plan),
            );
            if let Err(e) = r {
                assert!(matches!(e, NumericsError::NonFinite { .. }), "unexpected {e:?}");
                caught += 1;
            }
        }
        assert!(caught > 0, "no seed out of 8 produced a non-finite accumulator");
    }

    #[test]
    fn saturate_policy_keeps_faulty_output_finite() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let a = rand_mat(4, 256, 74);
        let b = rand_mat(256, 4, 75);
        let cfg = FaultConfig {
            seed: 5,
            mac_operand_rate: 0.01,
            mac_acc_rate: 0.01,
            exponent_share: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        let (out, _) = matmul_emulated_guarded(
            FmaMode::Fp16,
            &a,
            &b,
            64,
            GuardPolicy::Saturate,
            Some(&mut plan),
        )
        .unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        assert!(plan.counts().mac_operand_flips + plan.counts().mac_acc_flips > 0);
    }

    #[test]
    fn saturate_policy_counts_every_clamp() {
        // Whatever the Error policy would abort on, Saturate must clamp —
        // and report. Replay the same fault stream under both policies.
        use rapid_fault::{FaultConfig, FaultPlan};
        let a = rand_mat(4, 256, 72);
        let b = rand_mat(256, 4, 73);
        let mut total_clamps = 0u64;
        for seed in 0..8 {
            let cfg = FaultConfig {
                seed,
                mac_acc_rate: 0.02,
                exponent_share: 1.0,
                ..FaultConfig::default()
            };
            let errored = matmul_emulated_guarded(
                FmaMode::Fp16,
                &a,
                &b,
                64,
                GuardPolicy::Error,
                Some(&mut FaultPlan::new(cfg)),
            )
            .is_err();
            let (out, stats) = matmul_emulated_guarded(
                FmaMode::Fp16,
                &a,
                &b,
                64,
                GuardPolicy::Saturate,
                Some(&mut FaultPlan::new(cfg)),
            )
            .unwrap();
            assert!(out.as_slice().iter().all(|v| v.is_finite()));
            if errored {
                assert!(stats.guard_clamps > 0, "seed {seed}: abort implies a clamp");
            }
            total_clamps += stats.guard_clamps;
        }
        assert!(total_clamps > 0, "no seed out of 8 needed a clamp");
    }

    #[test]
    fn int_guard_locates_chunk_overflow() {
        // chunk_len 1024 × worst product 49 exceeds i16::MAX: saturation
        // occurs, and the Error policy pinpoints the first overflow.
        let a = Tensor::from_fn(vec![2, 2048], |_| 1.0);
        let b = Tensor::from_fn(vec![2048, 2], |_| 1.0);
        let qa = QuantParams::with_scale(IntFormat::Int4, Signedness::Signed, 1.0 / 7.0).unwrap();
        let err = matmul_int_guarded(&a, &b, qa, qa, 1024, GuardPolicy::Error, None).unwrap_err();
        assert!(
            matches!(err, NumericsError::Overflow { row: 0, col: 0, .. }),
            "unexpected {err:?}"
        );
        // Saturate matches the hardware register's native behavior.
        let (sat, stats) =
            matmul_int_guarded(&a, &b, qa, qa, 1024, GuardPolicy::Saturate, None).unwrap();
        let (scalar, _) = matmul_int_scalar(&a, &b, qa, qa, 1024);
        assert!(stats.saturations > 0);
        assert_bits_eq(&sat, &scalar);
    }

    #[test]
    fn same_seed_reproduces_identical_faulty_output() {
        use rapid_fault::{FaultConfig, FaultPlan};
        let a = rand_mat(4, 64, 76);
        let b = rand_mat(64, 4, 77);
        let cfg = FaultConfig { seed: 9, mac_operand_rate: 0.05, ..FaultConfig::default() };
        let run = || {
            let mut plan = FaultPlan::new(cfg);
            let (out, _) = matmul_emulated_guarded(
                FmaMode::hfp8_fwd_default(),
                &a,
                &b,
                64,
                GuardPolicy::Propagate,
                Some(&mut plan),
            )
            .unwrap();
            (out, plan.trace().to_vec(), plan.counts())
        };
        let (o1, t1, c1) = run();
        let (o2, t2, c2) = run();
        assert_bits_eq(&o1, &o2);
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn im2col_into_reuses_allocation() {
        let input = Tensor::random_uniform(vec![1, 2, 5, 5], -1.0, 1.0, 60);
        let spec = ConvSpec { stride: 1, pad: 1 };
        let fresh = im2col(&input, 3, 3, spec);
        let mut scratch = Tensor::zeros(vec![7, 7]); // wrong shape, dirty data
        scratch.map_inplace(|_| 9.0);
        im2col_into(&input, 3, 3, spec, &mut scratch);
        assert_eq!(fresh, scratch);
    }
}
