//! Emulated GEMM and convolution kernels for every RaPiD precision.
//!
//! These kernels compute what the MPE array computes — including input
//! quantization, on-the-fly operand conversion, chunked accumulation and
//! zero-gating — and report datapath statistics used by the power model.
//! They are *functional* models; timing lives in `rapid-model` (analytical)
//! and `rapid-sim` (cycle-approximate).

use crate::accumulate::ChunkAccumulator;
use crate::fma::FmaMode;
use crate::int::{IntAccumulator, QuantParams};
use crate::tensor::Tensor;
use crate::NumericsError;

/// Datapath statistics gathered while executing an emulated kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemmStats {
    /// Total multiply-accumulate operations issued.
    pub macs: u64,
    /// MACs bypassed by the zero-gating logic.
    pub zero_gated: u64,
    /// INT16 chunk-register saturations (integer modes only; zero for
    /// hardware-legal chunk lengths).
    pub saturations: u64,
}

impl GemmStats {
    /// Fraction of MACs that were zero-gated.
    pub fn gated_fraction(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.zero_gated as f64 / self.macs as f64
        }
    }

    /// Merges statistics from another kernel invocation.
    pub fn merge(&mut self, other: GemmStats) {
        self.macs += other.macs;
        self.zero_gated += other.zero_gated;
        self.saturations += other.saturations;
    }
}

fn check_matmul_shapes(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize), NumericsError> {
    if a.shape().len() != 2 || b.shape().len() != 2 || a.shape()[1] != b.shape()[0] {
        return Err(NumericsError::ShapeMismatch {
            expected: "a [m,k] × b [k,n]".to_string(),
            actual: format!("a {:?} × b {:?}", a.shape(), b.shape()),
        });
    }
    Ok((a.shape()[0], a.shape()[1], b.shape()[1]))
}

/// Reference FP32 matrix multiply `[m,k] × [k,n] → [m,n]`.
///
/// # Panics
///
/// Panics if the shapes are not compatible rank-2 matrices.
pub fn matmul_f32(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_f32_checked(a, b).expect("incompatible matmul shapes")
}

/// Reference FP32 matrix multiply, returning an error on bad shapes.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] if the operands are not
/// `[m,k]` and `[k,n]` matrices.
pub fn matmul_f32_checked(a: &Tensor, b: &Tensor) -> Result<Tensor, NumericsError> {
    let (m, k, n) = check_matmul_shapes(a, b)?;
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let mut out = Tensor::zeros(vec![m, n]);
    let od = out.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += f64::from(ad[i * k + p]) * f64::from(bd[p * n + j]);
            }
            od[i * n + j] = acc as f32;
        }
    }
    Ok(out)
}

/// Emulated floating-point matrix multiply through the MPE FPU pipeline:
/// inputs are quantized to the mode's operand formats, multiplied through
/// the internal representation, and chunk-accumulated.
///
/// `chunk_len` is the MPE-level accumulation chunk (64 matches the
/// dataflow's LRF reload interval).
///
/// # Panics
///
/// Panics if the shapes are not compatible or `chunk_len == 0`.
pub fn matmul_emulated(mode: FmaMode, a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    let (m, k, n) = check_matmul_shapes(a, b).expect("incompatible matmul shapes");
    let (fa, fb) = mode.operand_formats();
    let qa: Vec<f32> = a.as_slice().iter().map(|&x| fa.quantize(x)).collect();
    let qb: Vec<f32> = b.as_slice().iter().map(|&x| fb.quantize(x)).collect();
    let mut out = Tensor::zeros(vec![m, n]);
    let od = out.as_mut_slice();
    let mut stats = GemmStats::default();
    for i in 0..m {
        for j in 0..n {
            let mut acc = ChunkAccumulator::new(mode, chunk_len);
            for p in 0..k {
                acc.mac(qa[i * k + p], qb[p * n + j]);
            }
            stats.macs += acc.macs();
            stats.zero_gated += acc.zero_gated();
            od[i * n + j] = acc.finish();
        }
    }
    (out, stats)
}

/// FP16 (DLFloat) matrix multiply with chunked accumulation.
pub fn matmul_fp16(a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    matmul_emulated(FmaMode::Fp16, a, b, chunk_len)
}

/// HFP8 forward-pass matrix multiply: both operands FP8 (1,4,3), default
/// bias.
pub fn matmul_hfp8_fwd(a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    matmul_emulated(FmaMode::hfp8_fwd_default(), a, b, chunk_len)
}

/// HFP8 backward-pass matrix multiply: operand `a` FP8 (1,4,3), operand `b`
/// FP8 (1,5,2).
pub fn matmul_hfp8_bwd(a: &Tensor, b: &Tensor, chunk_len: usize) -> (Tensor, GemmStats) {
    matmul_emulated(FmaMode::hfp8_bwd_default(), a, b, chunk_len)
}

/// Quantized integer matrix multiply through the FXU pipeline: inputs are
/// quantized with the given per-tensor parameters, multiplied as integer
/// codes with INT16-chunk/INT32 accumulation, and the result dequantized by
/// the product of scales.
///
/// # Panics
///
/// Panics if the shapes are not compatible or `chunk_len == 0`.
pub fn matmul_int(
    a: &Tensor,
    b: &Tensor,
    qa: QuantParams,
    qb: QuantParams,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    let (m, k, n) = check_matmul_shapes(a, b).expect("incompatible matmul shapes");
    let ca: Vec<i8> = a.as_slice().iter().map(|&x| qa.quantize(x)).collect();
    let cb: Vec<i8> = b.as_slice().iter().map(|&x| qb.quantize(x)).collect();
    let out_scale = qa.scale() * qb.scale();
    let mut out = Tensor::zeros(vec![m, n]);
    let od = out.as_mut_slice();
    let mut stats = GemmStats::default();
    for i in 0..m {
        for j in 0..n {
            let mut acc = IntAccumulator::new(chunk_len);
            for p in 0..k {
                acc.mac(ca[i * k + p], cb[p * n + j]);
            }
            stats.macs += acc.macs();
            stats.zero_gated += acc.zero_gated();
            stats.saturations += acc.saturations();
            od[i * n + j] = acc.finish() as f32 * out_scale;
        }
    }
    (out, stats)
}

/// Convolution geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub pad: usize,
}

impl ConvSpec {
    /// Unit-stride, zero-pad convolution.
    pub fn unit() -> Self {
        Self { stride: 1, pad: 0 }
    }

    /// Output spatial size for an input of size `h` and kernel `k`.
    pub fn out_dim(&self, h: usize, k: usize) -> usize {
        (h + 2 * self.pad).saturating_sub(k) / self.stride + 1
    }
}

/// Lowers an `[n, ci, h, w]` input into the `[n*ho*wo, ci*kh*kw]` im2col
/// matrix for a `[co, ci, kh, kw]` kernel — the transformation RaPiD's
/// dataflow performs implicitly when streaming H×W innermost (Fig 5).
///
/// # Panics
///
/// Panics if `input` is not rank 4.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Tensor {
    assert_eq!(input.shape().len(), 4, "im2col expects [n, c, h, w]");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let ho = spec.out_dim(h, kh);
    let wo = spec.out_dim(w, kw);
    let mut out = Tensor::zeros(vec![n * ho * wo, c * kh * kw]);
    let cols = c * kh * kw;
    let od = out.as_mut_slice();
    for ni in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                let row = (ni * ho + oy) * wo + ox;
                for ci in 0..c {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            let v = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w
                            {
                                input.get(&[ni, ci, iy as usize, ix as usize])
                            } else {
                                0.0
                            };
                            od[row * cols + (ci * kh + ky) * kw + kx] = v;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Reference FP32 convolution: input `[n, ci, h, w]`, weight
/// `[co, ci, kh, kw]` → output `[n, co, ho, wo]`.
///
/// # Panics
///
/// Panics if the operand ranks or channel counts are inconsistent.
pub fn conv2d_f32(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    let out = conv2d_via_gemm(input, weight, spec, |cols, wmat| (matmul_f32(cols, wmat), GemmStats::default()));
    out.0
}

/// Emulated floating-point convolution through the FPU pipeline.
pub fn conv2d_emulated(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    mode: FmaMode,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    conv2d_via_gemm(input, weight, spec, |cols, wmat| {
        matmul_emulated(mode, cols, wmat, chunk_len)
    })
}

/// Emulated integer convolution through the FXU pipeline.
pub fn conv2d_int(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    qa: QuantParams,
    qw: QuantParams,
    chunk_len: usize,
) -> (Tensor, GemmStats) {
    conv2d_via_gemm(input, weight, spec, |cols, wmat| {
        matmul_int(cols, wmat, qa, qw, chunk_len)
    })
}

fn conv2d_via_gemm(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    mm: impl Fn(&Tensor, &Tensor) -> (Tensor, GemmStats),
) -> (Tensor, GemmStats) {
    assert_eq!(input.shape().len(), 4, "conv input must be [n, ci, h, w]");
    assert_eq!(weight.shape().len(), 4, "conv weight must be [co, ci, kh, kw]");
    assert_eq!(
        input.shape()[1],
        weight.shape()[1],
        "input channel count must match weight"
    );
    let (n, _ci, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (co, ci, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let ho = spec.out_dim(h, kh);
    let wo = spec.out_dim(w, kw);
    let cols = im2col(input, kh, kw, spec);
    let wmat = weight
        .clone()
        .reshape(vec![co, ci * kh * kw])
        .expect("weight reshape is size-preserving")
        .transposed();
    let (flat, stats) = mm(&cols, &wmat); // [n*ho*wo, co]
    // Rearrange [n*ho*wo, co] -> [n, co, ho, wo].
    let mut out = Tensor::zeros(vec![n, co, ho, wo]);
    for ni in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                let row = (ni * ho + oy) * wo + ox;
                for c in 0..co {
                    out.set(&[ni, c, oy, ox], flat.get(&[row, c]));
                }
            }
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int::{IntFormat, Signedness};

    fn rand_mat(m: usize, n: usize, seed: u64) -> Tensor {
        Tensor::random_uniform(vec![m, n], -1.0, 1.0, seed)
    }

    #[test]
    fn f32_matmul_identity() {
        let a = rand_mat(4, 4, 1);
        let eye = Tensor::from_fn(vec![4, 4], |i| if i % 5 == 0 { 1.0 } else { 0.0 });
        assert_eq!(matmul_f32(&a, &eye), a);
    }

    #[test]
    fn emulated_fp16_close_to_f32() {
        let a = rand_mat(8, 32, 2);
        let b = rand_mat(32, 8, 3);
        let exact = matmul_f32(&a, &b);
        let (got, stats) = matmul_fp16(&a, &b, 64);
        assert_eq!(stats.macs, 8 * 32 * 8);
        assert!(got.max_rel_diff(&exact) < 5e-3, "diff {}", got.max_rel_diff(&exact));
    }

    #[test]
    fn emulated_hfp8_close_to_f32() {
        let a = rand_mat(8, 64, 4);
        let b = rand_mat(64, 8, 5);
        let exact = matmul_f32(&a, &b);
        let (fwd, _) = matmul_hfp8_fwd(&a, &b, 64);
        let (bwd, _) = matmul_hfp8_bwd(&a, &b, 64);
        // 3-bit / 2-bit mantissas: coarse but correlated.
        assert!(fwd.max_rel_diff(&exact) < 0.08, "fwd diff {}", fwd.max_rel_diff(&exact));
        assert!(bwd.max_rel_diff(&exact) < 0.15, "bwd diff {}", bwd.max_rel_diff(&exact));
    }

    #[test]
    fn int4_matmul_close_to_f32_for_uniform_data() {
        let a = rand_mat(8, 64, 6);
        let b = rand_mat(64, 8, 7);
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, a.max_abs());
        let qb = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, b.max_abs());
        let exact = matmul_f32(&a, &b);
        let (got, stats) = matmul_int(&a, &b, qa, qb, 64, );
        assert_eq!(stats.saturations, 0);
        assert!(got.max_rel_diff(&exact) < 0.25, "diff {}", got.max_rel_diff(&exact));
    }

    #[test]
    fn zero_gating_stats_reflect_sparsity() {
        let mut a = rand_mat(4, 32, 8);
        // Zero half of A's entries.
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let b = rand_mat(32, 4, 9);
        let (_, stats) = matmul_fp16(&a, &b, 64);
        let frac = stats.gated_fraction();
        assert!((frac - 0.5).abs() < 0.05, "gated fraction {frac}");
    }

    #[test]
    fn checked_matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 5]);
        assert!(matmul_f32_checked(&a, &b).is_err());
    }

    #[test]
    fn conv_matches_direct_computation() {
        // 1x1x3x3 input, 1x1x2x2 kernel, stride 1 pad 0.
        let input = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|x| x as f32).collect());
        let weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let out = conv2d_f32(&input, &weight, ConvSpec::unit());
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        // out[y][x] = in[y][x] + in[y+1][x+1]
        assert_eq!(out.get(&[0, 0, 0, 0]), 1.0 + 5.0);
        assert_eq!(out.get(&[0, 0, 0, 1]), 2.0 + 6.0);
        assert_eq!(out.get(&[0, 0, 1, 0]), 4.0 + 8.0);
        assert_eq!(out.get(&[0, 0, 1, 1]), 5.0 + 9.0);
    }

    #[test]
    fn conv_with_padding_and_stride() {
        let input = Tensor::random_uniform(vec![2, 3, 8, 8], -1.0, 1.0, 10);
        let weight = Tensor::random_uniform(vec![4, 3, 3, 3], -0.5, 0.5, 11);
        let spec = ConvSpec { stride: 2, pad: 1 };
        let out = conv2d_f32(&input, &weight, spec);
        assert_eq!(out.shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn emulated_conv_tracks_reference() {
        let input = Tensor::random_uniform(vec![1, 4, 6, 6], -1.0, 1.0, 12);
        let weight = Tensor::random_uniform(vec![8, 4, 3, 3], -0.5, 0.5, 13);
        let exact = conv2d_f32(&input, &weight, ConvSpec::unit());
        let (fp16, stats) = conv2d_emulated(&input, &weight, ConvSpec::unit(), FmaMode::Fp16, 64);
        assert_eq!(stats.macs as usize, 8 * 4 * 4 * 3 * 3 * 4);
        assert!(fp16.max_rel_diff(&exact) < 1e-2);
    }

    #[test]
    fn int_conv_runs_without_saturation() {
        let input = Tensor::random_uniform(vec![1, 8, 6, 6], 0.0, 1.0, 14);
        let weight = Tensor::random_uniform(vec![8, 8, 3, 3], -0.5, 0.5, 15);
        let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Unsigned, 1.0);
        let qw = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 0.5);
        let (out, stats) = conv2d_int(&input, &weight, ConvSpec::unit(), qa, qw, 64);
        assert_eq!(out.shape(), &[1, 8, 4, 4]);
        assert_eq!(stats.saturations, 0);
        let exact = conv2d_f32(&input, &weight, ConvSpec::unit());
        assert!(out.max_rel_diff(&exact) < 0.3);
    }
}
