//! INT4/INT2 fixed-point types and the FXU accumulation pipeline.
//!
//! Paper §III-A: the MPE's separate FXU pipeline supports 4- and 2-bit
//! integer MAC operations producing 16-bit integer results; chunk partial
//! sums (INT16) are then accumulated by the SFU. Quantized inference uses
//! per-tensor scale factors: activations via PACT (unsigned, clipped to a
//! learned α) and weights via SaWB (signed symmetric) — see `rapid-quant`.

use crate::NumericsError;

/// Width of a fixed-point element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntFormat {
    /// 4-bit integer.
    Int4,
    /// 2-bit integer.
    Int2,
}

impl IntFormat {
    /// Number of bits per element.
    pub fn bits(&self) -> u32 {
        match self {
            IntFormat::Int4 => 4,
            IntFormat::Int2 => 2,
        }
    }

    /// Inclusive signed range `(min, max)`. RaPiD uses the symmetric range
    /// (−7..7 for INT4) so that SaWB-binned weights negate exactly.
    pub fn signed_range(&self) -> (i32, i32) {
        match self {
            IntFormat::Int4 => (-7, 7),
            IntFormat::Int2 => (-1, 1),
        }
    }

    /// Inclusive unsigned range `(0, max)`, used for PACT activations.
    pub fn unsigned_range(&self) -> (i32, i32) {
        match self {
            IntFormat::Int4 => (0, 15),
            IntFormat::Int2 => (0, 3),
        }
    }

    /// Number of elements packed per byte.
    pub fn per_byte(&self) -> usize {
        (8 / self.bits()) as usize
    }
}

impl std::fmt::Display for IntFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntFormat::Int4 => write!(f, "int4"),
            IntFormat::Int2 => write!(f, "int2"),
        }
    }
}

/// Signedness of a quantized tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// Symmetric signed levels (weights).
    Signed,
    /// Unsigned levels starting at zero (PACT activations).
    Unsigned,
}

/// Per-tensor uniform quantization parameters: `real = scale * code`.
///
/// # Example
///
/// ```
/// use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
///
/// let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 3.5);
/// assert_eq!(q.quantize(3.5), 7);
/// assert_eq!(q.dequantize(7), 3.5);
/// assert_eq!(q.quantize(100.0), 7); // clamps
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    format: IntFormat,
    signedness: Signedness,
    scale: f32,
}

impl QuantParams {
    /// Builds parameters mapping `[-abs_max, abs_max]` (signed) or
    /// `[0, abs_max]` (unsigned) onto the code range.
    ///
    /// A non-positive or non-finite `abs_max` yields a degenerate scale of
    /// 1.0 (all-zero tensors quantize to zero codes).
    pub fn from_abs_max(format: IntFormat, signedness: Signedness, abs_max: f32) -> Self {
        let max_code = match signedness {
            Signedness::Signed => format.signed_range().1,
            Signedness::Unsigned => format.unsigned_range().1,
        } as f32;
        let scale = if abs_max.is_finite() && abs_max > 0.0 {
            abs_max / max_code
        } else {
            1.0
        };
        Self { format, signedness, scale }
    }

    /// Builds parameters with an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidFormat`] if `scale` is not a positive
    /// finite number.
    pub fn with_scale(
        format: IntFormat,
        signedness: Signedness,
        scale: f32,
    ) -> Result<Self, NumericsError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(NumericsError::InvalidFormat(format!(
                "quantization scale must be positive and finite, got {scale}"
            )));
        }
        Ok(Self { format, signedness, scale })
    }

    /// The element format.
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// The signedness of the code range.
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// The real value of one code step.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Inclusive code range `(min, max)`.
    pub fn code_range(&self) -> (i32, i32) {
        match self.signedness {
            Signedness::Signed => self.format.signed_range(),
            Signedness::Unsigned => self.format.unsigned_range(),
        }
    }

    /// Quantizes a real value to the nearest code, clamping to range.
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        let (lo, hi) = self.code_range();
        let code = (f64::from(x) / f64::from(self.scale)).round_ties_even() as i64;
        code.clamp(lo as i64, hi as i64) as i8
    }

    /// Quantizes a whole slice into `out` (cleared first). Element-wise
    /// identical to [`Self::quantize`] — on AVX2 machines the loop runs in
    /// a `target_feature` clone where `round_ties_even` lowers to a single
    /// `vroundpd` and the divide vectorizes, instead of the baseline
    /// build's per-element libm call; the computation itself is the same
    /// Rust expression, so codes never differ between the two.
    pub fn quantize_slice_into(&self, xs: &[f32], out: &mut Vec<i8>) {
        out.clear();
        out.reserve(xs.len());
        #[cfg(target_arch = "x86_64")]
        if crate::dispatch::simd_available() {
            // SAFETY: AVX2 presence checked on the line above.
            unsafe { self.quantize_slice_avx2(xs, out) };
            return;
        }
        out.extend(xs.iter().map(|&x| self.quantize(x)));
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn quantize_slice_avx2(&self, xs: &[f32], out: &mut Vec<i8>) {
        out.extend(xs.iter().map(|&x| self.quantize(x)));
    }

    /// Real value of a code.
    pub fn dequantize(&self, code: i8) -> f32 {
        self.scale * f32::from(code)
    }

    /// Quantize-dequantize: the value the hardware actually computes with.
    pub fn fake_quantize(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }
}

/// The FXU's chunked integer accumulator: products accumulate into an
/// INT16 register (saturating, as hardware registers do); chunk totals are
/// accumulated at INT32 by the SFU. With RaPiD's chunk sizes INT16 never
/// saturates for in-range INT4 data, which the tests verify.
///
/// # Example
///
/// ```
/// use rapid_numerics::int::IntAccumulator;
///
/// let mut acc = IntAccumulator::new(64);
/// for _ in 0..100 {
///     acc.mac(7, -7);
/// }
/// assert_eq!(acc.saturations(), 0);
/// assert_eq!(acc.finish(), -4900);
/// ```
#[derive(Debug, Clone)]
pub struct IntAccumulator {
    chunk_len: usize,
    in_chunk: usize,
    chunk_acc: i16,
    outer_acc: i64,
    macs: u64,
    zero_gated: u64,
    saturations: u64,
}

impl IntAccumulator {
    /// Creates an accumulator flushing the INT16 chunk register every
    /// `chunk_len` MACs.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    pub fn new(chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        Self {
            chunk_len,
            in_chunk: 0,
            chunk_acc: 0,
            outer_acc: 0,
            macs: 0,
            zero_gated: 0,
            saturations: 0,
        }
    }

    /// Multiply-accumulate one pair of integer codes.
    pub fn mac(&mut self, a: i8, b: i8) {
        self.macs += 1;
        if a == 0 || b == 0 {
            self.zero_gated += 1;
        } else {
            let p = i16::from(a) * i16::from(b);
            let (sum, overflow) = self.chunk_acc.overflowing_add(p);
            if overflow {
                self.saturations += 1;
                self.chunk_acc = if p > 0 { i16::MAX } else { i16::MIN };
            } else {
                self.chunk_acc = sum;
            }
        }
        self.in_chunk += 1;
        if self.in_chunk == self.chunk_len {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        self.outer_acc += i64::from(self.chunk_acc);
        self.chunk_acc = 0;
        self.in_chunk = 0;
    }

    /// Current value of the INT16 chunk register (fault-injection hooks and
    /// numeric guards inspect it between MACs).
    pub fn chunk_value(&self) -> i16 {
        self.chunk_acc
    }

    /// Applies `f` to the chunk register in place — the entry point for
    /// injected chunk-register upsets and for guard-policy clamping. Leaves
    /// every statistic untouched.
    pub fn corrupt_chunk(&mut self, f: impl FnOnce(i16) -> i16) {
        self.chunk_acc = f(self.chunk_acc);
    }

    /// Total MACs issued.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// MACs bypassed by zero-gating.
    pub fn zero_gated(&self) -> u64 {
        self.zero_gated
    }

    /// Number of INT16 chunk-register saturations observed (should be zero
    /// for hardware-legal chunk lengths).
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Flushes and returns the integer sum.
    pub fn finish(mut self) -> i64 {
        self.flush_chunk();
        self.outer_acc
    }
}

/// Packs integer codes into bytes at the format's density (storage /
/// bandwidth modeling; the layout matches the 32-bit West-link operand
/// bundles of §III-A).
pub fn pack_codes(format: IntFormat, codes: &[i8]) -> Vec<u8> {
    let per = format.per_byte();
    let bits = format.bits();
    let mask = (1u16 << bits) - 1;
    let mut out = Vec::with_capacity(codes.len().div_ceil(per));
    for chunk in codes.chunks(per) {
        let mut byte = 0u16;
        for (i, &c) in chunk.iter().enumerate() {
            byte |= ((c as u16) & mask) << (i as u32 * bits);
        }
        out.push(byte as u8);
    }
    out
}

/// Unpacks bytes produced by [`pack_codes`] back into sign-extended codes.
pub fn unpack_codes(format: IntFormat, bytes: &[u8], len: usize) -> Vec<i8> {
    let per = format.per_byte();
    let bits = format.bits();
    let mask = (1u8 << bits) - 1;
    let sign_bit = 1u8 << (bits - 1);
    let mut out = Vec::with_capacity(len);
    'outer: for &b in bytes {
        for i in 0..per {
            if out.len() == len {
                break 'outer;
            }
            let raw = (b >> (i as u32 * bits)) & mask;
            let val = if raw & sign_bit != 0 {
                (raw as i8) | !(mask as i8)
            } else {
                raw as i8
            };
            out.push(val);
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn int4_ranges() {
        assert_eq!(IntFormat::Int4.signed_range(), (-7, 7));
        assert_eq!(IntFormat::Int4.unsigned_range(), (0, 15));
        assert_eq!(IntFormat::Int4.per_byte(), 2);
        assert_eq!(IntFormat::Int2.per_byte(), 4);
    }

    #[test]
    fn quantize_roundtrip_all_codes() {
        let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
        for code in -7i8..=7 {
            assert_eq!(q.quantize(q.dequantize(code)), code);
        }
    }

    #[test]
    fn quantize_clamps_out_of_range() {
        let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Unsigned, 6.0);
        assert_eq!(q.quantize(-3.0), 0);
        assert_eq!(q.quantize(1e9), 15);
    }

    #[test]
    fn degenerate_abs_max_is_safe() {
        let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 0.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.scale(), 1.0);
        assert!(QuantParams::with_scale(IntFormat::Int4, Signedness::Signed, 0.0).is_err());
        assert!(QuantParams::with_scale(IntFormat::Int4, Signedness::Signed, f32::NAN).is_err());
    }

    #[test]
    fn accumulator_exact_for_legal_chunks() {
        // Worst case INT4: 64 MACs of 7*7 = 3136 < i16::MAX — the paper's
        // INT16 chunk register never saturates at the dataflow chunk size.
        let mut acc = IntAccumulator::new(64);
        for _ in 0..64 * 100 {
            acc.mac(7, 7);
        }
        assert_eq!(acc.saturations(), 0);
        assert_eq!(acc.finish(), 49 * 6400);
    }

    #[test]
    fn accumulator_saturates_when_chunk_too_long() {
        // 7*7*700 = 34_300 > 32_767: an illegal chunk length saturates.
        let mut acc = IntAccumulator::new(1024);
        for _ in 0..700 {
            acc.mac(7, 7);
        }
        assert!(acc.saturations() > 0);
    }

    #[test]
    fn accumulator_zero_gating() {
        let mut acc = IntAccumulator::new(16);
        acc.mac(0, 5);
        acc.mac(3, 0);
        acc.mac(2, 2);
        assert_eq!(acc.zero_gated(), 2);
        assert_eq!(acc.finish(), 4);
    }

    #[test]
    fn pack_unpack_roundtrip_int4() {
        let codes: Vec<i8> = (-7..=7).collect();
        let packed = pack_codes(IntFormat::Int4, &codes);
        assert_eq!(packed.len(), 8); // 15 codes -> 8 bytes
        let unpacked = unpack_codes(IntFormat::Int4, &packed, codes.len());
        assert_eq!(unpacked, codes);
    }

    #[test]
    fn pack_unpack_roundtrip_int2() {
        let codes: Vec<i8> = vec![-1, 0, 1, 1, -1, -1, 0];
        let packed = pack_codes(IntFormat::Int2, &codes);
        assert_eq!(packed.len(), 2);
        let unpacked = unpack_codes(IntFormat::Int2, &packed, codes.len());
        assert_eq!(unpacked, codes);
    }

    #[test]
    fn rne_at_code_boundaries() {
        let q = QuantParams::with_scale(IntFormat::Int4, Signedness::Signed, 1.0).unwrap();
        assert_eq!(q.quantize(0.5), 0); // tie to even
        assert_eq!(q.quantize(1.5), 2);
        assert_eq!(q.quantize(2.5), 2);
        assert_eq!(q.quantize(-0.5), 0);
        assert_eq!(q.quantize(-1.5), -2);
    }
}
