//! Runtime kernel-backend selection for the emulated GEMM/conv fast paths.
//!
//! PR 1's tiled fast paths are portable scalar Rust; this module decides,
//! per call and per format, whether the explicitly vectorized backends
//! ([`crate::simd`], [`crate::bitslice`]) run instead:
//!
//! * the `RAPID_SIMD` environment knob (`auto` | `force` | `off`) — `auto`
//!   (the default) uses vector kernels only when the CPU supports them and
//!   the problem is large enough to amortize setup; `force` uses them
//!   whenever the CPU supports them; `off` pins the portable tiled paths;
//! * capability detection — the float and INT4 vector kernels need AVX2
//!   (`x86_64` only, checked at runtime); the bit-sliced INT2 kernel is
//!   portable `u64` popcount code and only obeys the knob and size gate;
//! * bit-exactness is *not* a selection concern: every backend reproduces
//!   the scalar references bit-for-bit (`tests/fastpath_bitexact.rs` runs
//!   the whole suite under `force` and `off`), so selection is purely a
//!   performance decision.
//!
//! [`kernel_matrix`] reports the decision per RaPiD format, with the
//! reason, for telemetry (`numerics_validation` prints it and stamps it
//! into `rapid-bench-v1` records).

use crate::int::{IntFormat, QuantParams, Signedness};

/// Vectorization policy, normally read from `RAPID_SIMD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Vector kernels when supported and the problem is large enough.
    #[default]
    Auto,
    /// Vector kernels whenever the CPU supports them, regardless of size.
    Force,
    /// Portable tiled fast paths only.
    Off,
}

impl SimdMode {
    /// Parses `RAPID_SIMD` (`auto` | `force` | `off`, case-insensitive;
    /// unset or unrecognized values mean `auto`).
    pub fn from_env() -> Self {
        match std::env::var("RAPID_SIMD").ok().as_deref().map(str::trim) {
            Some(s) if s.eq_ignore_ascii_case("force") => SimdMode::Force,
            Some(s) if s.eq_ignore_ascii_case("off") || s == "0" => SimdMode::Off,
            _ => SimdMode::Auto,
        }
    }

    /// The knob value as it would be spelled in the environment.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdMode::Auto => "auto",
            SimdMode::Force => "force",
            SimdMode::Off => "off",
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether the AVX2 vector kernels can run on this machine.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the bit-sliced kernel can use the hardware popcount
/// instruction (it falls back to the portable `count_ones` otherwise).
pub fn popcnt_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Below this many MACs, `auto` keeps the tiled paths: the vector kernels
/// pay for operand interleaving / plane packing, which only amortizes on
/// reasonably sized problems.
pub(crate) const AUTO_MIN_MACS: u64 = 4096;

/// Beyond this reduction depth the INT4 madd kernel's per-lane i32
/// accumulator could overflow (worst case ≈ 450·k/16 per lane), so `auto`
/// and `force` both fall back to the tiled path. Far beyond any model
/// layer; the bound is conservative by ~3 decimal orders.
pub(crate) const MADD_MAX_K: usize = 1 << 24;

/// Whether a float GEMM of `macs` total MACs should take the AVX2 kernels.
pub(crate) fn float_use_simd(mode: SimdMode, macs: u64) -> bool {
    match mode {
        SimdMode::Off => false,
        SimdMode::Force => simd_available(),
        SimdMode::Auto => simd_available() && macs >= AUTO_MIN_MACS,
    }
}

/// Integer kernel choice for a (non-saturating) quantized GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IntKernel {
    /// Packed-panel tiled path (PR 1).
    Tiled,
    /// AVX2 widening multiply-add over i8 codes.
    Madd,
    /// Popcount over packed bit-planes (both operands INT2; portable).
    BitSliced,
}

/// Selects the integer kernel: bit-sliced when both operands are INT2
/// (portable, no feature gate beyond the knob), the AVX2 madd kernel for
/// wider codes, tiled otherwise.
pub(crate) fn int_kernel(mode: SimdMode, macs: u64, k: usize, both_int2: bool) -> IntKernel {
    let want = match mode {
        SimdMode::Off => false,
        SimdMode::Force => true,
        SimdMode::Auto => macs >= AUTO_MIN_MACS,
    };
    if !want {
        IntKernel::Tiled
    } else if both_int2 {
        IntKernel::BitSliced
    } else if simd_available() && k <= MADD_MAX_K {
        IntKernel::Madd
    } else {
        IntKernel::Tiled
    }
}

/// Which implementation family actually computes a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Accumulator-driven reference loop (selected only when the INT16
    /// chunk guard makes saturation possible, so it must be modeled).
    Scalar,
    /// Portable tiled + register-blocked fast path (PR 1).
    Tiled,
    /// AVX2 vector kernel (16-lane float MAC / widening madd).
    Simd,
    /// Popcount over packed INT2 bit-planes.
    BitSliced,
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Tiled => "tiled",
            KernelBackend::Simd => "simd",
            KernelBackend::BitSliced => "bit-sliced",
        })
    }
}

/// One row of the kernel-selection matrix: which backend a format's GEMM
/// takes at a given shape, and why.
#[derive(Debug, Clone)]
pub struct KernelChoice {
    /// Format label (`fp16`, `hfp8_fwd`, `hfp8_bwd`, `int4`, `int2`).
    pub format: &'static str,
    /// Selected backend.
    pub backend: KernelBackend,
    /// Human-readable selection rationale.
    pub reason: String,
}

fn float_choice(format: &'static str, mode: SimdMode, macs: u64) -> KernelChoice {
    let (backend, reason) = if float_use_simd(mode, macs) {
        let how = if format == "fp16" {
            "avx2 16-lane FP16 MAC with vectorized DLFloat rounding"
        } else {
            "avx2 16-lane MAC on LUT-factored FP9 operands, vectorized DLFloat rounding"
        };
        (KernelBackend::Simd, format!("{how} (RAPID_SIMD={mode})"))
    } else {
        (KernelBackend::Tiled, float_fallback_reason(mode))
    };
    KernelChoice { format, backend, reason }
}

fn float_fallback_reason(mode: SimdMode) -> String {
    match mode {
        SimdMode::Off => "RAPID_SIMD=off pins the portable tiled path".to_string(),
        _ if !simd_available() => format!("AVX2 unavailable on this CPU (RAPID_SIMD={mode})"),
        _ => format!("below the {AUTO_MIN_MACS}-MAC auto threshold (RAPID_SIMD={mode})"),
    }
}

fn int_choice(
    format: &'static str,
    fmt: IntFormat,
    mode: SimdMode,
    k: usize,
    chunk_len: usize,
    macs: u64,
) -> KernelChoice {
    let q = QuantParams::from_abs_max(fmt, Signedness::Signed, 1.0);
    if crate::gemm::int_saturation_possible(q, q, k, chunk_len) {
        return KernelChoice {
            format,
            backend: KernelBackend::Scalar,
            reason: format!(
                "chunk_len={chunk_len} makes INT16 saturation possible: saturating scalar accumulator"
            ),
        };
    }
    let (backend, reason) = match int_kernel(mode, macs, k, fmt == IntFormat::Int2) {
        IntKernel::BitSliced => {
            let pop = if popcnt_available() { "hardware popcount" } else { "portable popcount" };
            (
                KernelBackend::BitSliced,
                format!("bit-sliced planes, {pop} (RAPID_SIMD={mode})"),
            )
        }
        IntKernel::Madd => (
            KernelBackend::Simd,
            format!("avx2 widening madd i8→i16→i32 (RAPID_SIMD={mode})"),
        ),
        IntKernel::Tiled => (KernelBackend::Tiled, float_fallback_reason(mode)),
    };
    KernelChoice { format, backend, reason }
}

/// Kernel-selection matrix at the canonical 128³ / chunk-64 benchmark
/// shape, honoring the current `RAPID_SIMD` environment.
pub fn kernel_matrix() -> Vec<KernelChoice> {
    kernel_matrix_at(SimdMode::from_env(), 128, 64)
}

/// Kernel-selection matrix for a cube GEMM of side `dim` with the given
/// accumulation chunk, under an explicit mode.
pub fn kernel_matrix_at(mode: SimdMode, dim: usize, chunk_len: usize) -> Vec<KernelChoice> {
    let macs = (dim * dim * dim) as u64;
    vec![
        float_choice("fp16", mode, macs),
        float_choice("hfp8_fwd", mode, macs),
        float_choice("hfp8_bwd", mode, macs),
        int_choice("int4", IntFormat::Int4, mode, dim, chunk_len, macs),
        int_choice("int2", IntFormat::Int2, mode, dim, chunk_len, macs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_pins_tiled() {
        for c in kernel_matrix_at(SimdMode::Off, 128, 64) {
            assert_eq!(c.backend, KernelBackend::Tiled, "{}: {}", c.format, c.reason);
        }
    }

    #[test]
    fn int2_bitsliced_under_force() {
        let m = kernel_matrix_at(SimdMode::Force, 128, 64);
        let int2 = m.iter().find(|c| c.format == "int2");
        assert_eq!(int2.map(|c| c.backend), Some(KernelBackend::BitSliced));
    }

    #[test]
    fn saturating_chunk_reports_scalar() {
        // INT4 signed worst product 49; window 1024 → 50_176 > i16::MAX.
        let m = kernel_matrix_at(SimdMode::Force, 1024, 1024);
        let int4 = m.iter().find(|c| c.format == "int4");
        assert_eq!(int4.map(|c| c.backend), Some(KernelBackend::Scalar));
    }

    #[test]
    fn auto_respects_size_threshold() {
        let m = kernel_matrix_at(SimdMode::Auto, 4, 64);
        for c in m {
            assert_ne!(c.backend, KernelBackend::Simd, "{}: {}", c.format, c.reason);
            assert_ne!(c.backend, KernelBackend::BitSliced, "{}: {}", c.format, c.reason);
        }
    }

    #[test]
    fn mode_parses_roundtrip() {
        assert_eq!(SimdMode::default(), SimdMode::Auto);
        assert_eq!(SimdMode::Force.as_str(), "force");
        assert_eq!(format!("{}", SimdMode::Off), "off");
    }
}
