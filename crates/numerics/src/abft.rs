//! Algorithm-based fault tolerance (ABFT) for the emulated GEMM kernels.
//!
//! Huang & Abraham's checksum scheme (IEEE ToC 1984): augment `C = A·B`
//! with a reference row-sum vector `R[i] = Σ_j C[i][j]` and column-sum
//! vector `S[j] = Σ_i C[i][j]`, both computable from the *inputs* in
//! O(m·k + k·n) — without materializing a second product. A fault in
//! output element `(i, j)` perturbs `R[i]` and `S[j]`; the intersection of
//! the disagreeing row and column locates it, and a clean recompute of the
//! located element repairs it. The overhead is one extra dot product per
//! output row and column plus the occasional O(k) repair — a small
//! fraction of the 3× tax modular redundancy pays for the same single-
//! fault coverage.
//!
//! Two format families, two contracts:
//!
//! * **Integer paths (INT4, INT2)** — everything is exact. Checksums run
//!   in `i64` over the quantized codes, the faulty product's integer dot
//!   values are recovered exactly from the `f32` output (the legal-chunk
//!   precondition keeps them small), residuals are exactly zero fault-free,
//!   and any flagged element is repaired **bit-exactly** by a clean
//!   [`IntAccumulator`] recompute.
//! * **Float paths (FP16, both FP8s)** — the emulated datapath accumulates
//!   with FP16 roundings, so observed and reference sums legitimately
//!   disagree by accumulated roundoff. The detector uses an
//!   accumulation-bound-derived tolerance (see [`fp_tolerance_factor`]):
//!   residuals within the bound are indistinguishable from rounding and
//!   pass; residuals beyond it flag the row/column and the flagged
//!   elements are repaired bit-exactly by a clean [`ChunkAccumulator`]
//!   recompute. Sub-tolerance upsets (a low mantissa bit of one operand)
//!   are *by construction* smaller than the datapath's own rounding noise.
//!
//! Checksums themselves run in `f64`/`i64` host arithmetic — modeling the
//! hardened, higher-precision checksum unit an ABFT-protected accelerator
//! dedicates to the job (the unit is tiny: one FMA per column per cycle).

use crate::accumulate::ChunkAccumulator;
use crate::error::NumericsError;
use crate::fma::FmaMode;
use crate::gemm::{matmul_emulated_guarded, matmul_int_guarded, GemmStats};
use crate::guard::GuardPolicy;
use crate::int::{IntAccumulator, QuantParams};
use crate::tensor::Tensor;
use rapid_fault::FaultPlan;

/// Unit roundoff of the FP16 (1,6,9) accumulator: 9 explicit mantissa bits
/// ⇒ half-ulp relative error `2⁻¹⁰` per rounding.
const FP16_UNIT_ROUNDOFF: f64 = 1.0 / 1024.0;

/// Safety margin over the worst-case accumulation bound. The bound itself
/// is already conservative (it charges every rounding the worst case);
/// the margin absorbs the difference between the f64 checksum reference
/// and the FP16-rounded datapath on pathological cancellation patterns.
const FP_TOLERANCE_MARGIN: f64 = 4.0;

/// What one ABFT-protected GEMM observed: the cost of the checksums, what
/// the detector flagged, and how much repair work was done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbftReport {
    /// MACs issued by the protected (faulty) product itself.
    pub base_macs: u64,
    /// Checksum-unit operations (input checksum dots + output row/column
    /// sums), the fixed price of protection.
    pub checksum_macs: u64,
    /// MACs spent recomputing flagged elements cleanly.
    pub recompute_macs: u64,
    /// Output rows whose checksum residual exceeded tolerance.
    pub detected_rows: u64,
    /// Output columns whose checksum residual exceeded tolerance.
    pub detected_cols: u64,
    /// Output elements overwritten with a clean recompute.
    pub corrections: u64,
}

impl AbftReport {
    /// Total compute relative to the unprotected product:
    /// `(base + checksum + recompute) / base`. Redundancy-3 voting costs
    /// 3.0 on the same scale.
    pub fn overhead_ratio(&self) -> f64 {
        if self.base_macs == 0 {
            return 1.0;
        }
        (self.base_macs + self.checksum_macs + self.recompute_macs) as f64
            / self.base_macs as f64
    }

    /// Folds another report into this one (per-layer reports → per-run).
    pub fn merge(&mut self, other: AbftReport) {
        self.base_macs += other.base_macs;
        self.checksum_macs += other.checksum_macs;
        self.recompute_macs += other.recompute_macs;
        self.detected_rows += other.detected_rows;
        self.detected_cols += other.detected_cols;
        self.corrections += other.corrections;
    }

    /// Accumulates the report into a metrics registry under `<prefix>.*`.
    pub fn record_into(&self, reg: &mut rapid_telemetry::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.base_macs"), self.base_macs);
        reg.add(&format!("{prefix}.checksum_macs"), self.checksum_macs);
        reg.add(&format!("{prefix}.recompute_macs"), self.recompute_macs);
        reg.add(&format!("{prefix}.detected_rows"), self.detected_rows);
        reg.add(&format!("{prefix}.detected_cols"), self.detected_cols);
        reg.add(&format!("{prefix}.corrections"), self.corrections);
    }

    /// Reads back a report written by [`AbftReport::record_into`].
    pub fn from_registry(reg: &rapid_telemetry::MetricsRegistry, prefix: &str) -> Self {
        Self {
            base_macs: reg.counter(&format!("{prefix}.base_macs")),
            checksum_macs: reg.counter(&format!("{prefix}.checksum_macs")),
            recompute_macs: reg.counter(&format!("{prefix}.recompute_macs")),
            detected_rows: reg.counter(&format!("{prefix}.detected_rows")),
            detected_cols: reg.counter(&format!("{prefix}.detected_cols")),
            corrections: reg.counter(&format!("{prefix}.corrections")),
        }
    }
}

/// Worst-case relative accumulation error of the chunked FP16 datapath for
/// a length-`k` dot product: every MAC rounds once, every chunk boundary
/// rounds once, plus the final write-back. Multiplied by the sum of
/// absolute products it bounds `|emulated − exact|`.
pub fn fp_tolerance_factor(k: usize, chunk_len: usize) -> f64 {
    let roundings = k + k / chunk_len.max(1) + 2;
    FP_TOLERANCE_MARGIN * FP16_UNIT_ROUNDOFF * roundings as f64
}

/// The cells the locator selects for repair: every cell of every flagged
/// row plus every cell of every flagged column (a union, deduplicated).
///
/// The union — not the flagged-rows × flagged-cols intersection — is
/// deliberate: with multiple faults, the errors in one row can cancel in
/// that row's sum while each still flags its column (and vice versa), so
/// an intersection repair would skip exactly the cells that need it. The
/// union costs O(f·(m+n)) recomputes for f flagged lines, preserving the
/// O(m+n) overhead contract.
fn repair_cells(
    rows: &[usize],
    cols: &[usize],
    m: usize,
    n: usize,
) -> Vec<(usize, usize)> {
    let mut cells = std::collections::BTreeSet::new();
    for &i in rows {
        for j in 0..n {
            cells.insert((i, j));
        }
    }
    for &j in cols {
        for i in 0..m {
            cells.insert((i, j));
        }
    }
    cells.into_iter().collect()
}

/// Whether a checksum residual breaks its rounding bound. A NaN residual
/// is incomparable — and a fault that poisoned the sums must still flag —
/// so "not provably within bound" counts as exceeding it.
fn residual_exceeds(residual: f64, bound: f64) -> bool {
    use std::cmp::Ordering;
    !matches!(residual.partial_cmp(&bound), Some(Ordering::Less | Ordering::Equal))
}

/// ABFT-protected emulated float GEMM (FP16 / HFP8 modes).
///
/// Runs the fault-injectable datapath under [`GuardPolicy::Propagate`] (a
/// protected unit wants faults to *reach the checksums*, not trap), then
/// verifies row/column checksums against input-derived references and
/// repairs every flagged element with a clean scalar recompute. With
/// `faults == None` the product is the bit-exact fast path and the
/// checksums merely confirm it.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on incompatible operands.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (a configuration bug, not a data error).
pub fn abft_matmul_emulated(
    mode: FmaMode,
    a: &Tensor,
    b: &Tensor,
    chunk_len: usize,
    faults: Option<&mut FaultPlan>,
) -> Result<(Tensor, GemmStats, AbftReport), NumericsError> {
    let (mut out, stats) =
        matmul_emulated_guarded(mode, a, b, chunk_len, GuardPolicy::Propagate, faults)?;
    let (m, n) = (out.shape()[0], out.shape()[1]);
    let k = a.shape()[1];
    let mut report = AbftReport { base_macs: stats.macs, ..AbftReport::default() };

    // Quantized operand lattices — identical to what the datapath used.
    let (fa, fb) = mode.operand_formats();
    let qa: Vec<f64> = a.as_slice().iter().map(|&x| f64::from(fa.quantize(x))).collect();
    let qb: Vec<f64> = b.as_slice().iter().map(|&x| f64::from(fb.quantize(x))).collect();

    // Input-side checksum references, f64 checksum unit:
    //   row_ref[i] = Σ_p qa[i][p] · (Σ_j qb[p][j])   (m·k MACs after k·n adds)
    //   col_ref[j] = Σ_p (Σ_i qa[i][p]) · qb[p][j]   (k·n MACs after m·k adds)
    // plus per-element |·| envelopes for the rounding tolerance.
    let mut row_sum_b = vec![0.0f64; k];
    let mut abs_row_sum_b = vec![0.0f64; k];
    for p in 0..k {
        for j in 0..n {
            let v = qb[p * n + j];
            row_sum_b[p] += v;
            abs_row_sum_b[p] += v.abs();
        }
    }
    let mut col_sum_a = vec![0.0f64; k];
    let mut abs_col_sum_a = vec![0.0f64; k];
    for i in 0..m {
        for p in 0..k {
            let v = qa[i * k + p];
            col_sum_a[p] += v;
            abs_col_sum_a[p] += v.abs();
        }
    }
    let tol = fp_tolerance_factor(k, chunk_len);
    let mut flagged_rows = Vec::new();
    for i in 0..m {
        let mut reference = 0.0f64;
        let mut envelope = 0.0f64;
        for p in 0..k {
            reference += qa[i * k + p] * row_sum_b[p];
            envelope += qa[i * k + p].abs() * abs_row_sum_b[p];
        }
        let observed: f64 = out.as_slice()[i * n..(i + 1) * n].iter().map(|&v| f64::from(v)).sum();
        if residual_exceeds((observed - reference).abs(), tol * envelope) {
            flagged_rows.push(i);
        }
    }
    let mut flagged_cols = Vec::new();
    for j in 0..n {
        let mut reference = 0.0f64;
        let mut envelope = 0.0f64;
        for p in 0..k {
            reference += col_sum_a[p] * qb[p * n + j];
            envelope += abs_col_sum_a[p] * qb[p * n + j].abs();
        }
        let observed: f64 =
            (0..m).map(|i| f64::from(out.as_slice()[i * n + j])).sum();
        if residual_exceeds((observed - reference).abs(), tol * envelope) {
            flagged_cols.push(j);
        }
    }
    report.checksum_macs = (2 * m * k + 2 * k * n + 2 * m * n) as u64;
    report.detected_rows = flagged_rows.len() as u64;
    report.detected_cols = flagged_cols.len() as u64;

    // Repair: clean scalar recompute of the located cells. The scalar
    // datapath is bit-exact vs the fast path, so a repaired element is
    // indistinguishable from a fault-free one.
    let qa32: Vec<f32> = qa.iter().map(|&x| x as f32).collect();
    let qb32: Vec<f32> = qb.iter().map(|&x| x as f32).collect();
    let od = out.as_mut_slice();
    for (i, j) in repair_cells(&flagged_rows, &flagged_cols, m, n) {
        let mut acc = ChunkAccumulator::new(mode, chunk_len);
        for p in 0..k {
            acc.mac(qa32[i * k + p], qb32[p * n + j]);
        }
        let clean = acc.finish();
        report.recompute_macs += k as u64;
        if od[i * n + j].to_bits() != clean.to_bits() {
            report.corrections += 1;
        }
        od[i * n + j] = clean;
    }
    Ok((out, stats, report))
}

/// ABFT-protected integer GEMM (INT4 / INT2 through the FXU pipeline).
///
/// Checksums are exact `i64` arithmetic over the quantized codes, so the
/// residual of a fault-free product is exactly zero and *any* injected
/// fault that changes an output element is detected — and repaired
/// bit-exactly by a clean [`IntAccumulator`] recompute.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on incompatible operands.
///
/// # Panics
///
/// Panics if `chunk_len == 0`, or if the (chunk length, format) pair
/// permits clean-path INT16 chunk saturation or an integer dot beyond
/// `f32`'s exact range — both configuration bugs: ABFT's exact-residual
/// contract requires a hardware-legal configuration.
pub fn abft_matmul_int(
    a: &Tensor,
    b: &Tensor,
    qa: QuantParams,
    qb: QuantParams,
    chunk_len: usize,
    faults: Option<&mut FaultPlan>,
) -> Result<(Tensor, GemmStats, AbftReport), NumericsError> {
    let (mut out, stats) =
        matmul_int_guarded(a, b, qa, qb, chunk_len, GuardPolicy::Propagate, faults)?;
    let (m, n) = (out.shape()[0], out.shape()[1]);
    let k = a.shape()[1];
    let worst = |p: QuantParams| {
        let (lo, hi) = p.code_range();
        i64::from(lo.unsigned_abs().max(hi.unsigned_abs()))
    };
    let window = chunk_len.min(k.max(1)) as i64;
    assert!(
        window * worst(qa) * worst(qb) <= i64::from(i16::MAX),
        "ABFT INT requires a hardware-legal chunk length (no clean-path saturation)"
    );
    assert!(
        (k as i64) * worst(qa) * worst(qb) < (1i64 << 24),
        "ABFT INT requires dot products within f32's exact integer range"
    );
    let mut report = AbftReport { base_macs: stats.macs, ..AbftReport::default() };

    let ca: Vec<i8> = a.as_slice().iter().map(|&x| qa.quantize(x)).collect();
    let cb: Vec<i8> = b.as_slice().iter().map(|&x| qb.quantize(x)).collect();
    let out_scale = qa.scale() * qb.scale();

    // Recover each output element's integer dot exactly: the clean value
    // is `dot as f32 * out_scale`, and dot is within f32's exact range.
    // A faulty element may recover to a wrong (or non-integral) dot —
    // that is precisely what the exact residual catches.
    let dot_of = |v: f32| -> i64 { (f64::from(v) / f64::from(out_scale)).round() as i64 };

    let mut row_sum_b = vec![0i64; k];
    for p in 0..k {
        for j in 0..n {
            row_sum_b[p] += i64::from(cb[p * n + j]);
        }
    }
    let mut col_sum_a = vec![0i64; k];
    for i in 0..m {
        for p in 0..k {
            col_sum_a[p] += i64::from(ca[i * k + p]);
        }
    }
    let mut flagged_rows = Vec::new();
    for i in 0..m {
        let reference: i64 =
            (0..k).map(|p| i64::from(ca[i * k + p]) * row_sum_b[p]).sum();
        let observed: i64 = out.as_slice()[i * n..(i + 1) * n]
            .iter()
            .map(|&v| if v.is_finite() { dot_of(v) } else { i64::MAX / 4 })
            .sum();
        if observed != reference {
            flagged_rows.push(i);
        }
    }
    let mut flagged_cols = Vec::new();
    for j in 0..n {
        let reference: i64 = (0..k).map(|p| col_sum_a[p] * i64::from(cb[p * n + j])).sum();
        let observed: i64 = (0..m)
            .map(|i| {
                let v = out.as_slice()[i * n + j];
                if v.is_finite() {
                    dot_of(v)
                } else {
                    i64::MAX / 4
                }
            })
            .sum();
        if observed != reference {
            flagged_cols.push(j);
        }
    }
    report.checksum_macs = (2 * m * k + 2 * k * n + 2 * m * n) as u64;
    report.detected_rows = flagged_rows.len() as u64;
    report.detected_cols = flagged_cols.len() as u64;

    let od = out.as_mut_slice();
    for (i, j) in repair_cells(&flagged_rows, &flagged_cols, m, n) {
        let mut acc = IntAccumulator::new(chunk_len);
        for p in 0..k {
            acc.mac(ca[i * k + p], cb[p * n + j]);
        }
        let clean = acc.finish() as f32 * out_scale;
        report.recompute_macs += k as u64;
        if od[i * n + j].to_bits() != clean.to_bits() {
            report.corrections += 1;
        }
        od[i * n + j] = clean;
    }
    Ok((out, stats, report))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::gemm::{matmul_emulated, matmul_int};
    use crate::int::{IntFormat, Signedness};
    use rapid_fault::FaultConfig;

    fn tensors(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
        let a = Tensor::random_uniform(vec![m, k], -2.0, 2.0, seed);
        let b = Tensor::random_uniform(vec![k, n], -2.0, 2.0, seed ^ 0xABCD);
        (a, b)
    }

    #[test]
    fn fault_free_fp_product_is_untouched() {
        for mode in [FmaMode::Fp16, FmaMode::hfp8_fwd_default(), FmaMode::hfp8_bwd_default()] {
            let (a, b) = tensors(9, 17, 11, 3);
            let (clean, _) = matmul_emulated(mode, &a, &b, 4);
            let (c, _, rep) = abft_matmul_emulated(mode, &a, &b, 4, None).unwrap();
            assert_eq!(c.as_slice(), clean.as_slice(), "{mode:?}");
            assert_eq!(rep.corrections, 0);
            assert_eq!(rep.detected_rows, 0, "{mode:?}: false positive rows");
            assert_eq!(rep.detected_cols, 0, "{mode:?}: false positive cols");
            assert!(rep.overhead_ratio() < 2.0, "{}", rep.overhead_ratio());
        }
    }

    #[test]
    fn fault_free_int_product_is_untouched() {
        for fmt in [IntFormat::Int4, IntFormat::Int2] {
            let (a, b) = tensors(8, 16, 10, 5);
            let p = QuantParams::from_abs_max(fmt, Signedness::Signed, 2.0);
            let (clean, _) = matmul_int(&a, &b, p, p, 4);
            let (c, _, rep) = abft_matmul_int(&a, &b, p, p, 4, None).unwrap();
            assert_eq!(c.as_slice(), clean.as_slice(), "{fmt:?}");
            assert_eq!(rep.corrections + rep.detected_rows + rep.detected_cols, 0);
        }
    }

    #[test]
    fn injected_fp_faults_are_repaired() {
        let mode = FmaMode::hfp8_fwd_default();
        let (a, b) = tensors(12, 24, 12, 11);
        let (clean, _) = matmul_emulated(mode, &a, &b, 4);
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 99,
            mac_acc_rate: 2e-3,
            mac_operand_rate: 1e-3,
            ..FaultConfig::default()
        });
        let (c, _, rep) =
            abft_matmul_emulated(mode, &a, &b, 4, Some(&mut plan)).unwrap();
        assert!(plan.counts().mac_acc_flips + plan.counts().mac_operand_flips > 0);
        assert!(rep.base_macs > 0 && rep.checksum_macs > 0);
        // Contract: every element is either bit-exact clean or within the
        // datapath's own rounding envelope of it.
        let tol = fp_tolerance_factor(24, 4);
        for (idx, (&got, &want)) in c.as_slice().iter().zip(clean.as_slice()).enumerate() {
            let envelope = tol * f64::from(want.abs()).max(1.0) * 24.0;
            assert!(
                got.to_bits() == want.to_bits()
                    || f64::from((got - want).abs()) <= envelope,
                "element {idx}: got {got}, clean {want}"
            );
        }
    }

    #[test]
    fn injected_int_faults_are_repaired_bit_exactly() {
        for fmt in [IntFormat::Int4, IntFormat::Int2] {
            let (a, b) = tensors(10, 20, 10, 13);
            let p = QuantParams::from_abs_max(fmt, Signedness::Signed, 2.0);
            let (clean, _) = matmul_int(&a, &b, p, p, 4);
            let mut plan = FaultPlan::new(FaultConfig {
                seed: 7,
                mac_operand_rate: 2e-3,
                mac_acc_rate: 2e-3,
                ..FaultConfig::default()
            });
            let (c, _, rep) = abft_matmul_int(&a, &b, p, p, 4, Some(&mut plan)).unwrap();
            assert!(plan.counts().int_code_flips + plan.counts().int_chunk_flips > 0);
            assert_eq!(c.as_slice(), clean.as_slice(), "{fmt:?}: repair must be bit-exact");
            assert!(rep.corrections > 0 || c.as_slice() == clean.as_slice());
        }
    }

    #[test]
    fn overhead_is_linear_not_triplicate() {
        let (a, b) = tensors(32, 32, 32, 1);
        let (_, _, rep) =
            abft_matmul_emulated(FmaMode::Fp16, &a, &b, 8, None).unwrap();
        // Checksums are O(mk + kn + mn) vs the O(mkn) product: far below
        // the 2.0 extra-cost of triplication at any nontrivial size.
        assert!(rep.overhead_ratio() < 1.5, "{}", rep.overhead_ratio());
        assert!(rep.overhead_ratio() > 1.0);
    }

    #[test]
    fn report_registry_round_trip() {
        let rep =
            AbftReport { base_macs: 100, checksum_macs: 20, corrections: 3, ..Default::default() };
        let mut reg = rapid_telemetry::MetricsRegistry::new();
        rep.record_into(&mut reg, "abft");
        assert_eq!(AbftReport::from_registry(&reg, "abft"), rep);
        assert_eq!(reg.counter("abft.corrections"), 3);
    }
}
