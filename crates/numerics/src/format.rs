//! Runtime description of (sign, exponent, mantissa) floating-point formats.
//!
//! RaPiD's formats (paper §II-B, Fig 3):
//!
//! | format        | layout (s,e,m) | bias          | notes                          |
//! |---------------|----------------|---------------|--------------------------------|
//! | FP16 DLFloat  | (1,6,9)        | 31            | PE array native, merged at adder |
//! | FP8 fwd       | (1,4,3)        | *programmable* (default 7) | weights & activations |
//! | FP8 bwd       | (1,5,2)        | 15            | errors (needs dynamic range)  |
//! | FP9 internal  | (1,5,3)        | 15            | on-the-fly conversion target  |
//! | FP32          | (1,8,23)       | 127           | SFU selected ops               |
//!
//! IBM's training formats saturate on overflow rather than producing
//! infinities, and (like DLFloat) do not reserve a NaN/Inf exponent code;
//! both behaviours are configurable here.

use crate::NumericsError;

/// A software floating-point format: sign bit, `exp_bits` exponent bits with
/// bias `bias`, and `man_bits` stored mantissa bits (hidden leading one).
///
/// Values of the format are represented as `f32` values that are exact
/// members of the format's value set; [`FpFormat::quantize`] maps an
/// arbitrary `f32` to the nearest such member with round-to-nearest-even.
///
/// # Example
///
/// ```
/// use rapid_numerics::format::FpFormat;
///
/// let fp8 = FpFormat::fp8_e4m3();
/// assert_eq!(fp8.quantize(3.14), 3.25); // mantissa step is 0.25 at [2,4)
/// assert_eq!(fp8.max_value(), 480.0); // (2 - 2^-3) * 2^8, no reserved code
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpFormat {
    exp_bits: u32,
    man_bits: u32,
    bias: i32,
    /// When `true`, overflow clamps to `max_value()`; when `false` it
    /// produces an IEEE-style infinity.
    saturate: bool,
    /// When `true`, values below the minimum normal magnitude are
    /// represented with subnormals; when `false` (DLFloat-style) they round
    /// to zero or the minimum normal, whichever is nearer.
    subnormals: bool,
}

impl FpFormat {
    /// Creates a new format description.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidFormat`] if `exp_bits` is outside
    /// `2..=8`, `man_bits` is outside `1..=23`, or the bias places the
    /// format's exponent range outside what `f32` can represent exactly.
    pub fn new(
        exp_bits: u32,
        man_bits: u32,
        bias: i32,
        saturate: bool,
        subnormals: bool,
    ) -> Result<Self, NumericsError> {
        if !(2..=8).contains(&exp_bits) {
            return Err(NumericsError::InvalidFormat(format!(
                "exponent bits must be in 2..=8, got {exp_bits}"
            )));
        }
        if !(1..=23).contains(&man_bits) {
            return Err(NumericsError::InvalidFormat(format!(
                "mantissa bits must be in 1..=23, got {man_bits}"
            )));
        }
        let f = Self { exp_bits, man_bits, bias, saturate, subnormals };
        // The whole finite range (including the subnormal quantum) must be
        // exactly representable in f32 (normal range: exponent -126..=127).
        let min_exp = f.min_normal_exp() - man_bits as i32;
        let max_exp = f.max_exp() + 1;
        if min_exp < -126 || max_exp > 127 {
            return Err(NumericsError::InvalidFormat(format!(
                "bias {bias} places exponent range [{min_exp}, {max_exp}] outside f32"
            )));
        }
        Ok(f)
    }

    /// IBM DLFloat16: (1,6,9), bias 31, saturating, no subnormals.
    ///
    /// This is the FP16 flavour used throughout the RaPiD PE array. `const`
    /// so the per-FMA hot paths can materialize it for free (the literal
    /// fields are covered by `new`'s validation in the unit tests).
    pub const fn fp16() -> Self {
        Self { exp_bits: 6, man_bits: 9, bias: 31, saturate: true, subnormals: false }
    }

    /// HFP8 forward format FP8 (1,4,3) with the default bias of 7.
    pub const fn fp8_e4m3() -> Self {
        Self { exp_bits: 4, man_bits: 3, bias: 7, saturate: true, subnormals: false }
    }

    /// HFP8 forward format FP8 (1,4,3) with a *programmable* exponent bias.
    ///
    /// RaPiD exposes the bias as a configuration register so different DNN
    /// layers can use different dynamic ranges despite the same exponent
    /// width (paper §II-B).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidFormat`] if the bias places the
    /// format outside the exactly-representable `f32` range.
    pub fn fp8_e4m3_with_bias(bias: i32) -> Result<Self, NumericsError> {
        Self::new(4, 3, bias, true, false)
    }

    /// HFP8 backward format FP8 (1,5,2), bias 15, for error tensors.
    pub const fn fp8_e5m2() -> Self {
        Self { exp_bits: 5, man_bits: 2, bias: 15, saturate: true, subnormals: false }
    }

    /// The internal (1,5,3) format both HFP8 operand flavours are converted
    /// to on the fly inside the FPU (paper §III-A, ref \[50\]).
    pub const fn fp9() -> Self {
        Self { exp_bits: 5, man_bits: 3, bias: 15, saturate: true, subnormals: false }
    }

    /// IEEE binary32, as used by the SFU for selected operations.
    ///
    /// Quantizing to this format is the identity on finite `f32` inputs.
    pub fn fp32() -> Self {
        // Modeled as (1,8,23) identity; constructed directly because the
        // f32-exactness check above is phrased for narrower formats.
        Self { exp_bits: 8, man_bits: 23, bias: 127, saturate: false, subnormals: true }
    }

    /// Number of exponent bits.
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Number of stored mantissa bits.
    pub fn man_bits(&self) -> u32 {
        self.man_bits
    }

    /// Exponent bias.
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// Total storage width in bits (1 + exponent + mantissa).
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Whether overflow saturates to `max_value()` instead of infinity.
    pub fn saturates(&self) -> bool {
        self.saturate
    }

    /// Whether the format supports subnormal values.
    pub fn has_subnormals(&self) -> bool {
        self.subnormals
    }

    /// Largest unbiased exponent of a finite value.
    fn max_exp(&self) -> i32 {
        ((1u32 << self.exp_bits) - 1) as i32 - self.bias
    }

    /// Unbiased exponent of the smallest normal value.
    fn min_normal_exp(&self) -> i32 {
        1 - self.bias
    }

    /// Largest finite representable magnitude.
    pub fn max_value(&self) -> f32 {
        let frac = 2.0 - (0.5f64).powi(self.man_bits as i32);
        (frac * (self.max_exp() as f64).exp2()) as f32
    }

    /// Smallest positive normal magnitude.
    pub fn min_normal(&self) -> f32 {
        ((self.min_normal_exp() as f64).exp2()) as f32
    }

    /// Smallest positive representable magnitude (subnormal quantum when the
    /// format has subnormals, otherwise the minimum normal).
    pub fn min_positive(&self) -> f32 {
        if self.subnormals {
            (((self.min_normal_exp() - self.man_bits as i32) as f64).exp2()) as f32
        } else {
            self.min_normal()
        }
    }

    /// Machine epsilon: spacing between 1.0 and the next representable value
    /// (assuming 1.0 is in range).
    pub fn epsilon(&self) -> f32 {
        (( -(self.man_bits as i32)) as f64).exp2() as f32
    }

    /// Number of distinct finite non-negative magnitudes (including zero).
    pub fn magnitude_count(&self) -> u32 {
        // exponent codes 1..=2^E-1 are normal, each with 2^M mantissas,
        // plus zero (and subnormals if enabled).
        let normals = ((1u32 << self.exp_bits) - 1) * (1u32 << self.man_bits);
        let subs = if self.subnormals { (1u32 << self.man_bits) - 1 } else { 0 };
        normals + subs + 1
    }

    /// Rounds `x` to the nearest representable value of this format using
    /// round-to-nearest-even, honouring the format's saturation and
    /// subnormal configuration. NaN inputs propagate as NaN.
    ///
    /// Subnormal-free formats (every RaPiD format except FP32) take a
    /// branch-light bit-manipulation fast path; it is proven bit-identical
    /// to [`FpFormat::quantize_reference`] by exhaustive and property tests,
    /// and matters because quantization sits inside every emulated FMA.
    #[inline]
    pub fn quantize(&self, x: f32) -> f32 {
        if !self.subnormals && self.man_bits < 23 {
            self.quantize_fast(x)
        } else {
            self.quantize_reference(x)
        }
    }

    /// Bit-twiddled round-to-nearest-even for subnormal-free formats.
    ///
    /// Works directly on the f32 representation: RNE on the 23-bit mantissa
    /// truncated to `man_bits` (with carry into the exponent), integer
    /// comparisons against the format's min-normal/max-value bit patterns
    /// for the underflow/overflow rules.
    #[inline]
    fn quantize_fast(&self, x: f32) -> f32 {
        let bits = x.to_bits();
        let sign = bits & 0x8000_0000;
        let mag = bits & 0x7fff_ffff;
        if mag == 0 {
            return x; // preserve signed zero
        }
        if mag >= 0x7f80_0000 {
            if mag > 0x7f80_0000 {
                return f32::NAN;
            }
            let m = if self.saturate { self.max_value_bits() } else { 0x7f80_0000 };
            return f32::from_bits(sign | m);
        }
        let e_min = 1 - self.bias;
        let min_normal_bits = ((e_min + 127) as u32) << 23;
        if mag < min_normal_bits {
            // No subnormals: nearest of {0, min_normal}, ties (exactly
            // min_normal/2) to zero. min_normal/2 may itself be an f32
            // subnormal (e_min == -126); its bit pattern is still ordered
            // correctly for the integer comparison.
            let half_bits = (f32::from_bits(min_normal_bits) * 0.5).to_bits();
            let r = if mag > half_bits { min_normal_bits } else { 0 };
            return f32::from_bits(sign | r);
        }
        // RNE of the mantissa to man_bits: add (lsb/2 - 1 + round-bit) and
        // truncate. Mantissa overflow carries into the exponent, which is
        // exactly the round-up-to-next-binade behaviour RNE requires.
        let shift = 23 - self.man_bits;
        let lsb = 1u32 << shift;
        let rounded = (mag + ((lsb >> 1) - 1 + ((mag >> shift) & 1))) & !(lsb - 1);
        let max_bits = self.max_value_bits();
        if rounded > max_bits {
            let m = if self.saturate { max_bits } else { 0x7f80_0000 };
            return f32::from_bits(sign | m);
        }
        f32::from_bits(sign | rounded)
    }

    /// f32 bit pattern of `max_value()`, from integer arithmetic only.
    #[inline]
    fn max_value_bits(&self) -> u32 {
        let e_max = ((1u32 << self.exp_bits) - 1) as i32 - self.bias;
        (((e_max + 127) as u32) << 23) | (((1u32 << self.man_bits) - 1) << (23 - self.man_bits))
    }

    /// The straightforward f64-arithmetic implementation of
    /// [`FpFormat::quantize`]. Kept public as the independent reference the
    /// fast path is verified against (see `tests/fastpath_bitexact.rs`).
    pub fn quantize_reference(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x == 0.0 {
            return x; // preserve signed zero
        }
        if x.is_infinite() {
            let m = if self.saturate { self.max_value() } else { f32::INFINITY };
            return if x > 0.0 { m } else { -m };
        }
        let a = f64::from(x.abs());
        let sign = if x < 0.0 { -1.0f32 } else { 1.0f32 };

        // Exponent of a as an exact f64 (a is finite, nonzero, normal in f64
        // because it came from a nonzero finite f32).
        let bits = a.to_bits();
        let e_unbiased = ((bits >> 52) & 0x7ff) as i32 - 1023;

        let e_min = self.min_normal_exp();
        // Quantum: spacing of the format at this magnitude.
        let q_exp = e_unbiased.max(e_min) - self.man_bits as i32;
        let quantum = (q_exp as f64).exp2();
        let mut r = (a / quantum).round_ties_even() * quantum;

        // Rounding can carry into the next binade; magnitude checks below
        // handle overflow. Handle the no-subnormal small case first.
        let min_normal = f64::from(self.min_normal());
        if r < min_normal {
            if self.subnormals {
                // `r` is already on the subnormal grid (q_exp used e_min).
            } else {
                // Round to nearest of {0, min_normal}; ties (exactly half)
                // go to zero, the "even" endpoint.
                r = if a > min_normal / 2.0 { min_normal } else { 0.0 };
            }
        }

        let max_v = f64::from(self.max_value());
        if r > max_v {
            return if self.saturate {
                sign * self.max_value()
            } else {
                sign * f32::INFINITY
            };
        }
        sign * (r as f32)
    }

    /// Returns `true` when `x` is exactly representable in this format
    /// (including zero; NaN and infinities are not considered representable).
    pub fn is_representable(&self, x: f32) -> bool {
        x.is_finite() && self.quantize(x) == x
    }

    /// Encodes a representable value into raw bits, little-endian layout
    /// `[sign | exponent | mantissa]`, in the low `total_bits()` of a `u32`.
    ///
    /// The value is quantized first, so any finite `f32` is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `total_bits() > 32` (cannot happen for constructible
    /// formats) .
    pub fn encode(&self, x: f32) -> u32 {
        let v = self.quantize(x);
        let sign = if v.is_sign_negative() { 1u32 } else { 0u32 };
        let a = f64::from(v.abs());
        let (exp_code, man) = if a == 0.0 {
            (0u32, 0u32)
        } else if self.saturate && v.abs() >= self.max_value() {
            (
                (1u32 << self.exp_bits) - 1,
                (1u32 << self.man_bits) - 1,
            )
        } else {
            let bits = a.to_bits();
            let e_unbiased = ((bits >> 52) & 0x7ff) as i32 - 1023;
            if e_unbiased < self.min_normal_exp() {
                // subnormal: exponent code 0, mantissa = a / quantum
                let quantum =
                    ((self.min_normal_exp() - self.man_bits as i32) as f64).exp2();
                (0u32, (a / quantum) as u32)
            } else {
                let e_code = (e_unbiased + self.bias) as u32;
                let frac = a / (e_unbiased as f64).exp2() - 1.0;
                let man = (frac * (self.man_bits as f64).exp2()).round() as u32;
                (e_code, man)
            }
        };
        (sign << (self.exp_bits + self.man_bits)) | (exp_code << self.man_bits) | man
    }

    /// Decodes raw bits produced by [`FpFormat::encode`] back to `f32`.
    pub fn decode(&self, bits: u32) -> f32 {
        let man_mask = (1u32 << self.man_bits) - 1;
        let exp_mask = (1u32 << self.exp_bits) - 1;
        let man = bits & man_mask;
        let exp_code = (bits >> self.man_bits) & exp_mask;
        let sign = if (bits >> (self.exp_bits + self.man_bits)) & 1 == 1 {
            -1.0f64
        } else {
            1.0f64
        };
        let v = if exp_code == 0 {
            if self.subnormals {
                let quantum =
                    ((self.min_normal_exp() - self.man_bits as i32) as f64).exp2();
                man as f64 * quantum
            } else if man == 0 {
                0.0
            } else {
                // No subnormals: exponent code 0 with nonzero mantissa is
                // not produced by `encode`; decode it as the normal binade
                // for robustness.
                let frac = 1.0 + man as f64 / (self.man_bits as f64).exp2();
                frac * (self.min_normal_exp() as f64).exp2()
            }
        } else {
            let e = exp_code as i32 - self.bias;
            let frac = 1.0 + man as f64 / (self.man_bits as f64).exp2();
            frac * (e as f64).exp2()
        };
        (sign * v) as f32
    }

    /// Iterates over every non-negative representable magnitude in
    /// increasing order (useful for exhaustive tests on narrow formats).
    pub fn positive_values(&self) -> Vec<f32> {
        let mut out = vec![0.0f32];
        if self.subnormals {
            let quantum = self.min_positive();
            for m in 1..(1u32 << self.man_bits) {
                out.push(m as f32 * quantum);
            }
        }
        for e_code in 1..=((1u32 << self.exp_bits) - 1) {
            let e = e_code as i32 - self.bias;
            for m in 0..(1u32 << self.man_bits) {
                let frac = 1.0 + m as f64 / (self.man_bits as f64).exp2();
                out.push((frac * (e as f64).exp2()) as f32);
            }
        }
        out
    }
}

/// Rounds `x` onto the FP16 (DLFloat16) lattice.
///
/// Monomorphized shorthand for `FpFormat::fp16().quantize(x)`: the constant
/// format lets the compiler fold the bit-pattern thresholds, which matters
/// because this call sits inside every emulated-accumulator update.
#[inline(always)]
pub fn fp16_round(x: f32) -> f32 {
    FpFormat::fp16().quantize_fast(x)
}

impl std::fmt::Display for FpFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fp{}(1,{},{})b{}", self.total_bits(), self.exp_bits, self.man_bits, self.bias)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fp16_properties_match_dlfloat() {
        let f = FpFormat::fp16();
        assert_eq!(f.total_bits(), 16);
        assert_eq!(f.exp_bits(), 6);
        assert_eq!(f.man_bits(), 9);
        assert_eq!(f.bias(), 31);
        // max exponent 63-31 = 32, frac 2 - 2^-9
        assert!((f64::from(f.max_value()) - (2.0 - 2f64.powi(-9)) * 2f64.powi(32)).abs() < 1e20);
        assert_eq!(f.min_normal(), 2f32.powi(-30));
    }

    #[test]
    fn fp8_e4m3_range() {
        let f = FpFormat::fp8_e4m3();
        // IBM-style: no reserved code, max = (2 - 2^-3) * 2^(15-7) ... wait:
        // max exp code 15 -> unbiased 8, (2 - 0.125) * 256 = 480? The paper's
        // format keeps all codes finite: verify against our own definition.
        assert_eq!(f.max_value(), (2.0 - 0.125) * 2f32.powi(8));
        assert_eq!(f.min_normal(), 2f32.powi(-6));
        assert_eq!(f.magnitude_count(), 15 * 8 + 1);
    }

    #[test]
    fn programmable_bias_shifts_range() {
        let lo = FpFormat::fp8_e4m3_with_bias(4).unwrap();
        let hi = FpFormat::fp8_e4m3_with_bias(11).unwrap();
        // Smaller bias -> larger values representable.
        assert!(lo.max_value() > hi.max_value());
        assert_eq!(lo.max_value() / hi.max_value(), 2f32.powi(7));
        // Bias change is a pure power-of-two scaling of the value set.
        for (a, b) in lo.positive_values().iter().zip(hi.positive_values().iter()) {
            assert_eq!(*a, *b * 2f32.powi(7));
        }
    }

    #[test]
    fn quantize_rounds_to_nearest_even() {
        let f = FpFormat::fp8_e4m3(); // mantissa step at [1,2) is 0.125
        assert_eq!(f.quantize(1.0), 1.0);
        assert_eq!(f.quantize(1.0624), 1.0);
        assert_eq!(f.quantize(1.0626), 1.125);
        // Tie: 1.0625 is halfway between 1.0 and 1.125 -> even mantissa (1.0)
        assert_eq!(f.quantize(1.0625), 1.0);
        // Tie: 1.1875 halfway between 1.125 and 1.25 -> 1.25 (even mantissa 2)
        assert_eq!(f.quantize(1.1875), 1.25);
    }

    #[test]
    fn quantize_saturates() {
        let f = FpFormat::fp8_e5m2();
        let max = f.max_value();
        assert_eq!(f.quantize(1e30), max);
        assert_eq!(f.quantize(-1e30), -max);
        assert_eq!(f.quantize(f32::INFINITY), max);
    }

    #[test]
    fn quantize_small_values_without_subnormals() {
        let f = FpFormat::fp8_e4m3(); // min normal 2^-6
        let mn = f.min_normal();
        assert_eq!(f.quantize(mn), mn);
        assert_eq!(f.quantize(mn * 0.6), mn);
        assert_eq!(f.quantize(mn * 0.4), 0.0);
        // Exactly half rounds to zero (the even endpoint).
        assert_eq!(f.quantize(mn * 0.5), 0.0);
    }

    #[test]
    fn quantize_preserves_signed_zero_and_nan() {
        let f = FpFormat::fp16();
        assert!(f.quantize(f32::NAN).is_nan());
        assert_eq!(f.quantize(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(f.quantize(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn quantize_is_idempotent_exhaustively_fp8() {
        for fmt in [FpFormat::fp8_e4m3(), FpFormat::fp8_e5m2(), FpFormat::fp9()] {
            for v in fmt.positive_values() {
                assert_eq!(fmt.quantize(v), v, "{fmt}: {v} not a fixed point");
                assert_eq!(fmt.quantize(-v), -v);
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive() {
        for fmt in [FpFormat::fp8_e4m3(), FpFormat::fp8_e5m2(), FpFormat::fp9()] {
            for v in fmt.positive_values() {
                assert_eq!(fmt.decode(fmt.encode(v)), v, "{fmt}: {v}");
                if v != 0.0 {
                    assert_eq!(fmt.decode(fmt.encode(-v)), -v, "{fmt}: -{v}");
                }
            }
        }
    }

    #[test]
    fn fp32_quantize_is_identity() {
        let f = FpFormat::fp32();
        for v in [1.0f32, -2.5e-3, 1.7e30, f32::MIN_POSITIVE, 0.1] {
            assert_eq!(f.quantize(v), v);
        }
    }

    #[test]
    fn invalid_formats_rejected() {
        assert!(FpFormat::new(1, 3, 7, true, false).is_err());
        assert!(FpFormat::new(4, 0, 7, true, false).is_err());
        assert!(FpFormat::new(4, 3, 500, true, false).is_err());
        assert!(FpFormat::fp8_e4m3_with_bias(-200).is_err());
    }

    #[test]
    fn quantize_monotonic_on_dense_grid() {
        let f = FpFormat::fp8_e4m3();
        let mut prev = f.quantize(-500.0);
        let mut x = -500.0f32;
        while x < 500.0 {
            let q = f.quantize(x);
            assert!(q >= prev, "quantize not monotone at {x}: {q} < {prev}");
            prev = q;
            x += 0.37;
        }
    }

    #[test]
    fn const_constructors_pass_validation() {
        assert_eq!(FpFormat::fp16(), FpFormat::new(6, 9, 31, true, false).unwrap());
        assert_eq!(FpFormat::fp8_e4m3(), FpFormat::new(4, 3, 7, true, false).unwrap());
        assert_eq!(FpFormat::fp8_e5m2(), FpFormat::new(5, 2, 15, true, false).unwrap());
        assert_eq!(FpFormat::fp9(), FpFormat::new(5, 3, 15, true, false).unwrap());
    }

    /// The bit-twiddled fast path must agree with the f64 reference on
    /// every input class: lattice points, rounding boundaries, underflow
    /// region, overflow, specials, and a dense pseudo-random sweep.
    #[test]
    fn fast_quantize_bit_identical_to_reference() {
        let formats = [
            FpFormat::fp16(),
            FpFormat::fp8_e4m3(),
            FpFormat::fp8_e5m2(),
            FpFormat::fp9(),
            FpFormat::fp8_e4m3_with_bias(-3).unwrap(),
            FpFormat::fp8_e4m3_with_bias(11).unwrap(),
        ];
        let agree = |fmt: &FpFormat, x: f32| {
            let fast = fmt.quantize(x);
            let slow = fmt.quantize_reference(x);
            assert!(
                fast.to_bits() == slow.to_bits() || (fast.is_nan() && slow.is_nan()),
                "{fmt}: quantize({x:e}) fast={fast:e} reference={slow:e}"
            );
        };
        for fmt in &formats {
            // Every lattice point, its neighbourhood, and halfway points.
            for v in fmt.positive_values() {
                for scale in [1.0f32, 0.9999999, 1.0000001] {
                    agree(fmt, v * scale);
                    agree(fmt, -v * scale);
                }
            }
            let mn = fmt.min_normal();
            for x in [
                0.0,
                -0.0,
                mn * 0.5,
                -mn * 0.5,
                mn * 0.49999,
                mn * 0.50001,
                fmt.max_value(),
                fmt.max_value() * 1.5,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::NAN,
                f32::MIN_POSITIVE,
                f32::MIN_POSITIVE / 2.0, // f32 subnormal input
            ] {
                agree(fmt, x);
            }
            // Dense pseudo-random bit patterns (finite ones only matter;
            // specials are covered above and by the NaN check in `agree`).
            let mut state = 0x9E37_79B9u32;
            for _ in 0..20_000 {
                state = state.wrapping_mul(747_796_405).wrapping_add(2_891_336_453);
                agree(fmt, f32::from_bits(state));
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(FpFormat::fp8_e4m3().to_string(), "fp8(1,4,3)b7");
        assert_eq!(FpFormat::fp16().to_string(), "fp16(1,6,9)b31");
    }
}
