//! Bit-sliced INT2 GEMM: popcount over packed bit-planes.
//!
//! An INT2 code is two bits. Splitting each operand row into two `u64`
//! bit-planes — plane 0 holds bit 0, plane 1 holds bit 1, LSB-first within
//! each word like the zero masks in `gemm` — turns a 64-element dot
//! product into four AND+popcount word operations:
//!
//! ```text
//! value(code) = bit0 + c · bit1          c = -2 (signed, two's complement)
//!                                        c = +2 (unsigned)
//! dot(a, b)   = P00 + c_b·P01 + c_a·P10 + c_a·c_b·P11
//! P_xy        = Σ_words popcount(a_plane_x & b_plane_y)
//! ```
//!
//! Signed INT2 quantization only emits codes in {-1, 0, +1} (the -2
//! pattern `0b10` is clamped away), but the identity above is exact for
//! every 2-bit pattern, so the kernel never depends on that.
//!
//! The kernel is plain portable Rust — `u64::count_ones` — with an
//! `x86_64` `popcnt`-enabled clone so the baseline build (which may not
//! assume SSE4.2) still emits hardware popcounts when the CPU has them.
//! It is exact integer arithmetic, so as with the madd kernel the result
//! is bit-identical to the tiled windowed sum whenever the chunk guard
//! rules out INT16 saturation.

use crate::int::Signedness;

/// Two bit-planes for a row-major code matrix, one pair of `u64` words per
/// 64 columns, rows padded to whole words (pad bits are zero).
pub(crate) struct BitPlanes {
    p0: Vec<u64>,
    p1: Vec<u64>,
    /// Words per row.
    words: usize,
    /// Contribution coefficient of plane 1: -2 if signed, +2 if unsigned.
    coeff: i64,
}

impl BitPlanes {
    /// Packs `rows` rows of `k` codes each.
    pub(crate) fn pack(codes: &[i8], rows: usize, k: usize, signedness: Signedness) -> Self {
        let words = k.div_ceil(64);
        let mut p0 = vec![0u64; rows * words];
        let mut p1 = vec![0u64; rows * words];
        for r in 0..rows {
            let row = &codes[r * k..(r + 1) * k];
            let base = r * words;
            for (i, &code) in row.iter().enumerate() {
                p0[base + i / 64] |= u64::from(code as u8 & 1) << (i % 64);
                p1[base + i / 64] |= u64::from((code as u8 >> 1) & 1) << (i % 64);
            }
        }
        let coeff = if signedness == Signedness::Signed { -2 } else { 2 };
        Self { p0, p1, words, coeff }
    }

    /// Plane-0 words of row `r`.
    pub(crate) fn row0(&self, r: usize) -> &[u64] {
        &self.p0[r * self.words..(r + 1) * self.words]
    }

    /// Plane-1 words of row `r`.
    pub(crate) fn row1(&self, r: usize) -> &[u64] {
        &self.p1[r * self.words..(r + 1) * self.words]
    }

    /// The plane-1 coefficient for this operand's signedness.
    pub(crate) fn coeff(&self) -> i64 {
        self.coeff
    }

    /// Writes the zero-code mask of row `r` (bit set where the code is 0,
    /// LSB-first — the `gemm` zero-mask convention): a code is zero iff
    /// both plane bits are clear.
    pub(crate) fn zero_mask_into(&self, r: usize, k: usize, out: &mut [u64]) {
        let (r0, r1) = (self.row0(r), self.row1(r));
        for ((o, &w0), &w1) in out.iter_mut().zip(r0).zip(r1) {
            *o = !(w0 | w1);
        }
        let tail = k % 64;
        if tail != 0 {
            if let Some(last) = out.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// The four plane-intersection popcounts, combined per the module formula.
macro_rules! planes_dot_body {
    ($a0:ident, $a1:ident, $b0:ident, $b1:ident, $ca:ident, $cb:ident) => {{
        let mut p00 = 0u64;
        let mut p01 = 0u64;
        let mut p10 = 0u64;
        let mut p11 = 0u64;
        for (((&x0, &x1), &y0), &y1) in $a0.iter().zip($a1).zip($b0).zip($b1) {
            p00 += u64::from((x0 & y0).count_ones());
            p01 += u64::from((x0 & y1).count_ones());
            p10 += u64::from((x1 & y0).count_ones());
            p11 += u64::from((x1 & y1).count_ones());
        }
        p00 as i64 + $cb * p01 as i64 + $ca * p10 as i64 + $ca * $cb * p11 as i64
    }};
}

/// One A row against every B row, scaled into `orow` — the whole-row body
/// shared by the portable and `popcnt`-enabled clones, so the per-element
/// dot never pays a call or feature-dispatch per output.
macro_rules! planes_row_body {
    ($a:ident, $ar:ident, $b:ident, $out_scale:ident, $orow:ident) => {{
        let a0 = $a.row0($ar);
        let a1 = $a.row1($ar);
        let (ca, cb) = ($a.coeff(), $b.coeff());
        for (j, o) in $orow.iter_mut().enumerate() {
            let b0 = $b.row0(j);
            let b1 = $b.row1(j);
            let dot = planes_dot_body!(a0, a1, b0, b1, ca, cb);
            *o = dot as f32 * $out_scale;
        }
    }};
}

#[cfg(test)]
fn dot_planes_portable(a0: &[u64], a1: &[u64], b0: &[u64], b1: &[u64], ca: i64, cb: i64) -> i64 {
    planes_dot_body!(a0, a1, b0, b1, ca, cb)
}

/// # Safety
///
/// Requires the `popcnt` CPU feature.
#[cfg(all(test, target_arch = "x86_64"))]
#[target_feature(enable = "popcnt")]
unsafe fn dot_planes_popcnt(a0: &[u64], a1: &[u64], b0: &[u64], b1: &[u64], ca: i64, cb: i64) -> i64 {
    planes_dot_body!(a0, a1, b0, b1, ca, cb)
}

fn dot_planes_row_portable(a: &BitPlanes, ar: usize, b: &BitPlanes, out_scale: f32, orow: &mut [f32]) {
    planes_row_body!(a, ar, b, out_scale, orow)
}

/// # Safety
///
/// Requires the `popcnt` CPU feature; `orow.len() <= b` row count.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn dot_planes_row_popcnt(
    a: &BitPlanes,
    ar: usize,
    b: &BitPlanes,
    out_scale: f32,
    orow: &mut [f32],
) {
    planes_row_body!(a, ar, b, out_scale, orow)
}

/// Exact whole-k INT2 dot product from bit-planes (test-only pin for the
/// row-level kernel).
#[cfg(test)]
pub(crate) fn dot_planes(a: &BitPlanes, ar: usize, b: &BitPlanes, br: usize) -> i64 {
    let (a0, a1) = (a.row0(ar), a.row1(ar));
    let (b0, b1) = (b.row0(br), b.row1(br));
    let (ca, cb) = (a.coeff(), b.coeff());
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::popcnt_available() {
        // SAFETY: popcnt presence checked on the line above.
        return unsafe { dot_planes_popcnt(a0, a1, b0, b1, ca, cb) };
    }
    dot_planes_portable(a0, a1, b0, b1, ca, cb)
}

/// Whole output row of scaled INT2 dot products: row `ar` of `a` against
/// the first `orow.len()` rows of `b` (`orow[j] = dot · out_scale`). One
/// feature dispatch per row instead of per element.
pub(crate) fn dot_planes_row(
    a: &BitPlanes,
    ar: usize,
    b: &BitPlanes,
    out_scale: f32,
    orow: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::popcnt_available() {
        // SAFETY: popcnt presence checked on the line above.
        return unsafe { dot_planes_row_popcnt(a, ar, b, out_scale, orow) };
    }
    dot_planes_row_portable(a, ar, b, out_scale, orow)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn reference_dot(a: &[i8], b: &[i8]) -> i64 {
        a.iter().zip(b).map(|(&x, &y)| i64::from(x) * i64::from(y)).sum()
    }

    #[test]
    fn plane_dot_matches_reference_all_sign_combos() {
        for k in [1usize, 3, 63, 64, 65, 128, 200] {
            let signed: Vec<i8> = (0..k).map(|i| [(-1i8), 0, 1][(i * 7 + 1) % 3]).collect();
            let unsigned: Vec<i8> = (0..k).map(|i| ((i * 5 + 2) % 4) as i8).collect();
            for (sa, avals) in [(Signedness::Signed, &signed), (Signedness::Unsigned, &unsigned)] {
                for (sb, bvals) in
                    [(Signedness::Signed, &signed), (Signedness::Unsigned, &unsigned)]
                {
                    let pa = BitPlanes::pack(avals, 1, k, sa);
                    let pb = BitPlanes::pack(bvals, 1, k, sb);
                    assert_eq!(
                        dot_planes(&pa, 0, &pb, 0),
                        reference_dot(avals, bvals),
                        "k={k} sa={sa:?} sb={sb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_kernel_matches_per_element() {
        let (k, n) = (130usize, 7usize);
        let a: Vec<i8> = (0..k).map(|i| [(-1i8), 0, 1][(i * 5 + 2) % 3]).collect();
        let bt: Vec<i8> = (0..k * n).map(|i| [(-1i8), 0, 0, 1][(i * 3 + 1) % 4]).collect();
        let pa = BitPlanes::pack(&a, 1, k, Signedness::Signed);
        let pb = BitPlanes::pack(&bt, n, k, Signedness::Signed);
        let scale = 0.25f32;
        let mut row = vec![0.0f32; n];
        dot_planes_row(&pa, 0, &pb, scale, &mut row);
        for (j, got) in row.iter().enumerate() {
            let want = dot_planes(&pa, 0, &pb, j) as f32 * scale;
            assert_eq!(got.to_bits(), want.to_bits(), "column {j}");
        }
    }

    #[test]
    fn zero_mask_matches_codes() {
        let k = 70;
        let codes: Vec<i8> = (0..k).map(|i| [0i8, 1, 0, -1][(i as usize) % 4]).collect();
        let p = BitPlanes::pack(&codes, 1, k as usize, Signedness::Signed);
        let mut mask = vec![0u64; (k as usize).div_ceil(64)];
        p.zero_mask_into(0, k as usize, &mut mask);
        for (i, &c) in codes.iter().enumerate() {
            let bit = (mask[i / 64] >> (i % 64)) & 1;
            assert_eq!(bit == 1, c == 0, "position {i}");
        }
        // Pad bits beyond k stay clear so popcount-based gating is exact.
        let tail = k as usize % 64;
        assert_eq!(mask.last().unwrap() >> tail, 0);
    }
}
