//! The MPE's FPU pipeline: mixed-precision fused multiply-add.
//!
//! Paper §III-A: each MPE has an 8-way SIMD FPU supporting FP16 and HFP8 on
//! the same 128-bit datapath. For HFP8 the two input operand flavours —
//! FP8 (1,4,3) with programmable bias and FP8 (1,5,2) — are converted *on
//! the fly* to a custom internal (1,5,3) format, the 4-bit multiplier
//! product is formed exactly, and both the FP16 and HFP8 compute paths merge
//! at the FP16 adder, so every mode produces FP16 results.
//!
//! The FPU also implements *zero-gating*: when either multiplicand is zero
//! the whole pipeline is bypassed and the addend passes through unchanged,
//! saving the pipeline's dynamic energy (exploited by sparsity-aware
//! frequency throttling, §III-C).

use crate::format::FpFormat;

/// Precision mode of an FMA instruction stream (fixed per program in the
/// MPE ISA; set in registers so hardware can data-gate operand widths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmaMode {
    /// FP16 × FP16 + FP16 → FP16.
    Fp16,
    /// Forward pass: both operands FP8 (1,4,3); biases are per-tensor.
    Hfp8Fwd {
        /// Programmable exponent bias of operand A's (1,4,3) tensor.
        bias_a: i32,
        /// Programmable exponent bias of operand B's (1,4,3) tensor.
        bias_b: i32,
    },
    /// Backward pass: operand A in FP8 (1,4,3), operand B in FP8 (1,5,2).
    Hfp8Bwd {
        /// Programmable exponent bias of operand A's (1,4,3) tensor.
        bias_a: i32,
    },
}

impl FmaMode {
    /// Forward HFP8 mode with the default (1,4,3) bias for both operands.
    pub fn hfp8_fwd_default() -> Self {
        FmaMode::Hfp8Fwd { bias_a: 7, bias_b: 7 }
    }

    /// Backward HFP8 mode with the default (1,4,3) bias.
    pub fn hfp8_bwd_default() -> Self {
        FmaMode::Hfp8Bwd { bias_a: 7 }
    }

    /// Number of MACs one SIMD lane executes per cycle in this mode
    /// (the sub-SIMD partition doubles HFP8 throughput, paper §III-A).
    pub fn macs_per_lane(&self) -> usize {
        match self {
            FmaMode::Fp16 => 1,
            FmaMode::Hfp8Fwd { .. } | FmaMode::Hfp8Bwd { .. } => 2,
        }
    }

    /// Input formats `(a, b)` for this mode.
    #[allow(clippy::expect_used)] // bias values are validated at construction
    pub fn operand_formats(&self) -> (FpFormat, FpFormat) {
        match self {
            FmaMode::Fp16 => (FpFormat::fp16(), FpFormat::fp16()),
            FmaMode::Hfp8Fwd { bias_a, bias_b } => (
                FpFormat::fp8_e4m3_with_bias(*bias_a).expect("validated bias"),
                FpFormat::fp8_e4m3_with_bias(*bias_b).expect("validated bias"),
            ),
            FmaMode::Hfp8Bwd { bias_a } => (
                FpFormat::fp8_e4m3_with_bias(*bias_a).expect("validated bias"),
                FpFormat::fp8_e5m2(),
            ),
        }
    }

    /// Storage bytes per element of each operand `(a, b)`.
    pub fn operand_bytes(&self) -> (usize, usize) {
        match self {
            FmaMode::Fp16 => (2, 2),
            _ => (1, 1),
        }
    }
}

/// Result of one FMA issue: the new accumulator value plus whether the
/// zero-gating bypass fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmaResult {
    /// New accumulator value (an exact FP16 value).
    pub acc: f32,
    /// `true` when the multiply pipeline was bypassed because a
    /// multiplicand was zero.
    pub zero_gated: bool,
}

/// One fused multiply-add through the MPE FPU pipeline.
///
/// `a` and `b` are quantized to the mode's operand formats (modeling the
/// values as they arrive from the L0/L1 scratchpads), converted to the
/// internal representation, multiplied exactly, added to `acc`, and the sum
/// rounded to FP16 — the merge point of the FP16 and HFP8 paths.
///
/// # Example
///
/// ```
/// use rapid_numerics::fma::{fma, FmaMode};
///
/// let r = fma(FmaMode::hfp8_fwd_default(), 1.0, 0.5, 0.25);
/// assert_eq!(r.acc, 1.125);
/// assert!(!r.zero_gated);
///
/// let gated = fma(FmaMode::Fp16, 42.0, 0.0, 3.0);
/// assert_eq!(gated.acc, 42.0); // addend passes through untouched
/// assert!(gated.zero_gated);
/// ```
pub fn fma(mode: FmaMode, acc: f32, a: f32, b: f32) -> FmaResult {
    let (fa, fb) = mode.operand_formats();
    let qa = fa.quantize(a);
    let qb = fb.quantize(b);
    fma_prequantized(mode, acc, qa, qb)
}

/// [`fma`] for operands that are already exact members of the mode's
/// operand formats (skips the input quantization; used by the GEMM kernels
/// which quantize whole tensors once).
pub fn fma_prequantized(mode: FmaMode, acc: f32, qa: f32, qb: f32) -> FmaResult {
    let fp16 = FpFormat::fp16();
    if qa == 0.0 || qb == 0.0 {
        // Zero-gating: bypass the pipeline, pass the addend through.
        return FmaResult { acc: fp16.quantize(acc), zero_gated: true };
    }
    // On-the-fly conversion to the internal format. For FP16 mode this is
    // the identity; for HFP8 both operands land in (1,5,3) exactly (the
    // formats are subsets of FP9 for in-range biases).
    let (ia, ib) = match mode {
        FmaMode::Fp16 => (qa, qb),
        _ => {
            let fp9 = FpFormat::fp9();
            (fp9.quantize(qa), fp9.quantize(qb))
        }
    };
    // The product of two values with <=9-bit significands is exact in f32's
    // 24-bit significand; the FP16 rounding happens at the adder.
    let product = ia * ib;
    let sum = fp16.quantize(f64_add_round_fp16(acc, product));
    FmaResult { acc: sum, zero_gated: false }
}

/// Adds in f64 (exact for our operand magnitudes) before the FP16 rounding,
/// so the model has a single rounding at the adder like the hardware.
fn f64_add_round_fp16(x: f32, y: f32) -> f32 {
    (f64::from(x) + f64::from(y)) as f32
}

/// Applies one FMA per element over slices, returning the number of
/// zero-gated lanes (consumed by the power model).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fma_simd(mode: FmaMode, acc: &mut [f32], a: &[f32], b: &[f32]) -> usize {
    assert_eq!(acc.len(), a.len());
    assert_eq!(acc.len(), b.len());
    let mut gated = 0;
    for i in 0..acc.len() {
        let r = fma(mode, acc[i], a[i], b[i]);
        acc[i] = r.acc;
        if r.zero_gated {
            gated += 1;
        }
    }
    gated
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fp16_fma_exact_small_values() {
        let r = fma(FmaMode::Fp16, 1.0, 2.0, 3.0);
        assert_eq!(r.acc, 7.0);
        assert!(!r.zero_gated);
    }

    #[test]
    fn zero_gating_passes_addend_through() {
        for mode in [FmaMode::Fp16, FmaMode::hfp8_fwd_default(), FmaMode::hfp8_bwd_default()] {
            let r = fma(mode, 5.5, 0.0, 123.0);
            assert_eq!(r.acc, 5.5);
            assert!(r.zero_gated);
            let r = fma(mode, -2.25, 7.0, 0.0);
            assert_eq!(r.acc, -2.25);
            assert!(r.zero_gated);
        }
    }

    #[test]
    fn tiny_operand_that_quantizes_to_zero_gates() {
        // 1e-9 underflows FP8(1,4,3) (min normal 2^-6) -> gated.
        let r = fma(FmaMode::hfp8_fwd_default(), 1.0, 1e-9, 4.0);
        assert!(r.zero_gated);
        assert_eq!(r.acc, 1.0);
    }

    #[test]
    fn hfp8_bwd_uses_e5m2_for_b() {
        // 6.1 quantizes differently in the two formats: e4m3 step at [4,8)
        // is 0.5 (-> 6.0), e5m2 step is 1.0 (-> 6.0); use 6.3: e4m3 -> 6.5,
        // e5m2 -> 6.0.
        let fwd = fma(FmaMode::hfp8_fwd_default(), 0.0, 1.0, 6.3);
        let bwd = fma(FmaMode::hfp8_bwd_default(), 0.0, 1.0, 6.3);
        assert_eq!(fwd.acc, 6.5);
        assert_eq!(bwd.acc, 6.0);
    }

    #[test]
    fn programmable_bias_extends_range() {
        // With default bias 7, max e4m3 magnitude is 480; with bias 3 it is
        // 16x larger.
        let big = 2000.0f32;
        let default = fma(FmaMode::hfp8_fwd_default(), 0.0, big, 1.0);
        let wide = fma(FmaMode::Hfp8Fwd { bias_a: 3, bias_b: 7 }, 0.0, big, 1.0);
        assert_eq!(default.acc, 480.0); // saturated
        assert_eq!(wide.acc, 2048.0); // representable with smaller bias
    }

    #[test]
    fn result_is_always_fp16_representable() {
        let fp16 = FpFormat::fp16();
        let mut acc = 0.0f32;
        for i in 0..100 {
            let r = fma(
                FmaMode::hfp8_fwd_default(),
                acc,
                0.3 + i as f32 * 0.01,
                -0.7 + i as f32 * 0.02,
            );
            acc = r.acc;
            assert!(fp16.is_representable(acc), "{acc} not fp16");
        }
    }

    #[test]
    fn fma_simd_counts_gated_lanes() {
        let mut acc = vec![0.0; 4];
        let a = [1.0, 0.0, 2.0, 0.0];
        let b = [1.0, 1.0, 0.0, 0.0];
        let gated = fma_simd(FmaMode::Fp16, &mut acc, &a, &b);
        assert_eq!(gated, 3);
        assert_eq!(acc, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn macs_per_lane_doubles_in_hfp8() {
        assert_eq!(FmaMode::Fp16.macs_per_lane(), 1);
        assert_eq!(FmaMode::hfp8_fwd_default().macs_per_lane(), 2);
        assert_eq!(FmaMode::hfp8_bwd_default().macs_per_lane(), 2);
    }
}
