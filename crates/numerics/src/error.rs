//! Error types for the numerics crate.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible numerics operations.
///
/// # Example
///
/// ```
/// use rapid_numerics::tensor::Tensor;
///
/// let a = Tensor::zeros(vec![2, 3]);
/// let b = Tensor::zeros(vec![4, 5]);
/// let err = rapid_numerics::gemm::matmul_f32_checked(&a, &b).unwrap_err();
/// assert!(err.to_string().contains("shape"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumericsError {
    /// Tensor shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shapes.
        expected: String,
        /// Human-readable description of the shapes that were provided.
        actual: String,
    },
    /// A format parameter is out of the supported range.
    InvalidFormat(String),
    /// A value cannot be represented (e.g. quantization of NaN where the
    /// target format has no NaN encoding).
    Unrepresentable(String),
    /// A guarded kernel detected a non-finite accumulator (NaN/Inf), e.g.
    /// after an exponent-bit upset, under [`GuardPolicy::Error`].
    ///
    /// [`GuardPolicy::Error`]: crate::guard::GuardPolicy::Error
    NonFinite {
        /// Output row of the affected accumulator.
        row: usize,
        /// Output column of the affected accumulator.
        col: usize,
        /// Raw f32 bit pattern of the offending value.
        bits: u32,
    },
    /// A guarded integer kernel detected chunk-register overflow (either
    /// hardware-style INT16 saturation or a fault pushing the register past
    /// the legal bound) under [`GuardPolicy::Error`].
    ///
    /// [`GuardPolicy::Error`]: crate::guard::GuardPolicy::Error
    Overflow {
        /// Output row of the affected accumulator.
        row: usize,
        /// Output column of the affected accumulator.
        col: usize,
        /// Saturation events observed on this element so far.
        saturations: u64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::ShapeMismatch { expected, actual } => {
                write!(f, "tensor shape mismatch: expected {expected}, got {actual}")
            }
            NumericsError::InvalidFormat(msg) => write!(f, "invalid number format: {msg}"),
            NumericsError::Unrepresentable(msg) => write!(f, "unrepresentable value: {msg}"),
            NumericsError::NonFinite { row, col, bits } => write!(
                f,
                "non-finite accumulator at output [{row},{col}]: {} (bits 0x{bits:08x})",
                f32::from_bits(*bits)
            ),
            NumericsError::Overflow { row, col, saturations } => write!(
                f,
                "integer chunk overflow at output [{row},{col}] ({saturations} saturation events)"
            ),
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NumericsError::InvalidFormat("exponent bits must be 2..=8".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid number format"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
