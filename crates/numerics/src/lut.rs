//! Exhaustive lookup tables for 8-bit float operands.
//!
//! An 8-bit format has only 256 codes, so every per-element operation the
//! emulated HFP8 pipeline performs — decode, FP9 conversion, and the f32
//! operand product — can be precomputed exhaustively. A [`ProductLut`] holds
//! all 65 536 pairwise products for an (A-format, B-format) pair; the GEMM
//! inner loop then reduces each FMA to one table load feeding the chunked
//! FP16 accumulator. Tables are built once per format pair and cached
//! process-wide (256 KiB each).

use crate::format::FpFormat;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Decoded values of all 256 codes of an 8-bit float format.
#[derive(Debug, Clone)]
pub struct DecodeLut {
    values: [f32; 256],
}

impl DecodeLut {
    /// Builds the table for an 8-bit format.
    ///
    /// # Panics
    ///
    /// Panics if `fmt` is not 8 bits wide.
    pub fn new(fmt: FpFormat) -> Self {
        assert_eq!(fmt.total_bits(), 8, "decode LUT requires an 8-bit format, got {fmt}");
        let mut values = [0.0f32; 256];
        for (code, v) in values.iter_mut().enumerate() {
            *v = fmt.decode(code as u32);
        }
        Self { values }
    }

    /// The value of `code`.
    #[inline]
    pub fn decode(&self, code: u8) -> f32 {
        self.values[code as usize]
    }

    /// All 256 decoded values, indexed by code.
    pub fn values(&self) -> &[f32; 256] {
        &self.values
    }
}

/// Whether an 8-bit code decodes to zero (positive or negative).
///
/// Zero is the all-zero magnitude code in every constructible 8-bit format
/// (exponent code 0 with a non-zero mantissa decodes to a non-zero value in
/// subnormal-free formats), so the zero-gating predicate of the MPE datapath
/// reduces to a mask test on the raw code.
#[inline(always)]
pub fn is_zero_code(code: u8) -> bool {
    code & 0x7f == 0
}

/// All 65 536 operand products of an FP8×FP8 format pair, after both
/// operands pass through the FP9 internal representation — exactly the value
/// the emulated FMA pipeline multiplies before accumulation.
#[derive(Debug, Clone)]
pub struct ProductLut {
    products: Box<[f32]>,
    /// FP9-converted A-operand values, indexed by code — the exact left
    /// factors the product table was built from.
    a_operands: [f32; 256],
    /// FP9-converted B-operand values, indexed by code.
    b_operands: [f32; 256],
}

impl ProductLut {
    /// Builds the table for A-operands in `fa` and B-operands in `fb`.
    ///
    /// # Panics
    ///
    /// Panics if either format is not 8 bits wide.
    pub fn new(fa: FpFormat, fb: FpFormat) -> Self {
        let da = DecodeLut::new(fa);
        let db = DecodeLut::new(fb);
        let fp9 = FpFormat::fp9();
        // FP9 conversion of each operand is per-code, so precompute 2×256
        // then take the outer product. The multiply is exact in f32 (3-bit
        // mantissas), matching the pipeline's error-free product.
        let ia: Vec<f32> = da.values().iter().map(|&v| fp9.quantize(v)).collect();
        let ib: Vec<f32> = db.values().iter().map(|&v| fp9.quantize(v)).collect();
        let mut products = vec![0.0f32; 1 << 16].into_boxed_slice();
        for (ca, &a9) in ia.iter().enumerate() {
            for (cb, &b9) in ib.iter().enumerate() {
                products[(ca << 8) | cb] = a9 * b9;
            }
        }
        let mut a_operands = [0.0f32; 256];
        a_operands.copy_from_slice(&ia);
        let mut b_operands = [0.0f32; 256];
        b_operands.copy_from_slice(&ib);
        Self { products, a_operands, b_operands }
    }

    /// The product for A-code `ca` and B-code `cb`.
    #[inline]
    pub fn product(&self, ca: u8, cb: u8) -> f32 {
        self.products[(usize::from(ca) << 8) | usize::from(cb)]
    }

    /// The full 64K product table, indexed by `(ca << 8) | cb`.
    pub fn products(&self) -> &[f32] {
        &self.products
    }

    /// The 256 FP9-converted A-operand values, indexed by code.
    ///
    /// These are the exact left factors of [`Self::products`]:
    /// `product(ca, cb) == a_operands()[ca] * b_operands()[cb]` holds
    /// bit-for-bit, because the table entry *is* that f32 multiply and
    /// IEEE multiplication is deterministic. Vector kernels exploit the
    /// identity to trade the per-step table gather for a multiply of
    /// pre-decoded operands.
    pub fn a_operands(&self) -> &[f32; 256] {
        &self.a_operands
    }

    /// The 256 FP9-converted B-operand values, indexed by code (see
    /// [`Self::a_operands`]).
    pub fn b_operands(&self) -> &[f32; 256] {
        &self.b_operands
    }
}

/// Returns the cached [`ProductLut`] for a format pair, building it on first
/// use. Tables are never evicted; a sweep touches a handful of (format, bias)
/// pairs, each costing 256 KiB.
pub fn product_lut(fa: FpFormat, fb: FpFormat) -> Arc<ProductLut> {
    type Cache = Mutex<HashMap<(FpFormat, FpFormat), Arc<ProductLut>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(map.entry((fa, fb)).or_insert_with(|| Arc::new(ProductLut::new(fa, fb))))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn decode_lut_matches_decode() {
        for fmt in [FpFormat::fp8_e4m3(), FpFormat::fp8_e5m2()] {
            let lut = DecodeLut::new(fmt);
            for code in 0..=255u8 {
                assert_eq!(lut.decode(code).to_bits(), fmt.decode(u32::from(code)).to_bits());
            }
        }
    }

    #[test]
    fn zero_code_predicate_matches_decoded_zero() {
        for fmt in [
            FpFormat::fp8_e4m3(),
            FpFormat::fp8_e5m2(),
            FpFormat::fp8_e4m3_with_bias(-3).unwrap(),
            FpFormat::fp8_e4m3_with_bias(11).unwrap(),
        ] {
            let lut = DecodeLut::new(fmt);
            for code in 0..=255u8 {
                assert_eq!(is_zero_code(code), lut.decode(code) == 0.0, "{fmt} code {code:#04x}");
            }
        }
    }

    #[test]
    fn product_lut_matches_fp9_pipeline() {
        let fa = FpFormat::fp8_e4m3();
        let fb = FpFormat::fp8_e5m2();
        let lut = ProductLut::new(fa, fb);
        let fp9 = FpFormat::fp9();
        for ca in (0..=255u8).step_by(7) {
            for cb in 0..=255u8 {
                let expect =
                    fp9.quantize(fa.decode(u32::from(ca))) * fp9.quantize(fb.decode(u32::from(cb)));
                assert_eq!(lut.product(ca, cb).to_bits(), expect.to_bits());
            }
        }
    }

    /// Every table entry factors bit-exactly into the exposed operand
    /// tables — the identity the vector kernels' decode-and-multiply path
    /// rests on.
    #[test]
    fn products_factor_into_operand_tables() {
        for (fa, fb) in [
            (FpFormat::fp8_e4m3(), FpFormat::fp8_e5m2()),
            (FpFormat::fp8_e4m3_with_bias(11).unwrap(), FpFormat::fp8_e4m3()),
        ] {
            let lut = ProductLut::new(fa, fb);
            let (ia, ib) = (lut.a_operands(), lut.b_operands());
            for ca in 0..=255u8 {
                for cb in 0..=255u8 {
                    let expect = ia[usize::from(ca)] * ib[usize::from(cb)];
                    assert_eq!(lut.product(ca, cb).to_bits(), expect.to_bits());
                }
            }
        }
    }

    #[test]
    fn cache_keys_on_format_including_bias() {
        let a = product_lut(FpFormat::fp8_e4m3(), FpFormat::fp8_e4m3());
        let b = product_lut(FpFormat::fp8_e4m3(), FpFormat::fp8_e4m3());
        assert!(Arc::ptr_eq(&a, &b));
        let c = product_lut(FpFormat::fp8_e4m3_with_bias(9).unwrap(), FpFormat::fp8_e4m3());
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
