//! Numeric guard policies for the emulated kernels.
//!
//! A transient upset in the datapath (see `rapid-fault`) can push a chunk
//! accumulator to a non-finite value or an INT16 chunk register past its
//! legal bound. The guard policy decides what a kernel does when it
//! detects such a state — mirroring the choices a real accelerator runtime
//! has: let the corruption flow downstream, clamp it at the write-back
//! stage, or abort the kernel with a located diagnostic.

/// What a guarded kernel does when it detects a corrupted accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GuardPolicy {
    /// No checking: corrupted values propagate into the output, exactly as
    /// unprotected hardware would behave. This is the only policy with zero
    /// overhead and the default.
    #[default]
    Propagate,
    /// Clamp at detection: a non-finite float accumulator is replaced by
    /// the FP16 saturation value of its sign (0 for NaN); an integer chunk
    /// register past the legal bound is clamped to it. Training keeps
    /// running with bounded damage.
    Saturate,
    /// Abort: surface [`NumericsError::NonFinite`] /
    /// [`NumericsError::Overflow`] with the output coordinates of the
    /// first corrupted accumulator.
    ///
    /// [`NumericsError::NonFinite`]: crate::NumericsError::NonFinite
    /// [`NumericsError::Overflow`]: crate::NumericsError::Overflow
    Error,
}

impl GuardPolicy {
    /// Whether this policy requires inspecting accumulator state at all.
    pub fn checks(&self) -> bool {
        !matches!(self, GuardPolicy::Propagate)
    }
}

/// The FP16 saturation replacement for a non-finite float value: largest
/// finite FP16 (1,6,9) magnitude with the sign preserved, or `0.0` for NaN.
pub fn saturate_f32(v: f32) -> f32 {
    const FP16_MAX: f32 = 4_290_772_992.0; // (2 - 2^-9) * 2^31 = 2^32 - 2^22
    if v.is_nan() {
        0.0
    } else if v.is_infinite() {
        FP16_MAX.copysign(v)
    } else {
        v
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_is_propagate_and_check_free() {
        assert_eq!(GuardPolicy::default(), GuardPolicy::Propagate);
        assert!(!GuardPolicy::Propagate.checks());
        assert!(GuardPolicy::Saturate.checks());
        assert!(GuardPolicy::Error.checks());
    }

    #[test]
    fn saturate_clamps_nonfinite_only() {
        assert_eq!(saturate_f32(f32::NAN), 0.0);
        assert!(saturate_f32(f32::INFINITY) > 4.0e9);
        assert!(saturate_f32(f32::NEG_INFINITY) < -4.0e9);
        assert_eq!(saturate_f32(1.5), 1.5);
        assert_eq!(saturate_f32(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn saturation_value_is_on_the_fp16_lattice() {
        use crate::format::FpFormat;
        let v = saturate_f32(f32::INFINITY);
        assert_eq!(FpFormat::fp16().quantize(v), v);
    }
}
