//! # rapid-numerics
//!
//! Ultra-low-precision numerics substrate for the RaPiD accelerator
//! reproduction (ISCA 2021).
//!
//! RaPiD supports five data formats: FP16 (1,6,9 — IBM "DLFloat16"), two
//! 8-bit floats FP8 (1,4,3) with *programmable exponent bias* and
//! FP8 (1,5,2) (together "Hybrid-FP8"), plus INT4 and INT2 fixed point.
//! This crate provides bit-exact software emulation of those formats and of
//! the arithmetic pipelines the chip implements:
//!
//! * [`format::FpFormat`] — a runtime description of a (sign, exponent,
//!   mantissa) float format with round-to-nearest-even quantization,
//!   saturation, and raw-bit encode/decode.
//! * [`types`] — newtypes for the concrete formats ([`Fp16`], [`Fp8E4M3`],
//!   [`Fp8E5M2`], [`Fp9`]) storing raw bits.
//! * [`fma`] — the MPE's FPU pipeline: on-the-fly conversion of both HFP8
//!   operand formats to the internal FP9 (1,5,3) representation, fused
//!   multiply-add with an FP16 accumulator, and zero-gating semantics.
//! * [`accumulate`] — chunk-based hierarchical accumulation (Sakr et al.,
//!   ICLR'19), which RaPiD uses to preserve fidelity of partial sums.
//! * [`int`] — INT4/INT2 quantized types with INT16-per-chunk/INT32
//!   accumulation, and per-tensor scale quantization parameters.
//! * [`lut`] — exhaustive decode and FP8×FP8 product lookup tables that
//!   collapse the per-FMA format conversions of the HFP8 pipeline into a
//!   single table load (fast GEMM path).
//! * [`qtensor`] — quantize-once tensor representation carrying lattice
//!   values and (for 8-bit formats) raw operand codes.
//! * [`sfu`] — the Special Function Unit's fast/accurate approximations
//!   of `sqrt`, `exp`, `ln`, `sigmoid`, `tanh` and `reciprocal`
//!   (paper §III-B).
//! * [`tensor`] — a minimal row-major `f32` tensor used across the
//!   workspace.
//! * [`gemm`] — emulated GEMM and convolution kernels for every supported
//!   precision, returning both numeric results and datapath statistics
//!   (MAC counts, zero-gated MACs) consumed by the power model.
//! * [`dispatch`] — runtime kernel-backend selection (`RAPID_SIMD`
//!   knob + CPU capability detection) between the portable tiled fast
//!   paths, the AVX2 vector kernels and the bit-sliced INT2 kernel, plus
//!   the [`kernel_matrix`] telemetry report.
//! * [`guard`] — numeric guard policies ([`GuardPolicy`]) applied by the
//!   fault-injectable kernel variants ([`gemm::matmul_emulated_guarded`],
//!   [`gemm::matmul_int_guarded`]) when an accumulator goes non-finite or
//!   an INT16 chunk register overflows.
//!
//! # Example
//!
//! ```
//! use rapid_numerics::{format::FpFormat, gemm, tensor::Tensor};
//!
//! // Quantize a value to FP8 (1,4,3) with the default bias.
//! let f = FpFormat::fp8_e4m3();
//! assert_eq!(f.quantize(1.06), 1.0); // rounds to nearest representable
//!
//! // Run a small GEMM through the HFP8 forward pipeline.
//! let a = Tensor::from_vec(vec![2, 3], vec![0.5, -1.0, 2.0, 0.25, 1.5, -0.5]);
//! let b = Tensor::from_vec(vec![3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
//! let (c, stats) = gemm::matmul_hfp8_fwd(&a, &b, 64);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(stats.macs, 12);
//! ```

pub mod abft;
pub mod accumulate;
pub(crate) mod bitslice;
pub mod dispatch;
pub mod error;
pub mod fma;
pub mod format;
pub mod gemm;
pub mod guard;
pub mod int;
pub mod lut;
pub mod qtensor;
pub mod sfu;
pub(crate) mod simd;
pub mod tensor;
pub mod types;

pub use abft::{abft_matmul_emulated, abft_matmul_int, AbftReport};
pub use dispatch::{kernel_matrix, kernel_matrix_at, KernelBackend, KernelChoice, SimdMode};
pub use error::NumericsError;
pub use format::FpFormat;
pub use guard::GuardPolicy;
pub use int::{IntFormat, QuantParams};
pub use qtensor::QTensor;
pub use tensor::Tensor;
pub use types::{Fp16, Fp8E4M3, Fp8E5M2, Fp9};
