//! End-to-end reliable all-reduce: sequence-numbered chunks with
//! ack/retransmit over the chip-to-chip ring.
//!
//! [`super::allreduce`] prices a *fault-free* exchange. This module runs
//! the same ring all-reduce (reduce-scatter then all-gather) as a
//! value-carrying protocol that survives the delivery faults a
//! [`FaultPlan`] injects — drops, duplicates and slot holds — and reports
//! what surviving them cost in a [`RingHealth`].
//!
//! Protocol (per link, per phase step):
//!
//! ```text
//!   sender                              receiver
//!     │ ── chunk(seq=s) ───────────────▶ │   deliver: ack(s)
//!     │ ◀─────────────────────── ack(s) ─┤
//!     │ ── chunk(seq=s+1) ──────────X    │   dropped: no ack
//!     │    …timeout·2^r cycles…          │
//!     │ ── chunk(seq=s+1) [retry] ─────▶ │   deliver: ack(s+1)
//!     │ ── chunk(seq=s+2) ═══════════▶▶ │   duplicated: second copy
//!     │                                  │   discarded by seq dedupe
//! ```
//!
//! * every chunk carries a sequence number; the receiver acknowledges each
//!   delivered chunk and **discards duplicates by sequence number**, so a
//!   [`DeliveryFault::Duplicate`] can never double-accumulate a shard;
//! * an unacknowledged chunk is retransmitted after a timeout that backs
//!   off exponentially (`timeout · 2^retries`, capped), bounding the
//!   retransmit queue; a chunk that exhausts [`ReliableConfig::max_retries`]
//!   fails the exchange — the documented fault-rate ceiling;
//! * acknowledgements are single control flits on the reverse direction of
//!   the bidirectional ring and are modeled lossless (the fault plan's
//!   delivery stream applies to data chunks only), matching how the MNI
//!   treats request flits;
//! * a phase step's shard is accumulated only after every chunk is acked,
//!   so the **addition order is fixed by the ring topology** regardless of
//!   fault timing — the reduced values are bit-identical to the fault-free
//!   run at any survivable fault rate.

use crate::allreduce::AllReduceConfig;
use rapid_fault::{DeliveryFault, FaultPlan};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of the reliable chunked exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// The underlying ring geometry and link timing.
    pub transport: AllReduceConfig,
    /// Gradient elements per sequence-numbered chunk.
    pub chunk_elems: usize,
    /// Cycles before an unacknowledged chunk is first retransmitted.
    pub timeout_cycles: u64,
    /// Retransmits allowed per chunk before the exchange fails. With
    /// independent drop probability `p` the chance a chunk exhausts `r`
    /// retries is `p^(r+1)`; the default of 8 makes that < 1e-16 at the
    /// documented 1 % ceiling.
    pub max_retries: u32,
    /// Cap on the backoff exponent (backoff = `timeout · 2^min(retries,
    /// cap)`).
    pub backoff_cap: u32,
    /// Whether chunks carry a CRC-8 over their payload (see
    /// [`crate::crc`]). With CRC on, an in-transit payload corruption is
    /// detected on delivery and the chunk retransmitted immediately (no
    /// timeout wait — the receiver nacks); with CRC off the damaged
    /// payload is **silently delivered** and lands in the reduced values.
    pub crc: bool,
}

impl ReliableConfig {
    /// The paper's training links with protocol defaults sized for the
    /// documented ≤ 1 % drop/duplicate ceiling.
    pub fn rapid_training(chips: u32, hfp8: bool) -> Self {
        Self {
            transport: AllReduceConfig::rapid_training(chips, hfp8),
            chunk_elems: 1024,
            timeout_cycles: 600,
            max_retries: 8,
            backoff_cap: 5,
            crc: true,
        }
    }
}

/// Observability report of one reliable exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RingHealth {
    /// Distinct sequence-numbered chunks the exchange carried.
    pub chunks: u64,
    /// Chunk transmissions, including retries and duplicate deliveries.
    pub transmissions: u64,
    /// Chunks retransmitted after a drop timeout.
    pub retransmits: u64,
    /// Duplicate deliveries discarded by sequence-number dedupe.
    pub duplicates_discarded: u64,
    /// Deliveries held late by slot faults.
    pub holds: u64,
    /// Chunks whose payload CRC mismatched on delivery and were
    /// retransmitted (CRC protection on).
    pub crc_retransmits: u64,
    /// Corrupted payloads delivered without detection (CRC protection
    /// off). Nonzero means the reduced values are damaged.
    pub silent_corruptions: u64,
    /// Largest backoff any chunk waited, in cycles.
    pub max_backoff_cycles: u64,
    /// Cycles the exchange took under faults.
    pub cycles: u64,
    /// Cycles the identical exchange takes fault-free.
    pub ideal_cycles: u64,
}

impl RingHealth {
    /// Delivered payload bytes per cycle under faults.
    pub fn effective_bandwidth(&self, payload_bytes: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        payload_bytes / self.cycles as f64
    }

    /// Fraction of the fault-free bandwidth the exchange retained.
    pub fn bandwidth_retention(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.ideal_cycles as f64 / self.cycles as f64
    }

    /// Accumulates this report into a metrics registry under `<prefix>.*`
    /// (counters add across exchanges; `max_backoff_cycles` keeps the
    /// high-water mark) — the unified-telemetry form of this struct.
    pub fn record_into(&self, reg: &mut rapid_telemetry::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.chunks"), self.chunks);
        reg.add(&format!("{prefix}.transmissions"), self.transmissions);
        reg.add(&format!("{prefix}.retransmits"), self.retransmits);
        reg.add(&format!("{prefix}.duplicates_discarded"), self.duplicates_discarded);
        reg.add(&format!("{prefix}.holds"), self.holds);
        reg.add(&format!("{prefix}.crc_retransmits"), self.crc_retransmits);
        reg.add(&format!("{prefix}.silent_corruptions"), self.silent_corruptions);
        reg.counter_max(&format!("{prefix}.max_backoff_cycles"), self.max_backoff_cycles);
        reg.add(&format!("{prefix}.cycles"), self.cycles);
        reg.add(&format!("{prefix}.ideal_cycles"), self.ideal_cycles);
    }

    /// Reconstructs the struct as a thin view over registry counters
    /// written by [`RingHealth::record_into`] with the same prefix.
    pub fn from_registry(reg: &rapid_telemetry::MetricsRegistry, prefix: &str) -> Self {
        Self {
            chunks: reg.counter(&format!("{prefix}.chunks")),
            transmissions: reg.counter(&format!("{prefix}.transmissions")),
            retransmits: reg.counter(&format!("{prefix}.retransmits")),
            duplicates_discarded: reg.counter(&format!("{prefix}.duplicates_discarded")),
            holds: reg.counter(&format!("{prefix}.holds")),
            crc_retransmits: reg.counter(&format!("{prefix}.crc_retransmits")),
            silent_corruptions: reg.counter(&format!("{prefix}.silent_corruptions")),
            max_backoff_cycles: reg.counter(&format!("{prefix}.max_backoff_cycles")),
            cycles: reg.counter(&format!("{prefix}.cycles")),
            ideal_cycles: reg.counter(&format!("{prefix}.ideal_cycles")),
        }
    }
}

/// Why a reliable exchange could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReliableError {
    /// A construction parameter is out of the supported range.
    InvalidConfig(String),
    /// A chunk exhausted its retransmit budget — the fault rate is above
    /// the protocol's documented ceiling.
    RetriesExhausted {
        /// Sequence number of the undeliverable chunk.
        seq: u64,
        /// Retries attempted.
        retries: u32,
    },
}

impl std::fmt::Display for ReliableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid reliable-allreduce config: {why}"),
            Self::RetriesExhausted { seq, retries } => write!(
                f,
                "chunk seq {seq} undelivered after {retries} retries (fault rate above ceiling)"
            ),
        }
    }
}

impl std::error::Error for ReliableError {}

/// Times one link moving `chunks` sequence-numbered chunks through the
/// fault plan's delivery stream. Returns the cycle the last chunk's ack
/// lands.
fn simulate_link(
    chunks: u64,
    chunk_cycles: u64,
    cfg: &ReliableConfig,
    faults: &mut Option<&mut FaultPlan>,
    health: &mut RingHealth,
    silent: &mut Vec<(u64, u32, u32)>,
) -> Result<u64, ReliableError> {
    // Min-heap of (ready_at, seq, retries): fresh chunks are ready at 0 in
    // sequence order; retransmits re-enter with their backoff deadline.
    let mut pending: BinaryHeap<Reverse<(u64, u64, u32)>> =
        (0..chunks).map(|seq| Reverse((0u64, seq, 0u32))).collect();
    let mut link_free = 0u64;
    let mut done_at = 0u64;
    while let Some(Reverse((ready_at, seq, retries))) = pending.pop() {
        let start = link_free.max(ready_at);
        let mut end = start + chunk_cycles;
        health.transmissions += 1;
        let fate = faults.as_mut().and_then(|p| p.ring_delivery());
        match fate {
            Some(DeliveryFault::Drop) => {
                let next = retries + 1;
                if next > cfg.max_retries {
                    return Err(ReliableError::RetriesExhausted { seq, retries: next });
                }
                let backoff = cfg.timeout_cycles << next.min(cfg.backoff_cap);
                health.retransmits += 1;
                health.max_backoff_cycles = health.max_backoff_cycles.max(backoff);
                pending.push(Reverse((start + backoff, seq, next)));
            }
            Some(DeliveryFault::Duplicate) => {
                // Both copies cross the link; the receiver acks the first
                // and discards the second by sequence number.
                end += chunk_cycles;
                health.transmissions += 1;
                health.duplicates_discarded += 1;
                done_at = done_at.max(end);
            }
            None => {
                // The flit crossed the link; its payload may still have
                // been damaged in transit. CRC on: the receiver detects
                // the mismatch and nacks — an immediate retransmit, no
                // timeout wait. CRC off: the damage is silently delivered.
                let corrupt =
                    faults.as_mut().and_then(|p| p.ring_corrupt(cfg.chunk_elems as u32));
                if let Some((elem, bit)) = corrupt {
                    if cfg.crc {
                        let next = retries + 1;
                        if next > cfg.max_retries {
                            return Err(ReliableError::RetriesExhausted { seq, retries: next });
                        }
                        health.crc_retransmits += 1;
                        pending.push(Reverse((end, seq, next)));
                        link_free = end;
                        continue;
                    }
                    health.silent_corruptions += 1;
                    silent.push((seq, elem, bit));
                }
                let hold = faults.as_mut().and_then(|p| p.ring_hold()).unwrap_or(0);
                if hold > 0 {
                    health.holds += 1;
                }
                done_at = done_at.max(end + u64::from(hold));
            }
        }
        link_free = end;
    }
    Ok(done_at)
}

/// Runs a value-carrying ring all-reduce of `inputs` (one gradient vector
/// per chip, all the same length) under the optional fault plan.
///
/// Returns the reduced vector — the element-wise sum every chip ends up
/// holding, **bit-identical to the fault-free run** because delivery is
/// exactly-once and in fixed ring order — plus the [`RingHealth`] report.
///
/// # Errors
///
/// [`ReliableError::InvalidConfig`] when `inputs` is empty, lengths
/// differ, the chip count disagrees with `inputs.len()`, or
/// `chunk_elems == 0`; [`ReliableError::RetriesExhausted`] when the fault
/// rate exceeds the retransmit budget's ceiling.
pub fn reliable_allreduce(
    inputs: &[Vec<f32>],
    cfg: &ReliableConfig,
    mut faults: Option<&mut FaultPlan>,
) -> Result<(Vec<f32>, RingHealth), ReliableError> {
    let n = inputs.len();
    if n == 0 {
        return Err(ReliableError::InvalidConfig("need at least one chip".to_string()));
    }
    if cfg.transport.chips as usize != n {
        return Err(ReliableError::InvalidConfig(format!(
            "config says {} chips but {} inputs given",
            cfg.transport.chips, n
        )));
    }
    if cfg.chunk_elems == 0 {
        return Err(ReliableError::InvalidConfig("chunk_elems must be positive".to_string()));
    }
    let elems = inputs[0].len();
    if inputs.iter().any(|v| v.len() != elems) {
        return Err(ReliableError::InvalidConfig("input lengths differ".to_string()));
    }

    // ---- values: fixed-order reduction ------------------------------
    // Shard j is accumulated hop by hop around the ring starting at chip
    // (j+1) mod n; exactly-once in-order delivery means the sum order is
    // a function of topology alone, never of fault timing.
    let mut reduced = vec![0.0f32; elems];
    let shard_len = elems.div_ceil(n);
    for j in 0..n {
        let lo = j * shard_len;
        let hi = ((j + 1) * shard_len).min(elems);
        for step in 0..n {
            let chip = (j + 1 + step) % n;
            for (out, inp) in reduced[lo..hi].iter_mut().zip(&inputs[chip][lo..hi]) {
                *out += *inp;
            }
        }
    }

    // ---- timing: chunked ack/retransmit per link --------------------
    let mut health = RingHealth::default();
    if n == 1 {
        return Ok((reduced, health));
    }
    let max_shard = elems.div_ceil(n);
    let chunks_per_shard = (max_shard.div_ceil(cfg.chunk_elems)) as u64;
    let chunk_cycles = |elem_bytes: f64| -> u64 {
        let bytes = cfg.chunk_elems as f64 * elem_bytes;
        (bytes / cfg.transport.link_bytes_per_cycle).ceil().max(1.0) as u64
    };
    let phases: [(u64, u64); 2] = [
        (n as u64 - 1, chunk_cycles(cfg.transport.grad_bytes)), // reduce-scatter
        (n as u64 - 1, chunk_cycles(cfg.transport.weight_bytes)), // all-gather
    ];
    let mut total = 0u64;
    let mut ideal = 0u64;
    let mut scratch: Vec<(u64, u32, u32)> = Vec::new();
    for (steps, per_chunk) in phases {
        for step in 0..steps {
            // All n links move one shard concurrently; the step completes
            // when the slowest link's last ack lands. Link `l` carries
            // shard `(l + step) mod n` this step — a fixed rotation, so a
            // silently corrupted chunk maps to a deterministic span of the
            // reduced vector.
            let mut slowest = 0u64;
            for link in 0..n {
                scratch.clear();
                let t = simulate_link(
                    chunks_per_shard,
                    per_chunk,
                    cfg,
                    &mut faults,
                    &mut health,
                    &mut scratch,
                )?;
                slowest = slowest.max(t);
                let shard = (link + step as usize) % n;
                let lo = shard * shard_len;
                let hi = ((shard + 1) * shard_len).min(elems);
                for &(seq, elem, bit) in &scratch {
                    let idx = lo + seq as usize * cfg.chunk_elems + elem as usize;
                    if idx < hi {
                        reduced[idx] = f32::from_bits(reduced[idx].to_bits() ^ (1 << bit));
                    }
                }
            }
            health.chunks += chunks_per_shard * n as u64;
            total += slowest + cfg.transport.step_latency_cycles;
            ideal += chunks_per_shard * per_chunk + cfg.transport.step_latency_cycles;
        }
    }
    health.cycles = total;
    health.ideal_cycles = ideal;
    Ok((reduced, health))
}

/// [`reliable_allreduce`] that additionally accumulates the exchange's
/// [`RingHealth`] into a telemetry bundle under `ring.reliable.*` (plus a
/// `ring.reliable.exchanges` call counter). `tele = None` is exactly
/// [`reliable_allreduce`].
///
/// # Errors
///
/// Same contract as [`reliable_allreduce`].
pub fn reliable_allreduce_instrumented(
    inputs: &[Vec<f32>],
    cfg: &ReliableConfig,
    faults: Option<&mut FaultPlan>,
    tele: Option<&mut rapid_telemetry::Telemetry>,
) -> Result<(Vec<f32>, RingHealth), ReliableError> {
    let (out, health) = reliable_allreduce(inputs, cfg, faults)?;
    if let Some(t) = tele {
        health.record_into(&mut t.registry, "ring.reliable");
        t.registry.incr("ring.reliable.exchanges");
    }
    Ok((out, health))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_fault::FaultConfig;

    fn gradients(chips: usize, elems: usize) -> Vec<Vec<f32>> {
        (0..chips)
            .map(|c| {
                (0..elems)
                    .map(|i| ((i * 31 + c * 7 + 1) % 97) as f32 * 0.017 - 0.8)
                    .collect()
            })
            .collect()
    }

    fn faulty_plan(seed: u64, drop: f64, dup: f64, delay: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            ring_drop_rate: drop,
            ring_dup_rate: dup,
            ring_delay_rate: delay,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn fault_free_matches_elementwise_sum() {
        let inputs = gradients(4, 1000);
        let cfg = ReliableConfig::rapid_training(4, true);
        let (out, health) = reliable_allreduce(&inputs, &cfg, None).unwrap();
        for (i, &v) in out.iter().enumerate() {
            let direct: f32 = (0..4).map(|c| inputs[c][i]).sum();
            // Ring order is a rotation of chip order; both are exact here
            // because addition of these few values stays exact enough —
            // compare against the rotation order actually used.
            let _ = direct;
            let j = i / 250;
            let mut acc = 0.0f32;
            for step in 0..4 {
                acc += inputs[(j + 1 + step) % 4][i];
            }
            assert_eq!(v, acc);
        }
        assert_eq!(health.retransmits, 0);
        assert_eq!(health.cycles, health.ideal_cycles);
    }

    #[test]
    fn values_are_bit_identical_under_faults() {
        let inputs = gradients(4, 65_536);
        let cfg = ReliableConfig::rapid_training(4, true);
        let (clean, _) = reliable_allreduce(&inputs, &cfg, None).unwrap();
        let mut plan = faulty_plan(17, 0.05, 0.02, 0.02);
        let (dirty, health) = reliable_allreduce(&inputs, &cfg, Some(&mut plan)).unwrap();
        assert_eq!(clean, dirty, "faults must never change reduced values");
        assert!(health.retransmits > 0, "expected drops at 1%: {health:?}");
        assert!(health.duplicates_discarded > 0, "expected dupes: {health:?}");
        assert!(health.cycles > health.ideal_cycles);
        assert!(health.bandwidth_retention() < 1.0);
    }

    #[test]
    fn crc_turns_corruption_into_retransmits_not_damage() {
        let inputs = gradients(4, 32_768);
        let cfg = ReliableConfig::rapid_training(4, true);
        assert!(cfg.crc, "training links default to CRC protection");
        let (clean, _) = reliable_allreduce(&inputs, &cfg, None).unwrap();
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 23,
            ring_corrupt_rate: 0.03,
            ..FaultConfig::default()
        });
        let (out, health) = reliable_allreduce(&inputs, &cfg, Some(&mut plan)).unwrap();
        assert_eq!(out, clean, "CRC-protected corruption must never reach the values");
        assert!(health.crc_retransmits > 0, "3% corruption must fire: {health:?}");
        assert_eq!(health.silent_corruptions, 0);
        assert!(plan.counts().ring_corruptions > 0);
    }

    #[test]
    fn without_crc_corruption_is_silently_delivered() {
        let inputs = gradients(4, 32_768);
        let cfg =
            ReliableConfig { crc: false, ..ReliableConfig::rapid_training(4, true) };
        let (clean, _) = reliable_allreduce(&inputs, &cfg, None).unwrap();
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 23,
            ring_corrupt_rate: 0.03,
            ..FaultConfig::default()
        });
        let (out, health) = reliable_allreduce(&inputs, &cfg, Some(&mut plan)).unwrap();
        assert!(health.silent_corruptions > 0, "{health:?}");
        assert_eq!(health.crc_retransmits, 0);
        assert_ne!(out, clean, "silent corruption must be visible in the reduced values");
        // Timing is unaffected: a silently delivered chunk costs nothing
        // extra, which is exactly why it is dangerous.
        assert_eq!(health.retransmits, 0);
    }

    #[test]
    fn retransmit_cost_scales_with_drop_rate() {
        let inputs = gradients(4, 8192);
        let cfg = ReliableConfig::rapid_training(4, true);
        let mut mild = faulty_plan(5, 0.002, 0.0, 0.0);
        let mut harsh = faulty_plan(5, 0.02, 0.0, 0.0);
        let (_, h_mild) = reliable_allreduce(&inputs, &cfg, Some(&mut mild)).unwrap();
        let (_, h_harsh) = reliable_allreduce(&inputs, &cfg, Some(&mut harsh)).unwrap();
        assert!(h_harsh.retransmits > h_mild.retransmits);
        assert!(h_harsh.cycles >= h_mild.cycles);
    }

    #[test]
    fn catastrophic_drop_rate_exhausts_retries() {
        let inputs = gradients(2, 512);
        let cfg = ReliableConfig {
            max_retries: 2,
            ..ReliableConfig::rapid_training(2, true)
        };
        let mut plan = faulty_plan(3, 0.95, 0.0, 0.0);
        let err = reliable_allreduce(&inputs, &cfg, Some(&mut plan)).unwrap_err();
        assert!(matches!(err, ReliableError::RetriesExhausted { .. }), "{err}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = ReliableConfig::rapid_training(4, true);
        assert!(matches!(
            reliable_allreduce(&[], &cfg, None),
            Err(ReliableError::InvalidConfig(_))
        ));
        assert!(matches!(
            reliable_allreduce(&gradients(3, 16), &cfg, None),
            Err(ReliableError::InvalidConfig(_))
        ));
        let ragged = vec![vec![0.0; 8], vec![0.0; 9], vec![0.0; 8], vec![0.0; 8]];
        assert!(matches!(
            reliable_allreduce(&ragged, &cfg, None),
            Err(ReliableError::InvalidConfig(_))
        ));
    }

    #[test]
    fn single_chip_is_free_and_identity() {
        let inputs = gradients(1, 64);
        let cfg = ReliableConfig::rapid_training(1, true);
        let (out, health) = reliable_allreduce(&inputs, &cfg, None).unwrap();
        assert_eq!(out, inputs[0]);
        assert_eq!(health.cycles, 0);
    }
}
