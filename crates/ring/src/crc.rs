//! CRC-8 link-layer protection for ring flits.
//!
//! Each sequence-numbered chunk the reliable all-reduce moves carries an
//! 8-bit CRC (polynomial `x⁸ + x² + x + 1`, i.e. `0x07` — the CRC-8/SMBUS
//! generator) over its payload bytes. The receiver recomputes the CRC on
//! delivery; a mismatch turns silent corruption into a detected loss that
//! the existing ack/retransmit machinery repairs, exactly like a dropped
//! flit but without waiting out the timeout (the receiver nacks at once).
//!
//! Coverage of an 8-bit CRC: **all** single-bit errors, all double-bit
//! errors within the protected span (the generator has a primitive factor),
//! all odd-weight errors (factor `x + 1`), and every burst of ≤ 8 bits —
//! random multi-bit damage escapes with probability 2⁻⁸. The fault
//! injector flips exactly one payload bit per corruption event, so within
//! this model detection is certain; the escape probability is charged to
//! the analytical protection-tax model in `rapid-arch` instead.

/// The CRC-8 generator polynomial (x⁸ + x² + x + 1), MSB-first.
pub const CRC8_POLY: u8 = 0x07;

/// Computes the CRC-8 (poly `0x07`, init `0x00`, no reflection, no final
/// XOR — CRC-8/SMBUS) of a byte stream.
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 { (crc << 1) ^ CRC8_POLY } else { crc << 1 };
        }
    }
    crc
}

/// CRC-8 of an `f32` payload, as the link layer sees it: little-endian
/// byte order, element order preserved.
pub fn crc8_f32(payload: &[f32]) -> u8 {
    let mut crc = 0u8;
    for v in payload {
        for &b in &v.to_bits().to_le_bytes() {
            crc ^= b;
            for _ in 0..8 {
                crc = if crc & 0x80 != 0 { (crc << 1) ^ CRC8_POLY } else { crc << 1 };
            }
        }
    }
    crc
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_smbus_check_value() {
        // The standard CRC-8/SMBUS check: crc("123456789") == 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(&[]), 0x00);
    }

    #[test]
    fn detects_every_single_bit_flip_in_a_chunk() {
        let payload: Vec<f32> = (0..64).map(|i| (i as f32) * 0.37 - 11.0).collect();
        let good = crc8_f32(&payload);
        for elem in 0..payload.len() {
            for bit in 0..32 {
                let mut damaged = payload.clone();
                damaged[elem] = f32::from_bits(damaged[elem].to_bits() ^ (1 << bit));
                assert_ne!(
                    crc8_f32(&damaged),
                    good,
                    "single-bit flip at elem {elem} bit {bit} escaped"
                );
            }
        }
    }

    #[test]
    fn detects_double_bit_and_odd_weight_errors() {
        let payload: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let good = crc8_f32(&payload);
        // A sample of double-bit patterns across element boundaries.
        for (e1, b1, e2, b2) in [(0, 0, 15, 31), (3, 7, 3, 8), (5, 12, 9, 12), (0, 31, 1, 0)] {
            let mut damaged = payload.clone();
            damaged[e1] = f32::from_bits(damaged[e1].to_bits() ^ (1 << b1));
            damaged[e2] = f32::from_bits(damaged[e2].to_bits() ^ (1 << b2));
            assert_ne!(crc8_f32(&damaged), good, "double flip ({e1},{b1})+({e2},{b2}) escaped");
        }
        // Odd-weight: three flips in one element.
        let mut damaged = payload.clone();
        damaged[7] = f32::from_bits(damaged[7].to_bits() ^ 0b111);
        assert_ne!(crc8_f32(&damaged), good);
    }

    #[test]
    fn clean_payload_verifies() {
        let payload: Vec<f32> = (0..1024).map(|i| (i as f32) * 1e-3).collect();
        assert_eq!(crc8_f32(&payload), crc8_f32(&payload.clone()));
    }
}
