//! Ring channels: slotted, register-per-hop transport, 128 bytes/cycle in
//! each direction (paper §III-E).

/// Bytes carried by one ring flit (the 128 B/cycle link width).
pub const FLIT_BYTES: u64 = 128;

/// Travel direction around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Clockwise: slot `i` advances to slot `i + 1`.
    Cw,
    /// Counter-clockwise: slot `i` advances to slot `i − 1`.
    Ccw,
}

/// One flit in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit {
    /// Transfer identification tag (paper: unique per transfer).
    pub tag: u16,
    /// Originating node.
    pub src: usize,
    /// Destination bitmask (bit `i` = node `i` still needs a copy);
    /// multicast flits carry several set bits and are copied at each
    /// consumer, disappearing after the last one.
    pub dests: u64,
    /// `true` for a 1-flit `Recv` request message (control), `false` for a
    /// data flit.
    pub is_request: bool,
    /// For request flits: total bytes requested.
    pub req_bytes: u64,
    /// For request flits: number of consumers participating in the
    /// multicast group.
    pub req_consumers: u8,
    /// `true` on the final data flit of a transfer.
    pub last: bool,
}

/// A unidirectional slotted ring channel.
#[derive(Debug, Clone)]
pub struct Channel {
    slots: Vec<Option<Flit>>,
    dir: Direction,
    /// Total hop-traversals (for link-utilization statistics).
    pub hops: u64,
}

impl Channel {
    /// Creates a channel with one slot per node.
    pub fn new(n: usize, dir: Direction) -> Self {
        Self { slots: vec![None; n], dir, hops: 0 }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether every slot is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Number of free slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Bubble flow control: a node may inject only while at least one
    /// bubble (free slot) would remain afterwards — otherwise a fully
    /// occupied ring with no flit at its destination deadlocks.
    pub fn may_inject(&self, i: usize) -> bool {
        self.slots[i].is_none() && self.free_slots() >= 2
    }

    /// The flit currently at node `i`'s slot.
    pub fn at(&self, i: usize) -> Option<&Flit> {
        self.slots[i].as_ref()
    }

    /// Mutable access to node `i`'s slot (ejection/consumption).
    pub fn at_mut(&mut self, i: usize) -> &mut Option<Flit> {
        &mut self.slots[i]
    }

    /// Injects a flit at node `i` if the slot is free. Returns `false`
    /// (and keeps the flit out) when occupied.
    pub fn inject(&mut self, i: usize, flit: Flit) -> bool {
        if self.slots[i].is_some() {
            return false;
        }
        self.slots[i] = Some(flit);
        true
    }

    /// Advances every flit one hop where the next slot frees up this
    /// cycle; bunched flits stall behind occupied slots.
    pub fn advance(&mut self) {
        self.advance_with_holds(&[]);
    }

    /// [`Channel::advance`], but slots flagged in `held` keep their flit in
    /// place this cycle (fault injection models a slow repeater /
    /// transient backpressure); upstream flits stall behind a held one
    /// exactly as behind any other blockage. Indices beyond `held.len()`
    /// are treated as not held, so `&[]` is a plain advance.
    pub fn advance_with_holds(&mut self, held: &[bool]) {
        let n = self.slots.len();
        if n == 0 {
            return;
        }
        let is_held = |i: usize| held.get(i).copied().unwrap_or(false);
        let mut moves = vec![false; n];
        // A flit moves if its next slot is empty, or its occupant moves
        // too: propagate backwards along the travel direction from every
        // empty slot, stopping at held flits.
        for e in 0..n {
            if self.slots[e].is_some() {
                continue;
            }
            let mut j = self.prev(e);
            while self.slots[j].is_some() && !moves[j] && !is_held(j) {
                moves[j] = true;
                j = self.prev(j);
                if j == e {
                    break;
                }
            }
        }
        let mut next: Vec<Option<Flit>> = vec![None; n];
        for i in 0..n {
            if let Some(f) = self.slots[i].take() {
                if moves[i] {
                    next[self.next(i)] = Some(f);
                    self.hops += 1;
                } else {
                    next[i] = Some(f);
                }
            }
        }
        self.slots = next;
    }

    /// The slot a flit at `i` advances to.
    pub fn next(&self, i: usize) -> usize {
        let n = self.slots.len();
        match self.dir {
            Direction::Cw => (i + 1) % n,
            Direction::Ccw => (i + n - 1) % n,
        }
    }

    /// The slot upstream of `i`.
    pub fn prev(&self, i: usize) -> usize {
        let n = self.slots.len();
        match self.dir {
            Direction::Cw => (i + n - 1) % n,
            Direction::Ccw => (i + 1) % n,
        }
    }
}

/// Hop count from `src` to `dst` travelling in `dir` on an `n`-ring.
pub fn distance(n: usize, src: usize, dst: usize, dir: Direction) -> usize {
    match dir {
        Direction::Cw => (dst + n - src) % n,
        Direction::Ccw => (src + n - dst) % n,
    }
}

/// The shorter travel direction from `src` to `dst`.
pub fn shortest_direction(n: usize, src: usize, dst: usize) -> Direction {
    if distance(n, src, dst, Direction::Cw) <= distance(n, src, dst, Direction::Ccw) {
        Direction::Cw
    } else {
        Direction::Ccw
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn flit(tag: u16) -> Flit {
        Flit { tag, src: 0, dests: 1 << 3, is_request: false, req_bytes: 0, req_consumers: 0, last: false }
    }

    #[test]
    fn flit_advances_one_hop_per_cycle() {
        let mut c = Channel::new(5, Direction::Cw);
        assert!(c.inject(0, flit(1)));
        for i in 1..=3 {
            c.advance();
            assert!(c.at(i).is_some(), "flit should be at {i}");
        }
        assert_eq!(c.hops, 3);
    }

    #[test]
    fn ccw_advances_the_other_way() {
        let mut c = Channel::new(5, Direction::Ccw);
        assert!(c.inject(0, flit(1)));
        c.advance();
        assert!(c.at(4).is_some());
    }

    #[test]
    fn flits_stall_behind_blockage() {
        let mut c = Channel::new(4, Direction::Cw);
        assert!(c.inject(0, flit(1)));
        assert!(c.inject(1, flit(2)));
        assert!(c.inject(2, flit(3)));
        // Slot 3 empty: everyone shuffles forward one.
        c.advance();
        assert!(c.at(0).is_none());
        assert_eq!(c.at(1).unwrap().tag, 1);
        assert_eq!(c.at(2).unwrap().tag, 2);
        assert_eq!(c.at(3).unwrap().tag, 3);
    }

    #[test]
    fn full_ring_does_not_move() {
        let mut c = Channel::new(3, Direction::Cw);
        for i in 0..3 {
            assert!(c.inject(i, flit(i as u16)));
        }
        c.advance();
        for i in 0..3 {
            assert_eq!(c.at(i).unwrap().tag, i as u16);
        }
        assert_eq!(c.hops, 0);
    }

    #[test]
    fn held_slot_stalls_itself_and_followers() {
        let mut c = Channel::new(5, Direction::Cw);
        assert!(c.inject(0, flit(1)));
        assert!(c.inject(1, flit(2)));
        // Hold the flit at slot 1: neither it nor the one behind moves.
        c.advance_with_holds(&[false, true, false, false, false]);
        assert_eq!(c.at(0).unwrap().tag, 1);
        assert_eq!(c.at(1).unwrap().tag, 2);
        assert_eq!(c.hops, 0);
        // Released: both move.
        c.advance_with_holds(&[]);
        assert_eq!(c.at(1).unwrap().tag, 1);
        assert_eq!(c.at(2).unwrap().tag, 2);
    }

    #[test]
    fn cannot_inject_into_occupied_slot() {
        let mut c = Channel::new(3, Direction::Cw);
        assert!(c.inject(1, flit(1)));
        assert!(!c.inject(1, flit(2)));
    }

    #[test]
    fn distances_and_direction_choice() {
        assert_eq!(distance(8, 1, 3, Direction::Cw), 2);
        assert_eq!(distance(8, 1, 3, Direction::Ccw), 6);
        assert_eq!(shortest_direction(8, 1, 3), Direction::Cw);
        assert_eq!(shortest_direction(8, 1, 7), Direction::Ccw);
    }
}
