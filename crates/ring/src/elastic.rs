//! Elastic all-reduce: membership epochs, heartbeat failure detection,
//! and ring healing over the reliable channel.
//!
//! [`super::reliable`] survives *flit*-level faults — drops, duplicates,
//! corruption — but assumes every chip lives to the end of the exchange.
//! A crashed or hung node would stall that protocol forever: its shard
//! never arrives, the ack never comes, and retries burn against a peer
//! that cannot answer. This module closes that gap for multi-chip
//! training:
//!
//! * a [`Membership`] tracks which nodes are in the ring under a
//!   monotonically increasing **epoch**; every splice (node removed) or
//!   rejoin bumps the epoch, so any two nodes that disagree about the
//!   ring can detect it from the epoch number alone;
//! * a [`HeartbeatDetector`] declares a silent node *suspect* after a
//!   fixed number of missed heartbeats — deterministic (pure cycle
//!   arithmetic, no wall clock), so detection latency is a config
//!   constant, not a race;
//! * [`elastic_allreduce`] runs one collective under a [`FaultPlan`]'s
//!   node-fault domain: a crashed node is detected fast (its links drop —
//!   link-down signal), a hung node slowly (links stay up; only heartbeat
//!   silence reveals it), and either way the ring **heals**: the dead
//!   node is spliced out, in-flight chunks it contributed are re-reduced
//!   from surviving contributions, and the exchange completes over the
//!   survivor ring. Stragglers are bounded by a deadline: a slow node
//!   that can still meet it is waited for; one that cannot is dropped
//!   from *this exchange's* contributor set (partial all-reduce) without
//!   losing membership.
//!
//! Reduced values are a fixed ring-order sum over the **contributor**
//! set, so the same seed reproduces bit-identical results and the
//! identical event trace; every path is bounded in cycles — the module's
//! zero-hang guarantee is by construction, not by timeout luck.

use crate::reliable::{reliable_allreduce, ReliableConfig, ReliableError, RingHealth};
use rapid_fault::{FaultPlan, NodeFault};

/// Configuration of the elastic collective layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticConfig {
    /// The reliable chunked transport the survivor exchange runs on.
    pub reliable: ReliableConfig,
    /// Heartbeat period in cycles.
    pub heartbeat_cycles: u64,
    /// Missed heartbeats before a silent node is declared hung.
    pub suspect_after: u32,
    /// Link-down detection latency for a crashed node, in cycles. Much
    /// smaller than the heartbeat path: dead links announce themselves.
    pub crash_detect_cycles: u64,
    /// Cost of one membership-epoch agreement round (splice broadcast +
    /// acknowledgements), in cycles.
    pub heal_epoch_cycles: u64,
    /// Straggler deadline as a multiple of the survivor ring's ideal
    /// exchange time. A slow node projected to finish within the deadline
    /// is waited for; one projected past it is dropped from this
    /// exchange's contributors.
    pub straggler_deadline: f64,
    /// Minimum contributors an exchange may shrink to before it is an
    /// error instead of a heal.
    pub min_world: usize,
}

impl ElasticConfig {
    /// The paper's training links with elastic defaults: crash detection
    /// an order of magnitude faster than hang detection, and a 2× ideal
    /// straggler deadline.
    pub fn rapid_training(chips: u32, hfp8: bool) -> Self {
        Self {
            reliable: ReliableConfig::rapid_training(chips, hfp8),
            heartbeat_cycles: 2_000,
            suspect_after: 3,
            crash_detect_cycles: 500,
            heal_epoch_cycles: 1_500,
            straggler_deadline: 2.0,
            min_world: 1,
        }
    }
}

/// Deterministic heartbeat failure detector: a node silent for
/// `period × suspect_after` cycles is suspect. Pure cycle arithmetic —
/// the same silence always produces the same verdict at the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatDetector {
    /// Heartbeat period in cycles.
    pub period: u64,
    /// Missed beats before suspicion.
    pub suspect_after: u32,
}

impl HeartbeatDetector {
    /// Cycles of silence after which a node is declared suspect.
    pub fn detect_cycles(&self) -> u64 {
        self.period.max(1) * u64::from(self.suspect_after.max(1))
    }

    /// Whether `silence` cycles without a heartbeat makes a node suspect.
    pub fn is_suspect(&self, silence: u64) -> bool {
        silence >= self.detect_cycles()
    }
}

/// Ring membership under an epoch protocol. Nodes are identified by their
/// original rank (`0..world`); the member list is always sorted, so the
/// ring order after any sequence of splices is a deterministic function
/// of *who* is alive, never of detection timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    epoch: u64,
    members: Vec<u32>,
    world: u32,
}

impl Membership {
    /// A full ring of `world` nodes at epoch 0.
    ///
    /// # Errors
    ///
    /// [`ElasticError::InvalidConfig`] when `world` is zero.
    pub fn new(world: u32) -> Result<Self, ElasticError> {
        if world == 0 {
            return Err(ElasticError::InvalidConfig("world size must be positive".to_string()));
        }
        Ok(Self { epoch: 0, members: (0..world).collect(), world })
    }

    /// Current epoch; bumped by every membership change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Alive members, sorted by rank.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// The original world size this ring started with.
    pub fn world(&self) -> u32 {
        self.world
    }

    /// Whether `node` is currently a member.
    pub fn is_member(&self, node: u32) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Removes `dead` nodes from the ring. Bumps the epoch once if
    /// anything was actually removed; returns the (possibly unchanged)
    /// epoch.
    pub fn splice(&mut self, dead: &[u32]) -> u64 {
        let before = self.members.len();
        self.members.retain(|m| !dead.contains(m));
        if self.members.len() != before {
            self.epoch += 1;
        }
        self.epoch
    }

    /// Re-admits a previously spliced node (rank order is restored by the
    /// sorted invariant). Bumps the epoch if the node was absent; returns
    /// the epoch.
    pub fn rejoin(&mut self, node: u32) -> u64 {
        if node < self.world {
            if let Err(pos) = self.members.binary_search(&node) {
                self.members.insert(pos, node);
                self.epoch += 1;
            }
        }
        self.epoch
    }
}

/// One membership- or schedule-affecting decision during an elastic
/// exchange, in the order it was made. The trace is part of the
/// reproducibility contract: same seed, same events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElasticEvent {
    /// A crashed node was detected via link-down at phase step `at_step`.
    CrashDetected {
        /// The dead node's rank.
        node: u32,
        /// Phase step of the exchange at which it died.
        at_step: u32,
    },
    /// A hung node was detected via heartbeat silence.
    HangDetected {
        /// The hung node's rank.
        node: u32,
        /// Phase step at which it stopped making progress.
        at_step: u32,
    },
    /// A straggler was slow but inside the deadline; the ring waits.
    StragglerRetained {
        /// The slow node's rank.
        node: u32,
        /// Its service-time multiplier this exchange.
        factor: f64,
    },
    /// A straggler was projected past the deadline and dropped from this
    /// exchange's contributors (it keeps its membership).
    StragglerDropped {
        /// The dropped node's rank.
        node: u32,
        /// Its service-time multiplier this exchange.
        factor: f64,
    },
    /// The membership healed: dead nodes spliced out, epoch bumped.
    Spliced {
        /// The new epoch after the splice.
        epoch: u64,
        /// Members remaining after the splice.
        survivors: u32,
    },
    /// A member's chip health fell below the fleet floor; it was demoted
    /// at the barrier instead of waiting for it to crash mid-exchange.
    HealthDemoted {
        /// The demoted node's rank.
        node: u32,
        /// Its chip health at demotion, in milli-units (0..=1000) —
        /// integer so same-seed event traces compare with `==`.
        score_milli: u32,
    },
}

/// Proactive health demotion at a barrier: splices out every member
/// whose chip-health score (as reported by each node's
/// `ChipHealthMonitor::chip_health`) fell below `floor`, bumping the
/// epoch once. This is the elastic ring's half of the mercurial-core
/// story: a chip accumulating quarantined cores leaves the training ring
/// *before* it corrupts a gradient exchange or stalls it, rather than
/// waiting for the crash/hang detectors to fire mid-allreduce.
///
/// Call between exchanges (at the step barrier, where no flits are in
/// flight). `chip_health` pairs node ranks with their current scores;
/// non-members and healthy nodes are ignored. Returns the decision
/// events in rank order — same scores, same trace.
pub fn demote_unhealthy(
    membership: &mut Membership,
    chip_health: &[(u32, f64)],
    floor: f64,
) -> Vec<ElasticEvent> {
    let mut events = Vec::new();
    let mut demoted = Vec::new();
    for &(node, score) in chip_health {
        if membership.is_member(node) && score < floor {
            demoted.push(node);
            events.push(ElasticEvent::HealthDemoted {
                node,
                score_milli: (score.clamp(0.0, 1.0) * 1000.0).round() as u32,
            });
        }
    }
    if !demoted.is_empty() {
        let epoch = membership.splice(&demoted);
        events.push(ElasticEvent::Spliced {
            epoch,
            survivors: membership.members().len() as u32,
        });
    }
    events
}

/// Observability report of one elastic exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ElasticHealth {
    /// Crashed nodes detected (link-down path).
    pub crashes_detected: u64,
    /// Hung nodes detected (heartbeat-silence path).
    pub hangs_detected: u64,
    /// Stragglers retained within the deadline.
    pub stragglers_retained: u64,
    /// Stragglers dropped from the contributor set by the deadline.
    pub stragglers_dropped: u64,
    /// Membership splices performed (0 or 1 per exchange).
    pub splices: u64,
    /// In-flight chunks re-reduced from surviving contributions after a
    /// splice.
    pub rereduced_chunks: u64,
    /// Cycles spent detecting failures (max over concurrent detections).
    pub detect_cycles: u64,
    /// Cycles spent healing (epoch agreement + re-reduction).
    pub heal_cycles: u64,
    /// Total exchange cycles including detection, healing, and straggler
    /// waiting.
    pub cycles: u64,
    /// Cycles the same exchange takes fault-free over the full membership.
    pub ideal_cycles: u64,
    /// The survivor ring's flit-level transport report.
    pub transport: RingHealth,
}

impl ElasticHealth {
    /// Fraction of the fault-free exchange rate this one retained.
    pub fn retention(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.ideal_cycles as f64 / self.cycles as f64
    }

    /// Accumulates this report into a metrics registry under `<prefix>.*`
    /// (the transport sub-report lands under `<prefix>.transport.*`) —
    /// the unified-telemetry form of this struct.
    pub fn record_into(&self, reg: &mut rapid_telemetry::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.crashes_detected"), self.crashes_detected);
        reg.add(&format!("{prefix}.hangs_detected"), self.hangs_detected);
        reg.add(&format!("{prefix}.stragglers_retained"), self.stragglers_retained);
        reg.add(&format!("{prefix}.stragglers_dropped"), self.stragglers_dropped);
        reg.add(&format!("{prefix}.splices"), self.splices);
        reg.add(&format!("{prefix}.rereduced_chunks"), self.rereduced_chunks);
        reg.add(&format!("{prefix}.detect_cycles"), self.detect_cycles);
        reg.add(&format!("{prefix}.heal_cycles"), self.heal_cycles);
        reg.add(&format!("{prefix}.cycles"), self.cycles);
        reg.add(&format!("{prefix}.ideal_cycles"), self.ideal_cycles);
        self.transport.record_into(reg, &format!("{prefix}.transport"));
    }

    /// Reconstructs the struct as a thin view over registry counters
    /// written by [`ElasticHealth::record_into`] with the same prefix.
    pub fn from_registry(reg: &rapid_telemetry::MetricsRegistry, prefix: &str) -> Self {
        Self {
            crashes_detected: reg.counter(&format!("{prefix}.crashes_detected")),
            hangs_detected: reg.counter(&format!("{prefix}.hangs_detected")),
            stragglers_retained: reg.counter(&format!("{prefix}.stragglers_retained")),
            stragglers_dropped: reg.counter(&format!("{prefix}.stragglers_dropped")),
            splices: reg.counter(&format!("{prefix}.splices")),
            rereduced_chunks: reg.counter(&format!("{prefix}.rereduced_chunks")),
            detect_cycles: reg.counter(&format!("{prefix}.detect_cycles")),
            heal_cycles: reg.counter(&format!("{prefix}.heal_cycles")),
            cycles: reg.counter(&format!("{prefix}.cycles")),
            ideal_cycles: reg.counter(&format!("{prefix}.ideal_cycles")),
            transport: RingHealth::from_registry(reg, &format!("{prefix}.transport")),
        }
    }
}

/// Why an elastic exchange could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElasticError {
    /// A construction parameter is out of the supported range.
    InvalidConfig(String),
    /// Too few contributors remain to run the exchange.
    WorldTooSmall {
        /// Contributors left after failures and straggler drops.
        survivors: usize,
        /// The configured minimum.
        min: usize,
    },
    /// The survivor ring's flit-level transport failed.
    Reliable(ReliableError),
}

impl std::fmt::Display for ElasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid elastic-allreduce config: {why}"),
            Self::WorldTooSmall { survivors, min } => write!(
                f,
                "only {survivors} contributors remain (minimum {min}) — cannot heal further"
            ),
            Self::Reliable(e) => write!(f, "survivor-ring transport failed: {e}"),
        }
    }
}

impl std::error::Error for ElasticError {}

impl From<ReliableError> for ElasticError {
    fn from(e: ReliableError) -> Self {
        Self::Reliable(e)
    }
}

/// What one elastic exchange produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticOutcome {
    /// The reduced vector: a fixed ring-order sum over `contributors`.
    pub reduced: Vec<f32>,
    /// Nodes whose gradients are in `reduced`, sorted by rank. Average
    /// over `contributors.len()` to rescale to the surviving world.
    pub contributors: Vec<u32>,
    /// Membership epoch after the exchange (bumped if the ring healed).
    pub epoch: u64,
    /// Timing and counter report.
    pub health: ElasticHealth,
    /// Decision trace, identical for identical seeds.
    pub events: Vec<ElasticEvent>,
}

/// Fault-free cycles for one reliable exchange of `elems` elements over
/// `n` chips (the arithmetic [`reliable_allreduce`] charges as `ideal`).
fn ideal_exchange_cycles(n: usize, elems: usize, cfg: &ReliableConfig) -> u64 {
    if n <= 1 {
        return 0;
    }
    let shard_len = elems.div_ceil(n);
    let chunks = shard_len.div_ceil(cfg.chunk_elems) as u64;
    let per_chunk = |elem_bytes: f64| -> u64 {
        let bytes = cfg.chunk_elems as f64 * elem_bytes;
        (bytes / cfg.transport.link_bytes_per_cycle).ceil().max(1.0) as u64
    };
    let steps = n as u64 - 1;
    steps * (chunks * per_chunk(cfg.transport.grad_bytes) + cfg.transport.step_latency_cycles)
        + steps
            * (chunks * per_chunk(cfg.transport.weight_bytes) + cfg.transport.step_latency_cycles)
}

/// Runs one elastic ring all-reduce of `inputs` (one gradient vector per
/// original rank; only current members' entries are read) under the
/// optional fault plan's node domain, healing the ring through crashes
/// and hangs and bounding stragglers with a deadline.
///
/// Membership-affecting faults are spliced out of `membership` (epoch
/// bump); dropped stragglers stay members but are excluded from this
/// exchange's contributors. The reduced values are the fixed ring-order
/// sum over the final contributor set — average over
/// [`ElasticOutcome::contributors`] to rescale gradients to the surviving
/// world.
///
/// Every path is bounded: detection, healing, and straggler waiting are
/// all fixed cycle charges, and the survivor exchange inherits the
/// reliable protocol's bounded-retry guarantee.
///
/// # Errors
///
/// [`ElasticError::InvalidConfig`] on shape mismatches,
/// [`ElasticError::WorldTooSmall`] when failures and straggler drops
/// leave fewer than [`ElasticConfig::min_world`] contributors, and
/// [`ElasticError::Reliable`] when the survivor transport itself fails.
pub fn elastic_allreduce(
    inputs: &[Vec<f32>],
    membership: &mut Membership,
    cfg: &ElasticConfig,
    mut faults: Option<&mut FaultPlan>,
) -> Result<ElasticOutcome, ElasticError> {
    if inputs.len() != membership.world() as usize {
        return Err(ElasticError::InvalidConfig(format!(
            "{} inputs for a world of {}",
            inputs.len(),
            membership.world()
        )));
    }
    let members = membership.members().to_vec();
    let Some(&first) = members.first() else {
        return Err(ElasticError::WorldTooSmall { survivors: 0, min: cfg.min_world.max(1) });
    };
    let elems = inputs[first as usize].len();
    if members.iter().any(|&m| inputs[m as usize].len() != elems) {
        return Err(ElasticError::InvalidConfig("member input lengths differ".to_string()));
    }
    if !(cfg.straggler_deadline.is_finite() && cfg.straggler_deadline >= 1.0) {
        return Err(ElasticError::InvalidConfig(
            "straggler_deadline must be a finite multiple ≥ 1".to_string(),
        ));
    }

    let n = members.len();
    // Phase steps of a full-membership exchange: (n-1) reduce-scatter +
    // (n-1) all-gather. Fates are drawn once per member, in rank order,
    // so the draw sequence is a function of membership alone.
    let steps = (2 * n.saturating_sub(1)).max(1) as u32;
    let mut crashed: Vec<(u32, u32)> = Vec::new();
    let mut hung: Vec<(u32, u32)> = Vec::new();
    let mut slow: Vec<(u32, f64)> = Vec::new();
    if let Some(plan) = faults.as_mut() {
        for &node in &members {
            match plan.node_fault(node, steps) {
                Some(NodeFault::Crash { at_step }) => crashed.push((node, at_step)),
                Some(NodeFault::Hang { at_step }) => hung.push((node, at_step)),
                Some(NodeFault::Slow { factor }) => slow.push((node, factor)),
                None => {}
            }
        }
    }

    let mut health = ElasticHealth::default();
    let mut events = Vec::new();
    health.ideal_cycles = ideal_exchange_cycles(n, elems, &cfg.reliable);

    let detector = HeartbeatDetector {
        period: cfg.heartbeat_cycles,
        suspect_after: cfg.suspect_after,
    };
    // Detection: crashes announce themselves via link-down, hangs only
    // via heartbeat silence. Concurrent detections overlap, so the charge
    // is the max, not the sum; pre-fault progress is the furthest the
    // doomed exchange got before the latest failure.
    let mut detect = 0u64;
    let mut pre_fault = 0u64;
    for &(node, at_step) in &crashed {
        health.crashes_detected += 1;
        detect = detect.max(cfg.crash_detect_cycles);
        pre_fault =
            pre_fault.max(health.ideal_cycles * u64::from(at_step) / u64::from(steps.max(1)));
        events.push(ElasticEvent::CrashDetected { node, at_step });
    }
    for &(node, at_step) in &hung {
        health.hangs_detected += 1;
        detect = detect.max(detector.detect_cycles());
        pre_fault =
            pre_fault.max(health.ideal_cycles * u64::from(at_step) / u64::from(steps.max(1)));
        events.push(ElasticEvent::HangDetected { node, at_step });
    }
    health.detect_cycles = detect;

    // Heal: splice the dead out of the membership, agree on the new
    // epoch, and re-reduce the in-flight chunks the dead had already
    // contributed from the surviving copies (one shard's worth per dead
    // node, priced at gradient chunk cycles).
    let dead: Vec<u32> =
        crashed.iter().map(|&(m, _)| m).chain(hung.iter().map(|&(m, _)| m)).collect();
    let survivors: Vec<u32> = members.iter().copied().filter(|m| !dead.contains(m)).collect();
    if survivors.len() < cfg.min_world.max(1) {
        return Err(ElasticError::WorldTooSmall {
            survivors: survivors.len(),
            min: cfg.min_world.max(1),
        });
    }
    let mut heal = 0u64;
    if !dead.is_empty() {
        let shard_len = elems.div_ceil(n);
        let chunks_per_shard = shard_len.div_ceil(cfg.reliable.chunk_elems) as u64;
        let grad_chunk_cycles = {
            let bytes = cfg.reliable.chunk_elems as f64 * cfg.reliable.transport.grad_bytes;
            (bytes / cfg.reliable.transport.link_bytes_per_cycle).ceil().max(1.0) as u64
        };
        health.rereduced_chunks = chunks_per_shard * dead.len() as u64;
        heal = cfg.heal_epoch_cycles + health.rereduced_chunks * grad_chunk_cycles;
        health.splices = 1;
        let epoch = membership.splice(&dead);
        events.push(ElasticEvent::Spliced { epoch, survivors: survivors.len() as u32 });
    }
    health.heal_cycles = heal;

    // Straggler deadline: projected completion beyond `deadline ×
    // ideal(survivor ring)` drops the node from this exchange's
    // contributors; within it, the ring waits (factor multiplies the
    // exchange).
    let ideal_survivor = ideal_exchange_cycles(survivors.len(), elems, &cfg.reliable);
    let mut wait_factor = 1.0f64;
    let mut contributors = survivors.clone();
    for &(node, factor) in &slow {
        if dead.contains(&node) {
            continue;
        }
        let factor = factor.max(1.0);
        if factor <= cfg.straggler_deadline {
            health.stragglers_retained += 1;
            wait_factor = wait_factor.max(factor);
            events.push(ElasticEvent::StragglerRetained { node, factor });
        } else {
            health.stragglers_dropped += 1;
            contributors.retain(|&m| m != node);
            events.push(ElasticEvent::StragglerDropped { node, factor });
        }
    }
    if contributors.len() < cfg.min_world.max(1) {
        return Err(ElasticError::WorldTooSmall {
            survivors: contributors.len(),
            min: cfg.min_world.max(1),
        });
    }

    // Survivor exchange: the reliable protocol over the contributor ring
    // carries the values (and the flit-level fault stream). Its fixed
    // ring-order reduction makes the result a function of *who*
    // contributed, never of when failures were detected.
    let contributor_inputs: Vec<Vec<f32>> =
        contributors.iter().map(|&m| inputs[m as usize].clone()).collect();
    let rcfg = ReliableConfig {
        transport: crate::allreduce::AllReduceConfig {
            chips: contributors.len() as u32,
            ..cfg.reliable.transport
        },
        ..cfg.reliable
    };
    let (reduced, transport) = reliable_allreduce(&contributor_inputs, &rcfg, faults)?;
    health.transport = transport;
    // A dropped straggler's deadline expires before the fallback
    // completes; a retained one stretches the exchange by its factor.
    let mut exchange = (transport.cycles as f64 * wait_factor).ceil() as u64;
    if health.stragglers_dropped > 0 {
        exchange =
            exchange.max((ideal_survivor as f64 * cfg.straggler_deadline).ceil() as u64);
    }
    health.cycles = pre_fault + detect + heal + exchange;
    if health.ideal_cycles == 0 {
        health.ideal_cycles = health.cycles.max(1);
    }

    Ok(ElasticOutcome {
        reduced,
        contributors,
        epoch: membership.epoch(),
        health,
        events,
    })
}

/// [`elastic_allreduce`] that additionally accumulates the exchange's
/// [`ElasticHealth`] into a telemetry bundle under `ring.elastic.*` (plus
/// a `ring.elastic.exchanges` call counter). `tele = None` is exactly
/// [`elastic_allreduce`].
///
/// # Errors
///
/// Same contract as [`elastic_allreduce`].
pub fn elastic_allreduce_instrumented(
    inputs: &[Vec<f32>],
    membership: &mut Membership,
    cfg: &ElasticConfig,
    faults: Option<&mut FaultPlan>,
    tele: Option<&mut rapid_telemetry::Telemetry>,
) -> Result<ElasticOutcome, ElasticError> {
    let out = elastic_allreduce(inputs, membership, cfg, faults)?;
    if let Some(t) = tele {
        // The cumulative exchange-cycle counter doubles as the span time
        // base: exchange N starts where exchange N-1 ended, so a whole
        // training run renders as contiguous exchange spans.
        let base = t.registry.counter("ring.elastic.cycles");
        out.health.record_into(&mut t.registry, "ring.elastic");
        t.registry.incr("ring.elastic.exchanges");
        t.registry.counter_max("ring.elastic.epoch", out.epoch);
        if let Some(spans) = &mut t.spans {
            let n = t.registry.counter("ring.elastic.exchanges");
            let h = &out.health;
            let ctx = spans.open_root(rapid_telemetry::span::derive_trace_id(
                u64::from_le_bytes(*b"elastic\0"),
                n,
            ));
            let end = base + h.cycles;
            let mut at = base;
            for (stage, dur) in [
                ("detect", h.detect_cycles),
                ("heal", h.heal_cycles),
                ("transfer", h.cycles.saturating_sub(h.detect_cycles + h.heal_cycles)),
            ] {
                let stop = (at + dur).min(end);
                if stop > at {
                    spans.child(ctx, stage, at, stop);
                    at = stop;
                }
            }
            spans.close_root(ctx, "exchange", "elastic/allreduce", base, base + h.cycles);
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_fault::FaultConfig;

    fn gradients(world: usize, elems: usize) -> Vec<Vec<f32>> {
        (0..world)
            .map(|c| {
                (0..elems).map(|i| ((i * 13 + c * 5 + 1) % 89) as f32 * 0.021 - 0.9).collect()
            })
            .collect()
    }

    fn crash_plan(seed: u64, rate: f64, budget: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            node_crash_rate: rate,
            node_fault_budget: budget,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn health_demotion_splices_at_the_barrier_and_the_ring_continues() {
        let mut mem = Membership::new(4).unwrap();
        // Node 2's chip health collapsed below the fleet floor.
        let scores = [(0, 0.98), (1, 0.95), (2, 0.31), (3, 1.0)];
        let events = demote_unhealthy(&mut mem, &scores, 0.5);
        assert_eq!(
            events,
            vec![
                ElasticEvent::HealthDemoted { node: 2, score_milli: 310 },
                ElasticEvent::Spliced { epoch: 1, survivors: 3 },
            ]
        );
        assert_eq!(mem.members(), &[0, 1, 3]);
        // The next exchange proceeds over the survivors.
        let inputs = gradients(4, 1024);
        let cfg = ElasticConfig::rapid_training(4, true);
        let out = elastic_allreduce(&inputs, &mut mem, &cfg, None).unwrap();
        assert_eq!(out.contributors, vec![0, 1, 3]);
        assert_eq!(out.epoch, 1);
        // Healthy fleets and non-members are untouched; no epoch churn.
        let none = demote_unhealthy(&mut mem, &[(0, 0.9), (2, 0.1), (7, 0.0)], 0.5);
        assert!(none.is_empty(), "node 2 already gone, node 7 unknown");
        assert_eq!(mem.epoch(), 1);
        // Same scores produce the same trace (determinism contract).
        let mut m2 = Membership::new(4).unwrap();
        assert_eq!(demote_unhealthy(&mut m2, &scores, 0.5), events);
    }

    #[test]
    fn fault_free_matches_reliable_over_full_membership() {
        let inputs = gradients(4, 4096);
        let cfg = ElasticConfig::rapid_training(4, true);
        let mut mem = Membership::new(4).unwrap();
        let out = elastic_allreduce(&inputs, &mut mem, &cfg, None).unwrap();
        let (expect, rh) = reliable_allreduce(&inputs, &cfg.reliable, None).unwrap();
        assert_eq!(out.reduced, expect);
        assert_eq!(out.contributors, vec![0, 1, 2, 3]);
        assert_eq!(out.epoch, 0);
        assert!(out.events.is_empty());
        assert_eq!(out.health.cycles, rh.cycles);
        assert_eq!(out.health.ideal_cycles, rh.ideal_cycles);
        assert!((out.health.retention() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn crash_heals_the_ring_and_reduces_over_survivors() {
        let inputs = gradients(4, 4096);
        let cfg = ElasticConfig::rapid_training(4, true);
        let mut mem = Membership::new(4).unwrap();
        let mut plan = crash_plan(11, 1.0, 1);
        let out = elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan)).unwrap();
        assert_eq!(out.health.crashes_detected, 1);
        assert_eq!(out.health.splices, 1);
        assert_eq!(out.contributors.len(), 3);
        assert_eq!(mem.members().len(), 3);
        assert_eq!(mem.epoch(), 1);
        assert_eq!(out.epoch, 1);
        assert!(out.health.rereduced_chunks > 0);
        // Values equal the reliable exchange over exactly the survivors.
        let survivor_inputs: Vec<Vec<f32>> =
            out.contributors.iter().map(|&m| inputs[m as usize].clone()).collect();
        let rcfg = ReliableConfig::rapid_training(3, true);
        let (expect, _) = reliable_allreduce(&survivor_inputs, &rcfg, None).unwrap();
        assert_eq!(out.reduced, expect);
        // Healing costs cycles: detection + epoch + re-reduction.
        assert!(out.health.cycles > out.health.transport.cycles);
        assert!(out.health.retention() < 1.0);
    }

    #[test]
    fn same_seed_reproduces_identical_outcome_and_trace() {
        let inputs = gradients(6, 8192);
        let cfg = ElasticConfig::rapid_training(6, true);
        let run = |seed: u64| {
            let mut mem = Membership::new(6).unwrap();
            let mut plan = FaultPlan::new(FaultConfig {
                seed,
                node_crash_rate: 0.15,
                node_hang_rate: 0.1,
                node_slow_rate: 0.3,
                node_slow_factor: 1.5,
                ..FaultConfig::default()
            });
            elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan)).unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce bit-identical outcome");
        assert!(!a.events.is_empty(), "rates this high must fire");
        let c = run(43);
        assert_ne!(a.events, c.events, "different seed, different trace");
    }

    #[test]
    fn hang_detection_is_slower_than_crash_detection() {
        let inputs = gradients(4, 4096);
        let cfg = ElasticConfig::rapid_training(4, true);
        let detect_of = |hang: bool| {
            let mut mem = Membership::new(4).unwrap();
            let mut plan = FaultPlan::new(FaultConfig {
                seed: 5,
                node_crash_rate: if hang { 0.0 } else { 1.0 },
                node_hang_rate: if hang { 1.0 } else { 0.0 },
                node_fault_budget: 1,
                ..FaultConfig::default()
            });
            elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan))
                .unwrap()
                .health
                .detect_cycles
        };
        let crash = detect_of(false);
        let hang = detect_of(true);
        assert_eq!(crash, cfg.crash_detect_cycles);
        assert_eq!(
            hang,
            cfg.heartbeat_cycles * u64::from(cfg.suspect_after),
            "hangs are found by heartbeat silence"
        );
        assert!(hang > crash, "link-down beats heartbeat timeout");
    }

    #[test]
    fn straggler_within_deadline_waits_beyond_it_drops() {
        let inputs = gradients(4, 4096);
        let mut cfg = ElasticConfig::rapid_training(4, true);
        cfg.straggler_deadline = 2.0;
        let run = |rate: f64, factor: f64| {
            let mut mem = Membership::new(4).unwrap();
            let mut plan = FaultPlan::new(FaultConfig {
                seed: 9,
                node_slow_rate: rate,
                node_slow_factor: factor,
                ..FaultConfig::default()
            });
            elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan)).unwrap()
        };
        // Factor 1.5 ≤ deadline 2.0: everyone retained, exchange stretched.
        let retained = run(1.0, 1.5);
        assert_eq!(retained.health.stragglers_retained, 4);
        assert_eq!(retained.contributors.len(), 4);
        assert!(retained.health.cycles > retained.health.ideal_cycles);
        // Factor 4.0 > deadline, partial straggle: the stragglers are
        // dropped from the contributor set (partial all-reduce); the
        // punctual nodes still contribute, and membership is untouched.
        // Scan for a seed where 1–3 of the 4 nodes straggle.
        let dropped = (0..64)
            .find_map(|seed| {
                let mut mem = Membership::new(4).unwrap();
                let mut plan = FaultPlan::new(FaultConfig {
                    seed,
                    node_slow_rate: 0.5,
                    node_slow_factor: 4.0,
                    ..FaultConfig::default()
                });
                elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan))
                    .ok()
                    .filter(|o| (1..=3).contains(&o.health.stragglers_dropped))
            })
            .expect("some seed must straggle 1-3 of 4 nodes");
        assert_eq!(
            dropped.contributors.len() as u64,
            4 - dropped.health.stragglers_dropped
        );
        assert_eq!(dropped.epoch, 0, "dropped stragglers keep their membership");
        // All four past the deadline: nothing left to reduce over.
        let mut mem = Membership::new(4).unwrap();
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 9,
            node_slow_rate: 1.0,
            node_slow_factor: 4.0,
            ..FaultConfig::default()
        });
        let err = elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan)).unwrap_err();
        assert!(matches!(err, ElasticError::WorldTooSmall { survivors: 0, .. }), "{err}");
    }

    #[test]
    fn world_too_small_is_a_structured_error() {
        let inputs = gradients(2, 512);
        let mut cfg = ElasticConfig::rapid_training(2, true);
        cfg.min_world = 2;
        let mut mem = Membership::new(2).unwrap();
        let mut plan = crash_plan(3, 1.0, u64::MAX);
        let err = elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan)).unwrap_err();
        assert!(matches!(err, ElasticError::WorldTooSmall { .. }), "{err}");
    }

    #[test]
    fn membership_epochs_splice_and_rejoin() {
        let mut mem = Membership::new(4).unwrap();
        assert_eq!(mem.epoch(), 0);
        assert_eq!(mem.splice(&[2]), 1);
        assert_eq!(mem.members(), &[0, 1, 3]);
        assert!(!mem.is_member(2));
        // Splicing nothing does not bump the epoch.
        assert_eq!(mem.splice(&[2]), 1);
        assert_eq!(mem.rejoin(2), 2);
        assert_eq!(mem.members(), &[0, 1, 2, 3]);
        // Rejoining a present node or an out-of-world rank is a no-op.
        assert_eq!(mem.rejoin(2), 2);
        assert_eq!(mem.rejoin(9), 2);
        assert!(Membership::new(0).is_err());
    }

    #[test]
    fn heartbeat_detector_is_deterministic() {
        let d = HeartbeatDetector { period: 2_000, suspect_after: 3 };
        assert_eq!(d.detect_cycles(), 6_000);
        assert!(!d.is_suspect(5_999));
        assert!(d.is_suspect(6_000));
    }

    #[test]
    fn instrumented_exchange_fills_the_elastic_registry() {
        let inputs = gradients(4, 2048);
        let cfg = ElasticConfig::rapid_training(4, true);
        let mut mem = Membership::new(4).unwrap();
        let mut plan = crash_plan(21, 1.0, 1);
        let mut tele = rapid_telemetry::Telemetry::default();
        let out = elastic_allreduce_instrumented(
            &inputs,
            &mut mem,
            &cfg,
            Some(&mut plan),
            Some(&mut tele),
        )
        .unwrap();
        assert_eq!(tele.registry.counter("ring.elastic.exchanges"), 1);
        assert_eq!(tele.registry.counter("ring.elastic.crashes_detected"), 1);
        let round = ElasticHealth::from_registry(&tele.registry, "ring.elastic");
        assert_eq!(round, out.health, "registry round-trips the health report");
        // No span sink attached → no spans recorded.
        assert!(tele.spans.is_none());
    }

    #[test]
    fn instrumented_exchanges_emit_contiguous_spans() {
        use rapid_telemetry::span::{critical_path, validate_forest};
        let inputs = gradients(4, 2048);
        let cfg = ElasticConfig::rapid_training(4, true);
        let mut mem = Membership::new(4).unwrap();
        let mut plan = crash_plan(21, 1.0, 1);
        let mut tele = rapid_telemetry::Telemetry::with_spans();
        for _ in 0..3 {
            elastic_allreduce_instrumented(
                &inputs,
                &mut mem,
                &cfg,
                Some(&mut plan),
                Some(&mut tele),
            )
            .unwrap();
        }
        let spans = tele.spans.as_ref().unwrap().spans();
        validate_forest(spans).unwrap();
        let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
        assert_eq!(roots.len(), 3, "one exchange root per allreduce");
        // Exchange N starts where N-1 ended (cumulative-cycle time base).
        for pair in roots.windows(2) {
            assert_eq!(pair[1].start, pair[0].end);
        }
        let cp = critical_path(spans);
        assert_eq!(cp.len(), 1);
        assert_eq!(cp[0].class, "elastic/allreduce");
        assert_eq!(cp[0].attributed(), cp[0].total, "stages partition the exchange");
        assert!(cp[0].stages.iter().any(|(n, _)| *n == "transfer"));
    }
}
