//! Multi-chip gradient exchange (paper §IV-A/V-F): chips connect through
//! their chip-management units into an outer ring; the update phase
//! ring-all-reduces weight gradients (reduce-scatter at FP16) and then
//! broadcasts updated weights (8-bit payloads in HFP8 mode).
//!
//! This is a chip-granularity simulation of that exchange: each step moves
//! one shard between neighbors at the link bandwidth, with a fixed
//! per-message latency; the tests pin it against the analytic
//! `2(n−1)/n · bytes / bw` cost the performance model uses.

/// Configuration of the chip-to-chip exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllReduceConfig {
    /// Number of chips on the outer ring.
    pub chips: u32,
    /// Link bandwidth per direction, bytes per cycle (128 GB/s at
    /// 1.5 GHz ≈ 85 B/cycle).
    pub link_bytes_per_cycle: f64,
    /// Fixed per-step message latency in cycles (link + protocol).
    pub step_latency_cycles: u64,
    /// Gradient element width in bytes (FP16 = 2).
    pub grad_bytes: f64,
    /// Broadcast weight width in bytes (1 in HFP8 mode, 2 at FP16).
    pub weight_bytes: f64,
}

impl AllReduceConfig {
    /// The paper's training system: 128 GB/s links at a 1.5 GHz core clock.
    pub fn rapid_training(chips: u32, hfp8: bool) -> Self {
        Self {
            chips,
            link_bytes_per_cycle: 128.0e9 / 1.5e9,
            step_latency_cycles: 500,
            grad_bytes: 2.0,
            weight_bytes: if hfp8 { 1.0 } else { 2.0 },
        }
    }
}

/// Result of one simulated exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllReduceResult {
    /// Total cycles for reduce-scatter + weight broadcast.
    pub cycles: u64,
    /// Cycles in the reduce-scatter phase.
    pub reduce_cycles: u64,
    /// Cycles in the broadcast (all-gather) phase.
    pub broadcast_cycles: u64,
    /// Total bytes each link carried.
    pub bytes_per_link: f64,
}

/// Simulates a ring all-reduce of `weights` elements across the chips:
/// `n−1` reduce-scatter steps moving FP16 gradient shards, then `n−1`
/// all-gather steps moving updated weights at the broadcast width. All
/// links run concurrently; each step is bounded by the largest shard.
pub fn simulate_allreduce(weights: u64, cfg: &AllReduceConfig) -> AllReduceResult {
    let n = u64::from(cfg.chips.max(1));
    if n == 1 {
        return AllReduceResult {
            cycles: 0,
            reduce_cycles: 0,
            broadcast_cycles: 0,
            bytes_per_link: 0.0,
        };
    }
    // Shards are as even as possible; every step all chips send their
    // current shard simultaneously, so the step time is set by the largest
    // shard in flight.
    let max_shard = weights.div_ceil(n);
    let step = |elem_bytes: f64| -> u64 {
        let transfer = (max_shard as f64 * elem_bytes / cfg.link_bytes_per_cycle).ceil() as u64;
        transfer + cfg.step_latency_cycles
    };
    let reduce_cycles = (n - 1) * step(cfg.grad_bytes);
    let broadcast_cycles = (n - 1) * step(cfg.weight_bytes);
    let bytes_per_link =
        (n - 1) as f64 * max_shard as f64 * (cfg.grad_bytes + cfg.weight_bytes);
    AllReduceResult {
        cycles: reduce_cycles + broadcast_cycles,
        reduce_cycles,
        broadcast_cycles,
        bytes_per_link,
    }
}

/// The analytic cost the performance model uses:
/// `(n−1)/n · weights · (grad + weight bytes) / bw` in cycles, without
/// latency terms.
pub fn analytic_allreduce_cycles(weights: u64, cfg: &AllReduceConfig) -> f64 {
    let n = f64::from(cfg.chips.max(1));
    if cfg.chips <= 1 {
        return 0.0;
    }
    (n - 1.0) / n * weights as f64 * (cfg.grad_bytes + cfg.weight_bytes)
        / cfg.link_bytes_per_cycle
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn single_chip_is_free() {
        let cfg = AllReduceConfig::rapid_training(1, true);
        assert_eq!(simulate_allreduce(1_000_000, &cfg).cycles, 0);
    }

    #[test]
    fn matches_analytic_for_large_payloads() {
        // With big shards the fixed step latency vanishes and the
        // simulation converges to the analytic bandwidth bound.
        for chips in [2u32, 4, 8] {
            let cfg = AllReduceConfig::rapid_training(chips, false);
            let weights = 100_000_000u64; // 100 M parameters
            let sim = simulate_allreduce(weights, &cfg).cycles as f64;
            let analytic = analytic_allreduce_cycles(weights, &cfg);
            let err = (sim - analytic).abs() / analytic;
            assert!(err < 0.02, "{chips} chips: sim {sim} vs analytic {analytic}");
        }
    }

    #[test]
    fn latency_dominates_tiny_payloads() {
        let cfg = AllReduceConfig::rapid_training(32, true);
        let r = simulate_allreduce(1_000, &cfg);
        // 62 steps of ~500-cycle latency.
        assert!(r.cycles > 2 * 31 * cfg.step_latency_cycles);
    }

    #[test]
    fn hfp8_broadcast_is_cheaper() {
        let weights = 25_000_000u64;
        let fp16 = simulate_allreduce(weights, &AllReduceConfig::rapid_training(4, false));
        let hfp8 = simulate_allreduce(weights, &AllReduceConfig::rapid_training(4, true));
        assert!(hfp8.broadcast_cycles < fp16.broadcast_cycles);
        assert_eq!(hfp8.reduce_cycles, fp16.reduce_cycles);
        // §V-F: the total shrinks by the 8-bit weight broadcast.
        assert!(hfp8.cycles < fp16.cycles);
    }

    #[test]
    fn per_link_traffic_grows_sublinearly_with_chips() {
        // Ring all-reduce moves ~2·weights bytes per link regardless of n.
        let weights = 10_000_000u64;
        let b4 = simulate_allreduce(weights, &AllReduceConfig::rapid_training(4, false))
            .bytes_per_link;
        let b16 = simulate_allreduce(weights, &AllReduceConfig::rapid_training(16, false))
            .bytes_per_link;
        assert!((b16 / b4 - 1.25).abs() < 0.05, "ratio {}", b16 / b4);
    }
}
