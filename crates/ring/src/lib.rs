//! # rapid-ring
//!
//! The RaPiD on-chip interconnect (paper §III-E, Fig 8): a bidirectional
//! ring moving 128 bytes/cycle in each direction between cores and the
//! external-memory interface, driven by each core's programmable
//! Memory/Neighbor Interface (MNI).
//!
//! Modeled faithfully:
//!
//! * slotted ring transport with hop-by-hop stalling ([`channel`]);
//! * MNI load units with load queues, multiple outstanding requests, and
//!   out-of-order data returns — up to **2 returns per cycle** by taking
//!   one flit from each direction ([`node`]);
//! * MNI store units with **multicast request aggregation**: a `Send`
//!   posts only after every participating consumer's `Recv` request with
//!   the matching tag has arrived, then one flit stream serves the whole
//!   group ([`sim`]);
//! * a memory-interface node with a service latency that aggregates
//!   multi-core reads of shared data the same way.
//!
//! The simulator is timing-only (bytes, not values); its measured
//! effective bandwidths back the communication constants used by
//! `rapid-model`, and the `ring_bandwidth` bench regenerates them.
//!
//! # Example
//!
//! ```
//! use rapid_ring::sim::{multicast, RingSim};
//!
//! let mut sim = RingSim::new(4, 10);
//! multicast(&mut sim, 1, 0, &[1, 2, 3], 4096);
//! let cycles = sim.run_until_idle(10_000)?;
//! assert!(cycles > 0);
//! assert_eq!(sim.received_bytes(3), 4096);
//! # Ok::<(), rapid_ring::sim::RingTimeout>(())
//! ```

// unwrap/expect denial comes from [workspace.lints] in the root manifest.

pub mod allreduce;
pub mod channel;
pub mod crc;
pub mod elastic;
pub mod node;
pub mod reliable;
pub mod sim;

pub use allreduce::{analytic_allreduce_cycles, simulate_allreduce, AllReduceConfig, AllReduceResult};
pub use crc::{crc8, crc8_f32, CRC8_POLY};
pub use elastic::{
    demote_unhealthy, elastic_allreduce, elastic_allreduce_instrumented, ElasticConfig,
    ElasticError, ElasticEvent, ElasticHealth, ElasticOutcome, HeartbeatDetector, Membership,
};
pub use reliable::{
    reliable_allreduce, reliable_allreduce_instrumented, ReliableConfig, ReliableError, RingHealth,
};
pub use channel::{Channel, Direction, Flit, FLIT_BYTES};
pub use node::MniNode;
pub use sim::{memory_read, multicast, unicast, RingError, RingSim, RingTimeout, RING_TRACE_PID};
