//! Per-node MNI state: the programmable store unit (MNI-SU) with request
//! aggregation and the load unit (MNI-LU) with a load queue supporting
//! multiple outstanding requests and out-of-order returns (paper §III-E,
//! Fig 8).

use crate::channel::FLIT_BYTES;
use rapid_arch::isa::MniInstr;
use std::collections::{BTreeMap, VecDeque};

/// A send waiting for its consumer requests to aggregate.
#[derive(Debug, Clone)]
pub struct PendingSend {
    /// Transfer tag.
    pub tag: u16,
    /// Payload bytes.
    pub bytes: u64,
    /// Consumers that must request before the send posts.
    pub consumers_needed: u8,
    /// Consumer node ids seen so far (the SU "dynamically constructs the
    /// list of consumers").
    pub consumers_seen: Vec<usize>,
}

/// A send actively streaming flits onto the ring.
#[derive(Debug, Clone)]
pub struct ActiveSend {
    /// Transfer tag.
    pub tag: u16,
    /// Destination bitmask.
    pub dests: u64,
    /// Data flits remaining to inject.
    pub flits_left: u64,
}

/// An entry in the MNI-LU load queue: an outstanding `Recv`.
#[derive(Debug, Clone)]
pub struct LoadEntry {
    /// Bytes still expected.
    pub bytes_left: u64,
    /// Local scratchpad address being filled (tracked so returns may
    /// arrive out of order).
    pub local_addr: u32,
}

/// One ring node's MNI state (a core, or the external-memory interface).
#[derive(Debug, Clone)]
pub struct MniNode {
    /// Node id (ring position).
    pub id: usize,
    /// Remaining program.
    pub program: VecDeque<MniInstr>,
    /// Sends awaiting request aggregation, by tag. Ordered map: when two
    /// sends become ready in the same cycle, [`Self::activate_next`]
    /// must pick the same one every run (lowest tag), or cycle counts
    /// jitter run-to-run.
    pub pending_sends: BTreeMap<u16, PendingSend>,
    /// The send currently streaming (one per node; the ring interface
    /// serializes injections).
    pub active_send: Option<ActiveSend>,
    /// Outstanding receives by tag (the load queue).
    pub load_queue: BTreeMap<u16, LoadEntry>,
    /// Load-queue capacity: programs stall on `Recv` when full.
    pub max_outstanding: usize,
    /// Requests this node still has to put on the ring: `(producer, tag,
    /// bytes, consumers)`.
    pub request_backlog: VecDeque<(usize, u16, u64, u8)>,
    /// Data flits this node must resend because a delivery was dropped
    /// (fault injection): `(tag, destination mask)`. Retransmissions take
    /// priority over new stream flits at the injection stage.
    pub retransmit: VecDeque<(u16, u64)>,
    /// Whether requests alone arm sends (true for the memory-interface
    /// node, which serves reads without a program; cores send only after
    /// their program executes the matching `Send`).
    pub auto_send: bool,
    /// Total payload bytes received.
    pub received_bytes: u64,
    /// Completed receive tags.
    pub completed: Vec<u16>,
}

impl MniNode {
    /// Creates an idle node.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            program: VecDeque::new(),
            pending_sends: BTreeMap::new(),
            active_send: None,
            load_queue: BTreeMap::new(),
            max_outstanding: 16,
            request_backlog: VecDeque::new(),
            retransmit: VecDeque::new(),
            auto_send: false,
            received_bytes: 0,
            completed: Vec::new(),
        }
    }

    /// Whether the node has no work left.
    pub fn is_idle(&self) -> bool {
        self.program.is_empty()
            && self.pending_sends.is_empty()
            && self.active_send.is_none()
            && self.load_queue.is_empty()
            && self.request_backlog.is_empty()
            && self.retransmit.is_empty()
    }

    /// Registers an incoming consumer request with the SU; when the group
    /// is complete the send activates ("request aggregation", Fig 8 steps
    /// 4–6). Unknown tags create an implicit pending send (request arrived
    /// before the producer's `Send` executed), which the later `Send`
    /// completes.
    pub fn accept_request(&mut self, tag: u16, from: usize, bytes: u64, consumers: u8) {
        let entry = self.pending_sends.entry(tag).or_insert(PendingSend {
            tag,
            bytes,
            consumers_needed: 0, // unknown until the local Send executes
            consumers_seen: Vec::new(),
        });
        if !entry.consumers_seen.contains(&from) {
            entry.consumers_seen.push(from);
        }
        entry.bytes = entry.bytes.max(bytes);
        if self.auto_send && entry.consumers_needed == 0 {
            entry.consumers_needed = consumers;
        }
        self.try_activate(tag);
    }

    /// Executes the node's next program instruction if it can proceed.
    /// Returns `true` when an instruction retired this cycle.
    pub fn step_program(&mut self) -> bool {
        match self.program.front() {
            None => false,
            Some(MniInstr::Recv { tag, from, bytes, local_addr, consumers }) => {
                if self.load_queue.len() >= self.max_outstanding {
                    return false; // stall: load queue full
                }
                let (tag, from, bytes, local_addr, consumers) =
                    (*tag, *from as usize, u64::from(*bytes), *local_addr, *consumers);
                self.load_queue.insert(tag, LoadEntry { bytes_left: bytes, local_addr });
                self.request_backlog.push_back((from, tag, bytes, consumers));
                self.program.pop_front();
                true
            }
            Some(MniInstr::Send { tag, bytes, consumers, .. }) => {
                if self.active_send.is_some() {
                    return false; // previous stream still draining
                }
                let (tag, bytes, consumers) = (*tag, u64::from(*bytes), *consumers);
                let entry = self.pending_sends.entry(tag).or_insert(PendingSend {
                    tag,
                    bytes,
                    consumers_needed: consumers,
                    consumers_seen: Vec::new(),
                });
                entry.consumers_needed = consumers;
                entry.bytes = entry.bytes.max(bytes);
                self.program.pop_front();
                self.try_activate(tag);
                true
            }
        }
    }

    fn try_activate(&mut self, tag: u16) {
        if self.active_send.is_some() {
            return;
        }
        let ready = self
            .pending_sends
            .get(&tag)
            .is_some_and(|p| p.consumers_needed > 0 && p.consumers_seen.len() >= p.consumers_needed as usize);
        if !ready {
            return;
        }
        if let Some(p) = self.pending_sends.remove(&tag) {
            let mut dests = 0u64;
            for c in &p.consumers_seen {
                dests |= 1 << c;
            }
            self.active_send = Some(ActiveSend {
                tag,
                dests,
                flits_left: p.bytes.div_ceil(FLIT_BYTES).max(1),
            });
        }
    }

    /// Re-checks stalled pending sends once the active stream finishes.
    pub fn activate_next(&mut self) {
        if self.active_send.is_some() {
            return;
        }
        let ready_tag = self
            .pending_sends
            .values()
            .find(|p| p.consumers_needed > 0 && p.consumers_seen.len() >= p.consumers_needed as usize)
            .map(|p| p.tag);
        if let Some(tag) = ready_tag {
            self.try_activate(tag);
        }
    }

    /// Delivers one data flit of `tag` to the LU. Returns `true` when the
    /// whole transfer completed.
    pub fn accept_data(&mut self, tag: u16) -> bool {
        if let Some(entry) = self.load_queue.get_mut(&tag) {
            let take = entry.bytes_left.min(FLIT_BYTES);
            entry.bytes_left -= take;
            self.received_bytes += take;
            if entry.bytes_left == 0 {
                self.load_queue.remove(&tag);
                self.completed.push(tag);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn send_waits_for_aggregation() {
        let mut n = MniNode::new(0);
        n.program.push_back(MniInstr::Send { tag: 7, bytes: 256, local_addr: 0, consumers: 2 });
        assert!(n.step_program());
        assert!(n.active_send.is_none(), "must wait for 2 requests");
        n.accept_request(7, 1, 256, 2);
        assert!(n.active_send.is_none());
        n.accept_request(7, 2, 256, 2);
        let s = n.active_send.as_ref().expect("aggregated");
        assert_eq!(s.dests, 0b110);
        assert_eq!(s.flits_left, 2);
    }

    #[test]
    fn auto_send_node_serves_requests_without_a_program() {
        let mut m = MniNode::new(5);
        m.auto_send = true;
        m.accept_request(4, 1, 256, 1);
        assert!(m.active_send.is_some(), "memory serves reads directly");
    }

    #[test]
    fn requests_may_arrive_before_send_executes() {
        let mut n = MniNode::new(0);
        n.accept_request(9, 3, 128, 1);
        assert!(n.active_send.is_none(), "no Send yet");
        n.program.push_back(MniInstr::Send { tag: 9, bytes: 128, local_addr: 0, consumers: 1 });
        assert!(n.step_program());
        assert!(n.active_send.is_some());
    }

    #[test]
    fn duplicate_requests_are_idempotent() {
        let mut n = MniNode::new(0);
        n.program.push_back(MniInstr::Send { tag: 1, bytes: 128, local_addr: 0, consumers: 2 });
        n.step_program();
        n.accept_request(1, 4, 128, 2);
        n.accept_request(1, 4, 128, 2);
        assert!(n.active_send.is_none(), "same consumer twice must not aggregate");
    }

    #[test]
    fn load_queue_tracks_out_of_order_returns() {
        let mut n = MniNode::new(2);
        n.program.push_back(MniInstr::Recv { tag: 1, from: 0, bytes: 256, local_addr: 0x100, consumers: 1 });
        n.program.push_back(MniInstr::Recv { tag: 2, from: 1, bytes: 128, local_addr: 0x200, consumers: 1 });
        assert!(n.step_program());
        assert!(n.step_program());
        assert_eq!(n.load_queue.len(), 2);
        // Tag 2 returns first (out of order).
        assert!(n.accept_data(2));
        assert!(!n.accept_data(1));
        assert!(n.accept_data(1));
        assert_eq!(n.received_bytes, 128 + 256);
        assert_eq!(n.completed, vec![2, 1]);
    }

    #[test]
    fn load_queue_capacity_stalls_program() {
        let mut n = MniNode::new(0);
        n.max_outstanding = 1;
        n.program.push_back(MniInstr::Recv { tag: 1, from: 1, bytes: 128, local_addr: 0, consumers: 1 });
        n.program.push_back(MniInstr::Recv { tag: 2, from: 1, bytes: 128, local_addr: 0, consumers: 1 });
        assert!(n.step_program());
        assert!(!n.step_program(), "limit on outstanding requests reached");
        n.accept_data(1);
        assert!(n.step_program(), "slot freed");
    }
}
