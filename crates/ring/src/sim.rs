//! The ring simulator: cores + external-memory interface on a
//! bidirectional ring, with multicast request aggregation.

use crate::channel::{shortest_direction, Channel, Direction, Flit};
use crate::node::MniNode;
use rapid_arch::isa::MniInstr;
use rapid_fault::{DeliveryFault, FaultPlan};
use rapid_telemetry::{MetricsRegistry, TraceSink};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Chrome-trace process id the ring's tracks live under (cores use their
/// own ids as pids; this sits far above any realistic core count).
pub const RING_TRACE_PID: u32 = 1000;

/// Simulation failed to drain within the cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingTimeout {
    /// Cycles executed before giving up.
    pub cycles: u64,
}

impl fmt::Display for RingTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring simulation did not drain within {} cycles", self.cycles)
    }
}

impl Error for RingTimeout {}

/// Structured errors from ring construction and programming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// A construction parameter is out of the supported range.
    InvalidConfig(String),
    /// A node id addressed a node the ring does not have.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the ring (cores + memory interface).
        nodes: usize,
    },
    /// The simulation did not drain within its cycle budget.
    Timeout(RingTimeout),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::InvalidConfig(msg) => write!(f, "invalid ring configuration: {msg}"),
            RingError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (ring has {nodes} nodes)")
            }
            RingError::Timeout(t) => t.fmt(f),
        }
    }
}

impl Error for RingError {}

impl From<RingTimeout> for RingError {
    fn from(t: RingTimeout) -> Self {
        RingError::Timeout(t)
    }
}

/// A bidirectional-ring system: `n_cores` cores plus one external-memory
/// interface node (id = `n_cores`), as in the 4-core chip of Fig 9.
#[derive(Debug, Clone)]
pub struct RingSim {
    nodes: Vec<MniNode>,
    cw: Channel,
    ccw: Channel,
    mem_delay: VecDeque<(u64, u16, usize, u64, u8)>, // (ready, tag, from, bytes, consumers)
    mem_latency: u64,
    cycle: u64,
    faults: Option<FaultPlan>,
    trace: Option<TraceSink>,
    cw_holds: Vec<u32>,
    ccw_holds: Vec<u32>,
}

impl RingSim {
    /// Creates a ring of `n_cores` cores and a memory node with the given
    /// request service latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or the ring would exceed 63 nodes (the
    /// destination bitmask width).
    #[allow(clippy::expect_used)] // infallible wrapper kept for existing callers
    pub fn new(n_cores: usize, mem_latency: u64) -> Self {
        Self::try_new(n_cores, mem_latency).expect("invalid ring configuration")
    }

    /// [`RingSim::new`], returning an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if `n_cores` is 0 or the ring
    /// would exceed 63 nodes (the destination bitmask width).
    pub fn try_new(n_cores: usize, mem_latency: u64) -> Result<Self, RingError> {
        if n_cores == 0 {
            return Err(RingError::InvalidConfig("need at least one core".into()));
        }
        let n = n_cores + 1;
        if n > 63 {
            return Err(RingError::InvalidConfig(format!(
                "destination mask supports at most 63 nodes, got {n}"
            )));
        }
        let mut nodes: Vec<MniNode> = (0..n).map(MniNode::new).collect();
        nodes[n - 1].auto_send = true; // the memory interface serves reads
        Ok(Self {
            nodes,
            cw: Channel::new(n, Direction::Cw),
            ccw: Channel::new(n, Direction::Ccw),
            mem_delay: VecDeque::new(),
            mem_latency,
            cycle: 0,
            faults: None,
            trace: None,
            cw_holds: vec![0; n],
            ccw_holds: vec![0; n],
        })
    }

    /// Installs a fault plan: subsequent cycles draw drop/duplicate/delay
    /// faults from it. Passing a disabled plan is equivalent to none.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes and returns the installed fault plan (with its accumulated
    /// trace and counts).
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Installs a trace sink: subsequent cycles emit per-node flit events
    /// (`send`, `deliver`, `retransmit`, `duplicate`) on the
    /// [`RING_TRACE_PID`] track group, one thread track per ring node.
    /// Same ownership shape as [`RingSim::set_fault_plan`].
    pub fn set_trace_sink(&mut self, mut sink: TraceSink) {
        for i in 0..self.nodes.len() {
            let name = if i == self.mem_id() {
                "memory".to_string()
            } else {
                format!("node{i}")
            };
            sink.track(RING_TRACE_PID, i as u32, "ring", &name);
        }
        self.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink (with its accumulated
    /// events).
    pub fn take_trace_sink(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// Accumulates this ring's transport statistics into `reg` under
    /// `<prefix>.`: cycles elapsed, per-channel hop traversals, and total
    /// payload bytes delivered.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let (cw, ccw) = self.link_hops();
        reg.add(&format!("{prefix}.cycles"), self.cycle);
        reg.add(&format!("{prefix}.cw_hops"), cw);
        reg.add(&format!("{prefix}.ccw_hops"), ccw);
        let bytes: u64 = (0..self.nodes.len()).map(|i| self.received_bytes(i)).sum();
        reg.add(&format!("{prefix}.delivered_bytes"), bytes);
    }

    /// The memory node's id.
    pub fn mem_id(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Appends instructions to a node's MNI program.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[allow(clippy::expect_used)] // infallible wrapper kept for existing callers
    pub fn push_program(&mut self, node: usize, instrs: impl IntoIterator<Item = MniInstr>) {
        self.try_push_program(node, instrs).expect("node out of range");
    }

    /// [`RingSim::push_program`], returning an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::NodeOutOfRange`] if `node` is not a valid node
    /// id.
    pub fn try_push_program(
        &mut self,
        node: usize,
        instrs: impl IntoIterator<Item = MniInstr>,
    ) -> Result<(), RingError> {
        let nodes = self.nodes.len();
        let Some(n) = self.nodes.get_mut(node) else {
            return Err(RingError::NodeOutOfRange { node, nodes });
        };
        n.program.extend(instrs);
        Ok(())
    }

    /// Payload bytes received by a node so far.
    pub fn received_bytes(&self, node: usize) -> u64 {
        self.nodes[node].received_bytes
    }

    /// Completed receive tags at a node, in completion order.
    pub fn completed_tags(&self, node: usize) -> &[u16] {
        &self.nodes[node].completed
    }

    /// Total hop-traversals on the (cw, ccw) channels — the
    /// link-utilization statistic multicast is meant to reduce.
    pub fn link_hops(&self) -> (u64, u64) {
        (self.cw.hops, self.ccw.hops)
    }

    /// Debug snapshot: per-slot (cw, ccw) occupancy as (tag, dests) pairs.
    #[allow(clippy::type_complexity)]
    pub fn debug_channels(&self) -> Vec<(Option<(u16, u64)>, Option<(u16, u64)>)> {
        (0..self.nodes.len())
            .map(|i| {
                (
                    self.cw.at(i).map(|f| (f.tag, f.dests)),
                    self.ccw.at(i).map(|f| (f.tag, f.dests)),
                )
            })
            .collect()
    }

    /// Whether all programs drained and the ring is empty.
    pub fn is_idle(&self) -> bool {
        self.cw.is_empty()
            && self.ccw.is_empty()
            && self.mem_delay.is_empty()
            && self.nodes.iter().all(MniNode::is_idle)
    }

    /// Advances the system one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let n = self.nodes.len();
        let mem = self.mem_id();

        // 1. Delivery: each node inspects the flit (if any) sitting at its
        //    slot on each channel.
        for dir in [Direction::Cw, Direction::Ccw] {
            for i in 0..n {
                let chan = match dir {
                    Direction::Cw => &mut self.cw,
                    Direction::Ccw => &mut self.ccw,
                };
                let slot = chan.at_mut(i);
                let Some(f) = slot else { continue };
                if f.dests & (1 << i) == 0 {
                    continue;
                }
                if f.is_request {
                    let (tag, from, bytes, cons) = (f.tag, f.src, f.req_bytes, f.req_consumers);
                    *slot = None;
                    if i == mem {
                        self.mem_delay.push_back((
                            self.cycle + self.mem_latency,
                            tag,
                            from,
                            bytes,
                            cons,
                        ));
                    } else {
                        self.nodes[i].accept_request(tag, from, bytes, cons);
                    }
                } else {
                    let (tag, src) = (f.tag, f.src);
                    // Delivery faults apply to data flits only: requests
                    // are single control flits the protocol cannot lose.
                    let fate = match self.faults.as_mut() {
                        Some(p) => p.ring_delivery(),
                        None => None,
                    };
                    f.dests &= !(1 << i);
                    let empty = f.dests == 0;
                    if empty {
                        *slot = None;
                    }
                    match fate {
                        Some(DeliveryFault::Drop) => {
                            // This copy is lost at the consumer; the
                            // source retransmits it (link-level retry).
                            self.nodes[src].retransmit.push_back((tag, 1 << i));
                            if let Some(t) = self.trace.as_mut() {
                                t.instant(RING_TRACE_PID, i as u32, "ring", "drop", self.cycle);
                            }
                        }
                        Some(DeliveryFault::Duplicate) => {
                            self.nodes[i].accept_data(tag);
                            self.nodes[i].accept_data(tag);
                            if let Some(t) = self.trace.as_mut() {
                                t.instant(
                                    RING_TRACE_PID,
                                    i as u32,
                                    "ring",
                                    "duplicate",
                                    self.cycle,
                                );
                            }
                        }
                        None => {
                            self.nodes[i].accept_data(tag);
                            if let Some(t) = self.trace.as_mut() {
                                t.instant(RING_TRACE_PID, i as u32, "ring", "deliver", self.cycle);
                            }
                        }
                    }
                }
            }
        }

        // 2. Transport (an installed fault plan may hold flits in place).
        advance_channel(&mut self.cw, &mut self.cw_holds, self.faults.as_mut());
        advance_channel(&mut self.ccw, &mut self.ccw_holds, self.faults.as_mut());

        // 3. Memory service: aged requests reach the memory SU, which
        //    aggregates multicast groups exactly like a core's MNI-SU.
        while let Some(&(ready, tag, from, bytes, cons)) = self.mem_delay.front() {
            if ready > self.cycle {
                break;
            }
            self.mem_delay.pop_front();
            self.nodes[mem].accept_request(tag, from, bytes, cons);
        }

        // 4. Programs.
        for node in &mut self.nodes {
            node.step_program();
        }

        // 5. Injection: one request flit and one data flit per node per
        //    cycle, when slots permit.
        for i in 0..n {
            // Requests route toward the producer on the shorter arc.
            if let Some(&(producer, tag, bytes, cons)) = self.nodes[i].request_backlog.front() {
                let dir = shortest_direction(n, i, producer);
                let chan = match dir {
                    Direction::Cw => &mut self.cw,
                    Direction::Ccw => &mut self.ccw,
                };
                if chan.may_inject(i) {
                    let flit = Flit {
                        tag,
                        src: i,
                        dests: 1 << producer,
                        is_request: true,
                        req_bytes: bytes,
                        req_consumers: cons,
                        last: false,
                    };
                    let ok = chan.inject(i, flit);
                    debug_assert!(ok, "may_inject checked the slot");
                    self.nodes[i].request_backlog.pop_front();
                }
            }
            // Retransmissions of dropped deliveries take this cycle's data
            // slot with priority over new stream flits.
            if let Some(&(tag, dests)) = self.nodes[i].retransmit.front() {
                let d = dests.trailing_zeros() as usize;
                let chan = match shortest_direction(n, i, d) {
                    Direction::Cw => &mut self.cw,
                    Direction::Ccw => &mut self.ccw,
                };
                if chan.may_inject(i) {
                    let flit = Flit {
                        tag,
                        src: i,
                        dests,
                        is_request: false,
                        req_bytes: 0,
                        req_consumers: 0,
                        last: false,
                    };
                    let ok = chan.inject(i, flit);
                    debug_assert!(ok, "may_inject checked the slot");
                    self.nodes[i].retransmit.pop_front();
                    if let Some(t) = self.trace.as_mut() {
                        t.instant(RING_TRACE_PID, i as u32, "ring", "retransmit", self.cycle);
                    }
                }
                continue;
            }
            // Data streams: multicast goes clockwise (all consumers pass),
            // unicast takes the shorter arc.
            let (dests, tag, flits_left) = match &self.nodes[i].active_send {
                Some(s) => (s.dests, s.tag, s.flits_left),
                None => continue,
            };
            let dir = if dests.count_ones() > 1 {
                Direction::Cw
            } else {
                let d = dests.trailing_zeros() as usize;
                shortest_direction(n, i, d)
            };
            let chan = match dir {
                Direction::Cw => &mut self.cw,
                Direction::Ccw => &mut self.ccw,
            };
            if chan.may_inject(i) {
                let flit = Flit {
                    tag,
                    src: i,
                    dests,
                    is_request: false,
                    req_bytes: 0,
                    req_consumers: 0,
                    last: flits_left == 1,
                };
                let ok = chan.inject(i, flit);
                debug_assert!(ok, "may_inject checked the slot");
                if let Some(t) = self.trace.as_mut() {
                    t.instant(RING_TRACE_PID, i as u32, "ring", "send", self.cycle);
                }
                if let Some(s) = self.nodes[i].active_send.as_mut() {
                    s.flits_left -= 1;
                    if s.flits_left == 0 {
                        self.nodes[i].active_send = None;
                        self.nodes[i].activate_next();
                    }
                }
            }
        }
    }

    /// Runs until idle, returning the cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`RingTimeout`] if the system does not drain within
    /// `max_cycles`.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Result<u64, RingTimeout> {
        let start = self.cycle;
        while !self.is_idle() {
            if self.cycle - start >= max_cycles {
                return Err(RingTimeout { cycles: max_cycles });
            }
            self.step();
        }
        Ok(self.cycle - start)
    }
}

/// Advances one channel, first drawing hold faults for occupied slots that
/// are not already held, then decrementing the per-slot hold counters. With
/// no plan installed this is a plain [`Channel::advance`].
fn advance_channel(chan: &mut Channel, holds: &mut [u32], plan: Option<&mut FaultPlan>) {
    if let Some(plan) = plan {
        for (s, hold) in holds.iter_mut().enumerate().take(chan.len()) {
            if *hold == 0 && chan.at(s).is_some() {
                if let Some(cycles) = plan.ring_hold() {
                    *hold = cycles;
                }
            }
        }
    }
    if holds.iter().any(|&h| h > 0) {
        let held: Vec<bool> = holds.iter().map(|&h| h > 0).collect();
        chan.advance_with_holds(&held);
        for h in holds.iter_mut() {
            *h = h.saturating_sub(1);
        }
    } else {
        chan.advance();
    }
}

/// Convenience: a unicast core-to-core transfer program pair.
pub fn unicast(sim: &mut RingSim, tag: u16, producer: usize, consumer: usize, bytes: u32) {
    sim.push_program(
        consumer,
        [MniInstr::Recv { tag, from: producer as u8, bytes, local_addr: 0, consumers: 1 }],
    );
    sim.push_program(producer, [MniInstr::Send { tag, bytes, local_addr: 0, consumers: 1 }]);
}

/// Convenience: a multicast transfer from `producer` to `consumers`.
pub fn multicast(sim: &mut RingSim, tag: u16, producer: usize, consumers: &[usize], bytes: u32) {
    for &c in consumers {
        sim.push_program(
            c,
            [MniInstr::Recv {
                tag,
                from: producer as u8,
                bytes,
                local_addr: 0,
                consumers: consumers.len() as u8,
            }],
        );
    }
    sim.push_program(
        producer,
        [MniInstr::Send { tag, bytes, local_addr: 0, consumers: consumers.len() as u8 }],
    );
}

/// Convenience: a memory read into `consumer` (multi-consumer memory reads
/// aggregate at the memory interface, §III-E).
pub fn memory_read(sim: &mut RingSim, tag: u16, consumers: &[usize], bytes: u32) {
    let mem = sim.mem_id();
    for &c in consumers {
        sim.push_program(
            c,
            [MniInstr::Recv {
                tag,
                from: mem as u8,
                bytes,
                local_addr: 0,
                consumers: consumers.len() as u8,
            }],
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::channel::FLIT_BYTES;
    use rapid_fault::FaultConfig;

    #[test]
    fn unicast_achieves_link_bandwidth() {
        // 128 KiB from core 0 to core 2 on a 4-core ring: 1024 flits at
        // 1 flit/cycle plus small request/propagation overhead.
        let mut sim = RingSim::new(4, 10);
        let bytes = 128 * 1024;
        unicast(&mut sim, 1, 0, 2, bytes);
        let cycles = sim.run_until_idle(10_000).expect("drains");
        assert_eq!(sim.received_bytes(2), u64::from(bytes));
        let flits = u64::from(bytes) / FLIT_BYTES;
        assert!(cycles >= flits, "cannot beat 128 B/cycle");
        assert!(cycles < flits + 30, "overhead too high: {cycles} vs {flits}");
    }

    #[test]
    fn opposite_arcs_transfer_concurrently() {
        // 0→1 (CW) and 3→2 (CCW) use disjoint links: together they take
        // barely longer than either alone.
        let bytes = 64 * 1024;
        let mut solo = RingSim::new(4, 10);
        unicast(&mut solo, 1, 0, 1, bytes);
        let t_solo = solo.run_until_idle(10_000).unwrap();

        let mut both = RingSim::new(4, 10);
        unicast(&mut both, 1, 0, 1, bytes);
        unicast(&mut both, 2, 3, 2, bytes);
        let t_both = both.run_until_idle(10_000).unwrap();
        assert!(t_both < t_solo + 20, "concurrent {t_both} vs solo {t_solo}");
    }

    #[test]
    fn multicast_saves_link_traffic() {
        let bytes = 32 * 1024;
        // Multicast 0 → {1, 2, 3}.
        let mut mc = RingSim::new(4, 10);
        multicast(&mut mc, 5, 0, &[1, 2, 3], bytes);
        mc.run_until_idle(10_000).unwrap();
        for c in [1, 2, 3] {
            assert_eq!(mc.received_bytes(c), u64::from(bytes), "consumer {c}");
        }
        let (mc_cw, mc_ccw) = mc.link_hops();

        // The same delivery as three unicasts.
        let mut uc = RingSim::new(4, 10);
        for (tag, c) in [(1u16, 1usize), (2, 2), (3, 3)] {
            unicast(&mut uc, tag, 0, c, bytes);
        }
        uc.run_until_idle(100_000).unwrap();
        let (uc_cw, uc_ccw) = uc.link_hops();
        // Multicast 0→{1,2,3} streams each flit once over 3 CW hops; the
        // unicast trio pays 1+2+2 hops per flit.
        assert!(
            (mc_cw + mc_ccw) as f64 <= 0.7 * (uc_cw + uc_ccw) as f64,
            "multicast hops {} vs unicast {}",
            mc_cw + mc_ccw,
            uc_cw + uc_ccw
        );
    }

    #[test]
    fn multicast_waits_for_every_consumer() {
        // One consumer's Recv arrives late: nothing is delivered before
        // the aggregation completes.
        let mut sim = RingSim::new(4, 0);
        let bytes = 1024u32;
        sim.push_program(
            1,
            [MniInstr::Recv { tag: 9, from: 0, bytes, local_addr: 0, consumers: 2 }],
        );
        sim.push_program(0, [MniInstr::Send { tag: 9, bytes, local_addr: 0, consumers: 2 }]);
        for _ in 0..200 {
            sim.step();
        }
        assert_eq!(sim.received_bytes(1), 0, "must wait for consumer 2's request");
        sim.push_program(
            2,
            [MniInstr::Recv { tag: 9, from: 0, bytes, local_addr: 0, consumers: 2 }],
        );
        sim.run_until_idle(10_000).unwrap();
        assert_eq!(sim.received_bytes(1), u64::from(bytes));
        assert_eq!(sim.received_bytes(2), u64::from(bytes));
    }

    #[test]
    fn memory_reads_respect_latency_and_complete_out_of_order() {
        let mut sim = RingSim::new(4, 50);
        memory_read(&mut sim, 1, &[0], 8 * 1024); // long transfer
        memory_read(&mut sim, 2, &[1], 128); // short transfer
        let cycles = sim.run_until_idle(10_000).unwrap();
        assert!(cycles > 50, "memory latency must show up");
        assert_eq!(sim.received_bytes(0), 8 * 1024);
        assert_eq!(sim.received_bytes(1), 128);
        // The short read finishes while the long one still streams.
        assert_eq!(sim.completed_tags(1), &[2]);
    }

    #[test]
    fn two_streams_deliver_two_returns_per_cycle() {
        // Core 1 receives from core 0 (CW arc) and core 2 (CCW arc)
        // simultaneously — the MNI-LU takes 2 data returns per cycle, so
        // the pair takes about as long as one.
        let bytes = 64 * 1024;
        let mut solo = RingSim::new(4, 10);
        unicast(&mut solo, 1, 0, 1, bytes);
        let t_solo = solo.run_until_idle(100_000).unwrap();

        let mut dual = RingSim::new(4, 10);
        unicast(&mut dual, 1, 0, 1, bytes);
        unicast(&mut dual, 2, 2, 1, bytes);
        let t_dual = dual.run_until_idle(100_000).unwrap();
        assert!(t_dual < t_solo + 20, "dual {t_dual} vs solo {t_solo}");
        assert_eq!(dual.received_bytes(1), 2 * u64::from(bytes));
    }

    #[test]
    fn try_new_and_try_push_program_reject_bad_args() {
        assert!(matches!(RingSim::try_new(0, 10), Err(RingError::InvalidConfig(_))));
        assert!(matches!(RingSim::try_new(63, 10), Err(RingError::InvalidConfig(_))));
        let mut sim = RingSim::try_new(4, 10).unwrap();
        let err = sim
            .try_push_program(
                9,
                [MniInstr::Send { tag: 1, bytes: 128, local_addr: 0, consumers: 1 }],
            )
            .unwrap_err();
        assert_eq!(err, RingError::NodeOutOfRange { node: 9, nodes: 5 });
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn transfers_complete_exactly_under_drop_faults() {
        // Dropped deliveries retransmit: every byte still arrives exactly
        // once, it just takes longer.
        let bytes = 16 * 1024;
        let mut sim = RingSim::new(4, 10);
        sim.set_fault_plan(FaultPlan::new(FaultConfig {
            seed: 11,
            ring_drop_rate: 0.05,
            ..FaultConfig::default()
        }));
        unicast(&mut sim, 1, 0, 2, bytes);
        sim.run_until_idle(100_000).expect("drains despite drops");
        assert_eq!(sim.received_bytes(2), u64::from(bytes));
        let plan = sim.take_fault_plan().unwrap();
        assert!(plan.counts().ring_drops > 0, "plan should have fired");
    }

    #[test]
    fn duplicates_do_not_inflate_received_bytes() {
        let bytes = 16 * 1024;
        let mut sim = RingSim::new(4, 10);
        sim.set_fault_plan(FaultPlan::new(FaultConfig {
            seed: 3,
            ring_dup_rate: 0.1,
            ..FaultConfig::default()
        }));
        unicast(&mut sim, 1, 0, 2, bytes);
        sim.run_until_idle(100_000).expect("drains");
        assert!(sim.take_fault_plan().unwrap().counts().ring_dups > 0);
        // bytes_left accounting self-caps each take, so duplicates shorten
        // the tail instead of over-counting.
        assert_eq!(sim.received_bytes(2), u64::from(bytes));
    }

    #[test]
    fn delays_slow_but_do_not_wedge_the_ring() {
        let bytes = 8 * 1024;
        let mut clean = RingSim::new(4, 10);
        unicast(&mut clean, 1, 0, 2, bytes);
        let t_clean = clean.run_until_idle(100_000).unwrap();

        let mut faulty = RingSim::new(4, 10);
        faulty.set_fault_plan(FaultPlan::new(FaultConfig {
            seed: 7,
            ring_delay_rate: 0.05,
            ring_delay_cycles: 8,
            ..FaultConfig::default()
        }));
        unicast(&mut faulty, 1, 0, 2, bytes);
        let t_faulty = faulty.run_until_idle(1_000_000).expect("drains despite delays");
        assert_eq!(faulty.received_bytes(2), u64::from(bytes));
        assert!(faulty.take_fault_plan().unwrap().counts().ring_holds > 0);
        assert!(t_faulty > t_clean, "holds must cost cycles: {t_faulty} vs {t_clean}");
    }

    #[test]
    fn multicast_survives_combined_faults() {
        let bytes = 8 * 1024;
        let mut sim = RingSim::new(4, 10);
        sim.set_fault_plan(FaultPlan::new(FaultConfig {
            seed: 23,
            ring_drop_rate: 0.02,
            ring_dup_rate: 0.02,
            ring_delay_rate: 0.02,
            ..FaultConfig::default()
        }));
        multicast(&mut sim, 5, 0, &[1, 2, 3], bytes);
        sim.run_until_idle(1_000_000).expect("drains");
        for c in [1, 2, 3] {
            assert_eq!(sim.received_bytes(c), u64::from(bytes), "consumer {c}");
        }
    }

    #[test]
    fn same_seed_reproduces_identical_fault_history() {
        let run = || {
            let mut sim = RingSim::new(4, 10);
            sim.set_fault_plan(FaultPlan::new(FaultConfig {
                seed: 42,
                ring_drop_rate: 0.03,
                ring_delay_rate: 0.03,
                ..FaultConfig::default()
            }));
            unicast(&mut sim, 1, 0, 2, 8 * 1024);
            let cycles = sim.run_until_idle(1_000_000).unwrap();
            let plan = sim.take_fault_plan().unwrap();
            (cycles, plan.trace().to_vec(), plan.counts())
        };
        let (c1, t1, n1) = run();
        let (c2, t2, n2) = run();
        assert_eq!(c1, c2);
        assert_eq!(t1, t2);
        assert_eq!(n1, n2);
    }

    #[test]
    fn timeout_reports_error() {
        let mut sim = RingSim::new(2, 0);
        // A Recv with no matching Send never completes.
        sim.push_program(
            0,
            [MniInstr::Recv { tag: 1, from: 1, bytes: 128, local_addr: 0, consumers: 1 }],
        );
        let err = sim.run_until_idle(100).unwrap_err();
        assert_eq!(err.cycles, 100);
        assert!(err.to_string().contains("did not drain"));
    }
}
