//! Fluent builder for CNN benchmark graphs.
//!
//! Tracks the running feature-map shape so network definitions read like
//! the original model tables, and automatically attaches the auxiliary
//! (BN/ReLU/pool) SFU work each block implies.

use crate::graph::{AuxKind, Domain, Layer, Network, Op, PrecisionClass};

/// Snapshot of the builder's running feature-map shape, used to describe
/// branching modules (Inception, residual blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeSnapshot {
    /// Channels.
    pub c: u64,
    /// Height.
    pub h: u64,
    /// Width.
    pub w: u64,
}

/// Builder for convolutional networks.
#[derive(Debug)]
pub struct CnnBuilder {
    net: Network,
    c: u64,
    h: u64,
    w: u64,
    idx: u32,
}

impl CnnBuilder {
    /// Starts a network with input shape `[c, h, w]`.
    pub fn new(name: impl Into<String>, domain: Domain, c: u64, h: u64, w: u64) -> Self {
        Self { net: Network::new(name, domain), c, h, w, idx: 0 }
    }

    /// Current feature-map shape.
    pub fn shape(&self) -> ShapeSnapshot {
        ShapeSnapshot { c: self.c, h: self.h, w: self.w }
    }

    /// Restores a previously saved shape (start of a parallel branch).
    pub fn restore(&mut self, s: ShapeSnapshot) -> &mut Self {
        self.c = s.c;
        self.h = s.h;
        self.w = s.w;
        self
    }

    /// Overrides the channel count (after concatenating branches).
    pub fn set_channels(&mut self, c: u64) -> &mut Self {
        self.c = c;
        self
    }

    fn next_name(&mut self, kind: &str) -> String {
        self.idx += 1;
        format!("{kind}{}", self.idx)
    }

    fn push(&mut self, layer: Layer) {
        self.net.layers.push(layer);
    }

    fn out_dim(h: u64, k: u64, stride: u64, pad: u64) -> u64 {
        (h + 2 * pad).saturating_sub(k) / stride + 1
    }

    /// Adds a convolution with an asymmetric kernel and padding, updating
    /// the running shape. Returns the builder for chaining.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_asym(
        &mut self,
        co: u64,
        kh: u64,
        kw: u64,
        stride: u64,
        pad_h: u64,
        pad_w: u64,
        class: PrecisionClass,
    ) -> &mut Self {
        let name = self.next_name("conv");
        let op = Op::Conv { ci: self.c, co, h: self.h, w: self.w, kh, kw, stride, pad_h, pad_w };
        let mut layer = Layer::new(name, op);
        layer.class = class;
        self.push(layer);
        self.h = Self::out_dim(self.h, kh, stride, pad_h);
        self.w = Self::out_dim(self.w, kw, stride, pad_w);
        self.c = co;
        self
    }

    /// Square-kernel convolution with "same"-style explicit padding.
    pub fn conv(&mut self, co: u64, k: u64, stride: u64, pad: u64) -> &mut Self {
        self.conv_asym(co, k, k, stride, pad, pad, PrecisionClass::Quantizable)
    }

    /// Convolution followed by fused BatchNorm + ReLU.
    pub fn conv_bn_relu(&mut self, co: u64, k: u64, stride: u64, pad: u64) -> &mut Self {
        self.conv(co, k, stride, pad);
        self.bn_relu()
    }

    /// Asymmetric-kernel convolution followed by BN + ReLU.
    pub fn conv_asym_bn_relu(
        &mut self,
        co: u64,
        kh: u64,
        kw: u64,
        stride: u64,
        pad_h: u64,
        pad_w: u64,
    ) -> &mut Self {
        self.conv_asym(co, kh, kw, stride, pad_h, pad_w, PrecisionClass::Quantizable);
        self.bn_relu()
    }

    /// First layer: convolution pinned at high precision + BN + ReLU
    /// (paper: first layers stay FP16 to preserve accuracy).
    pub fn first_conv_bn_relu(&mut self, co: u64, k: u64, stride: u64, pad: u64) -> &mut Self {
        self.conv_asym(co, k, k, stride, pad, pad, PrecisionClass::HighPrecision);
        self.bn_relu()
    }

    /// Depthwise 3×3-style convolution (+BN+ReLU), updating the shape.
    pub fn dwconv_bn_relu(&mut self, k: u64, stride: u64, pad: u64) -> &mut Self {
        let name = self.next_name("dwconv");
        let op = Op::DepthwiseConv { c: self.c, h: self.h, w: self.w, k, stride, pad };
        self.push(Layer::new(name, op));
        self.h = Self::out_dim(self.h, k, stride, pad);
        self.w = Self::out_dim(self.w, k, stride, pad);
        self.bn_relu()
    }

    /// BatchNorm + ReLU over the current feature map.
    pub fn bn_relu(&mut self) -> &mut Self {
        let elems = self.c * self.h * self.w;
        let bn = self.next_name("bn");
        self.push(Layer::new(bn, Op::Aux { kind: AuxKind::BatchNorm, elems, ops_per_elem: 1 }));
        let relu = self.next_name("relu");
        self.push(Layer::new(relu, Op::Aux { kind: AuxKind::Relu, elems, ops_per_elem: 1 }));
        self
    }

    /// ReLU only.
    pub fn relu(&mut self) -> &mut Self {
        let elems = self.c * self.h * self.w;
        let name = self.next_name("relu");
        self.push(Layer::new(name, Op::Aux { kind: AuxKind::Relu, elems, ops_per_elem: 1 }));
        self
    }

    /// Max/avg pooling with a square window, updating the shape.
    pub fn pool(&mut self, k: u64, stride: u64, pad: u64) -> &mut Self {
        let ho = Self::out_dim(self.h, k, stride, pad);
        let wo = Self::out_dim(self.w, k, stride, pad);
        let name = self.next_name("pool");
        self.push(Layer::new(
            name,
            Op::Aux { kind: AuxKind::Pool, elems: self.c * ho * wo, ops_per_elem: k * k },
        ));
        self.h = ho;
        self.w = wo;
        self
    }

    /// Global average pooling to 1×1.
    pub fn global_pool(&mut self) -> &mut Self {
        let name = self.next_name("gap");
        self.push(Layer::new(
            name,
            Op::Aux { kind: AuxKind::Pool, elems: self.c, ops_per_elem: self.h * self.w },
        ));
        self.h = 1;
        self.w = 1;
        self
    }

    /// Residual element-wise addition over the current feature map.
    pub fn eltwise_add(&mut self) -> &mut Self {
        let elems = self.c * self.h * self.w;
        let name = self.next_name("add");
        self.push(Layer::new(name, Op::Aux { kind: AuxKind::EltwiseAdd, elems, ops_per_elem: 1 }));
        self
    }

    /// Concat/shuffle bookkeeping cost over `elems` elements.
    pub fn shuffle(&mut self, elems: u64) -> &mut Self {
        let name = self.next_name("shuffle");
        self.push(Layer::new(name, Op::Aux { kind: AuxKind::Shuffle, elems, ops_per_elem: 1 }));
        self
    }

    /// Fully-connected layer `[1, in] × [in, n]`; flattens the current map.
    pub fn fc(&mut self, n: u64, class: PrecisionClass) -> &mut Self {
        let k = self.c * self.h * self.w;
        let name = self.next_name("fc");
        let mut layer = Layer::new(name, Op::Gemm { m: 1, k, n, weighted: true });
        layer.class = class;
        self.push(layer);
        self.c = n;
        self.h = 1;
        self.w = 1;
        self
    }

    /// Softmax over the current (flattened) output.
    pub fn softmax(&mut self) -> &mut Self {
        let elems = self.c * self.h * self.w;
        let name = self.next_name("softmax");
        self.push(Layer::new(name, Op::Aux { kind: AuxKind::Softmax, elems, ops_per_elem: 1 }));
        self
    }

    /// Appends a raw layer (escape hatch for heads and custom blocks).
    pub fn raw(&mut self, layer: Layer) -> &mut Self {
        self.push(layer);
        self
    }

    /// Finishes the network.
    pub fn build(self) -> Network {
        self.net
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn shape_tracking_through_conv_and_pool() {
        let mut b = CnnBuilder::new("t", Domain::ImageClassification, 3, 224, 224);
        b.first_conv_bn_relu(64, 7, 2, 3);
        assert_eq!(b.shape(), ShapeSnapshot { c: 64, h: 112, w: 112 });
        b.pool(3, 2, 1);
        assert_eq!(b.shape(), ShapeSnapshot { c: 64, h: 56, w: 56 });
    }

    #[test]
    fn asymmetric_conv_keeps_dims_with_matching_pad() {
        let mut b = CnnBuilder::new("t", Domain::ImageClassification, 768, 17, 17);
        b.conv_asym_bn_relu(192, 1, 7, 1, 0, 3);
        assert_eq!(b.shape(), ShapeSnapshot { c: 192, h: 17, w: 17 });
        b.conv_asym_bn_relu(192, 7, 1, 1, 3, 0);
        assert_eq!(b.shape(), ShapeSnapshot { c: 192, h: 17, w: 17 });
    }

    #[test]
    fn branch_save_restore() {
        let mut b = CnnBuilder::new("t", Domain::ImageClassification, 256, 35, 35);
        let fork = b.shape();
        b.conv_bn_relu(64, 1, 1, 0);
        assert_eq!(b.shape().c, 64);
        b.restore(fork);
        assert_eq!(b.shape().c, 256);
        b.set_channels(288);
        assert_eq!(b.shape().c, 288);
    }

    #[test]
    fn first_conv_is_high_precision() {
        let mut b = CnnBuilder::new("t", Domain::ImageClassification, 3, 32, 32);
        b.first_conv_bn_relu(16, 3, 1, 1);
        b.conv_bn_relu(16, 3, 1, 1);
        let net = b.build();
        assert_eq!(net.layers[0].class, PrecisionClass::HighPrecision);
        assert_eq!(net.layers[3].class, PrecisionClass::Quantizable);
    }

    #[test]
    fn fc_flattens() {
        let mut b = CnnBuilder::new("t", Domain::ImageClassification, 512, 7, 7);
        b.fc(4096, PrecisionClass::Quantizable);
        let net = b.build();
        assert_eq!(net.total_macs(), 512 * 7 * 7 * 4096);
    }
}
