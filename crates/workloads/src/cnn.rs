//! Image-classification benchmarks: VGG16, ResNet50, InceptionV3,
//! InceptionV4 and MobileNetV1 (ImageNet input resolutions).
//!
//! Layer dimensions follow the public model definitions; total MAC counts
//! are checked against the published numbers in the tests.

use crate::builder::CnnBuilder;
use crate::graph::{Domain, Network, PrecisionClass};

/// VGG16 at 224×224 (Simonyan & Zisserman): 13 3×3 convolutions + 3 FC.
pub fn vgg16() -> Network {
    let mut b = CnnBuilder::new("vgg16", Domain::ImageClassification, 3, 224, 224);
    b.first_conv_bn_relu(64, 3, 1, 1);
    b.conv_bn_relu(64, 3, 1, 1).pool(2, 2, 0);
    b.conv_bn_relu(128, 3, 1, 1).conv_bn_relu(128, 3, 1, 1).pool(2, 2, 0);
    b.conv_bn_relu(256, 3, 1, 1)
        .conv_bn_relu(256, 3, 1, 1)
        .conv_bn_relu(256, 3, 1, 1)
        .pool(2, 2, 0);
    b.conv_bn_relu(512, 3, 1, 1)
        .conv_bn_relu(512, 3, 1, 1)
        .conv_bn_relu(512, 3, 1, 1)
        .pool(2, 2, 0);
    b.conv_bn_relu(512, 3, 1, 1)
        .conv_bn_relu(512, 3, 1, 1)
        .conv_bn_relu(512, 3, 1, 1)
        .pool(2, 2, 0);
    b.fc(4096, PrecisionClass::Quantizable).relu();
    b.fc(4096, PrecisionClass::Quantizable).relu();
    b.fc(1000, PrecisionClass::HighPrecision).softmax();
    b.build()
}

/// One ResNet bottleneck block: 1×1 reduce, 3×3, 1×1 expand (+ projection
/// shortcut when the shape changes), with the residual add.
fn bottleneck(b: &mut CnnBuilder, width: u64, out: u64, stride: u64, project: bool) {
    let fork = b.shape();
    b.conv_bn_relu(width, 1, 1, 0);
    b.conv_bn_relu(width, 3, stride, 1);
    b.conv(out, 1, 1, 0).bn_relu();
    if project {
        let main = b.shape();
        b.restore(fork);
        b.conv(out, 1, stride, 0).bn_relu();
        b.restore(main);
    }
    b.eltwise_add();
}

/// ResNet50 v1.5 at 224×224 (He et al.).
pub fn resnet50() -> Network {
    let mut b = CnnBuilder::new("resnet50", Domain::ImageClassification, 3, 224, 224);
    b.first_conv_bn_relu(64, 7, 2, 3);
    b.pool(3, 2, 1);
    // Stage 1: 3 blocks, width 64, out 256, 56×56.
    bottleneck(&mut b, 64, 256, 1, true);
    for _ in 0..2 {
        bottleneck(&mut b, 64, 256, 1, false);
    }
    // Stage 2: 4 blocks, width 128, out 512, stride to 28×28.
    bottleneck(&mut b, 128, 512, 2, true);
    for _ in 0..3 {
        bottleneck(&mut b, 128, 512, 1, false);
    }
    // Stage 3: 6 blocks, width 256, out 1024, stride to 14×14.
    bottleneck(&mut b, 256, 1024, 2, true);
    for _ in 0..5 {
        bottleneck(&mut b, 256, 1024, 1, false);
    }
    // Stage 4: 3 blocks, width 512, out 2048, stride to 7×7.
    bottleneck(&mut b, 512, 2048, 2, true);
    for _ in 0..2 {
        bottleneck(&mut b, 512, 2048, 1, false);
    }
    b.global_pool();
    b.fc(1000, PrecisionClass::HighPrecision).softmax();
    b.build()
}

/// InceptionA module (35×35 grid). `pool_ch` is the pool-projection width.
fn inception_a(b: &mut CnnBuilder, pool_ch: u64) {
    let fork = b.shape();
    // Branch 1: 1×1 64.
    b.conv_bn_relu(64, 1, 1, 0);
    // Branch 2: 1×1 48 → 5×5 64.
    b.restore(fork).conv_bn_relu(48, 1, 1, 0).conv_bn_relu(64, 5, 1, 2);
    // Branch 3: 1×1 64 → 3×3 96 → 3×3 96.
    b.restore(fork)
        .conv_bn_relu(64, 1, 1, 0)
        .conv_bn_relu(96, 3, 1, 1)
        .conv_bn_relu(96, 3, 1, 1);
    // Branch 4: avg-pool 3×3 → 1×1 pool_ch.
    b.restore(fork).pool(3, 1, 1).conv_bn_relu(pool_ch, 1, 1, 0);
    b.set_channels(64 + 64 + 96 + pool_ch);
}

/// Grid-reduction A: 35×35 → 17×17.
fn reduction_a(b: &mut CnnBuilder, n: u64, k: u64, l: u64, m: u64) {
    let fork = b.shape();
    b.conv_bn_relu(n, 3, 2, 0);
    let out1 = b.shape();
    b.restore(fork)
        .conv_bn_relu(k, 1, 1, 0)
        .conv_bn_relu(l, 3, 1, 1)
        .conv_bn_relu(m, 3, 2, 0);
    b.restore(fork).pool(3, 2, 0);
    let pooled_c = fork.c;
    b.restore(out1);
    b.set_channels(n + m + pooled_c);
}

/// InceptionB module (17×17 grid) with 7×1/1×7 factorized convolutions.
fn inception_b(b: &mut CnnBuilder, c7: u64) {
    let fork = b.shape();
    b.conv_bn_relu(192, 1, 1, 0);
    b.restore(fork)
        .conv_bn_relu(c7, 1, 1, 0)
        .conv_asym_bn_relu(c7, 1, 7, 1, 0, 3)
        .conv_asym_bn_relu(192, 7, 1, 1, 3, 0);
    b.restore(fork)
        .conv_bn_relu(c7, 1, 1, 0)
        .conv_asym_bn_relu(c7, 7, 1, 1, 3, 0)
        .conv_asym_bn_relu(c7, 1, 7, 1, 0, 3)
        .conv_asym_bn_relu(c7, 7, 1, 1, 3, 0)
        .conv_asym_bn_relu(192, 1, 7, 1, 0, 3);
    b.restore(fork).pool(3, 1, 1).conv_bn_relu(192, 1, 1, 0);
    b.set_channels(768);
}

/// Grid-reduction B: 17×17 → 8×8.
fn reduction_b(b: &mut CnnBuilder) {
    let fork = b.shape();
    b.conv_bn_relu(192, 1, 1, 0).conv_bn_relu(320, 3, 2, 0);
    let out1 = b.shape();
    b.restore(fork)
        .conv_bn_relu(192, 1, 1, 0)
        .conv_asym_bn_relu(192, 1, 7, 1, 0, 3)
        .conv_asym_bn_relu(192, 7, 1, 1, 3, 0)
        .conv_bn_relu(192, 3, 2, 0);
    b.restore(fork).pool(3, 2, 0);
    b.restore(out1);
    b.set_channels(320 + 192 + fork.c);
}

/// InceptionC module (8×8 grid) with split 1×3 / 3×1 branches.
fn inception_c(b: &mut CnnBuilder) {
    let fork = b.shape();
    b.conv_bn_relu(320, 1, 1, 0);
    // Branch 2: 1×1 384 → {1×3 384, 3×1 384}.
    b.restore(fork).conv_bn_relu(384, 1, 1, 0);
    let mid = b.shape();
    b.conv_asym_bn_relu(384, 1, 3, 1, 0, 1);
    b.restore(mid).conv_asym_bn_relu(384, 3, 1, 1, 1, 0);
    // Branch 3: 1×1 448 → 3×3 384 → {1×3 384, 3×1 384}.
    b.restore(fork).conv_bn_relu(448, 1, 1, 0).conv_bn_relu(384, 3, 1, 1);
    let mid = b.shape();
    b.conv_asym_bn_relu(384, 1, 3, 1, 0, 1);
    b.restore(mid).conv_asym_bn_relu(384, 3, 1, 1, 1, 0);
    // Branch 4: pool → 1×1 192.
    b.restore(fork).pool(3, 1, 1).conv_bn_relu(192, 1, 1, 0);
    b.set_channels(320 + 768 + 768 + 192);
}

/// InceptionV3 at 299×299 (Szegedy et al.).
pub fn inception_v3() -> Network {
    let mut b = CnnBuilder::new("inception3", Domain::ImageClassification, 3, 299, 299);
    // Stem.
    b.first_conv_bn_relu(32, 3, 2, 0); // 149
    b.conv_bn_relu(32, 3, 1, 0); // 147
    b.conv_bn_relu(64, 3, 1, 1); // 147
    b.pool(3, 2, 0); // 73
    b.conv_bn_relu(80, 1, 1, 0);
    b.conv_bn_relu(192, 3, 1, 0); // 71
    b.pool(3, 2, 0); // 35
    // 3 × InceptionA.
    inception_a(&mut b, 32); // 256
    inception_a(&mut b, 64); // 288
    inception_a(&mut b, 64); // 288
    reduction_a(&mut b, 384, 64, 96, 96); // 768 @ 17
    for c7 in [128, 160, 160, 192] {
        inception_b(&mut b, c7);
    }
    reduction_b(&mut b); // 1280 @ 8
    inception_c(&mut b); // 2048
    inception_c(&mut b);
    b.global_pool();
    b.fc(1000, PrecisionClass::HighPrecision).softmax();
    b.build()
}

/// InceptionV4 at 299×299 (Szegedy et al. 2016).
pub fn inception_v4() -> Network {
    let mut b = CnnBuilder::new("inception4", Domain::ImageClassification, 3, 299, 299);
    // Stem.
    b.first_conv_bn_relu(32, 3, 2, 0); // 149
    b.conv_bn_relu(32, 3, 1, 0); // 147
    b.conv_bn_relu(64, 3, 1, 1); // 147
    let fork = b.shape();
    b.pool(3, 2, 0); // 73
    let pooled = b.shape();
    b.restore(fork).conv_bn_relu(96, 3, 2, 0); // 73
    b.set_channels(pooled.c + 96); // 160 @ 73
    let fork = b.shape();
    b.conv_bn_relu(64, 1, 1, 0).conv_bn_relu(96, 3, 1, 0); // 71
    let out1 = b.shape();
    b.restore(fork)
        .conv_bn_relu(64, 1, 1, 0)
        .conv_asym_bn_relu(64, 1, 7, 1, 0, 3)
        .conv_asym_bn_relu(64, 7, 1, 1, 3, 0)
        .conv_bn_relu(96, 3, 1, 0); // 71
    b.restore(out1);
    b.set_channels(192); // 192 @ 71
    let fork = b.shape();
    b.conv_bn_relu(192, 3, 2, 0); // 35
    let out1 = b.shape();
    b.restore(fork).pool(3, 2, 0);
    b.restore(out1);
    b.set_channels(384); // 384 @ 35
    // 4 × InceptionA (v4 flavour).
    for _ in 0..4 {
        let fork = b.shape();
        b.conv_bn_relu(96, 1, 1, 0);
        b.restore(fork).conv_bn_relu(64, 1, 1, 0).conv_bn_relu(96, 3, 1, 1);
        b.restore(fork)
            .conv_bn_relu(64, 1, 1, 0)
            .conv_bn_relu(96, 3, 1, 1)
            .conv_bn_relu(96, 3, 1, 1);
        b.restore(fork).pool(3, 1, 1).conv_bn_relu(96, 1, 1, 0);
        b.set_channels(384);
    }
    reduction_a(&mut b, 384, 192, 224, 256); // 1024 @ 17
    // 7 × InceptionB (v4 flavour).
    for _ in 0..7 {
        let fork = b.shape();
        b.conv_bn_relu(384, 1, 1, 0);
        b.restore(fork)
            .conv_bn_relu(192, 1, 1, 0)
            .conv_asym_bn_relu(224, 1, 7, 1, 0, 3)
            .conv_asym_bn_relu(256, 7, 1, 1, 3, 0);
        b.restore(fork)
            .conv_bn_relu(192, 1, 1, 0)
            .conv_asym_bn_relu(192, 7, 1, 1, 3, 0)
            .conv_asym_bn_relu(224, 1, 7, 1, 0, 3)
            .conv_asym_bn_relu(224, 7, 1, 1, 3, 0)
            .conv_asym_bn_relu(256, 1, 7, 1, 0, 3);
        b.restore(fork).pool(3, 1, 1).conv_bn_relu(128, 1, 1, 0);
        b.set_channels(1024);
    }
    // Reduction B (v4).
    let fork = b.shape();
    b.conv_bn_relu(192, 1, 1, 0).conv_bn_relu(192, 3, 2, 0); // 8
    let out1 = b.shape();
    b.restore(fork)
        .conv_bn_relu(256, 1, 1, 0)
        .conv_asym_bn_relu(256, 1, 7, 1, 0, 3)
        .conv_asym_bn_relu(320, 7, 1, 1, 3, 0)
        .conv_bn_relu(320, 3, 2, 0);
    b.restore(fork).pool(3, 2, 0);
    b.restore(out1);
    b.set_channels(192 + 320 + 1024); // 1536 @ 8
    // 3 × InceptionC (v4 flavour).
    for _ in 0..3 {
        let fork = b.shape();
        b.conv_bn_relu(256, 1, 1, 0);
        b.restore(fork).conv_bn_relu(384, 1, 1, 0);
        let mid = b.shape();
        b.conv_asym_bn_relu(256, 1, 3, 1, 0, 1);
        b.restore(mid).conv_asym_bn_relu(256, 3, 1, 1, 1, 0);
        b.restore(fork)
            .conv_bn_relu(384, 1, 1, 0)
            .conv_asym_bn_relu(448, 1, 3, 1, 0, 1)
            .conv_asym_bn_relu(512, 3, 1, 1, 1, 0);
        let mid = b.shape();
        b.conv_asym_bn_relu(256, 3, 1, 1, 1, 0);
        b.restore(mid).conv_asym_bn_relu(256, 1, 3, 1, 0, 1);
        b.restore(fork).pool(3, 1, 1).conv_bn_relu(256, 1, 1, 0);
        b.set_channels(1536);
    }
    b.global_pool();
    b.fc(1000, PrecisionClass::HighPrecision).softmax();
    b.build()
}

/// MobileNetV1 at 224×224 (Howard et al.): depthwise-separable blocks.
pub fn mobilenet_v1() -> Network {
    let mut b = CnnBuilder::new("mobilenetv1", Domain::ImageClassification, 3, 224, 224);
    b.first_conv_bn_relu(32, 3, 2, 1); // 112
    let blocks: [(u64, u64); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (co, stride) in blocks {
        b.dwconv_bn_relu(3, stride, 1);
        b.conv_bn_relu(co, 1, 1, 0);
    }
    b.global_pool();
    b.fc(1000, PrecisionClass::HighPrecision).softmax();
    b.build()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_macs_match_published() {
        let net = vgg16();
        let gmacs = net.total_macs() as f64 / 1e9;
        // Published: ~15.5 GMACs (30.9 GFLOPs).
        assert!((gmacs - 15.5).abs() < 0.3, "vgg16 {gmacs} GMACs");
        // ~138 M parameters.
        let mp = net.total_weights() as f64 / 1e6;
        assert!((mp - 138.0).abs() < 3.0, "vgg16 {mp} M params");
    }

    #[test]
    fn resnet50_macs_match_published() {
        let net = resnet50();
        let gmacs = net.total_macs() as f64 / 1e9;
        // Published: ~4.1 GMACs.
        assert!((gmacs - 4.1).abs() < 0.3, "resnet50 {gmacs} GMACs");
        let mp = net.total_weights() as f64 / 1e6;
        assert!((mp - 25.5).abs() < 2.0, "resnet50 {mp} M params");
    }

    #[test]
    fn inception_v3_macs_match_published() {
        let net = inception_v3();
        let gmacs = net.total_macs() as f64 / 1e9;
        // Published: ~5.7 GMACs (11.4 GFLOPs at 299×299).
        assert!((gmacs - 5.7).abs() < 0.9, "inception3 {gmacs} GMACs");
    }

    #[test]
    fn inception_v4_macs_match_published() {
        let net = inception_v4();
        let gmacs = net.total_macs() as f64 / 1e9;
        // Published: ~12.3 GMACs.
        assert!((gmacs - 12.3).abs() < 1.8, "inception4 {gmacs} GMACs");
    }

    #[test]
    fn mobilenet_macs_match_published() {
        let net = mobilenet_v1();
        let mmacs = net.total_macs() as f64 / 1e6;
        // Published: ~569 MMACs.
        assert!((mmacs - 569.0).abs() < 30.0, "mobilenet {mmacs} MMACs");
        let mp = net.total_weights() as f64 / 1e6;
        assert!((mp - 4.2).abs() < 0.5, "mobilenet {mp} M params");
    }

    #[test]
    fn mobilenet_is_aux_heavy_relative_to_compute() {
        // The paper's Fig 13/17: mobile networks have lean convolutions and
        // a large auxiliary fraction; VGG16 is the opposite.
        let mob = mobilenet_v1();
        let vgg = vgg16();
        let mob_ratio = mob.total_aux_lane_cycles() / mob.total_macs() as f64;
        let vgg_ratio = vgg.total_aux_lane_cycles() / vgg.total_macs() as f64;
        assert!(mob_ratio > 5.0 * vgg_ratio, "mob {mob_ratio} vs vgg {vgg_ratio}");
    }

    #[test]
    fn every_network_marks_first_and_last_high_precision() {
        for net in [vgg16(), resnet50(), inception_v3(), inception_v4(), mobilenet_v1()] {
            let frac = net.high_precision_mac_fraction();
            assert!(frac > 0.0, "{} has no HP layers", net.name);
            assert!(frac < 0.12, "{} HP fraction {frac} too large", net.name);
        }
    }
}
