//! Language and speech benchmarks: BERT (seq 384), 2-layer LSTM (PTB) and
//! a 4-layer bidirectional LSTM (SWB300).

use crate::graph::{AuxKind, Domain, Layer, Network, Op, PrecisionClass};

fn aux(name: &str, kind: AuxKind, elems: u64) -> Layer {
    Layer::new(name, Op::Aux { kind, elems, ops_per_elem: 1 })
}

fn gemm(name: &str, m: u64, k: u64, n: u64) -> Layer {
    Layer::new(name, Op::Gemm { m, k, n, weighted: true })
}

/// BERT-Base encoder with sequence length 384 (WMT14 En-De fine-tune as in
/// the paper): 12 layers, hidden 768, 12 heads, FFN 3072.
pub fn bert_base_384() -> Network {
    let mut net = Network::new("bert", Domain::NaturalLanguage);
    let (seq, hidden, heads, ffn) = (384u64, 768u64, 12u64, 3072u64);
    let head_dim = hidden / heads;
    // Embedding lookup + additions + layernorm.
    net.layers.push(aux("embed_add", AuxKind::EltwiseAdd, seq * hidden));
    net.layers.push(aux("embed_ln", AuxKind::LayerNorm, seq * hidden));
    for l in 0..12 {
        // Fused QKV projection.
        net.layers.push(gemm(&format!("l{l}_qkv"), seq, hidden, 3 * hidden));
        // Attention scores per head (activation × activation).
        net.layers.push(
            Layer::new(
                format!("l{l}_scores"),
                Op::Gemm { m: seq, k: head_dim, n: seq, weighted: false },
            )
            .repeated(heads),
        );
        net.layers.push(aux(&format!("l{l}_softmax"), AuxKind::Softmax, heads * seq * seq));
        // Context per head.
        net.layers.push(
            Layer::new(
                format!("l{l}_context"),
                Op::Gemm { m: seq, k: seq, n: head_dim, weighted: false },
            )
            .repeated(heads),
        );
        // Output projection + residual + layernorm.
        net.layers.push(gemm(&format!("l{l}_out"), seq, hidden, hidden));
        net.layers.push(aux(&format!("l{l}_res1"), AuxKind::EltwiseAdd, seq * hidden));
        net.layers.push(aux(&format!("l{l}_ln1"), AuxKind::LayerNorm, seq * hidden));
        // Feed-forward block.
        net.layers.push(gemm(&format!("l{l}_ffn1"), seq, hidden, ffn));
        net.layers.push(aux(&format!("l{l}_gelu"), AuxKind::Gelu, seq * ffn));
        net.layers.push(gemm(&format!("l{l}_ffn2"), seq, ffn, hidden));
        net.layers.push(aux(&format!("l{l}_res2"), AuxKind::EltwiseAdd, seq * hidden));
        net.layers.push(aux(&format!("l{l}_ln2"), AuxKind::LayerNorm, seq * hidden));
    }
    // Task head (kept high precision: last layer).
    let mut pooler = gemm("pooler", 1, hidden, hidden);
    pooler.class = PrecisionClass::HighPrecision;
    net.layers.push(pooler);
    let mut cls = gemm("classifier", 1, hidden, 2);
    cls.class = PrecisionClass::HighPrecision;
    net.layers.push(cls);
    net
}

/// Appends one (unidirectional) LSTM layer processing `seq` timesteps:
/// a batched input projection, a sequential recurrent projection, and the
/// gate non-linearities.
fn lstm_layer(net: &mut Network, name: &str, seq: u64, input: u64, hidden: u64) {
    // Input projection x_t → 4h for all timesteps at once (batched).
    net.layers.push(gemm(&format!("{name}_xproj"), seq, input, 4 * hidden));
    // Recurrent projection h_{t-1} → 4h, inherently sequential: one GEMV
    // per timestep (this is where batch-1 utilization collapses, Fig 17).
    net.layers
        .push(gemm(&format!("{name}_hproj"), 1, hidden, 4 * hidden).repeated(seq));
    // Gates: 3 sigmoids + 1 tanh over h elements each, plus elementwise
    // cell updates, per timestep.
    net.layers.push(aux(&format!("{name}_sig"), AuxKind::Sigmoid, seq * 3 * hidden));
    net.layers.push(aux(&format!("{name}_tanh"), AuxKind::Tanh, seq * 2 * hidden));
    net.layers.push(aux(&format!("{name}_cell"), AuxKind::EltwiseMul, seq * 3 * hidden));
}

/// 2-layer LSTM language model on PennTreeBank (large config: hidden 1500,
/// vocab 10k, unrolled 35 steps).
pub fn lstm_ptb() -> Network {
    let mut net = Network::new("lstm", Domain::NaturalLanguage);
    let (seq, hidden, vocab) = (35u64, 1500u64, 10_000u64);
    net.layers.push(aux("embed", AuxKind::Shuffle, seq * hidden));
    lstm_layer(&mut net, "l0", seq, hidden, hidden);
    lstm_layer(&mut net, "l1", seq, hidden, hidden);
    // Output projection to the vocabulary each timestep (batched over seq);
    // last layer stays high precision.
    let mut proj = gemm("vocab_proj", seq, hidden, vocab);
    proj.class = PrecisionClass::HighPrecision;
    net.layers.push(proj);
    net.layers.push(aux("softmax", AuxKind::Softmax, seq * vocab));
    net
}

/// 4-layer bidirectional LSTM acoustic model on SWB300 (hidden 512 per
/// direction, ~300 frames per utterance, 32k context-dependent targets).
pub fn bilstm_swb300() -> Network {
    let mut net = Network::new("bilstm", Domain::Speech);
    let (frames, feat, hidden, targets) = (300u64, 260u64, 512u64, 32_000u64);
    for l in 0..4 {
        let input = if l == 0 { feat } else { 2 * hidden };
        for dir in ["fwd", "bwd"] {
            lstm_layer(&mut net, &format!("l{l}_{dir}"), frames, input, hidden);
        }
    }
    let mut proj = gemm("am_proj", frames, 2 * hidden, targets);
    proj.class = PrecisionClass::HighPrecision;
    net.layers.push(proj);
    net.layers.push(aux("softmax", AuxKind::Softmax, frames * targets));
    net
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn bert_macs_match_published() {
        let net = bert_base_384();
        let gmacs = net.total_macs() as f64 / 1e9;
        // BERT-Base forward at seq 384: 12 × (4·768² + 2·384·768 + 2·768·3072)
        // per token ≈ 33.7 GMACs per sequence.
        assert!((gmacs - 33.7).abs() < 3.0, "bert {gmacs} GMACs");
        // ~85 M encoder weights.
        let mp = net.total_weights() as f64 / 1e6;
        assert!((mp - 85.0).abs() < 5.0, "bert {mp} M params");
    }

    #[test]
    fn attention_gemms_are_unweighted() {
        let net = bert_base_384();
        let unweighted: u64 = net
            .layers
            .iter()
            .filter(|l| matches!(l.op, Op::Gemm { weighted: false, .. }))
            .map(|l| l.macs())
            .sum();
        // 12 layers × 2 × 12 heads × 384×64×384.
        assert_eq!(unweighted, 12 * 2 * 12 * 384 * 64 * 384);
    }

    #[test]
    fn lstm_ptb_macs() {
        let net = lstm_ptb();
        let gmacs = net.total_macs() as f64 / 1e9;
        // 2 layers × 35 steps × 2 × 1500×6000 + 35 × 1500×10000 ≈ 1.8 G.
        assert!((gmacs - 1.78).abs() < 0.2, "lstm {gmacs} GMACs");
    }

    #[test]
    fn lstm_recurrent_work_is_batch1() {
        let net = lstm_ptb();
        let gemv_macs: u64 = net
            .layers
            .iter()
            .filter(|l| matches!(l.op, Op::Gemm { m: 1, .. }))
            .map(|l| l.macs())
            .sum();
        assert_eq!(gemv_macs, 2 * 35 * 1500 * 6000);
    }

    #[test]
    fn bilstm_macs() {
        let net = bilstm_swb300();
        let gmacs = net.total_macs() as f64 / 1e9;
        // layer 1: 2×300×(260+512)·2048·... gates are (in+h)→4h split into
        // x and h projections; dominated by the 32k-target projection.
        assert!((5.0..25.0).contains(&gmacs), "bilstm {gmacs} GMACs");
    }
}
