//! # rapid-workloads
//!
//! The DNN benchmark suite the RaPiD paper evaluates (§V-A): layer-exact
//! graphs for 11 networks across four domains, plus the pruned-model
//! sparsity profiles used by the sparsity-aware throttling study.
//!
//! | domain | benchmarks |
//! |---|---|
//! | image classification | VGG16, ResNet50, InceptionV3, InceptionV4, MobileNetV1 |
//! | object detection | SSD300, YOLOv3, YOLOv3-Tiny |
//! | natural language | BERT (seq 384), 2-layer LSTM (PTB) |
//! | speech | 4-layer BiLSTM (SWB300) |
//!
//! Networks are described as ordered [`graph::Layer`] lists whose
//! dimensions match the public model definitions (tests pin total MACs and
//! parameter counts to the published numbers). Performance and power
//! estimation happen downstream in `rapid-model`; this crate only encodes
//! *what* must be computed.
//!
//! # Example
//!
//! ```
//! use rapid_workloads::suite::benchmark;
//!
//! let net = benchmark("resnet50").expect("resnet50 is in the suite");
//! let gmacs = net.total_macs() as f64 / 1e9;
//! assert!((gmacs - 4.1).abs() < 0.3);
//! ```

pub mod builder;
pub mod cnn;
pub mod detection;
pub mod graph;
pub mod nlp;
pub mod suite;

pub use graph::{AuxKind, Domain, Layer, Network, Op, PrecisionClass};
pub use suite::{apply_pruning_profile, benchmark, benchmark_suite};
