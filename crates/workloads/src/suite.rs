//! The paper's 11-benchmark suite (§V-A) and the pruned-model sparsity
//! profiles used by the sparsity-aware throttling study (Fig 16).

use crate::cnn;
use crate::detection;
use crate::graph::{Network, PrecisionClass};
use crate::nlp;

/// Returns the full 11-benchmark suite in the paper's order:
/// image classification (VGG16, ResNet50, InceptionV3, InceptionV4,
/// MobileNetV1), object detection (SSD300, YOLOv3, YOLOv3-Tiny), natural
/// language (BERT, LSTM) and speech (BiLSTM).
pub fn benchmark_suite() -> Vec<Network> {
    vec![
        cnn::vgg16(),
        cnn::resnet50(),
        cnn::inception_v3(),
        cnn::inception_v4(),
        cnn::mobilenet_v1(),
        detection::ssd300(),
        detection::yolov3(),
        detection::yolov3_tiny(),
        nlp::bert_base_384(),
        nlp::lstm_ptb(),
        nlp::bilstm_swb300(),
    ]
}

/// The benchmarks with publicly available pruned checkpoints used by the
/// sparsity-aware throttling study (paper §V-D, refs [55–58]): CNNs,
/// detectors and BERT — the study predates pruned RNN releases.
pub fn pruned_study_suite() -> Vec<Network> {
    const NAMES: [&str; 8] = [
        "vgg16",
        "resnet50",
        "inception3",
        "mobilenetv1",
        "ssd300",
        "yolov3",
        "tiny-yolov3",
        "bert",
    ];
    benchmark_suite().into_iter().filter(|n| NAMES.contains(&n.name.as_str())).collect()
}

/// Looks up one benchmark by its paper label.
pub fn benchmark(name: &str) -> Option<Network> {
    benchmark_suite().into_iter().find(|n| n.name == name)
}

/// Target MAC-weighted average weight sparsity of the publicly available
/// pruned variants the paper uses ([55–58]; §V-D: "average sparsity varies
/// between 50%–80%").
pub fn pruned_target_sparsity(name: &str) -> Option<f64> {
    Some(match name {
        "vgg16" => 0.80,       // AGP prunes VGG heavily [55, 56]
        "resnet50" => 0.65,    // [55]
        "inception3" => 0.62,  // [55]
        "inception4" => 0.60,
        "mobilenetv1" => 0.50, // lean convolutions prune least [55]
        "ssd300" => 0.65,      // [57]
        "yolov3" => 0.60,
        "tiny-yolov3" => 0.55,
        "bert" => 0.55,        // [58]
        "lstm" => 0.70,        // RNNs prune well [55]
        "bilstm" => 0.60,
        _ => return None,
    })
}

/// Applies a per-layer pruning profile so the MAC-weighted average weight
/// sparsity equals the benchmark's published target. High-precision
/// (first/last) layers are pruned lightly, as in the public checkpoints;
/// larger layers absorb proportionally more sparsity, with a deterministic
/// layer-to-layer ripple so the profile is not flat.
///
/// Returns the achieved MAC-weighted average.
pub fn apply_pruning_profile(net: &mut Network) -> f64 {
    let target = pruned_target_sparsity(&net.name).unwrap_or(0.6);
    const HP_SPARSITY: f64 = 0.20;

    // First pass: raw shape — HP layers fixed, others get target modulated
    // by a ±0.15 ripple and a size bonus for wide layers.
    let weights: Vec<u64> =
        net.layers.iter().map(|l| l.op.weight_elems() * l.repeat).collect();
    let max_w = weights.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut raw = Vec::with_capacity(net.layers.len());
    for (i, layer) in net.layers.iter().enumerate() {
        if !layer.op.is_compute() || layer.op.weight_elems() == 0 {
            raw.push(0.0);
            continue;
        }
        if layer.class == PrecisionClass::HighPrecision {
            raw.push(HP_SPARSITY);
            continue;
        }
        let ripple = 0.15 * ((i as f64) * 0.7).sin();
        let size_bonus = 0.10 * (weights[i] as f64 / max_w).sqrt();
        raw.push((target + ripple + size_bonus).clamp(0.25, 0.92));
    }

    // Second pass: scale the prunable (quantizable, weighted) layers so
    // *their* MAC-weighted mean hits the target exactly; the lightly-pruned
    // first/last layers stay fixed, as in the public checkpoints.
    let macs: Vec<f64> = net.layers.iter().map(|l| l.macs() as f64).collect();
    let is_prunable = |l: &crate::graph::Layer| {
        l.class == PrecisionClass::Quantizable && l.op.is_compute() && l.op.weight_elems() > 0
    };
    let q_macs: f64 = net
        .layers
        .iter()
        .enumerate()
        .filter(|(_, l)| is_prunable(l))
        .map(|(i, _)| macs[i])
        .sum();
    let q_contrib: f64 = net
        .layers
        .iter()
        .enumerate()
        .filter(|(_, l)| is_prunable(l))
        .map(|(i, _)| raw[i] * macs[i])
        .sum();
    if q_contrib > 0.0 {
        let scale = target * q_macs / q_contrib;
        for (i, layer) in net.layers.iter().enumerate() {
            if is_prunable(layer) {
                raw[i] = (raw[i] * scale).clamp(0.0, 0.95);
            }
        }
    }

    for (layer, s) in net.layers.iter_mut().zip(&raw) {
        layer.pruned_sparsity = *s;
    }
    // Achieved MAC-weighted average over the prunable layers.
    if q_macs > 0.0 {
        net.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| is_prunable(l))
            .map(|(i, l)| l.pruned_sparsity * macs[i])
            .sum::<f64>()
            / q_macs
    } else {
        net.average_pruned_sparsity()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_benchmarks() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 11);
        let names: Vec<&str> = suite.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"resnet50"));
        assert!(names.contains(&"bert"));
        assert!(names.contains(&"bilstm"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("vgg16").is_some());
        assert!(benchmark("alexnet").is_none());
    }

    #[test]
    fn pruning_hits_target_within_tolerance() {
        for mut net in benchmark_suite() {
            let target = pruned_target_sparsity(&net.name).unwrap();
            let achieved = apply_pruning_profile(&mut net);
            assert!(
                (achieved - target).abs() < 0.05,
                "{}: achieved {achieved}, target {target}",
                net.name
            );
        }
    }

    #[test]
    fn pruning_targets_span_paper_band() {
        // §V-D: average sparsity varies between 50% and 80%.
        let mut lo = f64::MAX;
        let mut hi: f64 = 0.0;
        for net in benchmark_suite() {
            let t = pruned_target_sparsity(&net.name).unwrap();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        assert_eq!(lo, 0.50);
        assert_eq!(hi, 0.80);
    }

    #[test]
    fn hp_layers_prune_lightly() {
        let mut net = cnn::resnet50();
        apply_pruning_profile(&mut net);
        for l in &net.layers {
            if l.class == PrecisionClass::HighPrecision && l.op.is_compute() {
                assert!(l.pruned_sparsity <= 0.25, "{}: {}", l.name, l.pruned_sparsity);
            }
        }
    }

    #[test]
    fn pruning_profile_is_not_flat() {
        let mut net = cnn::vgg16();
        apply_pruning_profile(&mut net);
        let s: Vec<f64> = net
            .layers
            .iter()
            .filter(|l| l.op.weight_elems() > 0)
            .map(|l| l.pruned_sparsity)
            .collect();
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        let max = s.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.1, "profile too flat: {min}..{max}");
    }
}
