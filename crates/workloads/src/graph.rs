//! Operator taxonomy and network graphs.
//!
//! A [`Network`] is the unit the compiler and performance model consume: an
//! ordered list of [`Layer`]s, each wrapping one [`Op`] with a precision
//! class and a repeat count (used for recurrent timesteps and per-head
//! attention GEMMs). Costs are *per input sample*; batching is applied by
//! the performance model.

use serde::{Deserialize, Serialize};

/// Auxiliary (SFU-executed) operation kinds with their per-element cost in
/// FP16 SFU lane-cycles (fast approximations, paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuxKind {
    /// ReLU / ReLU backward.
    Relu,
    /// Batch normalization (inference: fused scale + shift).
    BatchNorm,
    /// Max or average pooling; cost carries the window size.
    Pool,
    /// Element-wise residual addition.
    EltwiseAdd,
    /// Softmax (exp + reduce + divide).
    Softmax,
    /// Layer normalization (mean/var + scale/shift).
    LayerNorm,
    /// GELU (fast tanh approximation).
    Gelu,
    /// Sigmoid gate (LSTM).
    Sigmoid,
    /// Tanh gate (LSTM).
    Tanh,
    /// Element-wise multiply (LSTM gates, attention masks).
    EltwiseMul,
    /// Data shuffle / concat / permute.
    Shuffle,
}

impl AuxKind {
    /// SFU lane-cycles consumed per element (window-dependent kinds take
    /// the multiplier through [`Op::Aux`]'s `ops_per_elem`). Costs count
    /// the full read–compute–write traversal of the SFU datapath, so even
    /// a ReLU takes two lane-cycles per element.
    pub fn lane_cycles_per_elem(&self) -> f64 {
        match self {
            AuxKind::Relu => 2.0,
            AuxKind::BatchNorm => 4.0,
            AuxKind::Pool => 2.0, // per window element
            AuxKind::EltwiseAdd => 2.0,
            AuxKind::Softmax => 12.0,
            AuxKind::LayerNorm => 12.0,
            AuxKind::Gelu => 8.0,
            AuxKind::Sigmoid => 4.0,
            AuxKind::Tanh => 4.0,
            AuxKind::EltwiseMul => 2.0,
            AuxKind::Shuffle => 2.0,
        }
    }
}

/// One operator. Dimensions are per input sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Dense convolution `[ci, h, w] → [co, ho, wo]`.
    Conv {
        /// Input channels.
        ci: u64,
        /// Output channels.
        co: u64,
        /// Input height.
        h: u64,
        /// Input width.
        w: u64,
        /// Kernel height.
        kh: u64,
        /// Kernel width.
        kw: u64,
        /// Stride (both dims).
        stride: u64,
        /// Padding along the height axis.
        pad_h: u64,
        /// Padding along the width axis.
        pad_w: u64,
    },
    /// Depthwise convolution: one filter per channel, no cross-channel
    /// reduction (maps poorly to the Ci-reduction rows of the MPE array).
    DepthwiseConv {
        /// Channels.
        c: u64,
        /// Input height.
        h: u64,
        /// Input width.
        w: u64,
        /// Kernel size (square).
        k: u64,
        /// Stride.
        stride: u64,
        /// Padding.
        pad: u64,
    },
    /// General matrix multiply `[m, k] × [k, n]`.
    Gemm {
        /// Rows of the activation operand (1 for batch-1 FC / GEMV).
        m: u64,
        /// Reduction dimension.
        k: u64,
        /// Output columns.
        n: u64,
        /// Whether the `[k, n]` operand is a weight tensor (false for
        /// activation × activation products such as attention scores).
        weighted: bool,
    },
    /// Auxiliary SFU operation over `elems` elements.
    Aux {
        /// Operation kind.
        kind: AuxKind,
        /// Elements processed.
        elems: u64,
        /// Cost multiplier per element (e.g. pooling window size).
        ops_per_elem: u64,
    },
}

impl Op {
    /// Convolution output spatial size.
    fn conv_out(h: u64, k: u64, stride: u64, pad: u64) -> u64 {
        (h + 2 * pad).saturating_sub(k) / stride + 1
    }

    /// Multiply-accumulate count (0 for auxiliary ops).
    pub fn macs(&self) -> u64 {
        match *self {
            Op::Conv { ci, co, h, w, kh, kw, stride, pad_h, pad_w } => {
                let ho = Self::conv_out(h, kh, stride, pad_h);
                let wo = Self::conv_out(w, kw, stride, pad_w);
                co * ho * wo * ci * kh * kw
            }
            Op::DepthwiseConv { c, h, w, k, stride, pad } => {
                let ho = Self::conv_out(h, k, stride, pad);
                let wo = Self::conv_out(w, k, stride, pad);
                c * ho * wo * k * k
            }
            Op::Gemm { m, k, n, .. } => m * k * n,
            Op::Aux { .. } => 0,
        }
    }

    /// Weight elements that must be resident/fetched for this op.
    pub fn weight_elems(&self) -> u64 {
        match *self {
            Op::Conv { ci, co, kh, kw, .. } => co * ci * kh * kw,
            Op::DepthwiseConv { c, k, .. } => c * k * k,
            Op::Gemm { k, n, weighted, .. } => {
                if weighted {
                    k * n
                } else {
                    0
                }
            }
            Op::Aux { .. } => 0,
        }
    }

    /// Input activation elements.
    pub fn input_elems(&self) -> u64 {
        match *self {
            Op::Conv { ci, h, w, .. } => ci * h * w,
            Op::DepthwiseConv { c, h, w, .. } => c * h * w,
            Op::Gemm { m, k, n, weighted } => {
                if weighted {
                    m * k
                } else {
                    m * k + k * n
                }
            }
            Op::Aux { elems, .. } => elems,
        }
    }

    /// Output activation elements.
    pub fn output_elems(&self) -> u64 {
        match *self {
            Op::Conv { co, h, w, kh, kw, stride, pad_h, pad_w, .. } => {
                co * Self::conv_out(h, kh, stride, pad_h) * Self::conv_out(w, kw, stride, pad_w)
            }
            Op::DepthwiseConv { c, h, w, k, stride, pad } => {
                c * Self::conv_out(h, k, stride, pad) * Self::conv_out(w, k, stride, pad)
            }
            Op::Gemm { m, n, .. } => m * n,
            Op::Aux { elems, .. } => elems,
        }
    }

    /// SFU lane-cycles for auxiliary ops (0 for compute ops).
    pub fn aux_lane_cycles(&self) -> f64 {
        match *self {
            Op::Aux { kind, elems, ops_per_elem } => {
                kind.lane_cycles_per_elem() * elems as f64 * ops_per_elem as f64
            }
            _ => 0.0,
        }
    }

    /// Whether this op executes on the MPE array.
    pub fn is_compute(&self) -> bool {
        !matches!(self, Op::Aux { .. })
    }
}

/// Precision assignment class (paper §I feature 1: most layers quantize,
/// but first/last layers and shortcut paths must stay high precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrecisionClass {
    /// May execute at the network's quantized precision.
    Quantizable,
    /// Must remain at FP16 to preserve accuracy (first/last layers).
    HighPrecision,
}

/// One layer of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name for reports.
    pub name: String,
    /// The operator.
    pub op: Op,
    /// Precision class.
    pub class: PrecisionClass,
    /// Sequential repeat count (recurrent timesteps, attention heads).
    pub repeat: u64,
    /// Weight sparsity of the *pruned* variant of this layer (0.0 for the
    /// dense model; set by the pruning profile, Fig 16).
    pub pruned_sparsity: f64,
}

impl Layer {
    /// Creates a quantizable layer with repeat 1 and no pruning.
    pub fn new(name: impl Into<String>, op: Op) -> Self {
        Self {
            name: name.into(),
            op,
            class: PrecisionClass::Quantizable,
            repeat: 1,
            pruned_sparsity: 0.0,
        }
    }

    /// Marks the layer high-precision.
    pub fn high_precision(mut self) -> Self {
        self.class = PrecisionClass::HighPrecision;
        self
    }

    /// Sets the repeat count.
    pub fn repeated(mut self, n: u64) -> Self {
        self.repeat = n.max(1);
        self
    }

    /// Total MACs including repeats.
    pub fn macs(&self) -> u64 {
        self.op.macs() * self.repeat
    }

    /// Total SFU lane-cycles including repeats.
    pub fn aux_lane_cycles(&self) -> f64 {
        self.op.aux_lane_cycles() * self.repeat as f64
    }
}

/// Application domain (Table in §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// ImageNet classification.
    ImageClassification,
    /// COCO object detection.
    ObjectDetection,
    /// Natural-language processing.
    NaturalLanguage,
    /// Speech recognition.
    Speech,
}

/// A benchmark network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Benchmark name (paper's label, e.g. "resnet50").
    pub name: String,
    /// Application domain.
    pub domain: Domain,
    /// Ordered layers (branches flattened in execution order).
    pub layers: Vec<Layer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Self { name: name.into(), domain, layers: Vec::new() }
    }

    /// Total MACs per input sample.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total weight elements (parameters in compute layers).
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.op.weight_elems()).sum()
    }

    /// Total SFU lane-cycles per input sample.
    pub fn total_aux_lane_cycles(&self) -> f64 {
        self.layers.iter().map(Layer::aux_lane_cycles).sum()
    }

    /// Fraction of MACs residing in high-precision layers.
    pub fn high_precision_mac_fraction(&self) -> f64 {
        let total = self.total_macs();
        if total == 0 {
            return 0.0;
        }
        let hp: u64 = self
            .layers
            .iter()
            .filter(|l| l.class == PrecisionClass::HighPrecision)
            .map(Layer::macs)
            .sum();
        hp as f64 / total as f64
    }

    /// Average weight sparsity of the pruned variant, weighted by MACs.
    pub fn average_pruned_sparsity(&self) -> f64 {
        let total = self.total_macs();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.pruned_sparsity * l.macs() as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Compute layers (those that run on the MPE array).
    pub fn compute_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.op.is_compute())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn conv_mac_count() {
        // 3x3 conv, 64->128 channels on 56x56, stride 1 pad 1.
        let op = Op::Conv { ci: 64, co: 128, h: 56, w: 56, kh: 3, kw: 3, stride: 1, pad_h: 1, pad_w: 1 };
        assert_eq!(op.macs(), 128 * 56 * 56 * 64 * 9);
        assert_eq!(op.weight_elems(), 128 * 64 * 9);
        assert_eq!(op.output_elems(), 128 * 56 * 56);
    }

    #[test]
    fn strided_conv_output_dims() {
        let op = Op::Conv { ci: 3, co: 64, h: 224, w: 224, kh: 7, kw: 7, stride: 2, pad_h: 3, pad_w: 3 };
        assert_eq!(op.output_elems(), 64 * 112 * 112);
    }

    #[test]
    fn depthwise_has_no_channel_reduction() {
        let op = Op::DepthwiseConv { c: 256, h: 14, w: 14, k: 3, stride: 1, pad: 1 };
        assert_eq!(op.macs(), 256 * 14 * 14 * 9);
        assert_eq!(op.weight_elems(), 256 * 9);
    }

    #[test]
    fn unweighted_gemm_has_no_weights() {
        let attn = Op::Gemm { m: 384, k: 64, n: 384, weighted: false };
        assert_eq!(attn.weight_elems(), 0);
        assert_eq!(attn.macs(), 384 * 64 * 384);
        // Both operands are activations.
        assert_eq!(attn.input_elems(), 384 * 64 + 64 * 384);
    }

    #[test]
    fn aux_cost_scales_with_kind() {
        let relu = Op::Aux { kind: AuxKind::Relu, elems: 1000, ops_per_elem: 1 };
        let softmax = Op::Aux { kind: AuxKind::Softmax, elems: 1000, ops_per_elem: 1 };
        assert_eq!(relu.aux_lane_cycles(), 2000.0);
        assert_eq!(softmax.aux_lane_cycles(), 12000.0);
        assert_eq!(relu.macs(), 0);
    }

    #[test]
    fn layer_repeat_multiplies_costs() {
        let l = Layer::new("attn", Op::Gemm { m: 384, k: 64, n: 384, weighted: false })
            .repeated(12);
        assert_eq!(l.macs(), 12 * 384 * 64 * 384);
    }

    #[test]
    fn network_aggregates() {
        let mut net = Network::new("toy", Domain::ImageClassification);
        net.layers.push(
            Layer::new(
                "conv1",
                Op::Conv { ci: 3, co: 8, h: 8, w: 8, kh: 3, kw: 3, stride: 1, pad_h: 1, pad_w: 1 },
            )
            .high_precision(),
        );
        net.layers.push(Layer::new(
            "conv2",
            Op::Conv { ci: 8, co: 8, h: 8, w: 8, kh: 3, kw: 3, stride: 1, pad_h: 1, pad_w: 1 },
        ));
        let hp = net.high_precision_mac_fraction();
        assert!(hp > 0.2 && hp < 0.35, "hp fraction {hp}");
        assert_eq!(net.compute_layers().count(), 2);
    }
}
