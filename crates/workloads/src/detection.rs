//! Object-detection benchmarks (COCO): SSD300, YOLOv3 and YOLOv3-Tiny.

use crate::builder::CnnBuilder;
use crate::graph::{Domain, Layer, Network, Op, PrecisionClass};

/// Adds one SSD detection head (3×3 loc + conf convolutions) over the
/// current feature map. `boxes` is the number of default boxes per
/// location; COCO has 80 classes + background.
fn ssd_head(b: &mut CnnBuilder, boxes: u64) {
    let fork = b.shape();
    let co = boxes * (4 + 81);
    b.conv_asym(co, 3, 3, 1, 1, 1, PrecisionClass::HighPrecision);
    b.restore(fork);
}

/// SSD300 with the VGG16 backbone (Liu et al.), COCO classes.
pub fn ssd300() -> Network {
    let mut b = CnnBuilder::new("ssd300", Domain::ObjectDetection, 3, 300, 300);
    // VGG16 through conv5_3 (pool5 is 3×3 stride 1 in SSD).
    b.first_conv_bn_relu(64, 3, 1, 1);
    b.conv_bn_relu(64, 3, 1, 1).pool(2, 2, 0); // 150
    b.conv_bn_relu(128, 3, 1, 1).conv_bn_relu(128, 3, 1, 1).pool(2, 2, 0); // 75
    b.conv_bn_relu(256, 3, 1, 1)
        .conv_bn_relu(256, 3, 1, 1)
        .conv_bn_relu(256, 3, 1, 1)
        .pool(2, 2, 1); // 38
    b.conv_bn_relu(512, 3, 1, 1).conv_bn_relu(512, 3, 1, 1).conv_bn_relu(512, 3, 1, 1);
    ssd_head(&mut b, 4); // conv4_3 head @ 38×38
    b.pool(2, 2, 0); // 19
    b.conv_bn_relu(512, 3, 1, 1).conv_bn_relu(512, 3, 1, 1).conv_bn_relu(512, 3, 1, 1);
    b.pool(3, 1, 1); // pool5, stays 19
    // fc6 (dilated 3×3) and fc7 as convolutions.
    b.conv_bn_relu(1024, 3, 1, 1);
    b.conv_bn_relu(1024, 1, 1, 0);
    ssd_head(&mut b, 6); // fc7 head @ 19×19
    // Extra feature layers.
    b.conv_bn_relu(256, 1, 1, 0).conv_bn_relu(512, 3, 2, 1); // 10
    ssd_head(&mut b, 6);
    b.conv_bn_relu(128, 1, 1, 0).conv_bn_relu(256, 3, 2, 1); // 5
    ssd_head(&mut b, 6);
    b.conv_bn_relu(128, 1, 1, 0).conv_bn_relu(256, 3, 1, 0); // 3
    ssd_head(&mut b, 4);
    b.conv_bn_relu(128, 1, 1, 0).conv_bn_relu(256, 3, 1, 0); // 1
    ssd_head(&mut b, 4);
    // Post-processing (softmax over classes for ~8732 boxes).
    b.raw(Layer::new(
        "det_softmax",
        Op::Aux { kind: crate::graph::AuxKind::Softmax, elems: 8732 * 81, ops_per_elem: 1 },
    ));
    b.build()
}

/// One Darknet-53 residual unit: 1×1 reduce + 3×3 expand + residual add.
fn darknet_res(b: &mut CnnBuilder, c: u64) {
    b.conv_bn_relu(c / 2, 1, 1, 0);
    b.conv_bn_relu(c, 3, 1, 1);
    b.eltwise_add();
}

/// YOLOv3 at 416×416 (Redmon & Farhadi), Darknet-53 backbone, 3 scales.
pub fn yolov3() -> Network {
    let mut b = CnnBuilder::new("yolov3", Domain::ObjectDetection, 3, 416, 416);
    b.first_conv_bn_relu(32, 3, 1, 1);
    b.conv_bn_relu(64, 3, 2, 1); // 208
    darknet_res(&mut b, 64);
    b.conv_bn_relu(128, 3, 2, 1); // 104
    for _ in 0..2 {
        darknet_res(&mut b, 128);
    }
    b.conv_bn_relu(256, 3, 2, 1); // 52
    for _ in 0..8 {
        darknet_res(&mut b, 256);
    }
    let route_52 = b.shape();
    b.conv_bn_relu(512, 3, 2, 1); // 26
    for _ in 0..8 {
        darknet_res(&mut b, 512);
    }
    let route_26 = b.shape();
    b.conv_bn_relu(1024, 3, 2, 1); // 13
    for _ in 0..4 {
        darknet_res(&mut b, 1024);
    }
    // Head at 13×13.
    for _ in 0..2 {
        b.conv_bn_relu(512, 1, 1, 0).conv_bn_relu(1024, 3, 1, 1);
    }
    b.conv_bn_relu(512, 1, 1, 0);
    let branch_13 = b.shape();
    b.conv_bn_relu(1024, 3, 1, 1);
    b.conv_asym(255, 1, 1, 1, 0, 0, PrecisionClass::HighPrecision); // detect 13
    // Upsample route to 26×26.
    b.restore(branch_13);
    b.conv_bn_relu(256, 1, 1, 0);
    b.shuffle(256 * 26 * 26); // upsample + concat
    b.restore(route_26).set_channels(512 + 256);
    for _ in 0..2 {
        b.conv_bn_relu(256, 1, 1, 0).conv_bn_relu(512, 3, 1, 1);
    }
    b.conv_bn_relu(256, 1, 1, 0);
    let branch_26 = b.shape();
    b.conv_bn_relu(512, 3, 1, 1);
    b.conv_asym(255, 1, 1, 1, 0, 0, PrecisionClass::HighPrecision); // detect 26
    // Upsample route to 52×52.
    b.restore(branch_26);
    b.conv_bn_relu(128, 1, 1, 0);
    b.shuffle(128 * 52 * 52);
    b.restore(route_52).set_channels(256 + 128);
    for _ in 0..3 {
        b.conv_bn_relu(128, 1, 1, 0).conv_bn_relu(256, 3, 1, 1);
    }
    b.conv_asym(255, 1, 1, 1, 0, 0, PrecisionClass::HighPrecision); // detect 52
    b.build()
}

/// YOLOv3-Tiny at 416×416: 7 convolutions + max-pools, 2 detection scales.
pub fn yolov3_tiny() -> Network {
    let mut b = CnnBuilder::new("tiny-yolov3", Domain::ObjectDetection, 3, 416, 416);
    b.first_conv_bn_relu(16, 3, 1, 1);
    b.pool(2, 2, 0); // 208
    b.conv_bn_relu(32, 3, 1, 1).pool(2, 2, 0); // 104
    b.conv_bn_relu(64, 3, 1, 1).pool(2, 2, 0); // 52
    b.conv_bn_relu(128, 3, 1, 1).pool(2, 2, 0); // 26
    b.conv_bn_relu(256, 3, 1, 1);
    let route_26 = b.shape();
    b.pool(2, 2, 0); // 13
    b.conv_bn_relu(512, 3, 1, 1).pool(3, 1, 1); // stride-1 pool, stays 13
    b.conv_bn_relu(1024, 3, 1, 1);
    b.conv_bn_relu(256, 1, 1, 0);
    let branch_13 = b.shape();
    b.conv_bn_relu(512, 3, 1, 1);
    b.conv_asym(255, 1, 1, 1, 0, 0, PrecisionClass::HighPrecision); // detect 13
    b.restore(branch_13);
    b.conv_bn_relu(128, 1, 1, 0);
    b.shuffle(128 * 26 * 26); // upsample + concat
    b.restore(route_26).set_channels(256 + 128);
    b.conv_bn_relu(256, 3, 1, 1);
    b.conv_asym(255, 1, 1, 1, 0, 0, PrecisionClass::HighPrecision); // detect 26
    b.build()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn ssd300_macs_match_published() {
        let net = ssd300();
        let gmacs = net.total_macs() as f64 / 1e9;
        // Published: ~31 GMACs for SSD300-VGG (COCO).
        assert!((15.0..40.0).contains(&gmacs), "ssd300 {gmacs} GMACs");
    }

    #[test]
    fn yolov3_macs_match_published() {
        let net = yolov3();
        let gmacs = net.total_macs() as f64 / 1e9;
        // Published: ~32.8 GMACs (65.6 GFLOPs) at 416×416.
        assert!((gmacs - 32.8).abs() < 3.0, "yolov3 {gmacs} GMACs");
    }

    #[test]
    fn tiny_yolov3_macs_match_published() {
        let net = yolov3_tiny();
        let gmacs = net.total_macs() as f64 / 1e9;
        // Published: ~2.8 GMACs (5.6 GFLOPs) at 416×416.
        assert!((gmacs - 2.8).abs() < 0.5, "tiny {gmacs} GMACs");
    }

    #[test]
    fn detection_heads_are_high_precision() {
        for net in [ssd300(), yolov3(), yolov3_tiny()] {
            let hp = net.high_precision_mac_fraction();
            assert!(hp > 0.0 && hp < 0.25, "{}: hp {hp}", net.name);
        }
    }
}
