//! Canonical core-health counters and their snapshot view.
//!
//! The health monitor (`rapid-health`) records probe cycles, quarantine
//! transitions, and evidence tallies under these registry names; benches,
//! the `--health` gate, and `telemetry_report` all read the same keys.

use crate::registry::MetricsRegistry;

/// Probe cycles executed (one cycle probes every core once).
pub const PROBE_CYCLES: &str = "health.probe.cycles";
/// Individual probes run (cycles × cores × formats).
pub const PROBE_RUNS: &str = "health.probe.runs";
/// Probes whose output mismatched the known-answer golden.
pub const PROBE_FAILURES: &str = "health.probe.failures";
/// Cores demoted into quarantine (transitions, not a population).
pub const QUARANTINES: &str = "health.quarantines";
/// Cores reinstated to service after passing probation.
pub const REINSTATEMENTS: &str = "health.reinstatements";
/// Healthy/Suspect → Suspect transitions (early-warning demotions).
pub const SUSPECTS: &str = "health.suspects";
/// Gauge: cores currently in service.
pub const ACTIVE_CORES: &str = "health.active_cores";
/// Gauge: cores currently excluded (quarantined or on probation).
pub const EXCLUDED_CORES: &str = "health.excluded_cores";
/// Gauge: mean health score across all cores, in milli-units.
pub const CHIP_HEALTH_MILLI: &str = "health.chip_health_milli";
/// Histogram: virtual µs from first failed probe to quarantine entry.
pub const DETECT_LATENCY_US: &str = "health.detect_latency_us";
/// Quarantine SLO burn-rate alerts fired.
pub const SLO_ALERTS: &str = "health.slo.quarantine.alerts";
/// Prefix for per-kind evidence tallies (`health.evidence.<kind>`).
pub const EVIDENCE_PREFIX: &str = "health.evidence.";

/// Snapshot of the health counters — a thin view over a
/// [`MetricsRegistry`], mirroring [`crate::serve::ServeCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthCounters {
    /// Probe cycles executed.
    pub probe_cycles: u64,
    /// Individual probes run.
    pub probe_runs: u64,
    /// Probes that failed their known-answer check.
    pub probe_failures: u64,
    /// Quarantine entries.
    pub quarantines: u64,
    /// Probation-passed reinstatements.
    pub reinstatements: u64,
    /// Suspect demotions.
    pub suspects: u64,
    /// Cores in service at snapshot time.
    pub active_cores: f64,
    /// Cores excluded at snapshot time.
    pub excluded_cores: f64,
    /// Mean health score in milli-units at snapshot time.
    pub chip_health_milli: f64,
    /// Mean detection latency (first failed probe → quarantine), µs.
    pub mean_detect_latency_us: f64,
    /// Quarantine SLO alerts fired.
    pub slo_alerts: u64,
}

impl HealthCounters {
    /// Reads the snapshot back from a registry.
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        Self {
            probe_cycles: reg.counter(PROBE_CYCLES),
            probe_runs: reg.counter(PROBE_RUNS),
            probe_failures: reg.counter(PROBE_FAILURES),
            quarantines: reg.counter(QUARANTINES),
            reinstatements: reg.counter(REINSTATEMENTS),
            suspects: reg.counter(SUSPECTS),
            active_cores: reg.gauge(ACTIVE_CORES).unwrap_or(0.0),
            excluded_cores: reg.gauge(EXCLUDED_CORES).unwrap_or(0.0),
            chip_health_milli: reg.gauge(CHIP_HEALTH_MILLI).unwrap_or(0.0),
            mean_detect_latency_us: reg
                .histogram(DETECT_LATENCY_US)
                .map(|h| h.mean())
                .unwrap_or(0.0),
            slo_alerts: reg.counter(SLO_ALERTS),
        }
    }

    /// Whether the monitor ever saw a defect signal.
    pub fn any_defect_seen(&self) -> bool {
        self.probe_failures > 0 || self.quarantines > 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.add(PROBE_CYCLES, 12);
        reg.add(PROBE_RUNS, 12 * 4 * 4);
        reg.add(PROBE_FAILURES, 3);
        reg.add(QUARANTINES, 1);
        reg.set_gauge(ACTIVE_CORES, 3.0);
        reg.set_gauge(EXCLUDED_CORES, 1.0);
        reg.observe(DETECT_LATENCY_US, 1000);
        reg.observe(DETECT_LATENCY_US, 3000);
        let c = HealthCounters::from_registry(&reg);
        assert_eq!(c.probe_cycles, 12);
        assert_eq!(c.probe_failures, 3);
        assert_eq!(c.quarantines, 1);
        assert!(c.any_defect_seen());
        assert!((c.active_cores - 3.0).abs() < 1e-12);
        assert!(c.mean_detect_latency_us >= 1000.0);
        assert_eq!(c.slo_alerts, 0);
    }

    #[test]
    fn empty_registry_reads_clean() {
        let c = HealthCounters::from_registry(&MetricsRegistry::new());
        assert!(!c.any_defect_seen());
        assert_eq!(c.mean_detect_latency_us, 0.0);
    }
}
