//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The workspace's `serde` is an offline no-op stub (see `vendor/serde`),
//! so machine-readable output is emitted through this module instead: a
//! [`Json`] tree is built by hand, rendered with [`Json::render`], and — for
//! round-trip tests and schema validation — parsed back with
//! [`Json::parse`]. Object keys keep insertion order so rendered output is
//! deterministic and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number value.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Convenience: a `u64` (exact up to 2^53, ample for cycle counts).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// The value's object fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset of the first
    /// malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }
}

fn render_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; emit null so the output always parses.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..end]) {
                        out.push_str(s);
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Json::Obj(vec![
            ("name".to_string(), Json::str("fig13")),
            ("cycles".to_string(), Json::u64(123_456_789_012)),
            ("ratio".to_string(), Json::Num(0.5)),
            ("ok".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
            (
                "rows".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::str("a\"b\\c\nd")]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::u64(42).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"a": {"b": [1, 2, "x"]}, "s": "y"}"#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.get("b")).and_then(|b| b.as_arr()).map(|b| b.len()), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("y"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Json::Str("τ\ttab\u{1}".to_string());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
    }
}
