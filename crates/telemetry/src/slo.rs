//! Streaming SLO monitoring with multi-window burn-rate rules.
//!
//! An SLO says "at most `objective` of events may be bad" (miss a
//! deadline, get shed). The *burn rate* over a window is the observed
//! bad fraction divided by the objective: burn 1.0 consumes the error
//! budget exactly at the allowed pace, burn 10.0 consumes it ten times
//! too fast. Following the classic multi-window rule, an alert fires
//! only when **both** a fast window (catches the spike quickly) and a
//! slow window (confirms it is sustained, not a blip) exceed their
//! thresholds — this keeps time-to-detect low without paging on noise.
//!
//! Everything runs on the caller's virtual clock (microseconds in the
//! serving engine): feed [`SloMonitor::observe`] one terminal event at a
//! time with a nondecreasing timestamp and it evaluates the rule
//! streaming, in O(fast-window events) per observation, with no wall
//! clock anywhere — the same seed always produces the same alerts at
//! the same virtual times.

/// One burn-rate rule: objective, window pair, and firing thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Allowed bad-event fraction (the error budget), e.g. `0.01`.
    pub objective: f64,
    /// Fast window length (virtual µs) — catches spikes.
    pub fast_window_us: u64,
    /// Slow window length (virtual µs) — confirms the burn is sustained.
    pub slow_window_us: u64,
    /// Fast-window burn-rate threshold.
    pub fast_burn: f64,
    /// Slow-window burn-rate threshold.
    pub slow_burn: f64,
    /// Minimum events in the fast window before the rule may fire
    /// (suppresses startup noise when one bad event is a huge fraction).
    pub min_events: u64,
}

impl SloConfig {
    /// Deadline-violation rule: 2% budget, 10 ms / 50 ms windows, fires
    /// at 8× fast and 4× slow burn (≥16% bad sustained).
    pub fn deadline_default() -> Self {
        Self {
            objective: 0.02,
            fast_window_us: 10_000,
            slow_window_us: 50_000,
            fast_burn: 8.0,
            slow_burn: 4.0,
            min_events: 32,
        }
    }

    /// Quarantine rule: one event per core per probe cycle, bad while the
    /// core is out of service. 5% budget over probe-cycle-scale windows
    /// (25 / 125 cycles at the 500 µs default period); fires at 4× fast
    /// and 2× slow burn — i.e. ≥10–20% of core-cycles quarantined,
    /// sustained — which a single mercurial core on a 4-core chip (25%)
    /// trips promptly while transient Suspect dips do not.
    pub fn quarantine_default() -> Self {
        Self {
            objective: 0.05,
            fast_window_us: 12_500,
            slow_window_us: 62_500,
            fast_burn: 4.0,
            slow_burn: 2.0,
            min_events: 16,
        }
    }

    /// Shed-rate rule: 5% budget, same windows, fires at 8× fast and 4×
    /// slow burn (≥40% of traffic rejected or shed, sustained).
    pub fn shed_default() -> Self {
        Self {
            objective: 0.05,
            fast_window_us: 10_000,
            slow_window_us: 50_000,
            fast_burn: 8.0,
            slow_burn: 4.0,
            min_events: 32,
        }
    }
}

/// One firing of a burn-rate rule (recorded on the inactive→active
/// transition; the rule re-arms after the fast burn halves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// Virtual time the rule fired.
    pub at_us: u64,
    /// Fast-window burn rate at firing time.
    pub fast_burn: f64,
    /// Slow-window burn rate at firing time.
    pub slow_burn: f64,
}

/// A streaming multi-window burn-rate monitor for one SLO rule.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    name: &'static str,
    cfg: SloConfig,
    /// (timestamp, bad) events inside the slow window, oldest first.
    events: std::collections::VecDeque<(u64, bool)>,
    slow_bad: u64,
    alerts: Vec<BurnAlert>,
    active: bool,
    observed: u64,
    bad: u64,
}

impl SloMonitor {
    /// A monitor for one named rule.
    pub fn new(name: &'static str, cfg: SloConfig) -> Self {
        Self {
            name,
            cfg,
            events: std::collections::VecDeque::new(),
            slow_bad: 0,
            alerts: Vec::new(),
            active: false,
            observed: 0,
            bad: 0,
        }
    }

    /// The rule's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The rule's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Total events observed (never pruned).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Total bad events observed (never pruned).
    pub fn bad(&self) -> u64 {
        self.bad
    }

    /// Alerts fired so far.
    pub fn alerts(&self) -> &[BurnAlert] {
        &self.alerts
    }

    /// Feeds one terminal event at virtual time `now_us` and evaluates
    /// the rule. Timestamps must be nondecreasing (the engine's clock
    /// is); a late event is treated as arriving now.
    pub fn observe(&mut self, now_us: u64, is_bad: bool) {
        self.observed += 1;
        if is_bad {
            self.bad += 1;
            self.slow_bad += 1;
        }
        self.events.push_back((now_us, is_bad));
        let slow_cut = now_us.saturating_sub(self.cfg.slow_window_us);
        while let Some(&(t, bad)) = self.events.front() {
            if t >= slow_cut {
                break;
            }
            if bad {
                self.slow_bad -= 1;
            }
            self.events.pop_front();
        }

        let slow_total = self.events.len() as u64;
        let fast_cut = now_us.saturating_sub(self.cfg.fast_window_us);
        let mut fast_total = 0u64;
        let mut fast_bad = 0u64;
        for &(t, bad) in self.events.iter().rev() {
            if t < fast_cut {
                break;
            }
            fast_total += 1;
            fast_bad += u64::from(bad);
        }

        let burn = |bad: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / self.cfg.objective
            }
        };
        let fast = burn(fast_bad, fast_total);
        let slow = burn(self.slow_bad, slow_total);

        if !self.active {
            if fast_total >= self.cfg.min_events
                && fast >= self.cfg.fast_burn
                && slow >= self.cfg.slow_burn
            {
                self.active = true;
                self.alerts.push(BurnAlert { at_us: now_us, fast_burn: fast, slow_burn: slow });
            }
        } else if fast < self.cfg.fast_burn / 2.0 {
            // Hysteresis: re-arm only after the fast burn halves, so a
            // sustained burn is one alert, not one per event.
            self.active = false;
        }
    }

    /// Freezes the monitor into a report row.
    pub fn report(&self) -> SloRuleReport {
        SloRuleReport {
            name: self.name,
            config: self.cfg,
            alerts: self.alerts.clone(),
            observed: self.observed,
            bad: self.bad,
        }
    }
}

/// The outcome of one rule over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRuleReport {
    /// Rule name (`"deadline"`, `"shed"`).
    pub name: &'static str,
    /// The rule that produced this report.
    pub config: SloConfig,
    /// Every firing, in virtual-time order.
    pub alerts: Vec<BurnAlert>,
    /// Total events the rule saw.
    pub observed: u64,
    /// Total bad events.
    pub bad: u64,
}

/// All rules' outcomes for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloReport {
    /// One row per rule.
    pub rules: Vec<SloRuleReport>,
}

impl SloReport {
    /// Total alerts across every rule.
    pub fn total_alerts(&self) -> usize {
        self.rules.iter().map(|r| r.alerts.len()).sum()
    }

    /// The named rule's report, when present.
    pub fn rule(&self, name: &str) -> Option<&SloRuleReport> {
        self.rules.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tight() -> SloConfig {
        SloConfig {
            objective: 0.01,
            fast_window_us: 1_000,
            slow_window_us: 5_000,
            fast_burn: 8.0,
            slow_burn: 4.0,
            min_events: 10,
        }
    }

    #[test]
    fn healthy_stream_never_fires() {
        let mut m = SloMonitor::new("deadline", tight());
        for i in 0..10_000u64 {
            // 0.5% bad — half the objective.
            m.observe(i, i % 200 == 199);
        }
        assert!(m.alerts().is_empty());
        assert_eq!(m.observed(), 10_000);
        assert_eq!(m.bad(), 50);
    }

    #[test]
    fn sustained_burn_fires_once_and_rearms_after_recovery() {
        let mut m = SloMonitor::new("deadline", tight());
        for i in 0..2_000u64 {
            m.observe(i, false);
        }
        // 50% bad: burn 50× objective — far past 8×/4×.
        for i in 2_000..4_000u64 {
            m.observe(i, i % 2 == 0);
        }
        assert_eq!(m.alerts().len(), 1, "sustained burn must fire exactly once");
        let alert = m.alerts()[0];
        assert!(alert.fast_burn >= 8.0 && alert.slow_burn >= 4.0);
        // Recover fully, then burn again: a second alert.
        for i in 4_000..12_000u64 {
            m.observe(i, false);
        }
        for i in 12_000..14_000u64 {
            m.observe(i, i % 2 == 0);
        }
        assert_eq!(m.alerts().len(), 2);
        assert!(m.alerts()[1].at_us > alert.at_us);
    }

    #[test]
    fn short_spike_does_not_fire_multiwindow_rule() {
        let mut m = SloMonitor::new("deadline", tight());
        for i in 0..5_000u64 {
            m.observe(i, false);
        }
        // 100% bad, but only for 200 µs — the slow window stays calm
        // (200/5200 ≈ 3.8% bad → slow burn ≈ 3.8 < 4.0).
        for i in 5_000..5_200u64 {
            m.observe(i, true);
        }
        for i in 5_200..10_000u64 {
            m.observe(i, false);
        }
        assert!(m.alerts().is_empty(), "blip must not page: {:?}", m.alerts());
    }

    #[test]
    fn min_events_suppresses_startup_noise() {
        let mut m = SloMonitor::new("deadline", tight());
        // First events are all bad, but fewer than min_events.
        for i in 0..5u64 {
            m.observe(i, true);
        }
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn alerts_are_deterministic() {
        let run = || {
            let mut m = SloMonitor::new("shed", tight());
            for i in 0..20_000u64 {
                m.observe(i, (i / 3_000) % 2 == 1 && i % 3 != 0);
            }
            m.alerts().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
