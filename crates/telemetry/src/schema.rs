//! The machine-readable bench record schema and its validator.
//!
//! Every bench binary's `--json <path>` output is one *bench record*:
//!
//! ```json
//! {
//!   "schema": "rapid-bench-v1",
//!   "experiment": "fig13_inference",
//!   "config": { "threads": 8, "fault_seed": 3735928559, ... },
//!   "metrics": { "sim.core0.macs": 123456, ... },
//!   "wall_ms": 41.7
//! }
//! ```
//!
//! `repro_all --json` aggregates per-binary records into an *aggregate*:
//!
//! ```json
//! { "schema": "rapid-bench-aggregate-v1", "records": [ ...bench records... ] }
//! ```
//!
//! [`validate_bench_record`] / [`validate_aggregate`] are the tiny no-deps
//! validators the `scripts/check.sh --telemetry` gate runs against emitted
//! files; they return a human-readable description of the first violation.

use crate::json::Json;

/// Schema tag carried by every single-experiment bench record.
pub const BENCH_SCHEMA: &str = "rapid-bench-v1";

/// Schema tag carried by the `repro_all` aggregate.
pub const AGGREGATE_SCHEMA: &str = "rapid-bench-aggregate-v1";

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("{ctx}: missing required field '{key}'"))
}

fn expect_number(v: &Json, ctx: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{ctx}: expected a number"))
}

/// Checks that `record` is a well-formed `rapid-bench-v1` record.
///
/// # Errors
///
/// Describes the first schema violation found.
pub fn validate_bench_record(record: &Json) -> Result<(), String> {
    if record.as_obj().is_none() {
        return Err("bench record: expected a JSON object".to_string());
    }
    let schema = field(record, "schema", "bench record")?
        .as_str()
        .ok_or_else(|| "bench record: 'schema' must be a string".to_string())?;
    if schema != BENCH_SCHEMA {
        return Err(format!("bench record: schema '{schema}' != '{BENCH_SCHEMA}'"));
    }
    let experiment = field(record, "experiment", "bench record")?
        .as_str()
        .ok_or_else(|| "bench record: 'experiment' must be a string".to_string())?;
    if experiment.is_empty() {
        return Err("bench record: 'experiment' must be non-empty".to_string());
    }
    let ctx = format!("record '{experiment}'");

    let config = field(record, "config", &ctx)?;
    let config_fields =
        config.as_obj().ok_or_else(|| format!("{ctx}: 'config' must be an object"))?;
    for key in ["threads", "fault_seed"] {
        let v = field(config, key, &ctx)?;
        expect_number(v, &format!("{ctx}: config.{key}"))?;
    }
    for (k, v) in config_fields {
        if v.as_f64().is_none() && v.as_str().is_none() && !matches!(v, Json::Bool(_)) {
            return Err(format!("{ctx}: config.{k} must be a number, string or bool"));
        }
    }

    let metrics = field(record, "metrics", &ctx)?;
    let metric_fields =
        metrics.as_obj().ok_or_else(|| format!("{ctx}: 'metrics' must be an object"))?;
    for (k, v) in metric_fields {
        expect_number(v, &format!("{ctx}: metrics.{k}"))?;
    }

    let wall = expect_number(field(record, "wall_ms", &ctx)?, &format!("{ctx}: wall_ms"))?;
    if !wall.is_finite() || wall < 0.0 {
        return Err(format!("{ctx}: wall_ms must be finite and non-negative, got {wall}"));
    }
    Ok(())
}

/// Checks that `doc` is a well-formed `rapid-bench-aggregate-v1` document
/// and that every contained record validates.
///
/// # Errors
///
/// Describes the first schema violation found.
pub fn validate_aggregate(doc: &Json) -> Result<(), String> {
    if doc.as_obj().is_none() {
        return Err("aggregate: expected a JSON object".to_string());
    }
    let schema = field(doc, "schema", "aggregate")?
        .as_str()
        .ok_or_else(|| "aggregate: 'schema' must be a string".to_string())?;
    if schema != AGGREGATE_SCHEMA {
        return Err(format!("aggregate: schema '{schema}' != '{AGGREGATE_SCHEMA}'"));
    }
    let records = field(doc, "records", "aggregate")?
        .as_arr()
        .ok_or_else(|| "aggregate: 'records' must be an array".to_string())?;
    if records.is_empty() {
        return Err("aggregate: 'records' must be non-empty".to_string());
    }
    for (i, r) in records.iter().enumerate() {
        validate_bench_record(r).map_err(|e| format!("aggregate record #{i}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn good_record() -> Json {
        Json::parse(
            r#"{
              "schema": "rapid-bench-v1",
              "experiment": "demo",
              "config": {"threads": 4, "fault_seed": 99, "mode": "smoke"},
              "metrics": {"cycles": 100, "util": 0.5},
              "wall_ms": 12.5
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn valid_record_passes() {
        assert_eq!(validate_bench_record(&good_record()), Ok(()));
    }

    #[test]
    fn missing_fields_are_named() {
        for key in ["schema", "experiment", "config", "metrics", "wall_ms"] {
            let r = good_record();
            let fields: Vec<(String, Json)> = r
                .as_obj()
                .unwrap()
                .iter()
                .filter(|(k, _)| k != key)
                .cloned()
                .collect();
            let err = validate_bench_record(&Json::Obj(fields)).unwrap_err();
            assert!(err.contains(key), "error '{err}' should mention '{key}'");
        }
    }

    #[test]
    fn config_requires_threads_and_seed() {
        let r = Json::parse(
            r#"{"schema":"rapid-bench-v1","experiment":"x",
                "config":{"threads":1},"metrics":{},"wall_ms":0}"#,
        )
        .unwrap();
        let err = validate_bench_record(&r).unwrap_err();
        assert!(err.contains("fault_seed"));
    }

    #[test]
    fn non_numeric_metric_rejected() {
        let r = Json::parse(
            r#"{"schema":"rapid-bench-v1","experiment":"x",
                "config":{"threads":1,"fault_seed":0},
                "metrics":{"bad":"oops"},"wall_ms":0}"#,
        )
        .unwrap();
        let err = validate_bench_record(&r).unwrap_err();
        assert!(err.contains("metrics.bad"));
    }

    #[test]
    fn aggregate_validates_members() {
        let agg = Json::Obj(vec![
            ("schema".to_string(), Json::str(AGGREGATE_SCHEMA)),
            ("records".to_string(), Json::Arr(vec![good_record()])),
        ]);
        assert_eq!(validate_aggregate(&agg), Ok(()));

        let bad = Json::Obj(vec![
            ("schema".to_string(), Json::str(AGGREGATE_SCHEMA)),
            ("records".to_string(), Json::Arr(vec![Json::Null])),
        ]);
        let err = validate_aggregate(&bad).unwrap_err();
        assert!(err.contains("record #0"));
    }
}
